"""Unit tests for the base trajectory encoder models."""

import numpy as np
import pytest

from repro.data import generate_dataset
from repro.models import (
    MeanPoolEncoder,
    NeutrajEncoder,
    ST2VecEncoder,
    Traj2SimVecEncoder,
    TrajGATEncoder,
    TedjEncoder,
    TrajectoryEncoder,
    available_models,
    get_model,
)
from repro.nn import no_grad

SPATIAL_MODELS = [MeanPoolEncoder, NeutrajEncoder, TrajGATEncoder, Traj2SimVecEncoder]
TEMPORAL_MODELS = [ST2VecEncoder, TedjEncoder]


@pytest.fixture(scope="module")
def spatial_dataset():
    return generate_dataset("chengdu", size=12, seed=0)


@pytest.fixture(scope="module")
def temporal_dataset():
    return generate_dataset("tdrive", size=12, seed=0)


class TestRegistry:
    def test_all_models_registered(self):
        names = available_models()
        for expected in ("meanpool", "neutraj", "trajgat", "traj2simvec", "st2vec", "tedj"):
            assert expected in names

    def test_get_model(self):
        assert get_model("neutraj") is NeutrajEncoder
        assert get_model("NEUTRAJ") is NeutrajEncoder

    def test_get_model_unknown(self):
        with pytest.raises(KeyError):
            get_model("bert")

    def test_base_class_contract(self):
        encoder = TrajectoryEncoder(embedding_dim=4)
        with pytest.raises(NotImplementedError):
            encoder.prepare(None)
        with pytest.raises(NotImplementedError):
            encoder.encode(None)
        with pytest.raises(ValueError):
            TrajectoryEncoder(embedding_dim=0)


class TestSpatialModels:
    @pytest.mark.parametrize("encoder_cls", SPATIAL_MODELS)
    def test_build_and_encode_shape(self, encoder_cls, spatial_dataset):
        encoder = encoder_cls.build(spatial_dataset, embedding_dim=8, seed=0)
        prepared = encoder.prepare(spatial_dataset[0])
        embedding = encoder.encode(prepared)
        assert embedding.shape == (8,)
        assert np.isfinite(embedding.data).all()

    @pytest.mark.parametrize("encoder_cls", SPATIAL_MODELS)
    def test_deterministic_given_seed(self, encoder_cls, spatial_dataset):
        first = encoder_cls.build(spatial_dataset, embedding_dim=8, seed=3)
        second = encoder_cls.build(spatial_dataset, embedding_dim=8, seed=3)
        with no_grad():
            a = first.encode(first.prepare(spatial_dataset[1])).data
            b = second.encode(second.prepare(spatial_dataset[1])).data
        np.testing.assert_allclose(a, b)

    @pytest.mark.parametrize("encoder_cls", SPATIAL_MODELS)
    def test_different_trajectories_differ(self, encoder_cls, spatial_dataset):
        encoder = encoder_cls.build(spatial_dataset, embedding_dim=8, seed=0)
        with no_grad():
            a = encoder.encode(encoder.prepare(spatial_dataset[0])).data
            b = encoder.encode(encoder.prepare(spatial_dataset[1])).data
        assert not np.allclose(a, b)

    @pytest.mark.parametrize("encoder_cls", SPATIAL_MODELS)
    def test_gradients_reach_parameters(self, encoder_cls, spatial_dataset):
        encoder = encoder_cls.build(spatial_dataset, embedding_dim=8, seed=0)
        embedding = encoder.encode(encoder.prepare(spatial_dataset[0]))
        (embedding * embedding).sum().backward()
        grads = [p.grad is not None for p in encoder.parameters()]
        assert any(grads)

    @pytest.mark.parametrize("encoder_cls", SPATIAL_MODELS)
    def test_embed_dataset_shape(self, encoder_cls, spatial_dataset):
        encoder = encoder_cls.build(spatial_dataset, embedding_dim=8, seed=0)
        embeddings = encoder.embed_dataset(spatial_dataset)
        assert embeddings.shape == (len(spatial_dataset), 8)


class TestModelSpecificBehaviour:
    def test_neutraj_prepare_features(self, spatial_dataset):
        encoder = NeutrajEncoder.build(spatial_dataset, embedding_dim=8, grid_size=8)
        features = encoder.prepare(spatial_dataset[0])
        assert features.shape == (len(spatial_dataset[0]), 6)
        assert np.isfinite(features).all()

    def test_trajgat_prepare_is_graph(self, spatial_dataset):
        encoder = TrajGATEncoder.build(spatial_dataset, embedding_dim=8)
        features, adjacency = encoder.prepare(spatial_dataset[0])
        assert features.shape[0] == adjacency.shape[0]
        assert adjacency.dtype == bool

    def test_traj2simvec_prefixes(self, spatial_dataset):
        encoder = Traj2SimVecEncoder.build(spatial_dataset, embedding_dim=8, num_splits=3)
        prepared = encoder.prepare(spatial_dataset[0])
        full, prefixes = encoder.encode_with_prefixes(prepared)
        assert full.shape == (8,)
        assert len(prefixes) == 3
        lengths = encoder.prefix_lengths(prepared)
        assert lengths == sorted(lengths)
        assert lengths[-1] <= len(prepared)

    def test_st2vec_requires_time(self, spatial_dataset):
        with pytest.raises(ValueError):
            ST2VecEncoder.build(spatial_dataset, embedding_dim=8)

    def test_tedj_requires_time(self, spatial_dataset):
        with pytest.raises(ValueError):
            TedjEncoder.build(spatial_dataset, embedding_dim=8)


class TestTemporalModels:
    @pytest.mark.parametrize("encoder_cls", TEMPORAL_MODELS)
    def test_build_and_encode_shape(self, encoder_cls, temporal_dataset):
        encoder = encoder_cls.build(temporal_dataset, embedding_dim=8, seed=0)
        embedding = encoder.encode(encoder.prepare(temporal_dataset[0]))
        assert embedding.shape == (8,)
        assert np.isfinite(embedding.data).all()

    @pytest.mark.parametrize("encoder_cls", TEMPORAL_MODELS)
    def test_rejects_spatial_only_trajectory(self, encoder_cls, temporal_dataset,
                                             spatial_dataset):
        encoder = encoder_cls.build(temporal_dataset, embedding_dim=8, seed=0)
        with pytest.raises(ValueError):
            encoder.prepare(spatial_dataset[0])

    def test_st2vec_prepare_streams(self, temporal_dataset):
        encoder = ST2VecEncoder.build(temporal_dataset, embedding_dim=8)
        spatial, temporal = encoder.prepare(temporal_dataset[0])
        assert spatial.shape[1] == 2
        assert temporal.shape[1] == 2
        assert spatial.shape[0] == temporal.shape[0]

    def test_tedj_tokens_within_vocabulary(self, temporal_dataset):
        encoder = TedjEncoder.build(temporal_dataset, embedding_dim=8, grid_size=6,
                                    num_time_bins=6)
        tokens, continuous = encoder.prepare(temporal_dataset[0])
        assert tokens.max() < encoder.st_grid.num_cells
        assert continuous.shape == (len(tokens), 3)
