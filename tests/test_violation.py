"""Unit tests for the triangle-inequality violation metrics and samplers."""

import numpy as np
import pytest

from repro import distances as D
from repro.violation import (
    average_relative_violation,
    iter_triplets,
    per_trajectory_violation_score,
    ratio_of_violation,
    relative_violation_scale,
    sample_violating_triplets,
    sim_slack,
    stratify_queries_by_violation,
    triangle_violation_flag,
    violation_report,
)


def matrix_from(distances: dict, n: int) -> np.ndarray:
    matrix = np.zeros((n, n))
    for (i, j), value in distances.items():
        matrix[i, j] = matrix[j, i] = value
    return matrix


# Example 12 of the paper: four trajectories, only (a, b, c) violates, with
# f(a,b) = 5, f(a,c) = 2, f(b,c) = 1 -> RV = 1/4, ARVS = 2/3.
EXAMPLE12 = matrix_from({(0, 1): 5.0, (0, 2): 2.0, (1, 2): 1.0,
                         (0, 3): 3.0, (1, 3): 3.0, (2, 3): 3.0}, 4)


class TestTripletIteration:
    def test_exhaustive_count(self):
        assert len(list(iter_triplets(5))) == 10

    def test_small_count_yields_nothing(self):
        assert list(iter_triplets(2)) == []

    def test_sampled_count(self):
        triplets = list(iter_triplets(10, max_triplets=7, rng=np.random.default_rng(0)))
        assert len(triplets) == 7
        assert len(set(triplets)) == 7

    def test_sampled_indices_sorted(self):
        for i, j, k in iter_triplets(8, max_triplets=5, rng=np.random.default_rng(0)):
            assert i < j < k


class TestFlagAndSlack:
    def test_sim_slack_value(self):
        assert sim_slack(EXAMPLE12, 0, 1, 2) == pytest.approx(5.0 - 2.0 - 1.0)

    def test_violating_triplet_flag(self):
        assert triangle_violation_flag(EXAMPLE12, 0, 1, 2) == 1

    def test_non_violating_triplet_flag(self):
        assert triangle_violation_flag(EXAMPLE12, 0, 1, 3) == 0

    def test_flag_tolerance(self):
        matrix = matrix_from({(0, 1): 2.0, (0, 2): 1.0, (1, 2): 1.0}, 3)
        assert triangle_violation_flag(matrix, 0, 1, 2) == 0

    def test_rvs_example12(self):
        assert relative_violation_scale(EXAMPLE12, 0, 1, 2) == pytest.approx(2.0 / 3.0)

    def test_rvs_negative_for_satisfied_triplet(self):
        matrix = matrix_from({(0, 1): 1.0, (0, 2): 1.0, (1, 2): 1.0}, 3)
        assert relative_violation_scale(matrix, 0, 1, 2) < 0.0

    def test_rvs_handles_all_largest_sides(self):
        # Whatever permutation carries the largest distance, RVS should be positive
        # exactly when the triangle inequality is broken.
        for largest_pair in ((0, 1), (0, 2), (1, 2)):
            distances = {(0, 1): 1.0, (0, 2): 1.0, (1, 2): 1.0}
            distances[largest_pair] = 5.0
            matrix = matrix_from(distances, 3)
            assert relative_violation_scale(matrix, 0, 1, 2) > 0.0


class TestAggregateStatistics:
    def test_rv_example12(self):
        assert ratio_of_violation(EXAMPLE12) == pytest.approx(0.25)

    def test_arvs_example12(self):
        assert average_relative_violation(EXAMPLE12) == pytest.approx(2.0 / 3.0)

    def test_violation_report_consistency(self):
        report = violation_report(EXAMPLE12)
        assert report["triplets"] == 4
        assert report["violating_triplets"] == 1
        assert report["ratio_of_violation"] == pytest.approx(0.25)
        assert report["average_relative_violation"] == pytest.approx(2.0 / 3.0)

    def test_metric_matrix_has_no_violations(self):
        rng = np.random.default_rng(0)
        points = rng.random((12, 2))
        matrix = np.sqrt(((points[:, None] - points[None]) ** 2).sum(-1))
        assert ratio_of_violation(matrix) == 0.0
        assert average_relative_violation(matrix) == 0.0

    def test_dtw_matrix_has_violations(self):
        ta = np.array([[0.0, 0.0], [0.0, 1.0], [0.0, 3.0]])
        tb = np.array([[2.0, 0.0], [0.0, 1.0], [2.0, 3.0]])
        tc = np.array([[3.0, 0.0], [3.0, 1.0], [4.0, 3.0], [5.0, 3.0]])
        matrix = D.pairwise_distance_matrix([ta, tb, tc], "dtw")
        assert ratio_of_violation(matrix) == pytest.approx(1.0)

    def test_rejects_non_square_matrix(self):
        with pytest.raises(ValueError):
            ratio_of_violation(np.zeros((2, 3)))

    def test_sampled_estimate_close_to_exact(self):
        rng = np.random.default_rng(1)
        matrix = rng.random((15, 15))
        matrix = (matrix + matrix.T) / 2
        np.fill_diagonal(matrix, 0.0)
        exact = ratio_of_violation(matrix)
        sampled = ratio_of_violation(matrix, max_triplets=300, seed=0)
        assert sampled == pytest.approx(exact, abs=0.15)


class TestSamplers:
    def test_sample_violating_triplets_all_violate(self):
        triplets = sample_violating_triplets(EXAMPLE12, max_triplets=None)
        assert triplets == [(0, 1, 2)]

    def test_sample_violating_triplets_limit(self):
        rng = np.random.default_rng(2)
        matrix = rng.random((20, 20))
        matrix = (matrix + matrix.T) / 2
        np.fill_diagonal(matrix, 0.0)
        triplets = sample_violating_triplets(matrix, max_triplets=2000, limit=5)
        assert len(triplets) <= 5
        for triplet in triplets:
            assert triangle_violation_flag(matrix, *triplet) == 1

    def test_per_trajectory_score_nonzero_for_violators(self):
        scores = per_trajectory_violation_score(EXAMPLE12)
        assert scores[0] > 0 and scores[1] > 0 and scores[2] > 0
        assert scores[3] == pytest.approx(0.0)

    def test_stratify_partitions_all_queries(self):
        rng = np.random.default_rng(3)
        matrix = rng.random((12, 12))
        matrix = (matrix + matrix.T) / 2
        np.fill_diagonal(matrix, 0.0)
        buckets = stratify_queries_by_violation(matrix, num_buckets=3)
        assert sum(len(bucket) for bucket in buckets) == 12
        combined = sorted(int(i) for bucket in buckets for i in bucket)
        assert combined == list(range(12))

    def test_stratify_orders_by_score(self):
        buckets = stratify_queries_by_violation(EXAMPLE12, num_buckets=2)
        scores = per_trajectory_violation_score(EXAMPLE12)
        assert scores[buckets[0]].mean() <= scores[buckets[-1]].mean()

    def test_stratify_validation(self):
        with pytest.raises(ValueError):
            stratify_queries_by_violation(EXAMPLE12, num_buckets=1)
