"""Unit tests for the Lorentz geometry (inner product, distance, Lemmas 4-5)."""

import numpy as np
import pytest

from repro.core import (
    cosh_projection,
    is_on_hyperboloid,
    lorentz_distance,
    lorentz_distance_matrix,
    lorentz_distance_t,
    lorentz_inner,
    lorentz_inner_t,
    vanilla_projection,
)
from repro.nn import Tensor
from repro.violation import ratio_of_violation


def hyperbolic_points(n, dim, beta=1.0, scale=1.0, seed=0):
    """Random points of H(beta) obtained by projecting Euclidean vectors."""
    rng = np.random.default_rng(seed)
    return cosh_projection(rng.normal(size=(n, dim)) * scale, beta=beta, c=2.0)


class TestLorentzInner:
    def test_signature(self):
        a = np.array([2.0, 1.0, 0.0])
        b = np.array([3.0, 0.0, 1.0])
        assert lorentz_inner(a, b) == pytest.approx(-6.0)

    def test_batched(self):
        points = hyperbolic_points(5, 3)
        values = lorentz_inner(points, points)
        assert values.shape == (5,)
        np.testing.assert_allclose(values, -np.ones(5), atol=1e-8)

    def test_self_inner_product_is_minus_beta(self):
        for beta in (0.5, 1.0, 2.0):
            points = cosh_projection(np.random.default_rng(0).normal(size=(4, 3)),
                                     beta=beta, c=2.0)
            np.testing.assert_allclose(lorentz_inner(points, points), -beta * np.ones(4),
                                       atol=1e-8)

    def test_tensor_version_matches_numpy(self):
        rng = np.random.default_rng(1)
        a = rng.normal(size=(4, 5))
        b = rng.normal(size=(4, 5))
        np.testing.assert_allclose(lorentz_inner_t(Tensor(a), Tensor(b)).data,
                                   lorentz_inner(a, b))

    def test_tensor_version_differentiable(self):
        a = Tensor(np.array([2.0, 1.0, 0.5]), requires_grad=True)
        b = Tensor(np.array([1.5, 0.5, 1.0]))
        lorentz_inner_t(a, b).backward()
        np.testing.assert_allclose(a.grad, [-1.5, 0.5, 1.0])


class TestLorentzDistance:
    def test_beta_validation(self):
        a = np.array([1.0, 0.0])
        with pytest.raises(ValueError):
            lorentz_distance(a, a, beta=0.0)
        with pytest.raises(ValueError):
            lorentz_distance_t(Tensor(a), Tensor(a), beta=-1.0)

    def test_lemma4_nonnegative_and_identity(self):
        points = hyperbolic_points(20, 4, seed=2)
        # identity of indiscernibles: d(a, a) = 0
        np.testing.assert_allclose(lorentz_distance(points, points), np.zeros(20), atol=1e-8)
        # non-negativity over random pairs
        matrix = lorentz_distance_matrix(points)
        assert (matrix >= -1e-8).all()

    def test_lemma4_zero_only_for_identical(self):
        points = hyperbolic_points(10, 3, scale=1.5, seed=3)
        matrix = lorentz_distance_matrix(points)
        off_diagonal = matrix[~np.eye(10, dtype=bool)]
        assert (off_diagonal > 1e-8).all()

    def test_lemma5_triangle_inequality_violated(self):
        # The Lorentz distance is NOT a metric: violations must exist for generic points.
        points = hyperbolic_points(25, 4, scale=2.0, seed=4)
        matrix = lorentz_distance_matrix(points)
        np.fill_diagonal(matrix, 0.0)
        assert ratio_of_violation(matrix, max_triplets=1500) > 0.0

    def test_distance_matrix_matches_pairwise_calls(self):
        points = hyperbolic_points(6, 3, seed=5)
        matrix = lorentz_distance_matrix(points, beta=1.0)
        for i in range(6):
            for j in range(6):
                assert matrix[i, j] == pytest.approx(
                    float(lorentz_distance(points[i], points[j])), abs=1e-9)

    def test_distance_matrix_rectangular(self):
        a = hyperbolic_points(4, 3, seed=6)
        b = hyperbolic_points(7, 3, seed=7)
        assert lorentz_distance_matrix(a, b).shape == (4, 7)

    def test_symmetry(self):
        points = hyperbolic_points(8, 3, seed=8)
        matrix = lorentz_distance_matrix(points)
        np.testing.assert_allclose(matrix, matrix.T, atol=1e-10)

    def test_tensor_distance_matches_numpy(self):
        points = hyperbolic_points(5, 3, seed=9)
        for i in range(4):
            expected = float(lorentz_distance(points[i], points[i + 1]))
            actual = lorentz_distance_t(Tensor(points[i]), Tensor(points[i + 1])).item()
            assert actual == pytest.approx(expected, abs=1e-10)

    def test_tensor_distance_differentiable(self):
        a = Tensor(hyperbolic_points(1, 3, seed=10)[0], requires_grad=True)
        b = Tensor(hyperbolic_points(1, 3, seed=11)[0])
        lorentz_distance_t(a, b).backward()
        assert a.grad is not None
        assert np.isfinite(a.grad).all()


class TestHyperboloidMembership:
    def test_projected_points_are_members(self):
        rng = np.random.default_rng(12)
        x = rng.normal(size=(10, 4)) * 2
        assert is_on_hyperboloid(vanilla_projection(x, beta=1.0), beta=1.0).all()
        assert is_on_hyperboloid(cosh_projection(x, beta=1.0, c=4.0), beta=1.0).all()

    def test_non_members_detected(self):
        assert not is_on_hyperboloid(np.array([1.0, 5.0, 0.0]), beta=1.0)

    def test_wrong_sheet_detected(self):
        point = vanilla_projection(np.array([1.0, 1.0]), beta=1.0)
        flipped = point.copy()
        flipped[0] = -flipped[0]
        assert not is_on_hyperboloid(flipped, beta=1.0)
