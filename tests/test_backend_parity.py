"""Cross-backend parity suite: compiled (numba) kernels vs the numpy reference.

Without numba installed the compiled kernels run as plain Python through the
no-op ``njit`` stub — same arithmetic, same code paths — so this suite pins
the backend layer's contracts on every box:

* every measure agrees with the numpy reference (bitwise for the DP measures
  and Hausdorff; 1e-12 relative for the mean-based SSPD/TP, whose summation
  order differs) under every engine strategy;
* the ``thresholds=`` contract holds in the jitted loops: +inf and exact-tie
  thresholds never abandon, finite survivors are bit-identical, every ``+inf``
  is sound, and abandoning never computes *more* DP cells than numpy;
* the registry resolves engine argument → ``set_backend`` → environment →
  auto, falls back to numpy with a single warning when numba is missing, and
  the module-level import gate survives a blocked ``import numba``.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import numpy as np
import pytest

import repro.engine.backends as backends
from repro.engine import (
    CanonicalArrays,
    MatrixEngine,
    as_canonical_arrays,
    dp_cell_count,
    get_batch_kernel,
)
from repro.engine.backends import numba_kernels
from repro.distances.base import get_distance

MEASURES = ("dtw", "erp", "edr", "lcss", "frechet", "dita", "hausdorff", "sspd", "tp")

#: Measures whose compiled values must equal numpy bitwise; the rest (SSPD,
#: TP) differ only in ``np.mean`` pairwise-vs-sequential summation order.
BITWISE = frozenset({"dtw", "erp", "edr", "lcss", "frechet", "dita", "hausdorff"})

#: Measures whose compiled kernels abandon on a threshold (SSPD/TP accept and
#: validate ``thresholds=`` but always return exact distances).
ABANDONING = numba_kernels.THRESHOLD_MEASURES

MEASURE_KWARGS = {"edr": {"epsilon": 0.25}, "lcss": {"epsilon": 0.25}}
SPATIOTEMPORAL = {"dita", "tp"}


def _pair_lists(seed: int = 0):
    """Ragged pairs: single points, an exact duplicate, skewed lengths."""
    rng = np.random.default_rng(seed)
    lengths_a = [1, 1, 2, 3, 5, 9, 17, 21, 21]
    lengths_b = [1, 21, 2, 7, 5, 3, 17, 21, 1]
    list_a = [rng.uniform(0.0, 2.0, size=(n, 3)) for n in lengths_a]
    list_b = [rng.uniform(0.0, 2.0, size=(m, 3)) for m in lengths_b]
    list_b[4] = list_a[4].copy()  # exact duplicate → distance 0
    for points in list_a + list_b:
        points[:, 2] = np.sort(points[:, 2])
    return list_a, list_b


def _spatial(measure, trajectories):
    if measure in SPATIOTEMPORAL:
        return trajectories
    return [t[:, :2] for t in trajectories]


def _reference(measure, list_a, list_b, thresholds=None):
    """Numpy-side values: batch kernel when registered, else the reference loop."""
    kwargs = MEASURE_KWARGS.get(measure, {})
    batch = get_batch_kernel(measure)
    if batch is not None:
        if thresholds is not None:
            return np.asarray(batch(list_a, list_b, thresholds=thresholds, **kwargs))
        return np.asarray(batch(list_a, list_b, **kwargs))
    func = get_distance(measure)
    return np.array([func(a, b, **kwargs) for a, b in zip(list_a, list_b)])


def _assert_agree(measure, reference, compiled):
    if measure in BITWISE:
        np.testing.assert_array_equal(reference, compiled)
    else:
        np.testing.assert_allclose(reference, compiled, rtol=1e-12, atol=0)


@pytest.fixture
def numba_selectable(monkeypatch):
    """Pretend numba imported, so the registry lets tests pick the compiled
    backend (its kernels run as pure Python through the njit stub here)."""
    monkeypatch.setattr(numba_kernels, "NUMBA_AVAILABLE", True)
    yield


@pytest.fixture
def clean_registry(monkeypatch):
    """Isolate process-wide registry state (override + one-time warning)."""
    monkeypatch.setattr(backends, "_ACTIVE", None)
    monkeypatch.setattr(backends, "_FALLBACK_WARNED", False)
    monkeypatch.delenv(backends.BACKEND_ENV, raising=False)
    yield


# ---------------------------------------------------------- kernel parity

@pytest.mark.parametrize("measure", MEASURES)
def test_batch_kernel_matches_reference(measure):
    list_a, list_b = _pair_lists()
    pa, pb = _spatial(measure, list_a), _spatial(measure, list_b)
    kwargs = MEASURE_KWARGS.get(measure, {})
    reference = _reference(measure, pa, pb)
    compiled = np.asarray(numba_kernels.BATCH_KERNELS[measure](pa, pb, **kwargs))
    _assert_agree(measure, reference, compiled)


def test_banded_dtw_matches_reference():
    list_a, list_b = _pair_lists()
    pa, pb = _spatial("dtw", list_a), _spatial("dtw", list_b)
    for band in (0, 1, 3):
        reference = _reference("dtw", pa, pb, None)
        reference = np.asarray(get_batch_kernel("dtw")(pa, pb, band=band))
        compiled = np.asarray(numba_kernels.dtw_batch(pa, pb, band=band))
        np.testing.assert_array_equal(reference, compiled)


@pytest.mark.parametrize("measure", MEASURES)
def test_infinite_thresholds_are_a_noop(measure):
    list_a, list_b = _pair_lists()
    pa, pb = _spatial(measure, list_a), _spatial(measure, list_b)
    kwargs = MEASURE_KWARGS.get(measure, {})
    full = np.asarray(numba_kernels.BATCH_KERNELS[measure](pa, pb, **kwargs))
    inf = np.asarray(numba_kernels.BATCH_KERNELS[measure](
        pa, pb, thresholds=np.full(len(pa), np.inf), **kwargs))
    np.testing.assert_array_equal(full, inf)


@pytest.mark.parametrize("measure", sorted(ABANDONING))
def test_finite_thresholds_sound_and_survivors_exact(measure):
    list_a, list_b = _pair_lists()
    pa, pb = _spatial(measure, list_a), _spatial(measure, list_b)
    kwargs = MEASURE_KWARGS.get(measure, {})
    full = np.asarray(numba_kernels.BATCH_KERNELS[measure](pa, pb, **kwargs))
    taus = full * 0.6
    out = np.asarray(numba_kernels.BATCH_KERNELS[measure](
        pa, pb, thresholds=taus, **kwargs))
    finite = np.isfinite(out)
    # Survivors are the exact distance, bit for bit.
    np.testing.assert_array_equal(out[finite], full[finite])
    # Every +inf is sound: the true distance really exceeds that pair's τ.
    assert np.all(full[~finite] > taus[~finite])


@pytest.mark.parametrize("measure", sorted(ABANDONING))
def test_exact_tie_thresholds_never_abandon(measure):
    list_a, list_b = _pair_lists()
    pa, pb = _spatial(measure, list_a), _spatial(measure, list_b)
    kwargs = MEASURE_KWARGS.get(measure, {})
    full = np.asarray(numba_kernels.BATCH_KERNELS[measure](pa, pb, **kwargs))
    out = np.asarray(numba_kernels.BATCH_KERNELS[measure](
        pa, pb, thresholds=full.copy(), **kwargs))
    assert np.isfinite(out).all()
    np.testing.assert_array_equal(out, full)


@pytest.mark.parametrize("measure", ["dtw", "erp", "edr", "lcss", "frechet"])
def test_abandoning_cell_work_not_above_numpy(measure):
    """Row-wise compiled abandoning computes ≤ the numpy wavefront's cells."""
    list_a, list_b = _pair_lists()
    pa, pb = _spatial(measure, list_a), _spatial(measure, list_b)
    kwargs = MEASURE_KWARGS.get(measure, {})
    full = np.asarray(numba_kernels.BATCH_KERNELS[measure](pa, pb, **kwargs))
    taus = full * 0.3
    before = dp_cell_count()
    get_batch_kernel(measure)(pa, pb, thresholds=taus, **kwargs)
    numpy_cells = dp_cell_count() - before
    before = dp_cell_count()
    numba_kernels.BATCH_KERNELS[measure](pa, pb, thresholds=taus, **kwargs)
    numba_cells = dp_cell_count() - before
    assert numba_cells <= numpy_cells


# ------------------------------------------------- engine strategy threading

@pytest.mark.parametrize("strategy", ["serial", "chunked", "shared"])
@pytest.mark.parametrize("measure", MEASURES)
def test_engine_strategies_agree_across_backends(measure, strategy,
                                                 numba_selectable):
    list_a, list_b = _pair_lists()
    pa, pb = _spatial(measure, list_a), _spatial(measure, list_b)
    kwargs = MEASURE_KWARGS.get(measure, {})
    reference = MatrixEngine(strategy=strategy, cache=None,
                             backend="numpy").pairs(pa, pb, measure, **kwargs)
    compiled = MatrixEngine(strategy=strategy, cache=None,
                            backend="numba").pairs(pa, pb, measure, **kwargs)
    _assert_agree(measure, reference, compiled)


@pytest.mark.parametrize("strategy", ["serial", "chunked", "shared"])
def test_engine_thresholds_through_strategies(strategy, numba_selectable):
    list_a, list_b = _pair_lists()
    pa, pb = _spatial("dtw", list_a), _spatial("dtw", list_b)
    engine = MatrixEngine(strategy=strategy, cache=None, backend="numba")
    full = engine.pairs(pa, pb, "dtw")
    taus = np.asarray(full) * 0.6
    out = engine.pairs(pa, pb, "dtw", thresholds=taus)
    finite = np.isfinite(out)
    np.testing.assert_array_equal(np.asarray(out)[finite], np.asarray(full)[finite])
    assert np.all(np.asarray(full)[~finite] > taus[~finite])


def test_engine_pairwise_matrix_identical(numba_selectable):
    list_a, _ = _pair_lists()
    pa = _spatial("dtw", list_a)
    reference = MatrixEngine(cache=None, backend="numpy").pairwise(pa, "dtw")
    compiled = MatrixEngine(cache=None, backend="numba").pairwise(pa, "dtw")
    np.testing.assert_array_equal(reference, compiled)


def test_unknown_backend_name_fails_fast():
    with pytest.raises(KeyError):
        MatrixEngine(backend="cuda")


def test_explicit_numba_without_numba_raises(clean_registry):
    engine = MatrixEngine(cache=None, backend="numba")
    list_a, list_b = _pair_lists()
    with pytest.raises(RuntimeError, match="not available"):
        engine.pairs(_spatial("dtw", list_a), _spatial("dtw", list_b), "dtw")


# ------------------------------------------------------------ the registry

def test_resolution_order(clean_registry, monkeypatch, numba_selectable):
    # auto prefers numba when importable
    assert backends.resolve_backend().name == "numba"
    # env overrides auto
    monkeypatch.setenv(backends.BACKEND_ENV, "numpy")
    assert backends.resolve_backend().name == "numpy"
    # set_backend overrides env
    backends.set_backend("numba")
    assert backends.resolve_backend().name == "numba"
    # explicit spec overrides everything
    assert backends.resolve_backend("numpy").name == "numpy"
    backends.set_backend(None)
    assert backends.resolve_backend().name == "numpy"  # env again


def test_auto_falls_back_to_numpy_with_one_warning(clean_registry):
    with pytest.warns(RuntimeWarning, match="falling back to the numpy backend"):
        assert backends.resolve_backend().name == "numpy"
    # second resolution stays silent
    import warnings as _warnings

    with _warnings.catch_warnings():
        _warnings.simplefilter("error")
        assert backends.resolve_backend().name == "numpy"


def test_set_backend_rejects_unavailable(clean_registry):
    with pytest.raises(RuntimeError, match="not available"):
        backends.set_backend("numba")
    with pytest.raises(KeyError):
        backends.set_backend("tpu")


def test_nonstrict_resolution_degrades_to_numpy(clean_registry):
    with pytest.warns(RuntimeWarning):
        assert backends.resolve_backend("numba", strict=False).name == "numpy"


def test_backend_provenance_keys(clean_registry):
    import warnings as _warnings

    with _warnings.catch_warnings():
        _warnings.simplefilter("ignore")
        record = backends.backend_provenance()
    assert record["kernel_backend"] in ("numpy", "numba")
    assert isinstance(record["numba_version"], str)
    assert record["warmup_seconds"] >= 0.0


def test_register_backend_rejects_duplicates_and_auto():
    with pytest.raises(KeyError):
        backends.register_backend("numpy", backends.NumpyBackend)
    with pytest.raises(ValueError):
        backends.register_backend("auto", backends.NumpyBackend)


# ------------------------------------------------------ no-numba import gate

def test_module_imports_with_numba_blocked():
    """The kernels module must import (and work) when ``import numba`` fails."""

    class _Block:
        def find_spec(self, name, path=None, target=None):
            if name == "numba" or name.startswith("numba."):
                raise ImportError("numba blocked for test")
            return None

    blocker = _Block()
    sys.meta_path.insert(0, blocker)
    try:
        path = Path(numba_kernels.__file__)
        spec = importlib.util.spec_from_file_location(
            "repro.engine.backends._numba_kernels_blocked", path)
        fresh = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(fresh)
    finally:
        sys.meta_path.remove(blocker)
    assert fresh.NUMBA_AVAILABLE is False
    assert fresh.NUMBA_VERSION is None
    # The stubbed kernels still compute correct values.
    list_a, list_b = _pair_lists()
    pa, pb = _spatial("dtw", list_a), _spatial("dtw", list_b)
    np.testing.assert_array_equal(_reference("dtw", pa, pb),
                                  np.asarray(fresh.dtw_batch(pa, pb)))


# ------------------------------------------------- backend-aware kNN default

def test_default_abandon_measures_backend_aware(clean_registry, numba_selectable):
    from repro.search import (COMPILED_ABANDON_MEASURES, DEFAULT_ABANDON_MEASURES,
                              default_abandon_measures)

    # The module constants are stable (compat for callers that import them).
    assert "dtw" in DEFAULT_ABANDON_MEASURES
    assert "erp" not in DEFAULT_ABANDON_MEASURES
    assert {"erp", "edr", "lcss"} <= COMPILED_ABANDON_MEASURES
    assert default_abandon_measures(backends.resolve_backend("numpy")) \
        == DEFAULT_ABANDON_MEASURES
    assert default_abandon_measures(backends.resolve_backend("numba")) \
        == COMPILED_ABANDON_MEASURES
    # None resolves the active backend (numba via the fixture's auto).
    assert default_abandon_measures() == COMPILED_ABANDON_MEASURES


def test_knn_search_records_backend_and_stays_exact(numba_selectable):
    from repro.data import generate_dataset
    from repro.distances import knn_from_matrix
    from repro.search import TrajectoryIndex, knn_search

    dataset = generate_dataset("chengdu", size=24, seed=3)
    trajectories = dataset.point_arrays(spatial_only=True)
    engine = MatrixEngine(cache=None, backend="numba")
    matrix = engine.cross(trajectories[:4], trajectories, "erp")
    expected = knn_from_matrix(matrix, 5, exclude_self=True)
    index = TrajectoryIndex(trajectories)
    for query in range(4):
        result = knn_search(index, trajectories[query], 5, measure="erp",
                            engine=engine, exclude=query, batch_size=2)
        assert result.stats.kernel_backend == "numba"
        np.testing.assert_array_equal(result.indices, expected[query])
        np.testing.assert_array_equal(result.distances,
                                      matrix[query][result.indices])


def test_search_stats_merge_keeps_first_backend():
    from repro.search import SearchStats

    total = SearchStats()
    total.merge(SearchStats(kernel_backend="numba"))
    total.merge(SearchStats(kernel_backend="numpy"))
    assert total.kernel_backend == "numba"
    assert total.as_dict()["kernel_backend"] == "numba"


# -------------------------------------------------- canonical-array coercion

def test_as_canonical_arrays_no_copy_on_canonical_input():
    canonical = np.ascontiguousarray(np.random.default_rng(0).random((7, 2)))
    out = as_canonical_arrays([canonical])
    assert out[0] is canonical  # already C-contiguous float64 → same object
    again = as_canonical_arrays(out)
    assert again is out  # tagged collections pass through untouched


def test_as_canonical_arrays_coerces_noncontiguous():
    base = np.random.default_rng(0).random((8, 4))
    sliced = base[:, :2]  # non-contiguous view
    out = as_canonical_arrays([sliced, base.astype(np.float32)])
    for array in out:
        assert array.flags["C_CONTIGUOUS"]
        assert array.dtype == np.float64
    np.testing.assert_array_equal(out[0], sliced)
    assert isinstance(out, CanonicalArrays)
