"""Unit tests for the vanilla and cosh hyperbolic projections (Theorems 6-9)."""

import numpy as np
import pytest

from repro.core import (
    cosh_projection,
    cosh_projection_t,
    is_on_hyperboloid,
    lorentz_distance,
    norm_compression,
    project,
    project_t,
    projection_scalars,
    vanilla_projection,
    vanilla_projection_t,
)
from repro.nn import Tensor


class TestNormCompression:
    def test_c2_is_square_root(self):
        assert norm_compression(np.array(9.0), 2.0) == pytest.approx(3.0)

    def test_c4_is_fourth_root(self):
        assert norm_compression(np.array(16.0), 4.0) == pytest.approx(2.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            norm_compression(np.array(1.0), 0.0)


class TestVanillaProjection:
    def test_adds_one_dimension(self):
        assert vanilla_projection(np.zeros((3, 4))).shape == (3, 5)

    def test_preserves_spatial_coordinates(self):
        x = np.array([1.0, -2.0, 0.5])
        np.testing.assert_allclose(vanilla_projection(x)[1:], x)

    def test_membership_for_any_beta(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(10, 3)) * 3
        for beta in (0.25, 1.0, 4.0):
            assert is_on_hyperboloid(vanilla_projection(x, beta=beta), beta=beta).all()

    def test_beta_validation(self):
        with pytest.raises(ValueError):
            vanilla_projection(np.ones(3), beta=0.0)

    def test_theorem6_distance_degrades_with_norm(self):
        """Collinear pairs at fixed Euclidean gap: the vanilla Lorentz distance
        collapses toward zero as the pair moves away from the origin (Theorem 6)."""
        gap = 1.0
        distances = []
        for offset in (0.0, 5.0, 50.0, 500.0):
            a = vanilla_projection(np.array([offset]))
            b = vanilla_projection(np.array([offset + gap]))
            distances.append(float(lorentz_distance(a, b)))
        assert distances[0] > distances[1] > distances[2] > distances[3]
        assert distances[-1] == pytest.approx(0.0, abs=1e-3)


class TestCoshProjection:
    def test_adds_one_dimension(self):
        assert cosh_projection(np.zeros((3, 4))).shape == (3, 5)

    def test_membership_independent_of_c(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(8, 3)) * 2
        for c in (1.0, 2.0, 4.0, 8.0):
            projected = cosh_projection(x, beta=1.0, c=c)
            assert is_on_hyperboloid(projected, beta=1.0).all()

    def test_membership_for_any_beta(self):
        rng = np.random.default_rng(2)
        x = rng.normal(size=(8, 3))
        for beta in (0.5, 1.0, 2.0):
            assert is_on_hyperboloid(cosh_projection(x, beta=beta), beta=beta).all()

    def test_zero_vector_maps_to_apex(self):
        projected = cosh_projection(np.zeros(4), beta=1.0)
        np.testing.assert_allclose(projected, [1.0, 0.0, 0.0, 0.0, 0.0], atol=1e-9)

    def test_theorem7_one_dimensional_distance(self):
        """For 1-D inputs with c = 2 the Lorentz distance is beta*(cosh(|a-b|) - 1)."""
        a_value, b_value = 1.3, 2.9
        a = cosh_projection(np.array([a_value]), beta=1.0, c=2.0)
        b = cosh_projection(np.array([b_value]), beta=1.0, c=2.0)
        expected = np.cosh(b_value - a_value) - 1.0
        assert float(lorentz_distance(a, b)) == pytest.approx(expected, rel=1e-9)

    def test_theorem7_depends_only_on_difference(self):
        # Shifts stay moderate so the analytic identity is not drowned by the
        # floating-point cancellation inherent to cosh products of huge arguments.
        for shift in (0.0, 3.0, 8.0):
            a = cosh_projection(np.array([shift]), beta=1.0, c=2.0)
            b = cosh_projection(np.array([shift + 1.0]), beta=1.0, c=2.0)
            assert float(lorentz_distance(a, b)) == pytest.approx(np.cosh(1.0) - 1.0, rel=1e-5)

    def test_non_diminishing_vs_vanilla(self):
        """Theorems 7-9: for distant collinear pairs the cosh projection keeps the
        distance while the vanilla projection collapses it."""
        a = np.array([6.0, 0.0])
        b = np.array([7.0, 0.0])
        vanilla = float(lorentz_distance(vanilla_projection(a), vanilla_projection(b)))
        cosh = float(lorentz_distance(cosh_projection(a, c=2.0), cosh_projection(b, c=2.0)))
        assert cosh > vanilla
        assert cosh > np.cosh(1.0) - 1.0 - 1e-6

    def test_compression_reduces_magnitudes(self):
        x = np.array([4.0, 3.0])
        strong = cosh_projection(x, c=8.0)[0]
        weak = cosh_projection(x, c=2.0)[0]
        assert strong < weak

    def test_validation(self):
        with pytest.raises(ValueError):
            cosh_projection(np.ones(3), beta=-1.0)
        with pytest.raises(ValueError):
            cosh_projection_t(Tensor(np.ones(3)), c=0.0)


class TestDispatchAndScalars:
    def test_project_dispatch(self):
        x = np.random.default_rng(3).normal(size=(4, 3))
        np.testing.assert_allclose(project(x, method="vanilla"), vanilla_projection(x))
        np.testing.assert_allclose(project(x, method="cosh", c=4.0),
                                   cosh_projection(x, c=4.0))

    def test_project_unknown_method(self):
        with pytest.raises(ValueError):
            project(np.ones(3), method="poincare")
        with pytest.raises(ValueError):
            project_t(Tensor(np.ones(3)), method="poincare")

    @pytest.mark.parametrize("method", ["vanilla", "cosh"])
    def test_projection_scalars_consistent_with_full_projection(self, method):
        rng = np.random.default_rng(4)
        x = rng.normal(size=(6, 4))
        time_like, scale = projection_scalars(x, beta=1.0, c=4.0, method=method)
        full = project(x, beta=1.0, c=4.0, method=method)
        np.testing.assert_allclose(time_like, full[:, 0], atol=1e-9)
        np.testing.assert_allclose(scale[:, None] * x, full[:, 1:], atol=1e-9)

    def test_projection_scalars_unknown_method(self):
        with pytest.raises(ValueError):
            projection_scalars(np.ones((2, 3)), method="poincare")


class TestDifferentiableProjections:
    def test_vanilla_tensor_matches_numpy(self):
        x = np.random.default_rng(5).normal(size=(3, 4))
        np.testing.assert_allclose(vanilla_projection_t(Tensor(x)).data,
                                   vanilla_projection(x), atol=1e-9)

    def test_cosh_tensor_matches_numpy(self):
        x = np.random.default_rng(6).normal(size=(3, 4))
        np.testing.assert_allclose(cosh_projection_t(Tensor(x), c=4.0).data,
                                   cosh_projection(x, c=4.0), atol=1e-6)

    @pytest.mark.parametrize("project_fn", [vanilla_projection_t, cosh_projection_t])
    def test_gradients_flow_and_are_finite(self, project_fn):
        x = Tensor(np.random.default_rng(7).normal(size=5), requires_grad=True)
        project_fn(x).sum().backward()
        assert x.grad is not None
        assert np.isfinite(x.grad).all()

    def test_cosh_gradient_finite_near_zero(self):
        x = Tensor(np.full(4, 1e-8), requires_grad=True)
        cosh_projection_t(x).sum().backward()
        assert np.isfinite(x.grad).all()
