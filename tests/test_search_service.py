"""SearchService micro-batching/caching, embedding ANN and the latency probe."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import generate_dataset
from repro.distances import cross_distance_matrix, knn_from_matrix
from repro.eval import search_latency
from repro.search import (
    DEFAULT_BATCH_SIZE,
    IVFEmbeddingIndex,
    SearchService,
    TrajectoryIndex,
    embedding_topk,
    knn_search,
    recall_at_k,
)


@pytest.fixture(scope="module")
def spatial():
    dataset = generate_dataset("porto", size=25, seed=4)
    return dataset.point_arrays(spatial_only=True)


# ------------------------------------------------------------------- the service
def test_service_results_match_direct_knn_search(spatial):
    service = SearchService(spatial, measure="dtw", k=5)
    direct = knn_search(service.index, spatial[2], 5, measure="dtw", exclude=2)
    served = service.search(spatial[2], exclude=2)
    np.testing.assert_array_equal(served.indices, direct.indices)
    np.testing.assert_allclose(served.distances, direct.distances)


def test_service_search_many_matches_matrix_ground_truth(spatial):
    service = SearchService(spatial, measure="hausdorff", k=4)
    results = service.search_many(spatial[:6], exclude_self=True)
    matrix = cross_distance_matrix(spatial[:6], spatial, "hausdorff")
    expected = knn_from_matrix(matrix, 4, exclude_self=True)
    for row, result in enumerate(results):
        np.testing.assert_array_equal(result.indices, expected[row])


def test_service_micro_batches_and_pending_handles(spatial):
    service = SearchService(spatial, measure="dtw", k=3, batch_size=3)
    handles = [service.submit(spatial[i], exclude=i) for i in range(3)]
    # The third submit hit batch_size and flushed the whole batch.
    assert all(handle.done for handle in handles)
    assert service.batches_flushed == 1
    late = service.submit(spatial[3], exclude=3)
    assert not late.done
    assert len(late.result()) == 3  # resolving a pending handle flushes
    assert late.done
    assert service.batches_flushed == 2
    assert service.flush() == 0  # idle flush is a no-op


def test_service_failing_query_does_not_orphan_its_batch(spatial):
    service = SearchService(spatial, measure="dtw", k=3, batch_size=4)
    good = service.submit(spatial[0], exclude=0)
    bad = service.submit(spatial[1], k=10 ** 9)  # k exceeds the database
    assert len(good.result()) == 3  # resolving flushes; the bad query can't break it
    assert bad.done
    with pytest.raises(ValueError):
        bad.result()
    # Later traffic is unaffected.
    assert len(service.search(spatial[2], exclude=2)) == 3


def test_service_caches_repeated_queries(spatial):
    service = SearchService(spatial, measure="dtw", k=4)
    first = service.search(spatial[0], exclude=0)
    refined_after_first = service.stats()["num_refined"]
    second = service.search(spatial[0], exclude=0)
    stats = service.stats()
    assert stats["cache_hits"] == 1
    assert stats["num_refined"] == refined_after_first  # no extra engine work
    np.testing.assert_array_equal(first.indices, second.indices)
    # Different k or exclusion must miss the cache.
    service.search(spatial[0], k=2, exclude=0)
    assert service.stats()["cache_hits"] == 1


def test_service_batch_size_env_toggle(spatial, monkeypatch):
    monkeypatch.setenv("REPRO_SEARCH_BATCH_SIZE", "2")
    assert SearchService(spatial).batch_size == 2
    monkeypatch.delenv("REPRO_SEARCH_BATCH_SIZE")
    assert SearchService(spatial).batch_size == DEFAULT_BATCH_SIZE
    assert SearchService(spatial, batch_size=7).batch_size == 7
    with pytest.raises(ValueError):
        SearchService(spatial, batch_size=0)


def test_service_stats_shape(spatial):
    service = SearchService(spatial, measure="dtw", k=3)
    service.search_many(spatial[:4], exclude_self=True)
    stats = service.stats()
    assert stats["queries_served"] == 4
    assert stats["database_size"] == len(spatial)
    assert stats["num_candidates"] == 4 * (len(spatial) - 1)
    assert stats["num_refined"] + stats["num_pruned"] == stats["num_candidates"]
    assert stats["total_latency_seconds"] >= stats["mean_latency_seconds"] >= 0.0


def test_service_accepts_prebuilt_index_and_reports_repr(spatial):
    index = TrajectoryIndex(spatial)
    service = SearchService(index, measure="sspd", k=2)
    assert service.index is index
    assert "sspd" in repr(service)


# ------------------------------------------------------------------ embedding ANN
def test_embedding_topk_matches_knn_from_matrix():
    rng = np.random.default_rng(0)
    database = rng.normal(size=(40, 8))
    queries = rng.normal(size=(6, 8))
    indices, distances = embedding_topk(queries, database, k=5)
    from repro.eval import euclidean_distance_matrix

    matrix = euclidean_distance_matrix(queries, database)
    np.testing.assert_array_equal(indices, knn_from_matrix(matrix, 5))
    assert np.all(np.diff(distances, axis=1) >= -1e-12)
    with pytest.raises(ValueError):
        embedding_topk(queries, database, k=0)
    with pytest.raises(ValueError):
        embedding_topk(queries, database, k=41)


def test_ivf_index_recall_improves_with_nprobe():
    rng = np.random.default_rng(1)
    centers = rng.normal(scale=5.0, size=(6, 8))
    database = np.concatenate([center + rng.normal(scale=0.3, size=(30, 8))
                               for center in centers])
    queries = database[::17] + rng.normal(scale=0.05, size=(database[::17].shape))
    exact_indices, _ = embedding_topk(queries, database, k=10)
    ivf = IVFEmbeddingIndex(database, num_lists=6, seed=0)
    low, _ = ivf.search(queries, k=10, nprobe=1)
    high, _ = ivf.search(queries, k=10, nprobe=6)
    assert recall_at_k(high, exact_indices) >= recall_at_k(low, exact_indices)
    # Probing every list degenerates to the exact scan.
    assert recall_at_k(high, exact_indices) == pytest.approx(1.0)


def test_ivf_index_always_fills_k():
    rng = np.random.default_rng(2)
    database = rng.normal(size=(12, 4))
    ivf = IVFEmbeddingIndex(database, num_lists=6, seed=3)
    indices, distances = ivf.search(database[:3], k=10, nprobe=1)
    assert indices.shape == (3, 10)
    assert np.all(indices >= 0)
    assert np.all(np.diff(distances, axis=1) >= -1e-12)
    with pytest.raises(ValueError):
        ivf.search(database[:1], k=13)
    with pytest.raises(ValueError):
        ivf.search(database[:1], k=1, nprobe=0)
    with pytest.raises(ValueError):
        IVFEmbeddingIndex(np.zeros((0, 3)))


def test_recall_at_k_validates_shapes():
    with pytest.raises(ValueError):
        recall_at_k(np.zeros((2, 3)), np.zeros((2, 4)))
    assert recall_at_k(np.array([[1, 2]]), np.array([[2, 3]])) == pytest.approx(0.5)


# ----------------------------------------------------------- result-key hygiene
def test_result_cache_distinguishes_truncated_exclude_reprs(spatial):
    """Regression: ``repr`` of a large exclusion array truncates with "...",
    so two different exclusion sets used to collide to one cache key and the
    second query was served the first query's neighbours."""
    service = SearchService(spatial, measure="dtw", k=5)
    nearest = service.search(spatial[0]).indices  # includes self at rank 0
    base = np.full(2000, 9999)
    first = base.copy()
    first[997] = nearest[1]
    second = base.copy()
    second[997] = nearest[2]
    assert repr(first) == repr(second)  # the collision the old key was built on
    result_a = service.search(spatial[0], exclude=first)
    result_b = service.search(spatial[0], exclude=second)
    assert service.stats()["cache_hits"] == 0
    assert nearest[1] not in result_a.indices and nearest[2] in result_a.indices
    assert nearest[2] not in result_b.indices and nearest[1] in result_b.indices


def test_result_cache_canonicalizes_equivalent_excludes(spatial):
    """[1, 2] and array([2, 1]) are the same exclusion set: one key, one miss."""
    service = SearchService(spatial, measure="dtw", k=5)
    first = service.search(spatial[0], exclude=[1, 2])
    second = service.search(spatial[0], exclude=np.array([2, 1]))
    assert service.stats()["cache_hits"] == 1
    np.testing.assert_array_equal(first.indices, second.indices)


# ------------------------------------------------------------- live-index mutation
def test_service_mutation_invalidates_result_cache(spatial):
    service = SearchService(spatial[:20], measure="dtw", k=4)
    before = service.search(spatial[0], exclude=0)
    service.insert(spatial[20:])
    assert service.index.generation == 1
    after = service.search(spatial[0], exclude=0)
    # Same query, mutated database: must re-run, never hit the stale entry.
    assert service.stats()["cache_hits"] == 0
    assert service.snapshot()["counters"]["service.index_invalidations"] == 1
    fresh = SearchService(spatial, measure="dtw", k=4)
    expected = fresh.search(spatial[0], exclude=0)
    np.testing.assert_array_equal(after.indices, expected.indices)
    np.testing.assert_array_equal(after.distances, expected.distances)
    assert len(before.indices) == 4


def test_service_evict_renumbers_and_matches_fresh_service(spatial):
    service = SearchService(spatial, measure="dtw", k=4)
    service.search(spatial[0], exclude=0)
    assert service.evict([1, 5]) == 2
    survivors = [points for i, points in enumerate(spatial) if i not in (1, 5)]
    fresh = SearchService(survivors, measure="dtw", k=4)
    served = service.search(survivors[0], exclude=0)
    expected = fresh.search(survivors[0], exclude=0)
    np.testing.assert_array_equal(served.indices, expected.indices)
    np.testing.assert_array_equal(served.distances, expected.distances)


def test_service_insert_resolves_pending_against_old_database(spatial):
    service = SearchService(spatial[:20], measure="dtw", k=3, batch_size=50)
    handle = service.submit(spatial[0], exclude=0)
    service.insert(spatial[20:])  # flushes the pending query first
    assert handle.done
    assert np.all(handle.result().indices < 20)  # answered pre-mutation


def test_service_close_is_idempotent_and_leak_free(spatial):
    from repro.engine import live_arena_names
    from repro.engine.arena_cache import reset_arena_cache

    # Earlier suites may legitimately leave unpinned arenas resident in the
    # process-wide LRU cache; start from a clean slate so the emptiness
    # assertion measures this service's lifecycle alone.
    reset_arena_cache()
    with SearchService(spatial, measure="dtw", k=3) as service:
        service.search(spatial[0], exclude=0)
    service.close()  # second close is a no-op
    assert live_arena_names() == frozenset()


# ------------------------------------------------------------------- eval probe
def test_search_latency_probe(spatial):
    report = search_latency(spatial, spatial[:3], k=3, measure="dtw", repeats=1,
                            exclude_self=True)
    assert report["num_queries"] == 3
    assert report["database_size"] == len(spatial)
    assert report["latency_seconds"] > 0.0
    assert report["num_refined"] + report["num_pruned"] == report["num_candidates"]
    assert 0.0 <= report["pruned_fraction"] <= 1.0


# --------------------------------------------------------------- result-cache TTL
def _expired_count(service):
    return service.registry.snapshot()["counters"].get("service.cache_expired", 0)


def test_result_cache_ttl_expires_lazily(spatial):
    service = SearchService(spatial, measure="dtw", k=3, cache_ttl=10.0)
    now = [0.0]
    service._clock = lambda: now[0]
    first = service.search(spatial[1], exclude=1)
    hits = service.cache_hits
    now[0] = 9.0  # still fresh: served from cache
    cached = service.search(spatial[1], exclude=1)
    np.testing.assert_array_equal(cached.indices, first.indices)
    assert service.cache_hits == hits + 1
    now[0] = 20.1  # past the TTL: lazily dropped on lookup, recomputed
    again = service.search(spatial[1], exclude=1)
    np.testing.assert_array_equal(again.indices, first.indices)
    np.testing.assert_allclose(again.distances, first.distances)
    assert service.cache_hits == hits + 1  # the expired entry did not count as a hit
    assert _expired_count(service) >= 1
    service.close()


def test_result_cache_ttl_sweeps_stale_entries_on_put(spatial):
    service = SearchService(spatial, measure="dtw", k=3, cache_ttl=5.0)
    now = [0.0]
    service._clock = lambda: now[0]
    service.search(spatial[1], exclude=1)
    service.search(spatial[2], exclude=2)
    assert len(service._cache) == 2
    now[0] = 6.0  # both stale; the next put sweeps them from the LRU front
    service.search(spatial[3], exclude=3)
    assert len(service._cache) == 1
    assert _expired_count(service) >= 2
    service.close()


def test_result_cache_without_ttl_never_expires(spatial):
    service = SearchService(spatial, measure="dtw", k=3)
    assert service.cache_ttl is None
    now = [0.0]
    service._clock = lambda: now[0]
    first = service.search(spatial[1], exclude=1)
    hits = service.cache_hits
    now[0] = 1e9
    late = service.search(spatial[1], exclude=1)
    np.testing.assert_array_equal(late.indices, first.indices)
    assert service.cache_hits == hits + 1
    assert _expired_count(service) == 0
    service.close()


def test_result_cache_ttl_env_fallback(spatial, monkeypatch):
    from repro.search import CACHE_TTL_ENV

    monkeypatch.setenv(CACHE_TTL_ENV, "7.5")
    service = SearchService(spatial[:5], measure="dtw", k=2)
    assert service.cache_ttl == 7.5
    service.close()
    monkeypatch.setenv(CACHE_TTL_ENV, "0")  # non-positive disables expiry
    service = SearchService(spatial[:5], measure="dtw", k=2)
    assert service.cache_ttl is None
    service.close()
    # An explicit argument beats the environment.
    service = SearchService(spatial[:5], measure="dtw", k=2, cache_ttl=3.0)
    assert service.cache_ttl == 3.0
    service.close()
