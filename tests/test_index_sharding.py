"""Sharded, mutable TrajectoryIndex: parity with the monolithic semantics.

Two families of guarantees.  *Query parity*: ``lower_bounds``,
``cell_candidates`` and ``range_query`` fan out across shards but must produce
exactly the values a naive single-pass implementation produces.  *Mutation
parity*: an index reached through ``insert``/``evict`` must be
indistinguishable — fingerprint, query results, ``knn_search`` output — from an
index built fresh over the same content, while the generation counter makes the
mutated index impossible to confuse with its past self.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import BoundingBox, generate_dataset
from repro.engine import MatrixEngine
from repro.obs import counter
from repro.search import TrajectoryIndex, knn_search
from repro.search.bounds import TrajectorySummary, get_lower_bound

MEASURES = ["dtw", "hausdorff", "sspd"]


@pytest.fixture(scope="module")
def spatial():
    dataset = generate_dataset("chengdu", size=40, seed=3)
    return dataset.point_arrays(spatial_only=True)


def reference_lower_bounds(index, query, measure):
    bound = get_lower_bound(measure)
    query_summary = TrajectorySummary.of(query)
    return np.array([bound(query, index.arrays[i], summary=index.summaries[i],
                           query_summary=query_summary)
                     for i in range(len(index))])


def reference_cell_candidates(index, query, include_all):
    """The pre-sharding algorithm: one Python loop accumulating overlaps."""
    query_cells = set(index._tokens(np.asarray(query, dtype=np.float64)))
    overlap = np.zeros(len(index), dtype=np.int64)
    for trajectory_id in range(len(index)):
        cells = set(index._tokens(index.arrays[trajectory_id]))
        overlap[trajectory_id] = len(cells & query_cells)
    order = np.argsort(-overlap, kind="stable")
    return order if include_all else order[overlap[order] > 0]


def reference_range_query(index, box):
    hits = [i for i, s in enumerate(index.summaries)
            if (s.mins[0] <= box.max_lon and s.maxs[0] >= box.min_lon
                and s.mins[1] <= box.max_lat and s.maxs[1] >= box.min_lat)]
    return np.asarray(hits, dtype=np.int64)


class TestQueryParity:
    @pytest.mark.parametrize("measure", MEASURES)
    def test_lower_bounds_match_per_pair_loop(self, spatial, measure):
        index = TrajectoryIndex(spatial, shard_columns=4, shard_rows=4)
        assert index.num_shards > 1  # otherwise the fan-out is vacuous
        for query in spatial[:3]:
            np.testing.assert_allclose(index.lower_bounds(query, measure),
                                       reference_lower_bounds(index, query, measure),
                                       rtol=0, atol=1e-12)

    def test_lower_bounds_banded_dtw_matches_loop(self, spatial):
        index = TrajectoryIndex(spatial)
        query = spatial[0]
        got = index.lower_bounds(query, "dtw", band=0.2)
        bound = get_lower_bound("dtw")
        query_summary = TrajectorySummary.of(query)
        expected = [bound(query, index.arrays[i], summary=index.summaries[i],
                          query_summary=query_summary, band=0.2)
                    for i in range(len(index))]
        np.testing.assert_allclose(got, expected, rtol=0, atol=1e-12)

    @pytest.mark.parametrize("spatial_index", ["grid", "quadtree"])
    @pytest.mark.parametrize("include_all", [False, True])
    def test_cell_candidates_match_loop(self, spatial, spatial_index, include_all):
        index = TrajectoryIndex(spatial, spatial_index=spatial_index)
        for query in spatial[:3]:
            np.testing.assert_array_equal(
                index.cell_candidates(query, include_all=include_all),
                reference_cell_candidates(index, query, include_all))

    def test_range_query_matches_loop_and_skips_far_shards(self, spatial):
        index = TrajectoryIndex(spatial, shard_columns=4, shard_rows=4)
        box = index.bounding_box
        mid_lon = (box.min_lon + box.max_lon) / 2
        mid_lat = (box.min_lat + box.max_lat) / 2
        queries = [
            BoundingBox(box.min_lon, box.min_lat, mid_lon, mid_lat),  # one quadrant
            BoundingBox(mid_lon, mid_lat, box.max_lon, box.max_lat),
            box,                                                      # everything
            BoundingBox(box.max_lon + 1, box.max_lat + 1,
                        box.max_lon + 2, box.max_lat + 2),            # nothing
        ]
        skipped = counter("index.range_shards_skipped")
        before = skipped.value
        for query_box in queries:
            np.testing.assert_array_equal(index.range_query(query_box),
                                          reference_range_query(index, query_box))
        assert skipped.value > before  # the corner boxes pruned whole shards

    def test_shard_stats_cover_every_member(self, spatial):
        index = TrajectoryIndex(spatial, shard_columns=4, shard_rows=4)
        stats = index.shard_stats()
        assert sum(entry["size"] for entry in stats) == len(index)
        assert len({entry["key"] for entry in stats}) == index.num_shards


class TestMutationParity:
    def test_insert_matches_fresh_build(self, spatial):
        index = TrajectoryIndex(spatial[:30])
        new_ids = index.insert(spatial[30:])
        np.testing.assert_array_equal(new_ids, np.arange(30, 40))
        fresh = TrajectoryIndex(spatial)
        assert index.fingerprint == fresh.fingerprint
        assert index.generation == 1
        engine = MatrixEngine(cache=None)
        for query_id in (0, 35):
            mutated = knn_search(index, spatial[query_id], 5, engine=engine,
                                 exclude=query_id)
            rebuilt = knn_search(fresh, spatial[query_id], 5, engine=engine,
                                 exclude=query_id)
            np.testing.assert_array_equal(mutated.indices, rebuilt.indices)
            np.testing.assert_array_equal(mutated.distances, rebuilt.distances)

    def test_evict_matches_fresh_build_and_renumbers(self, spatial):
        index = TrajectoryIndex(spatial)
        removed = index.evict([0, 7, 39])
        assert removed == 3 and len(index) == 37
        survivors = [points for i, points in enumerate(spatial)
                     if i not in (0, 7, 39)]
        fresh = TrajectoryIndex(survivors)
        assert index.fingerprint == fresh.fingerprint
        # Dense renumbering: old id 8 is new id 6 (two lower ids evicted).
        np.testing.assert_array_equal(index.arrays[6], spatial[8])
        engine = MatrixEngine(cache=None)
        mutated = knn_search(index, survivors[3], 5, engine=engine, exclude=3)
        rebuilt = knn_search(fresh, survivors[3], 5, engine=engine, exclude=3)
        np.testing.assert_array_equal(mutated.indices, rebuilt.indices)
        np.testing.assert_array_equal(mutated.distances, rebuilt.distances)

    def test_insert_evict_roundtrip_restores_fingerprint(self, spatial):
        index = TrajectoryIndex(spatial[:20])
        original = index.fingerprint
        ids = index.insert(spatial[20:25])
        assert index.fingerprint != original
        index.evict(ids)
        assert index.fingerprint == original
        assert index.generation == 2  # content round-tripped, history did not

    def test_queries_cover_inserted_members(self, spatial):
        index = TrajectoryIndex(spatial[:30], shard_columns=4, shard_rows=4)
        index.lower_bounds(spatial[0], "dtw")  # build the lazies, then mutate
        index.cell_candidates(spatial[0], include_all=True)
        index.insert(spatial[30:])
        query = spatial[35]
        bounds = index.lower_bounds(query, "dtw")
        assert bounds.shape == (40,)
        np.testing.assert_allclose(bounds,
                                   reference_lower_bounds(index, query, "dtw"),
                                   rtol=0, atol=1e-12)
        candidates = index.cell_candidates(query, include_all=True)
        np.testing.assert_array_equal(np.sort(candidates), np.arange(40))
        np.testing.assert_array_equal(
            index.range_query(index.bounding_box), np.arange(40))

    @pytest.mark.parametrize("spatial_index", ["grid", "quadtree"])
    def test_cell_candidates_after_mutation(self, spatial, spatial_index):
        """The quadtree tokeniser is structure-dependent: a mutation rebuilds it
        and every shard's inverted cells; results must still match the loop."""
        index = TrajectoryIndex(spatial[:30], spatial_index=spatial_index)
        index.cell_candidates(spatial[0])  # force-build pre-mutation cells
        index.insert(spatial[30:])
        index.evict([2, 11])
        for query in spatial[:2]:
            np.testing.assert_array_equal(
                index.cell_candidates(query, include_all=True),
                reference_cell_candidates(index, query, True))

    def test_fingerprint_memoized_per_generation(self, spatial):
        index = TrajectoryIndex(spatial[:10])
        assert index.fingerprint is index.fingerprint  # same generation: cached
        before = index.fingerprint
        index.insert(spatial[10:12])
        assert index.fingerprint != before

    def test_evict_validation(self, spatial):
        index = TrajectoryIndex(spatial[:10])
        with pytest.raises(IndexError):
            index.evict([10])
        with pytest.raises(IndexError):
            index.evict([-1])
        with pytest.raises(ValueError):
            index.evict(np.arange(10))
        assert index.evict([]) == 0
        assert index.generation == 0  # rejected/empty mutations leave no trace

    def test_empty_insert_is_a_no_op(self, spatial):
        index = TrajectoryIndex(spatial[:10])
        ids = index.insert([])
        assert ids.size == 0 and index.generation == 0


class TestUpdate:
    def test_update_matches_fresh_build(self, spatial):
        index = TrajectoryIndex(spatial[:20], shard_columns=4, shard_rows=4)
        index.lower_bounds(spatial[0], "dtw")  # build the lazies, then mutate
        replacements = {3: spatial[25], 7: spatial[30], 15: spatial[35]}
        index.update(list(replacements), list(replacements.values()))
        contents = list(spatial[:20])
        for trajectory_id, points in replacements.items():
            contents[trajectory_id] = points
        fresh = TrajectoryIndex(contents, shard_columns=4, shard_rows=4)
        assert index.fingerprint == fresh.fingerprint
        query = spatial[21]
        np.testing.assert_allclose(index.lower_bounds(query, "dtw"),
                                   fresh.lower_bounds(query, "dtw"),
                                   rtol=0, atol=0)
        box = BoundingBox(0.2, 0.2, 1.4, 1.4)
        np.testing.assert_array_equal(index.range_query(box),
                                      fresh.range_query(box))
        np.testing.assert_array_equal(
            np.sort(index.cell_candidates(query, include_all=True)),
            np.arange(20))

    def test_update_is_one_generation_bump(self, spatial):
        """The whole batch — including shard migrations — costs one bump."""
        index = TrajectoryIndex(spatial[:20], shard_columns=4, shard_rows=4)
        generation = index.generation
        # Replace with far-apart contents so at least one centroid migrates.
        index.update([0, 1, 2], [spatial[30], spatial[31], spatial[32]])
        assert index.generation == generation + 1

    def test_update_validation(self, spatial):
        index = TrajectoryIndex(spatial[:10])
        with pytest.raises(ValueError):
            index.update([0, 1], [spatial[10]])
        with pytest.raises(ValueError):
            index.update([2, 2], [spatial[10], spatial[11]])
        with pytest.raises(IndexError):
            index.update([10], [spatial[10]])
        with pytest.raises(IndexError):
            index.update([-1], [spatial[10]])
        index.update([], [])
        assert index.generation == 0  # rejected/empty updates leave no trace
