"""StreamMonitor continuous top-k, alert semantics and the streaming workload."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.data import BoundingBox, generate_stream_workload
from repro.engine import StreamingEngine, get_batch_kernel
from repro.obs import snapshot
from repro.obs.export import set_jsonl_path
from repro.search import StreamAlert, StreamMonitor


def _walks(rng, count, length, origin_scale=1.0):
    origins = rng.uniform(-origin_scale, origin_scale, size=(count, 2))
    steps = rng.normal(scale=0.05, size=(count, length, 2))
    return [np.cumsum(steps[i], axis=0) + origins[i] for i in range(count)]


def _brute_topk(windows, pattern, region, measure, k, **kwargs):
    batch = get_batch_kernel(measure)
    ranked = []
    for trajectory_id, window in enumerate(windows):
        mins, maxs = window.min(axis=0), window.max(axis=0)
        if (mins[0] > region.max_lon or maxs[0] < region.min_lon
                or mins[1] > region.max_lat or maxs[1] < region.min_lat):
            continue
        distance = float(np.asarray(batch([pattern], [window], **kwargs))[0])
        ranked.append((distance, trajectory_id))
    return sorted(ranked)[:k]


REGION = BoundingBox(-0.8, -0.8, 0.8, 0.8)


@pytest.mark.parametrize("measure,kwargs", [("dtw", {}), ("lcss", {"epsilon": 0.3}),
                                            ("edr", {"epsilon": 0.3})])
def test_monitor_topk_matches_brute_force(measure, kwargs):
    rng = np.random.default_rng(5)
    windows = _walks(rng, 18, 10)
    pattern = np.cumsum(rng.normal(scale=0.05, size=(8, 2)), axis=0)
    monitor = StreamMonitor([w.copy() for w in windows], pattern, REGION,
                            measure=measure, k=3, **kwargs)
    for _ in range(8):
        appends, evicts = {}, {}
        for trajectory_id in rng.choice(18, size=5, replace=False).tolist():
            if rng.random() < 0.25 and len(windows[trajectory_id]) > 3:
                count = min(2, len(windows[trajectory_id]) - 1)
                evicts[trajectory_id] = count
                windows[trajectory_id] = windows[trajectory_id][count:]
            else:
                points = (windows[trajectory_id][-1]
                          + np.cumsum(rng.normal(scale=0.05, size=(2, 2)), axis=0))
                appends[trajectory_id] = points
                windows[trajectory_id] = np.concatenate(
                    [windows[trajectory_id], points])
        monitor.tick(appends, evicts)
        expected = _brute_topk(windows, pattern, REGION, measure, 3, **kwargs)
        got = [(distance, trajectory_id)
               for trajectory_id, distance in monitor.topk()]
        assert got == expected  # exact distances, exact membership, exact order


def test_monitor_alerts_track_membership_changes(tmp_path):
    # Three streams: one hugs the pattern inside the region, one sits inside
    # but far, one lives outside.  k=1 makes membership deterministic.
    pattern = np.array([[0.0, 0.0], [0.1, 0.0], [0.2, 0.0]])
    near = pattern + 0.01
    far = np.array([[0.5, 0.5], [0.6, 0.5], [0.7, 0.5]])
    outside = np.array([[5.0, 5.0], [5.1, 5.0]])
    sink = tmp_path / "alerts.jsonl"
    set_jsonl_path(str(sink))
    try:
        monitor = StreamMonitor([near, far, outside], pattern, REGION, k=1)
        alerts = monitor.tick({})
        assert [(a.trajectory_id, a.event) for a in alerts] == [(0, "enter")]
        # Drag the near stream out of the region: the far one takes its slot.
        alerts = monitor.tick({0: np.array([[9.0, 9.0]] * 6)})
        events = {(a.trajectory_id, a.event) for a in alerts}
        assert events == {(0, "exit"), (1, "enter")}
        assert all(isinstance(a, StreamAlert) and a.tick == 2 for a in alerts)
    finally:
        set_jsonl_path(None)
    lines = [json.loads(line) for line in sink.read_text().splitlines()]
    assert len(lines) == 3
    for event in lines:
        assert event["kind"] == "stream_alert"
        assert event["event"] in ("enter", "exit")
        assert isinstance(event["trajectory_id"], int)
        assert isinstance(event["tick"], int) and event["tick"] >= 1
        assert event["measure"] == "dtw"


def test_monitor_never_touches_out_of_region_streams():
    pattern = np.array([[0.0, 0.0], [0.1, 0.1]])
    inside = np.array([[0.0, 0.1], [0.1, 0.2]])
    outside = np.array([[7.0, 7.0], [7.1, 7.1]])
    monitor = StreamMonitor([inside, outside], pattern, REGION, k=2)
    monitor.tick({1: np.array([[7.2, 7.2]])})
    assert 0 in monitor._pair_ids
    assert 1 not in monitor._pair_ids  # no DP frontier ever built
    assert monitor.topk() and monitor.topk()[0][0] == 0


def test_monitor_bound_skips_save_refinement():
    rng = np.random.default_rng(9)
    windows = _walks(rng, 30, 12, origin_scale=0.5)
    pattern = np.cumsum(rng.normal(scale=0.05, size=(10, 2)), axis=0)
    before = snapshot()["counters"]
    monitor = StreamMonitor(windows, pattern, REGION, measure="dtw", k=2)
    for _ in range(4):
        appends = {int(i): rng.normal(scale=0.05, size=(1, 2))
                   + monitor.engine.window(int(i))[-1:]
                   for i in rng.choice(30, size=8, replace=False)}
        monitor.tick(appends)
    after = snapshot()["counters"]

    def delta(name):
        return after.get(name, 0) - before.get(name, 0)

    assert delta("monitor.ticks") == 4
    assert delta("monitor.refined") + delta("monitor.skipped_bound") > 0
    # With k=2 over ~30 in-region candidates the bounds must prune something.
    assert delta("monitor.skipped_bound") > 0


def test_monitor_rejects_emptying_evict_and_bad_k():
    pattern = np.array([[0.0, 0.0], [0.1, 0.1]])
    window = np.array([[0.0, 0.0], [0.1, 0.0]])
    with pytest.raises(ValueError):
        StreamMonitor([window], pattern, REGION, k=0)
    monitor = StreamMonitor([window], pattern, REGION, k=1)
    with pytest.raises(ValueError):
        monitor.tick({}, {0: 2})


def test_monitor_accepts_shared_engine_with_checkpoints():
    rng = np.random.default_rng(3)
    windows = _walks(rng, 6, 10, origin_scale=0.3)
    pattern = np.cumsum(rng.normal(scale=0.05, size=(6, 2)), axis=0)
    engine = StreamingEngine(checkpoint_every=4)
    monitor = StreamMonitor([w.copy() for w in windows], pattern, REGION,
                            k=2, engine=engine)
    for _ in range(5):
        appends, evicts = {}, {}
        for trajectory_id in range(6):
            points = (windows[trajectory_id][-1]
                      + np.cumsum(rng.normal(scale=0.05, size=(2, 2)), axis=0))
            appends[trajectory_id] = points
            windows[trajectory_id] = np.concatenate(
                [windows[trajectory_id], points])
            if len(windows[trajectory_id]) > 12:
                evicts[trajectory_id] = 3
                windows[trajectory_id] = windows[trajectory_id][3:]
        monitor.tick(appends, evicts)
    expected = _brute_topk(windows, pattern, REGION, "dtw", 2)
    got = [(distance, trajectory_id) for trajectory_id, distance in monitor.topk()]
    assert got == expected


# ------------------------------------------------------------ streaming workload
def test_stream_workload_is_consistent_and_deterministic():
    workload = generate_stream_workload(streams=40, ticks=30, seed=11,
                                        update_fraction=0.3, evict_fraction=0.25)
    lengths = [len(window) for window in workload.initial]
    for tick in workload.ticks:
        for trajectory_id, points in tick.appends.items():
            assert points.ndim == 2 and points.dtype == np.float64
            lengths[trajectory_id] += len(points)
        for trajectory_id, dropped in tick.evicts.items():
            assert dropped >= 1
            lengths[trajectory_id] -= dropped
            assert lengths[trajectory_id] >= 1  # windows never empty
    assert lengths == workload.final_lengths
    twin = generate_stream_workload(streams=40, ticks=30, seed=11,
                                    update_fraction=0.3, evict_fraction=0.25)
    assert all(np.array_equal(a, b)
               for a, b in zip(workload.initial, twin.initial))
    for tick_a, tick_b in zip(workload.ticks, twin.ticks):
        assert tick_a.evicts == tick_b.evicts
        assert tick_a.appends.keys() == tick_b.appends.keys()
        assert all(np.array_equal(tick_a.appends[key], tick_b.appends[key])
                   for key in tick_a.appends)


def test_stream_workload_mix_and_presets():
    append_only = generate_stream_workload(streams=20, ticks=20, seed=2,
                                           evict_fraction=0.0)
    assert all(not tick.evicts for tick in append_only.ticks)
    assert append_only.total_appended_points() > 0
    timed = generate_stream_workload("tdrive", streams=5, ticks=5, seed=2)
    assert timed.initial[0].shape[1] == 3  # preset carries a time column
    for tick in timed.ticks:
        for points in tick.appends.values():
            assert points.shape[1] == 3
    with pytest.raises(ValueError):
        generate_stream_workload(streams=0)
    with pytest.raises(ValueError):
        generate_stream_workload(mean_appends=0.5)


def test_stream_workload_replays_through_monitor():
    """End-to-end: the generated schedule drives a monitor without faults."""
    workload = generate_stream_workload(streams=25, ticks=10, seed=7,
                                        update_fraction=0.4, evict_fraction=0.2)
    pattern = workload.initial[0].copy()
    region = BoundingBox(0.0, 0.0, 2.0, 2.0)  # chengdu extent
    monitor = StreamMonitor(workload.initial, pattern, region, k=4)
    for tick in workload.ticks:
        monitor.tick(tick.appends, tick.evicts)
    assert [len(monitor.engine.window(i)) for i in range(25)] \
        == workload.final_lengths
    expected = _brute_topk([monitor.engine.window(i) for i in range(25)],
                           pattern, region, "dtw", 4)
    got = [(distance, trajectory_id) for trajectory_id, distance in monitor.topk()]
    assert got == expected
