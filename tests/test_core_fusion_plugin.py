"""Unit tests for the dynamic fusion module, the plugin config and the LHPlugin."""

import numpy as np
import pytest

from repro.core import (
    DynamicFusion,
    FactorEncoder,
    LHPlugin,
    LHPluginConfig,
    PluggedEncoder,
    fuse_distances,
    lorentz_proportion,
)
from repro.data import generate_dataset
from repro.models import MeanPoolEncoder
from repro.nn import Tensor


class TestConfig:
    def test_defaults_match_paper(self):
        config = LHPluginConfig()
        assert config.beta == 1.0
        assert config.compression == 4.0
        assert config.projection == "cosh"
        assert config.use_fusion is True

    @pytest.mark.parametrize("kwargs", [
        {"beta": 0.0}, {"compression": -1.0}, {"projection": "poincare"},
        {"fusion_encoder": "transformer"}, {"factor_dim": 0}, {"point_features": 4},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            LHPluginConfig(**kwargs)

    def test_with_updates(self):
        config = LHPluginConfig().with_updates(beta=2.0)
        assert config.beta == 2.0
        assert config.compression == 4.0

    def test_ablation_variants(self):
        vanilla = LHPluginConfig.ablation_variant("lh-vanilla")
        assert vanilla.projection == "vanilla" and not vanilla.use_fusion
        cosh = LHPluginConfig.ablation_variant("lh-cosh")
        assert cosh.projection == "cosh" and not cosh.use_fusion
        fusion = LHPluginConfig.ablation_variant("fusion-dist")
        assert fusion.use_fusion

    def test_ablation_unknown(self):
        with pytest.raises(KeyError):
            LHPluginConfig.ablation_variant("original")


class TestFactorEncoderAndFusion:
    def test_factor_vectors_positive(self):
        encoder = FactorEncoder(LHPluginConfig(factor_dim=4, fusion_hidden=8))
        v_lo, v_eu = encoder(np.random.default_rng(0).random((10, 2)))
        assert (v_lo.data > 0).all()
        assert (v_eu.data > 0).all()
        assert v_lo.shape == (4,) and v_eu.shape == (4,)

    def test_mean_encoder_variant(self):
        encoder = FactorEncoder(LHPluginConfig(factor_dim=4, fusion_encoder="mean"))
        v_lo, v_eu = encoder(np.random.default_rng(0).random((10, 2)))
        assert v_lo.shape == (4,) and v_eu.shape == (4,)

    def test_rejects_non_sequence_input(self):
        encoder = FactorEncoder(LHPluginConfig())
        with pytest.raises(ValueError):
            encoder(np.ones(4))

    def test_lorentz_proportion_in_unit_interval(self):
        rng = np.random.default_rng(1)
        encoder = FactorEncoder(LHPluginConfig(factor_dim=4, fusion_hidden=8))
        alpha = lorentz_proportion(*encoder(rng.random((8, 2))), *encoder(rng.random((12, 2))))
        assert 0.0 < alpha.item() < 1.0

    def test_fuse_distances_blend(self):
        fused = fuse_distances(Tensor(2.0), Tensor(4.0), Tensor(0.25))
        assert fused.item() == pytest.approx(0.25 * 2.0 + 0.75 * 4.0)

    def test_fusion_alpha_symmetric(self):
        fusion = DynamicFusion(LHPluginConfig(factor_dim=4, fusion_hidden=8))
        rng = np.random.default_rng(2)
        a, b = rng.random((7, 2)), rng.random((9, 2))
        assert fusion.alpha(a, b).item() == pytest.approx(fusion.alpha(b, a).item())

    def test_factors_numpy_matches_tensor_path(self):
        fusion = DynamicFusion(LHPluginConfig(factor_dim=4, fusion_hidden=8))
        sequences = [np.random.default_rng(i).random((6, 2)) for i in range(3)]
        lo, eu = fusion.factors_numpy(sequences)
        v_lo, v_eu = fusion.factors(sequences[1])
        np.testing.assert_allclose(lo[1], v_lo.data, atol=1e-12)
        np.testing.assert_allclose(eu[1], v_eu.data, atol=1e-12)

    def test_alpha_matrix_matches_pairwise(self):
        fusion = DynamicFusion(LHPluginConfig(factor_dim=4, fusion_hidden=8))
        sequences = [np.random.default_rng(i).random((6, 2)) for i in range(4)]
        factors = fusion.factors_numpy(sequences)
        matrix = DynamicFusion.alpha_matrix(factors, factors)
        assert matrix.shape == (4, 4)
        assert ((matrix > 0) & (matrix < 1)).all()
        pair = fusion.alpha(sequences[0], sequences[2]).item()
        assert matrix[0, 2] == pytest.approx(pair, abs=1e-10)


class TestLHPlugin:
    def _plugin(self, **kwargs):
        return LHPlugin(LHPluginConfig(factor_dim=4, fusion_hidden=8, **kwargs))

    def test_config_kwargs_constructor(self):
        plugin = LHPlugin(beta=2.0, use_fusion=False)
        assert plugin.config.beta == 2.0
        assert plugin.fusion is None

    def test_pair_distance_differentiable(self):
        plugin = self._plugin()
        rng = np.random.default_rng(0)
        a = Tensor(rng.normal(size=8), requires_grad=True)
        b = Tensor(rng.normal(size=8), requires_grad=True)
        distance = plugin.pair_distance(a, b, rng.random((5, 2)), rng.random((7, 2)))
        distance.backward()
        assert a.grad is not None and b.grad is not None
        assert float(distance.data) >= 0.0

    def test_pair_distance_requires_points_when_fusion_enabled(self):
        plugin = self._plugin()
        with pytest.raises(ValueError):
            plugin.pair_distance(Tensor(np.ones(4)), Tensor(np.ones(4)))

    def test_pure_lorentz_plugin_needs_no_points(self):
        plugin = self._plugin(use_fusion=False)
        distance = plugin.pair_distance(Tensor(np.ones(4)), Tensor(np.zeros(4)))
        assert float(distance.data) > 0.0

    def test_self_distance_zero(self):
        plugin = self._plugin(use_fusion=False)
        embedding = Tensor(np.random.default_rng(1).normal(size=6))
        assert plugin.pair_distance(embedding, embedding).item() == pytest.approx(0.0, abs=1e-9)

    def test_embed_database_contents(self):
        plugin = self._plugin()
        rng = np.random.default_rng(2)
        embeddings = rng.normal(size=(5, 6))
        sequences = [rng.random((6, 2)) for _ in range(5)]
        database = plugin.embed_database(embeddings, sequences)
        assert set(database) == {"euclidean", "time_like", "space_scale", "factors"}
        assert database["time_like"].shape == (5,)

    def test_embed_database_requires_sequences_for_fusion(self):
        plugin = self._plugin()
        with pytest.raises(ValueError):
            plugin.embed_database(np.ones((3, 4)))

    def test_distance_matrix_matches_pair_distance(self):
        plugin = self._plugin()
        rng = np.random.default_rng(3)
        embeddings = rng.normal(size=(4, 6))
        sequences = [rng.random((6, 2)) for _ in range(4)]
        database = plugin.embed_database(embeddings, sequences)
        matrix = plugin.distance_matrix(database)
        for i in range(4):
            for j in range(4):
                expected = plugin.pair_distance(Tensor(embeddings[i]), Tensor(embeddings[j]),
                                                sequences[i], sequences[j]).item()
                # The training path adds a tiny epsilon inside sqrt/pow for gradient
                # safety, so the two paths agree only up to ~1e-6.
                assert matrix[i, j] == pytest.approx(expected, abs=1e-5)

    def test_distance_matrix_diagonal_zero(self):
        plugin = self._plugin(use_fusion=False)
        embeddings = np.random.default_rng(4).normal(size=(6, 5))
        matrix = plugin.distance_matrix(plugin.embed_database(embeddings))
        np.testing.assert_allclose(np.diag(matrix), np.zeros(6), atol=1e-9)

    def test_vanilla_projection_variant(self):
        plugin = LHPlugin(LHPluginConfig.ablation_variant("lh-vanilla"))
        embeddings = np.random.default_rng(5).normal(size=(4, 5))
        matrix = plugin.distance_matrix(plugin.embed_database(embeddings))
        assert matrix.shape == (4, 4)
        assert (matrix >= -1e-9).all()

    def test_plugin_has_parameters_only_with_fusion(self):
        assert sum(1 for _ in self._plugin().parameters()) > 0
        assert sum(1 for _ in self._plugin(use_fusion=False).parameters()) == 0


class TestPluggedEncoder:
    def test_wraps_base_encoder(self):
        dataset = generate_dataset("chengdu", size=10, seed=0)
        base = MeanPoolEncoder.build(dataset, embedding_dim=8, seed=0)
        plugged = PluggedEncoder(base, LHPlugin(LHPluginConfig(factor_dim=4, fusion_hidden=8)))
        assert plugged.embedding_dim == 8
        prepared = plugged.prepare(dataset[0])
        assert plugged.encode(prepared).shape == (8,)

    def test_pair_distance_and_embed_many(self):
        dataset = generate_dataset("chengdu", size=6, seed=1)
        base = MeanPoolEncoder.build(dataset, embedding_dim=8, seed=0)
        plugin = LHPlugin(LHPluginConfig(use_fusion=False))
        plugged = PluggedEncoder(base, plugin)
        prepared = [plugged.prepare(t) for t in dataset]
        distance = plugged.pair_distance(prepared[0], prepared[1])
        assert float(distance.data) >= 0.0
        embeddings = plugged.embed_many(prepared)
        assert embeddings.shape == (6, 8)
