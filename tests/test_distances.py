"""Unit tests for the trajectory distance measures."""

import numpy as np
import pytest

from repro import distances as D

# The worked example of the paper (Example 1): DTW violates the triangle inequality.
TA = np.array([[0.0, 0.0], [0.0, 1.0], [0.0, 3.0]])
TB = np.array([[2.0, 0.0], [0.0, 1.0], [2.0, 3.0]])
TC = np.array([[3.0, 0.0], [3.0, 1.0], [4.0, 3.0], [5.0, 3.0]])

SPATIAL_MEASURES = ["dtw", "sspd", "edr", "erp", "lcss", "hausdorff", "frechet"]
MEASURE_KWARGS = {"edr": {"epsilon": 0.5}, "lcss": {"epsilon": 0.5}}


def _call(name, a, b):
    return D.get_distance(name)(a, b, **MEASURE_KWARGS.get(name, {}))


class TestRegistry:
    def test_available_distances(self):
        names = D.available_distances()
        for expected in SPATIAL_MEASURES + ["tp", "dita"]:
            assert expected in names

    def test_get_distance_case_insensitive(self):
        assert D.get_distance("DTW") is D.dtw_distance

    def test_get_distance_unknown(self):
        with pytest.raises(KeyError):
            D.get_distance("nope")

    def test_metric_properties_flags(self):
        assert D.METRIC_PROPERTIES["hausdorff"] is True
        assert D.METRIC_PROPERTIES["dtw"] is False
        assert D.METRIC_PROPERTIES["erp"] is True

    def test_register_duplicate_rejected(self):
        with pytest.raises(KeyError):
            D.register_distance("dtw")(lambda a, b: 0.0)

    def test_as_points_validation(self):
        with pytest.raises(ValueError):
            D.as_points(np.zeros((0, 2)))
        with pytest.raises(ValueError):
            D.as_points(np.zeros((3, 1)))


class TestPaperExample:
    def test_dtw_values(self):
        assert D.dtw_distance(TA, TB) == pytest.approx(4.0)
        assert D.dtw_distance(TB, TC) == pytest.approx(9.0)
        assert D.dtw_distance(TA, TC) == pytest.approx(15.0)

    def test_dtw_triangle_violation(self):
        assert D.dtw_distance(TA, TC) > D.dtw_distance(TA, TB) + D.dtw_distance(TB, TC)

    def test_dtw_path_endpoints(self):
        value, path = D.dtw_distance_with_path(TA, TC)
        assert value == pytest.approx(15.0)
        assert path[0] == (0, 0)
        assert path[-1] == (len(TA) - 1, len(TC) - 1)


class TestCommonProperties:
    @pytest.mark.parametrize("name", SPATIAL_MEASURES)
    def test_self_distance_zero(self, name):
        assert _call(name, TA, TA) == pytest.approx(0.0, abs=1e-12)

    @pytest.mark.parametrize("name", SPATIAL_MEASURES)
    def test_symmetry(self, name):
        assert _call(name, TA, TB) == pytest.approx(_call(name, TB, TA))

    @pytest.mark.parametrize("name", SPATIAL_MEASURES)
    def test_non_negative(self, name):
        assert _call(name, TA, TC) >= 0.0

    @pytest.mark.parametrize("name", SPATIAL_MEASURES)
    def test_single_point_trajectories(self, name):
        a = np.array([[0.0, 0.0]])
        b = np.array([[1.0, 1.0]])
        assert _call(name, a, b) >= 0.0


class TestIndividualMeasures:
    def test_dtw_translation_increases_distance(self):
        shifted = TA + 10.0
        assert D.dtw_distance(TA, shifted) > D.dtw_distance(TA, TA + 0.1)

    def test_sspd_point_on_segment_is_zero(self):
        segment = np.array([[0.0, 0.0], [0.0, 2.0]])
        assert D.point_to_trajectory_distance([0.0, 1.0], segment) == pytest.approx(0.0)

    def test_sspd_point_off_segment(self):
        segment = np.array([[0.0, 0.0], [0.0, 2.0]])
        assert D.point_to_trajectory_distance([3.0, 1.0], segment) == pytest.approx(3.0)

    def test_sspd_identical_shapes_different_sampling(self):
        dense = np.column_stack([np.linspace(0, 1, 20), np.zeros(20)])
        sparse = np.column_stack([np.linspace(0, 1, 5), np.zeros(5)])
        assert D.sspd_distance(dense, sparse) == pytest.approx(0.0, abs=1e-9)

    def test_edr_epsilon_validation(self):
        with pytest.raises(ValueError):
            D.edr_distance(TA, TB, epsilon=0.0)

    def test_edr_counts_edits(self):
        a = np.array([[0.0, 0.0], [1.0, 0.0]])
        b = np.array([[0.0, 0.0], [5.0, 0.0]])
        assert D.edr_distance(a, b, epsilon=0.1) == pytest.approx(1.0)

    def test_edr_length_difference_costs_insertions(self):
        a = np.zeros((2, 2))
        b = np.zeros((6, 2))
        assert D.edr_distance(a, b, epsilon=0.1) == pytest.approx(4.0)

    def test_edr_normalized_in_unit_interval(self):
        value = D.edr_distance_normalized(TA, TC, epsilon=0.5)
        assert 0.0 <= value <= 1.0

    def test_erp_gap_point_matters(self):
        # Unequal lengths force gap operations, whose cost depends on the gap point.
        near_origin = D.erp_distance(TA, TC)
        far_gap = D.erp_distance(TA, TC, gap=(100.0, 100.0))
        assert near_origin != pytest.approx(far_gap)

    def test_erp_empty_alignment_cost(self):
        a = np.array([[1.0, 0.0]])
        b = np.array([[0.0, 1.0]])
        assert D.erp_distance(a, b) == pytest.approx(np.sqrt(2.0))

    def test_lcss_similarity_full_match(self):
        assert D.lcss_similarity(TA, TA, epsilon=0.1) == len(TA)

    def test_lcss_distance_range(self):
        assert 0.0 <= D.lcss_distance(TA, TC, epsilon=0.5) <= 1.0

    def test_lcss_epsilon_validation(self):
        with pytest.raises(ValueError):
            D.lcss_similarity(TA, TB, epsilon=-1.0)

    def test_hausdorff_known_value(self):
        a = np.array([[0.0, 0.0], [1.0, 0.0]])
        b = np.array([[0.0, 3.0], [1.0, 3.0]])
        assert D.hausdorff_distance(a, b) == pytest.approx(3.0)

    def test_directed_hausdorff_asymmetry(self):
        a = np.array([[0.0, 0.0]])
        b = np.array([[0.0, 0.0], [10.0, 0.0]])
        assert D.directed_hausdorff_distance(a, b) == pytest.approx(0.0)
        assert D.directed_hausdorff_distance(b, a) == pytest.approx(10.0)

    def test_frechet_at_least_hausdorff(self):
        assert D.discrete_frechet_distance(TA, TC) >= D.hausdorff_distance(TA, TC) - 1e-12

    def test_frechet_known_value(self):
        a = np.array([[0.0, 0.0], [1.0, 0.0], [2.0, 0.0]])
        b = np.array([[0.0, 1.0], [1.0, 1.0], [2.0, 1.0]])
        assert D.discrete_frechet_distance(a, b) == pytest.approx(1.0)


class TestSpatioTemporal:
    SA = np.array([[0.0, 0.0, 0.0], [1.0, 0.0, 1.0], [2.0, 0.0, 2.0]])
    SB = np.array([[0.0, 1.0, 0.5], [1.0, 1.0, 1.5], [2.0, 1.0, 2.5]])

    def test_tp_requires_time(self):
        with pytest.raises(ValueError):
            D.tp_distance(TA, TB)

    def test_dita_requires_time(self):
        with pytest.raises(ValueError):
            D.dita_distance(TA, TB)

    def test_tp_self_distance_zero(self):
        assert D.tp_distance(self.SA, self.SA) == pytest.approx(0.0)

    def test_tp_symmetric(self):
        assert D.tp_distance(self.SA, self.SB) == pytest.approx(D.tp_distance(self.SB, self.SA))

    def test_tp_lambda_bounds(self):
        with pytest.raises(ValueError):
            D.tp_distance(self.SA, self.SB, lambda_spatial=1.5)

    def test_tp_pure_spatial_weighting(self):
        spatial_only = D.tp_distance(self.SA, self.SB, lambda_spatial=1.0)
        assert spatial_only == pytest.approx(1.0)

    def test_dita_self_distance_zero(self):
        assert D.dita_distance(self.SA, self.SA) == pytest.approx(0.0)

    def test_dita_increases_with_temporal_gap(self):
        shifted = self.SB.copy()
        shifted[:, 2] += 10.0
        assert D.dita_distance(self.SA, shifted) > D.dita_distance(self.SA, self.SB)


class TestMatrixHelpers:
    TRAJS = [TA, TB, TC]

    def test_pairwise_matrix_symmetric_zero_diagonal(self):
        matrix = D.pairwise_distance_matrix(self.TRAJS, "dtw")
        np.testing.assert_allclose(matrix, matrix.T)
        np.testing.assert_allclose(np.diag(matrix), np.zeros(3))

    def test_pairwise_matrix_matches_direct_calls(self):
        matrix = D.pairwise_distance_matrix(self.TRAJS, "dtw")
        assert matrix[0, 1] == pytest.approx(4.0)
        assert matrix[1, 2] == pytest.approx(9.0)

    def test_pairwise_with_callable(self):
        matrix = D.pairwise_distance_matrix(self.TRAJS, D.hausdorff_distance)
        assert matrix.shape == (3, 3)

    def test_cross_matrix_shape(self):
        matrix = D.cross_distance_matrix(self.TRAJS[:1], self.TRAJS, "sspd")
        assert matrix.shape == (1, 3)
        assert matrix[0, 0] == pytest.approx(0.0)

    def test_knn_excludes_self(self):
        matrix = D.pairwise_distance_matrix(self.TRAJS, "dtw")
        neighbours = D.knn_from_matrix(matrix, 1, exclude_self=True)
        assert neighbours[0, 0] == 1
        assert neighbours[2, 0] == 1

    def test_knn_includes_self_when_requested(self):
        matrix = D.pairwise_distance_matrix(self.TRAJS, "dtw")
        neighbours = D.knn_from_matrix(matrix, 1, exclude_self=False)
        np.testing.assert_array_equal(neighbours[:, 0], [0, 1, 2])

    def test_knn_k_validation(self):
        with pytest.raises(ValueError):
            D.knn_from_matrix(np.zeros((2, 2)), 0)

    def test_normalize_matrix_mean(self):
        matrix = D.pairwise_distance_matrix(self.TRAJS, "dtw")
        normalised = D.normalize_matrix(matrix, "mean")
        off_diagonal = normalised[~np.eye(3, dtype=bool)]
        assert off_diagonal.mean() == pytest.approx(1.0)

    def test_normalize_matrix_max(self):
        matrix = D.pairwise_distance_matrix(self.TRAJS, "dtw")
        assert D.normalize_matrix(matrix, "max").max() == pytest.approx(1.0)

    def test_normalize_matrix_none_copy(self):
        matrix = np.array([[0.0, 1.0], [1.0, 0.0]])
        result = D.normalize_matrix(matrix, "none")
        assert result is not matrix
        np.testing.assert_allclose(result, matrix)

    def test_normalize_matrix_invalid(self):
        with pytest.raises(ValueError):
            D.normalize_matrix(np.zeros((2, 2)), "median")
