"""Parity suite: vectorized kernels and batched statistics vs the scalar reference.

Every wavefront kernel and every batched violation statistic must agree with its
reference implementation to 1e-9 on randomized inputs — including degenerate
single-point trajectories, unequal lengths and every registered measure that has a
kernel.  This is the contract that lets the engine swap execution strategies freely.
"""

import numpy as np
import pytest

from repro import distances as D
from repro.engine import MatrixEngine, get_batch_kernel
from repro.violation import metrics as VM

TOLERANCE = 1e-9

#: (measure, kwargs, needs_time)
KERNEL_CASES = [
    ("dtw", {}, False),
    ("erp", {}, False),
    ("erp", {"gap": (1.5, -0.5)}, False),
    ("edr", {"epsilon": 0.3}, False),
    ("lcss", {"epsilon": 0.3}, False),
    ("frechet", {}, False),
    ("dita", {}, True),
    ("dita", {"lambda_spatial": 0.8, "time_scale": 2.0}, True),
]

LENGTH_PAIRS = [(1, 1), (1, 9), (9, 1), (2, 2), (5, 17), (17, 5), (33, 33)]


def _random_trajectory(rng, length, with_time):
    width = 3 if with_time else 2
    points = rng.random((length, width))
    if with_time:
        points[:, 2] = np.sort(points[:, 2]) * 10.0
    return points


def _case_id(case):
    measure, kwargs, _ = case
    return measure + ("-" + "-".join(map(str, kwargs)) if kwargs else "")


class TestKernelParity:
    @pytest.mark.parametrize("case", KERNEL_CASES, ids=_case_id)
    @pytest.mark.parametrize("lengths", LENGTH_PAIRS)
    def test_pairwise_kernel_matches_reference(self, case, lengths):
        measure, kwargs, with_time = case
        rng = np.random.default_rng(hash((measure, lengths)) % (2 ** 32))
        reference = D.get_distance(measure)
        kernel = D.get_kernel(measure)
        assert kernel is not None
        for trial in range(3):
            a = _random_trajectory(rng, lengths[0], with_time)
            b = _random_trajectory(rng, lengths[1], with_time)
            assert kernel(a, b, **kwargs) == pytest.approx(
                reference(a, b, **kwargs), abs=TOLERANCE)

    @pytest.mark.parametrize("case", KERNEL_CASES, ids=_case_id)
    def test_batch_kernel_matches_reference(self, case):
        measure, kwargs, with_time = case
        rng = np.random.default_rng(7)
        batch = get_batch_kernel(measure)
        reference = D.get_distance(measure)
        list_a = [_random_trajectory(rng, int(rng.integers(1, 25)), with_time)
                  for _ in range(17)]
        list_b = [_random_trajectory(rng, int(rng.integers(1, 25)), with_time)
                  for _ in range(17)]
        values = batch(list_a, list_b, **kwargs)
        expected = [reference(a, b, **kwargs) for a, b in zip(list_a, list_b)]
        np.testing.assert_allclose(values, expected, atol=TOLERANCE)

    def test_kernel_registered_for_every_dp_measure(self):
        for measure in ("dtw", "erp", "edr", "lcss", "frechet", "dita"):
            assert measure in D.available_kernels()

    def test_epsilon_validation_matches_reference(self):
        a = np.zeros((3, 2))
        with pytest.raises(ValueError):
            D.get_kernel("edr")(a, a, epsilon=0.0)
        with pytest.raises(ValueError):
            D.get_kernel("lcss")(a, a, epsilon=-1.0)

    def test_dita_requires_time_column(self):
        a = np.zeros((3, 2))
        with pytest.raises(ValueError):
            D.get_kernel("dita")(a, a)


class TestBandedDTW:
    def test_wide_band_equals_full_dtw(self):
        rng = np.random.default_rng(0)
        a, b = rng.random((21, 2)), rng.random((17, 2))
        full = D.dtw_distance(a, b)
        assert D.get_kernel("dtw")(a, b, band=100) == pytest.approx(full, abs=TOLERANCE)

    def test_narrow_band_never_below_full_dtw(self):
        rng = np.random.default_rng(1)
        a, b = rng.random((20, 2)), rng.random((20, 2))
        full = D.dtw_distance(a, b)
        for band in (0, 1, 3, 7):
            banded = D.get_kernel("dtw")(a, b, band=band)
            assert np.isfinite(banded)
            assert banded >= full - TOLERANCE

    def test_band_widened_for_unequal_lengths(self):
        rng = np.random.default_rng(2)
        a, b = rng.random((30, 2)), rng.random((5, 2))
        assert np.isfinite(D.get_kernel("dtw")(a, b, band=0))

    @pytest.mark.parametrize("band", [0, 2, 5])
    def test_banded_reference_matches_banded_kernel(self, band):
        rng = np.random.default_rng(4)
        a, b = rng.random((18, 2)), rng.random((14, 2))
        assert D.get_kernel("dtw")(a, b, band=band) == pytest.approx(
            D.dtw_distance(a, b, band=band), abs=TOLERANCE)

    def test_band_kwarg_works_without_kernels(self):
        rng = np.random.default_rng(5)
        trajectories = [rng.random((8, 2)) for _ in range(5)]
        with_kernels = MatrixEngine(strategy="chunked").pairwise(
            trajectories, "dtw", band=2)
        without_kernels = MatrixEngine(strategy="serial", use_kernels=False).pairwise(
            trajectories, "dtw", band=2)
        np.testing.assert_allclose(with_kernels, without_kernels, atol=TOLERANCE)


class TestEngineStrategyParity:
    @pytest.fixture(scope="class")
    def trajectories(self):
        rng = np.random.default_rng(3)
        return [rng.random((int(rng.integers(1, 20)), 2)) for _ in range(14)]

    @pytest.mark.parametrize("measure,kwargs", [
        ("dtw", {}), ("edr", {"epsilon": 0.3}), ("sspd", {}), ("hausdorff", {}),
    ])
    @pytest.mark.parametrize("strategy", ["serial", "chunked", "process"])
    def test_pairwise_matches_reference_loop(self, trajectories, measure, kwargs, strategy):
        reference = MatrixEngine(strategy="serial", use_kernels=False)
        engine = MatrixEngine(strategy=strategy, chunk_size=10)
        np.testing.assert_allclose(
            engine.pairwise(trajectories, measure, **kwargs),
            reference.pairwise(trajectories, measure, **kwargs),
            atol=TOLERANCE)

    def test_cross_matches_reference_loop(self, trajectories):
        reference = MatrixEngine(strategy="serial", use_kernels=False)
        engine = MatrixEngine(strategy="chunked", chunk_size=7)
        np.testing.assert_allclose(
            engine.cross(trajectories[:4], trajectories, "dtw"),
            reference.cross(trajectories[:4], trajectories, "dtw"),
            atol=TOLERANCE)


def _random_symmetric_matrix(rng, size):
    matrix = rng.random((size, size))
    matrix = (matrix + matrix.T) / 2.0
    np.fill_diagonal(matrix, 0.0)
    return matrix


class TestBatchedViolationParity:
    @pytest.mark.parametrize("size", [3, 4, 12, 25])
    def test_exhaustive_statistics_match_scalar(self, size):
        matrix = _random_symmetric_matrix(np.random.default_rng(size), size)
        vectorized = VM.violation_report(matrix)
        scalar = VM.violation_report(matrix, vectorized=False)
        assert vectorized["triplets"] == scalar["triplets"]
        assert vectorized["violating_triplets"] == scalar["violating_triplets"]
        assert vectorized["ratio_of_violation"] == pytest.approx(
            scalar["ratio_of_violation"], abs=TOLERANCE)
        assert vectorized["average_relative_violation"] == pytest.approx(
            scalar["average_relative_violation"], abs=TOLERANCE)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_sampled_statistics_match_scalar(self, seed):
        matrix = _random_symmetric_matrix(np.random.default_rng(40 + seed), 30)
        kwargs = {"max_triplets": 500, "seed": seed}
        assert VM.ratio_of_violation(matrix, **kwargs) == pytest.approx(
            VM.ratio_of_violation(matrix, vectorized=False, **kwargs), abs=TOLERANCE)
        assert VM.average_relative_violation(matrix, **kwargs) == pytest.approx(
            VM.average_relative_violation(matrix, vectorized=False, **kwargs),
            abs=TOLERANCE)

    def test_batched_primitives_match_scalar(self):
        matrix = _random_symmetric_matrix(np.random.default_rng(9), 15)
        triplets = VM.triplet_array(15)
        slacks = VM.batched_sim_slack(matrix, triplets)
        flags = VM.batched_violation_flags(matrix, triplets)
        scales = VM.batched_relative_violation_scale(matrix, triplets)
        for index, (i, j, k) in enumerate(map(tuple, triplets)):
            assert slacks[index] == pytest.approx(VM.sim_slack(matrix, i, j, k),
                                                  abs=TOLERANCE)
            assert bool(flags[index]) == bool(VM.triangle_violation_flag(matrix, i, j, k))
            assert scales[index] == pytest.approx(
                VM.relative_violation_scale(matrix, i, j, k), abs=TOLERANCE)

    def test_metric_matrix_has_zero_statistics(self):
        points = np.random.default_rng(5).random((14, 2))
        matrix = np.sqrt(((points[:, None] - points[None]) ** 2).sum(-1))
        assert VM.ratio_of_violation(matrix) == 0.0
        assert VM.average_relative_violation(matrix) == 0.0

    def test_degenerate_matrix_sizes(self):
        for size in (0, 1, 2):
            matrix = np.zeros((size, size))
            report = VM.violation_report(matrix)
            assert report["triplets"] == 0
            assert report["ratio_of_violation"] == 0.0

    def test_exhaustive_block_streaming_matches_single_block(self, monkeypatch):
        # Force tiny blocks so the exhaustive path spans many of them and still
        # aggregates identically to the scalar walk.
        matrix = _random_symmetric_matrix(np.random.default_rng(11), 14)
        monkeypatch.setattr(VM, "_EXHAUSTIVE_BLOCK", 16)
        blocked = VM.violation_report(matrix)
        scalar = VM.violation_report(matrix, vectorized=False)
        assert blocked["triplets"] == scalar["triplets"]
        assert blocked["violating_triplets"] == scalar["violating_triplets"]
        assert blocked["average_relative_violation"] == pytest.approx(
            scalar["average_relative_violation"], abs=TOLERANCE)
        assert VM.ratio_of_violation(matrix) == pytest.approx(
            scalar["ratio_of_violation"], abs=TOLERANCE)
