"""Parity suite for the mask-aware batched learning stack.

The contract: every batched forward (``encode_batch``, the batched plugin
distances, the batched training step) must reproduce its per-sample reference
within 1e-9 on ragged-length batches — padding must never leak into values or
gradients.  These tests pin that contract for all six encoders, the Traj2SimVec
prefix path, the LH-plugin distance paths and full plugin-attached training
steps.
"""

import numpy as np
import pytest

from repro.core import LHPlugin, LHPluginConfig
from repro.data import generate_dataset
from repro.distances import normalize_matrix, pairwise_distance_matrix
from repro.models import get_model
from repro.nn import (
    GRU,
    LSTM,
    Tensor,
    masked_mean,
    no_grad,
    pad_sequences,
    pad_token_sequences,
)
from repro.training import PairSampler, SimilarityTrainer

TOLERANCE = 1e-9

SPATIAL_MODELS = ["meanpool", "neutraj", "trajgat", "traj2simvec"]
TEMPORAL_MODELS = ["st2vec", "tedj"]


@pytest.fixture(scope="module")
def spatial_dataset():
    return generate_dataset("chengdu", size=10, seed=0)


@pytest.fixture(scope="module")
def temporal_dataset():
    return generate_dataset("tdrive", size=10, seed=0)


@pytest.fixture(scope="module")
def spatial_truth(spatial_dataset):
    matrix = pairwise_distance_matrix(
        spatial_dataset.point_arrays(spatial_only=True), "dtw")
    return normalize_matrix(matrix, method="mean")


def _dataset_for(name, spatial_dataset, temporal_dataset):
    return temporal_dataset if name in TEMPORAL_MODELS else spatial_dataset


# ------------------------------------------------------------ padding helpers
class TestPaddingHelpers:
    def test_pad_sequences_shapes_and_mask(self):
        rng = np.random.default_rng(0)
        sequences = [rng.normal(size=(t, 3)) for t in (4, 1, 6)]
        padded, mask = pad_sequences(sequences)
        assert padded.shape == (3, 6, 3)
        assert mask.shape == (3, 6)
        for row, sequence in enumerate(sequences):
            np.testing.assert_array_equal(padded[row, :len(sequence)], sequence)
            assert mask[row].sum() == len(sequence)
            assert np.all(padded[row, len(sequence):] == 0.0)

    def test_pad_sequences_validation(self):
        with pytest.raises(ValueError):
            pad_sequences([])
        with pytest.raises(ValueError):
            pad_sequences([np.zeros((0, 2))])
        with pytest.raises(ValueError):
            pad_sequences([np.zeros((2, 2)), np.zeros((2, 3))])

    def test_pad_token_sequences(self):
        padded, mask = pad_token_sequences([np.array([3, 1]), np.array([2])])
        np.testing.assert_array_equal(padded, [[3, 1], [2, 0]])
        np.testing.assert_array_equal(mask, [[1.0, 1.0], [1.0, 0.0]])

    def test_masked_mean_matches_per_row_mean(self):
        rng = np.random.default_rng(1)
        sequences = [rng.normal(size=(t, 4)) for t in (5, 2, 7)]
        padded, mask = pad_sequences(sequences)
        pooled = masked_mean(Tensor(padded), mask)
        for row, sequence in enumerate(sequences):
            np.testing.assert_allclose(pooled.data[row], sequence.mean(axis=0),
                                       atol=TOLERANCE)


# ------------------------------------------------------------- masked RNN core
class TestMaskedRecurrence:
    @pytest.mark.parametrize("cls", [LSTM, GRU])
    def test_final_state_matches_per_sample(self, cls):
        rng = np.random.default_rng(2)
        net = cls(3, 5, rng=np.random.default_rng(3))
        sequences = [rng.normal(size=(t, 3)) for t in (6, 1, 3, 9)]
        padded, mask = pad_sequences(sequences)
        _, state = net(Tensor(padded), return_sequence=False, mask=mask)
        final = state[0] if isinstance(state, tuple) else state
        for row, sequence in enumerate(sequences):
            _, single = net(Tensor(sequence), return_sequence=False)
            single_final = single[0] if isinstance(single, tuple) else single
            np.testing.assert_allclose(final.data[row], single_final.data,
                                       atol=TOLERANCE)

    def test_padding_gets_zero_gradient(self):
        rng = np.random.default_rng(4)
        sequences = [rng.normal(size=(t, 3)) for t in (5, 2)]
        padded, mask = pad_sequences(sequences)
        x = Tensor(padded, requires_grad=True)
        net = GRU(3, 4, rng=np.random.default_rng(5))
        _, hidden = net(x, return_sequence=False, mask=mask)
        (hidden * hidden).sum().backward()
        for row, sequence in enumerate(sequences):
            assert np.all(x.grad[row, len(sequence):] == 0.0)
            assert np.any(x.grad[row, :len(sequence)] != 0.0)

    def test_mask_shape_validated(self):
        net = GRU(2, 3)
        with pytest.raises(ValueError):
            net(Tensor(np.zeros((2, 4, 2))), mask=np.ones((2, 5)))


# ----------------------------------------------------------- encoder parity
class TestEncoderParity:
    @pytest.mark.parametrize("name", SPATIAL_MODELS + TEMPORAL_MODELS)
    def test_encode_batch_matches_encode(self, name, spatial_dataset, temporal_dataset):
        dataset = _dataset_for(name, spatial_dataset, temporal_dataset)
        encoder = get_model(name).build(dataset, embedding_dim=8, seed=0)
        prepared = encoder.prepare_dataset(dataset)
        with no_grad():
            batch = encoder.encode_batch(prepared)
            singles = np.stack([encoder.encode(item).data for item in prepared])
        assert batch.shape == (len(dataset), 8)
        np.testing.assert_allclose(batch.data, singles, atol=TOLERANCE)

    @pytest.mark.parametrize("name", SPATIAL_MODELS + TEMPORAL_MODELS)
    def test_singleton_batch(self, name, spatial_dataset, temporal_dataset):
        dataset = _dataset_for(name, spatial_dataset, temporal_dataset)
        encoder = get_model(name).build(dataset, embedding_dim=8, seed=0)
        prepared = encoder.prepare(dataset[3])
        with no_grad():
            batch = encoder.encode_batch([prepared])
            single = encoder.encode(prepared)
        np.testing.assert_allclose(batch.data[0], single.data, atol=TOLERANCE)

    @pytest.mark.parametrize("name", SPATIAL_MODELS + TEMPORAL_MODELS)
    def test_encode_batch_rejects_empty(self, name, spatial_dataset, temporal_dataset):
        dataset = _dataset_for(name, spatial_dataset, temporal_dataset)
        encoder = get_model(name).build(dataset, embedding_dim=8, seed=0)
        with pytest.raises(ValueError):
            encoder.encode_batch([])

    def test_gradients_match_per_sample(self, spatial_dataset):
        """Batched backward accumulates the same parameter gradients."""
        encoder = get_model("neutraj").build(spatial_dataset, embedding_dim=8, seed=0)
        prepared = encoder.prepare_dataset(spatial_dataset)[:4]

        batch = encoder.encode_batch(prepared)
        (batch * batch).sum().backward()
        batched_grads = {name: param.grad.copy()
                         for name, param in encoder.named_parameters()}
        encoder.zero_grad()

        for item in prepared:
            embedding = encoder.encode(item)
            (embedding * embedding).sum().backward()
        for name, param in encoder.named_parameters():
            np.testing.assert_allclose(batched_grads[name], param.grad,
                                       atol=TOLERANCE, err_msg=name)

    def test_embed_dataset_matches_per_sample_encode(self, spatial_dataset):
        encoder = get_model("traj2simvec").build(spatial_dataset, embedding_dim=8, seed=0)
        embeddings = encoder.embed_dataset(spatial_dataset, batch_size=4)
        prepared = encoder.prepare_dataset(spatial_dataset)
        with no_grad():
            singles = np.stack([encoder.encode(item).data for item in prepared])
        np.testing.assert_allclose(embeddings, singles, atol=TOLERANCE)

    def test_prepare_batch_matches_prepare(self, spatial_dataset):
        encoder = get_model("meanpool").build(spatial_dataset, embedding_dim=8, seed=0)
        batch = encoder.prepare_batch(list(spatial_dataset))
        for prepared, trajectory in zip(batch, spatial_dataset):
            np.testing.assert_array_equal(prepared, encoder.prepare(trajectory))


class TestTraj2SimVecPrefixParity:
    def test_batched_prefixes_match_per_sample(self, spatial_dataset):
        encoder = get_model("traj2simvec").build(spatial_dataset, embedding_dim=8,
                                                 seed=0, num_splits=3)
        prepared = encoder.prepare_dataset(spatial_dataset)
        with no_grad():
            full_batch, prefix_batch = encoder.encode_batch_with_prefixes(prepared)
            assert len(prefix_batch) == 3
            for row, item in enumerate(prepared):
                full, prefixes = encoder.encode_with_prefixes(item)
                np.testing.assert_allclose(full_batch.data[row], full.data,
                                           atol=TOLERANCE)
                for split in range(3):
                    np.testing.assert_allclose(prefix_batch[split].data[row],
                                               prefixes[split].data,
                                               atol=TOLERANCE, err_msg=f"split {split}")


# ------------------------------------------------------------- plugin parity
class TestPluginBatchParity:
    @pytest.mark.parametrize("config_kwargs", [
        {"use_fusion": False},
        {"use_fusion": False, "projection": "vanilla"},
        {"factor_dim": 4, "fusion_hidden": 8},
        {"factor_dim": 4, "fusion_hidden": 8, "fusion_encoder": "mean"},
    ])
    def test_pair_distances_match_per_pair(self, config_kwargs):
        rng = np.random.default_rng(6)
        plugin = LHPlugin(LHPluginConfig(**config_kwargs))
        count, dim = 6, 5
        block_a = rng.normal(size=(count, dim))
        block_b = rng.normal(size=(count, dim))
        sequences_a = [rng.random((t, 2)) for t in (3, 1, 5, 2, 8, 4)]
        sequences_b = [rng.random((t, 2)) for t in (2, 6, 1, 4, 3, 7)]
        with no_grad():
            if plugin.fusion is None:
                batched = plugin.pair_distances_from(Tensor(block_a), Tensor(block_b))
                singles = [plugin.pair_distance(Tensor(block_a[i]),
                                                Tensor(block_b[i])).item()
                           for i in range(count)]
            else:
                factors_a = plugin.fusion.factors_batch(sequences_a)
                factors_b = plugin.fusion.factors_batch(sequences_b)
                batched = plugin.pair_distances_from(Tensor(block_a), Tensor(block_b),
                                                     factors_a, factors_b)
                singles = [plugin.pair_distance(Tensor(block_a[i]), Tensor(block_b[i]),
                                                sequences_a[i], sequences_b[i]).item()
                           for i in range(count)]
        np.testing.assert_allclose(batched.data, singles, atol=TOLERANCE)

    def test_pair_distances_requires_blocks(self):
        plugin = LHPlugin(LHPluginConfig(use_fusion=False))
        with pytest.raises(ValueError):
            plugin.pair_distances_from(Tensor(np.zeros(4)), Tensor(np.zeros(4)))

    def test_pair_distances_requires_factors_with_fusion(self):
        plugin = LHPlugin(LHPluginConfig(factor_dim=2, fusion_hidden=4))
        with pytest.raises(ValueError):
            plugin.pair_distances_from(Tensor(np.zeros((2, 4))),
                                       Tensor(np.zeros((2, 4))))

    def test_factors_numpy_matches_batch_and_single(self):
        rng = np.random.default_rng(7)
        plugin = LHPlugin(LHPluginConfig(factor_dim=3, fusion_hidden=6))
        sequences = [rng.random((t, 2)) for t in (4, 1, 7, 3)]
        lorentz, euclid = plugin.fusion.factors_numpy(sequences, batch_size=2)
        assert lorentz.shape == (4, 3) and euclid.shape == (4, 3)
        with no_grad():
            for row, sequence in enumerate(sequences):
                v_lo, v_eu = plugin.fusion.factors(sequence)
                np.testing.assert_allclose(lorentz[row], v_lo.data, atol=TOLERANCE)
                np.testing.assert_allclose(euclid[row], v_eu.data, atol=TOLERANCE)


# ----------------------------------------------------------- training parity
class TestTrainingStepParity:
    def _losses(self, dataset, truth, model, plugin_config, batched, epochs=2):
        encoder = get_model(model).build(dataset, embedding_dim=8, seed=0)
        plugin = LHPlugin(plugin_config) if plugin_config is not None else None
        trainer = SimilarityTrainer(encoder, plugin=plugin, seed=0, batched=batched)
        return trainer.fit(dataset, truth, epochs=epochs).losses

    @pytest.mark.parametrize("model,plugin_config", [
        ("meanpool", None),
        ("meanpool", LHPluginConfig(factor_dim=4, fusion_hidden=8)),
        ("neutraj", LHPluginConfig(use_fusion=False)),
        ("neutraj", LHPluginConfig(factor_dim=4, fusion_hidden=8)),
    ])
    def test_batched_training_follows_per_sample_losses(self, spatial_dataset,
                                                        spatial_truth, model,
                                                        plugin_config):
        batched = self._losses(spatial_dataset, spatial_truth, model,
                               plugin_config, batched=True)
        reference = self._losses(spatial_dataset, spatial_truth, model,
                                 plugin_config, batched=False)
        np.testing.assert_allclose(batched, reference, rtol=1e-7, atol=TOLERANCE)

    def test_env_toggle_controls_default(self, monkeypatch, spatial_dataset):
        encoder = get_model("meanpool").build(spatial_dataset, embedding_dim=8, seed=0)
        monkeypatch.setenv("REPRO_TRAIN_BATCHED", "0")
        assert not SimilarityTrainer(encoder).batched
        monkeypatch.setenv("REPRO_TRAIN_BATCHED", "1")
        assert SimilarityTrainer(encoder).batched
        assert not SimilarityTrainer(encoder, batched=False).batched

    def test_epoch_pairs_is_index_array(self, spatial_truth):
        sampler = PairSampler(spatial_truth, num_nearest=2, num_random=1, seed=0)
        pairs = sampler.epoch_pairs()
        assert isinstance(pairs, np.ndarray)
        assert pairs.dtype == np.int64
        assert pairs.ndim == 2 and pairs.shape[1] == 2
        np.testing.assert_allclose(sampler.targets_of(pairs),
                                   [spatial_truth[i, j] for i, j in pairs])

    def test_non_square_target_matrix_rejected_up_front(self, spatial_dataset,
                                                        spatial_truth):
        encoder = get_model("meanpool").build(spatial_dataset, embedding_dim=8, seed=0)
        trainer = SimilarityTrainer(encoder, seed=0)
        with pytest.raises(ValueError, match="square"):
            trainer.fit(spatial_dataset, spatial_truth[:, :4], epochs=1)
        with pytest.raises(ValueError, match="holds 10 trajectories"):
            trainer.fit(spatial_dataset, spatial_truth[:4, :4], epochs=1)
