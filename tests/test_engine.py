"""Unit tests for the compute engine: strategies, cache, sampling and kNN guards."""

import math

import numpy as np
import pytest

import repro.engine.executor as executor_module
from repro import distances as D
from repro.engine import (
    MatrixCache,
    MatrixEngine,
    cache_key,
    fingerprint_trajectories,
    get_default_engine,
    set_default_engine,
)
from repro.eval import matrix_build_latency
from repro.violation import iter_triplets, triplet_array, violation_report


@pytest.fixture
def trajectories():
    rng = np.random.default_rng(0)
    return [rng.random((int(rng.integers(2, 12)), 2)) for _ in range(8)]


class TestEngineConfiguration:
    def test_rejects_unknown_strategy(self):
        with pytest.raises(ValueError):
            MatrixEngine(strategy="gpu")

    def test_rejects_bad_chunk_size(self):
        with pytest.raises(ValueError):
            MatrixEngine(chunk_size=0)

    def test_repr_mentions_strategy(self):
        assert "chunked" in repr(MatrixEngine(strategy="chunked"))

    def test_default_engine_is_singleton(self):
        set_default_engine(None)
        first = get_default_engine()
        assert get_default_engine() is first
        replacement = MatrixEngine(strategy="serial")
        assert set_default_engine(replacement) is replacement
        assert get_default_engine() is replacement
        set_default_engine(None)

    def test_default_strategy_env_override(self, monkeypatch):
        monkeypatch.setenv(executor_module._STRATEGY_ENV, "serial")
        set_default_engine(None)
        try:
            assert get_default_engine().strategy == "serial"
        finally:
            set_default_engine(None)


class TestMaxWorkers:
    def test_explicit_non_positive_rejected(self):
        with pytest.raises(ValueError, match="max_workers"):
            MatrixEngine(max_workers=0)
        with pytest.raises(ValueError, match="max_workers"):
            MatrixEngine(max_workers=-2)

    def test_default_and_env_override(self, monkeypatch):
        monkeypatch.delenv(executor_module._MAX_WORKERS_ENV, raising=False)
        assert MatrixEngine().max_workers == min(4, __import__("os").cpu_count() or 1)
        monkeypatch.setenv(executor_module._MAX_WORKERS_ENV, "3")
        assert MatrixEngine().max_workers == 3
        # An explicit argument beats the environment.
        assert MatrixEngine(max_workers=2).max_workers == 2

    def test_env_values_validated(self, monkeypatch):
        monkeypatch.setenv(executor_module._MAX_WORKERS_ENV, "0")
        with pytest.raises(ValueError, match="REPRO_ENGINE_MAX_WORKERS"):
            MatrixEngine()
        monkeypatch.setenv(executor_module._MAX_WORKERS_ENV, "many")
        with pytest.raises(ValueError, match="REPRO_ENGINE_MAX_WORKERS"):
            MatrixEngine()


class TestChunkByteBudget:
    def test_default_budget_and_env_override(self, monkeypatch):
        assert MatrixEngine().chunk_bytes == executor_module.DEFAULT_CHUNK_BYTES
        monkeypatch.setenv(executor_module._CHUNK_BYTES_ENV, "4096")
        assert MatrixEngine().chunk_bytes == 4096
        monkeypatch.setenv(executor_module._CHUNK_BYTES_ENV, "0")
        assert MatrixEngine().chunk_bytes is None  # disabled
        assert MatrixEngine(chunk_bytes=2048).chunk_bytes == 2048
        assert MatrixEngine(chunk_bytes=-1).chunk_bytes is None

    def test_budget_splits_chunks_without_changing_results(self):
        rng = np.random.default_rng(5)
        # Skewed lengths: a few long trajectories dominate the padded footprint.
        trajectories = [rng.random((length, 2))
                        for length in (3, 4, 5, 6, 40, 45, 50, 60)]
        unbounded = MatrixEngine(cache=None, chunk_bytes=-1)
        tight = MatrixEngine(cache=None, chunk_bytes=100 * 1024)
        np.testing.assert_array_equal(unbounded.pairwise(trajectories, "dtw"),
                                      tight.pairwise(trajectories, "dtw"))

    def test_plan_respects_both_caps(self):
        lengths = np.full(45, 30, dtype=np.int64)
        order = np.arange(45)
        # Pair-count cap alone: one chunk of at most chunk_size pairs each.
        engine = MatrixEngine(cache=None, chunk_size=7, chunk_bytes=-1)
        plan = engine._plan_chunks(order, lengths, lengths)
        assert [len(chunk) for chunk in plan] == [7] * 6 + [3]
        # A byte budget that fits ~4 padded 31x31 tables caps chunks earlier.
        budget = 16 * 4 * 31 * 31
        engine = MatrixEngine(cache=None, chunk_size=7, chunk_bytes=budget)
        plan = engine._plan_chunks(order, lengths, lengths)
        assert all(len(chunk) <= 4 for chunk in plan)
        assert np.concatenate(plan).tolist() == order.tolist()
        # The budget never starves a chunk below one pair, however tight.
        engine = MatrixEngine(cache=None, chunk_size=7, chunk_bytes=1)
        plan = engine._plan_chunks(order, lengths, lengths)
        assert [len(chunk) for chunk in plan] == [1] * 45

    def test_plan_matches_greedy_reference(self):
        """The vectorized cummax plan equals the pair-at-a-time greedy walk."""
        rng = np.random.default_rng(8)
        for trial in range(20):
            pairs = int(rng.integers(1, 60))
            len_a = rng.integers(1, 50, size=pairs)
            len_b = rng.integers(1, 50, size=pairs)
            order = np.argsort(len_a * len_b, kind="stable")
            chunk_size = int(rng.integers(1, 12))
            budget = int(rng.integers(16, 16 * 12 * 51 * 51))
            engine = MatrixEngine(cache=None, chunk_size=chunk_size,
                                  chunk_bytes=budget)
            plan = engine._plan_chunks(order, len_a, len_b)
            expected, start = [], 0
            while start < len(order):
                stop, max_n, max_m = start, 0, 0
                while stop < len(order) and stop - start < chunk_size:
                    n = max(max_n, int(len_a[order[stop]]))
                    m = max(max_m, int(len_b[order[stop]]))
                    if stop > start and 16 * (stop - start + 1) * (n + 1) * (m + 1) > budget:
                        break
                    max_n, max_m, stop = n, m, stop + 1
                expected.append(order[start:stop].tolist())
                start = stop
            assert [chunk.tolist() for chunk in plan] == expected, trial


class TestExperimentSettingsEngine:
    def test_explicit_strategy_shares_default_cache(self):
        from repro.experiments.runner import ExperimentSettings

        set_default_engine(None)
        explicit = ExperimentSettings(engine_strategy="chunked").make_engine()
        assert explicit.cache is get_default_engine().cache
        assert explicit.strategy == "chunked"

    def test_reference_configuration_is_uncached(self):
        from repro.experiments.runner import ExperimentSettings

        engine = ExperimentSettings(use_vectorized_kernels=False).make_engine()
        assert engine.cache is None
        assert engine.use_kernels is False


class TestEngineExecution:
    def test_small_and_empty_inputs(self):
        engine = MatrixEngine()
        assert engine.pairwise([], "dtw").shape == (0, 0)
        single = engine.pairwise([np.zeros((3, 2))], "dtw")
        assert single.shape == (1, 1) and single[0, 0] == 0.0

    def test_matrix_is_symmetric_with_zero_diagonal(self, trajectories):
        matrix = MatrixEngine(chunk_size=5).pairwise(trajectories, "dtw")
        np.testing.assert_allclose(matrix, matrix.T)
        np.testing.assert_allclose(np.diag(matrix), 0.0, atol=1e-12)

    def test_callable_measure(self, trajectories):
        matrix = MatrixEngine().pairwise(trajectories, D.hausdorff_distance)
        expected = MatrixEngine(strategy="serial", use_kernels=False).pairwise(
            trajectories, "hausdorff")
        np.testing.assert_allclose(matrix, expected)

    def test_process_strategy_multiple_chunks(self, trajectories):
        engine = MatrixEngine(strategy="process", chunk_size=4, max_workers=2)
        expected = MatrixEngine(strategy="serial", use_kernels=False).pairwise(
            trajectories, "dtw")
        np.testing.assert_allclose(engine.pairwise(trajectories, "dtw"), expected,
                                   atol=1e-9)

    def test_violation_statistics_delegates(self, trajectories):
        matrix = MatrixEngine().pairwise(trajectories, "dtw")
        stats = MatrixEngine().violation_statistics(matrix, max_triplets=50, seed=1)
        assert stats == violation_report(matrix, max_triplets=50, seed=1)


class TestMatrixCache:
    def test_fingerprint_sensitivity(self, trajectories):
        base = fingerprint_trajectories(trajectories)
        assert base == fingerprint_trajectories([t.copy() for t in trajectories])
        perturbed = [t.copy() for t in trajectories]
        perturbed[0][0, 0] += 1e-9
        assert base != fingerprint_trajectories(perturbed)

    def test_cache_key_depends_on_measure_and_kwargs(self):
        fp = "abc"
        assert cache_key(fp, "dtw", {}) != cache_key(fp, "edr", {})
        assert cache_key(fp, "edr", {"epsilon": 0.1}) != cache_key(fp, "edr", {"epsilon": 0.2})
        assert cache_key(fp, "dtw", {}) != cache_key(fp, "dtw", {}, kind="cross:3")

    def test_engine_cache_hit(self, trajectories):
        engine = MatrixEngine(cache=MatrixCache())
        first = engine.pairwise(trajectories, "dtw")
        assert engine.cache.misses == 1
        second = engine.pairwise(trajectories, "dtw")
        assert engine.cache.hits == 1
        np.testing.assert_allclose(first, second)
        second[0, 1] = -1.0  # cached copies must be isolated from caller mutation
        np.testing.assert_allclose(engine.pairwise(trajectories, "dtw"), first)

    def test_disk_persistence(self, tmp_path, trajectories):
        first_cache = MatrixCache(directory=tmp_path)
        engine = MatrixEngine(cache=first_cache)
        matrix = engine.pairwise(trajectories, "dtw")
        fresh = MatrixEngine(cache=MatrixCache(directory=tmp_path))
        np.testing.assert_allclose(fresh.pairwise(trajectories, "dtw"), matrix)
        assert fresh.cache.hits == 1

    def test_lru_eviction(self):
        cache = MatrixCache(max_entries=2)
        for index in range(3):
            cache.put(str(index), np.full((1, 1), float(index)))
        assert cache.get("0") is None
        assert cache.get("2") is not None

    def test_callable_measures_not_cached(self, trajectories):
        engine = MatrixEngine(cache=MatrixCache())
        engine.pairwise(trajectories, D.hausdorff_distance)
        assert len(engine.cache) == 0


class TestTripletSampling:
    def test_near_exhaustive_sample_is_fast_and_unique(self):
        count = 12
        total = math.comb(count, 3)
        triplets = triplet_array(count, total - 1, np.random.default_rng(0))
        assert len(triplets) == total - 1
        assert len({tuple(row) for row in triplets.tolist()}) == total - 1

    def test_sample_rows_are_sorted(self):
        triplets = triplet_array(30, 200, np.random.default_rng(1))
        assert np.all(triplets[:, 0] < triplets[:, 1])
        assert np.all(triplets[:, 1] < triplets[:, 2])

    def test_exhaustive_matches_combinations(self):
        from itertools import combinations

        triplets = triplet_array(7)
        assert [tuple(row) for row in triplets.tolist()] == list(combinations(range(7), 3))

    def test_deterministic_for_seeded_rng(self):
        first = triplet_array(25, 100, np.random.default_rng(42))
        second = triplet_array(25, 100, np.random.default_rng(42))
        np.testing.assert_array_equal(first, second)

    def test_unranking_covers_every_triplet(self):
        from repro.violation.metrics import _unrank_triplets

        count = 10
        total = math.comb(count, 3)
        everything = _unrank_triplets(np.arange(total), count)
        assert len({tuple(row) for row in everything.tolist()}) == total

    def test_iter_triplets_matches_array_sampling(self):
        listed = list(iter_triplets(15, 40, np.random.default_rng(3)))
        array = triplet_array(15, 40, np.random.default_rng(3))
        assert listed == [tuple(row) for row in array.tolist()]

    def test_small_count_yields_nothing(self):
        assert triplet_array(2).shape == (0, 3)
        assert list(iter_triplets(2)) == []


class TestKnnValidation:
    def test_k_larger_than_candidates_raises(self):
        matrix = np.random.default_rng(0).random((4, 4))
        with pytest.raises(ValueError, match="exceeds"):
            D.knn_from_matrix(matrix, 4, exclude_self=True)
        with pytest.raises(ValueError, match="exceeds"):
            D.knn_from_matrix(matrix, 5, exclude_self=False)

    def test_k_at_limit_is_allowed(self):
        matrix = np.random.default_rng(0).random((4, 4))
        assert D.knn_from_matrix(matrix, 3, exclude_self=True).shape == (4, 3)
        assert D.knn_from_matrix(matrix, 4, exclude_self=False).shape == (4, 4)


class TestEfficiencyProbe:
    def test_matrix_build_latency_reports_strategy(self, trajectories):
        result = matrix_build_latency(trajectories, "dtw",
                                      engine=MatrixEngine(strategy="chunked"),
                                      repeats=1)
        assert result["latency_seconds"] > 0.0
        assert result["num_trajectories"] == len(trajectories)
        assert result["strategy"] == "chunked"
