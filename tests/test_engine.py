"""Unit tests for the compute engine: strategies, cache, sampling and kNN guards."""

import math

import numpy as np
import pytest

import repro.engine.executor as executor_module
from repro import distances as D
from repro.engine import (
    MatrixCache,
    MatrixEngine,
    cache_key,
    fingerprint_trajectories,
    get_default_engine,
    set_default_engine,
)
from repro.eval import matrix_build_latency
from repro.violation import iter_triplets, triplet_array, violation_report


@pytest.fixture
def trajectories():
    rng = np.random.default_rng(0)
    return [rng.random((int(rng.integers(2, 12)), 2)) for _ in range(8)]


class TestEngineConfiguration:
    def test_rejects_unknown_strategy(self):
        with pytest.raises(ValueError):
            MatrixEngine(strategy="gpu")

    def test_rejects_bad_chunk_size(self):
        with pytest.raises(ValueError):
            MatrixEngine(chunk_size=0)

    def test_repr_mentions_strategy(self):
        assert "chunked" in repr(MatrixEngine(strategy="chunked"))

    def test_default_engine_is_singleton(self):
        set_default_engine(None)
        first = get_default_engine()
        assert get_default_engine() is first
        replacement = MatrixEngine(strategy="serial")
        assert set_default_engine(replacement) is replacement
        assert get_default_engine() is replacement
        set_default_engine(None)

    def test_default_strategy_env_override(self, monkeypatch):
        monkeypatch.setenv(executor_module._STRATEGY_ENV, "serial")
        set_default_engine(None)
        try:
            assert get_default_engine().strategy == "serial"
        finally:
            set_default_engine(None)


class TestExperimentSettingsEngine:
    def test_explicit_strategy_shares_default_cache(self):
        from repro.experiments.runner import ExperimentSettings

        set_default_engine(None)
        explicit = ExperimentSettings(engine_strategy="chunked").make_engine()
        assert explicit.cache is get_default_engine().cache
        assert explicit.strategy == "chunked"

    def test_reference_configuration_is_uncached(self):
        from repro.experiments.runner import ExperimentSettings

        engine = ExperimentSettings(use_vectorized_kernels=False).make_engine()
        assert engine.cache is None
        assert engine.use_kernels is False


class TestEngineExecution:
    def test_small_and_empty_inputs(self):
        engine = MatrixEngine()
        assert engine.pairwise([], "dtw").shape == (0, 0)
        single = engine.pairwise([np.zeros((3, 2))], "dtw")
        assert single.shape == (1, 1) and single[0, 0] == 0.0

    def test_matrix_is_symmetric_with_zero_diagonal(self, trajectories):
        matrix = MatrixEngine(chunk_size=5).pairwise(trajectories, "dtw")
        np.testing.assert_allclose(matrix, matrix.T)
        np.testing.assert_allclose(np.diag(matrix), 0.0, atol=1e-12)

    def test_callable_measure(self, trajectories):
        matrix = MatrixEngine().pairwise(trajectories, D.hausdorff_distance)
        expected = MatrixEngine(strategy="serial", use_kernels=False).pairwise(
            trajectories, "hausdorff")
        np.testing.assert_allclose(matrix, expected)

    def test_process_strategy_multiple_chunks(self, trajectories):
        engine = MatrixEngine(strategy="process", chunk_size=4, max_workers=2)
        expected = MatrixEngine(strategy="serial", use_kernels=False).pairwise(
            trajectories, "dtw")
        np.testing.assert_allclose(engine.pairwise(trajectories, "dtw"), expected,
                                   atol=1e-9)

    def test_violation_statistics_delegates(self, trajectories):
        matrix = MatrixEngine().pairwise(trajectories, "dtw")
        stats = MatrixEngine().violation_statistics(matrix, max_triplets=50, seed=1)
        assert stats == violation_report(matrix, max_triplets=50, seed=1)


class TestMatrixCache:
    def test_fingerprint_sensitivity(self, trajectories):
        base = fingerprint_trajectories(trajectories)
        assert base == fingerprint_trajectories([t.copy() for t in trajectories])
        perturbed = [t.copy() for t in trajectories]
        perturbed[0][0, 0] += 1e-9
        assert base != fingerprint_trajectories(perturbed)

    def test_cache_key_depends_on_measure_and_kwargs(self):
        fp = "abc"
        assert cache_key(fp, "dtw", {}) != cache_key(fp, "edr", {})
        assert cache_key(fp, "edr", {"epsilon": 0.1}) != cache_key(fp, "edr", {"epsilon": 0.2})
        assert cache_key(fp, "dtw", {}) != cache_key(fp, "dtw", {}, kind="cross:3")

    def test_engine_cache_hit(self, trajectories):
        engine = MatrixEngine(cache=MatrixCache())
        first = engine.pairwise(trajectories, "dtw")
        assert engine.cache.misses == 1
        second = engine.pairwise(trajectories, "dtw")
        assert engine.cache.hits == 1
        np.testing.assert_allclose(first, second)
        second[0, 1] = -1.0  # cached copies must be isolated from caller mutation
        np.testing.assert_allclose(engine.pairwise(trajectories, "dtw"), first)

    def test_disk_persistence(self, tmp_path, trajectories):
        first_cache = MatrixCache(directory=tmp_path)
        engine = MatrixEngine(cache=first_cache)
        matrix = engine.pairwise(trajectories, "dtw")
        fresh = MatrixEngine(cache=MatrixCache(directory=tmp_path))
        np.testing.assert_allclose(fresh.pairwise(trajectories, "dtw"), matrix)
        assert fresh.cache.hits == 1

    def test_lru_eviction(self):
        cache = MatrixCache(max_entries=2)
        for index in range(3):
            cache.put(str(index), np.full((1, 1), float(index)))
        assert cache.get("0") is None
        assert cache.get("2") is not None

    def test_callable_measures_not_cached(self, trajectories):
        engine = MatrixEngine(cache=MatrixCache())
        engine.pairwise(trajectories, D.hausdorff_distance)
        assert len(engine.cache) == 0


class TestTripletSampling:
    def test_near_exhaustive_sample_is_fast_and_unique(self):
        count = 12
        total = math.comb(count, 3)
        triplets = triplet_array(count, total - 1, np.random.default_rng(0))
        assert len(triplets) == total - 1
        assert len({tuple(row) for row in triplets.tolist()}) == total - 1

    def test_sample_rows_are_sorted(self):
        triplets = triplet_array(30, 200, np.random.default_rng(1))
        assert np.all(triplets[:, 0] < triplets[:, 1])
        assert np.all(triplets[:, 1] < triplets[:, 2])

    def test_exhaustive_matches_combinations(self):
        from itertools import combinations

        triplets = triplet_array(7)
        assert [tuple(row) for row in triplets.tolist()] == list(combinations(range(7), 3))

    def test_deterministic_for_seeded_rng(self):
        first = triplet_array(25, 100, np.random.default_rng(42))
        second = triplet_array(25, 100, np.random.default_rng(42))
        np.testing.assert_array_equal(first, second)

    def test_unranking_covers_every_triplet(self):
        from repro.violation.metrics import _unrank_triplets

        count = 10
        total = math.comb(count, 3)
        everything = _unrank_triplets(np.arange(total), count)
        assert len({tuple(row) for row in everything.tolist()}) == total

    def test_iter_triplets_matches_array_sampling(self):
        listed = list(iter_triplets(15, 40, np.random.default_rng(3)))
        array = triplet_array(15, 40, np.random.default_rng(3))
        assert listed == [tuple(row) for row in array.tolist()]

    def test_small_count_yields_nothing(self):
        assert triplet_array(2).shape == (0, 3)
        assert list(iter_triplets(2)) == []


class TestKnnValidation:
    def test_k_larger_than_candidates_raises(self):
        matrix = np.random.default_rng(0).random((4, 4))
        with pytest.raises(ValueError, match="exceeds"):
            D.knn_from_matrix(matrix, 4, exclude_self=True)
        with pytest.raises(ValueError, match="exceeds"):
            D.knn_from_matrix(matrix, 5, exclude_self=False)

    def test_k_at_limit_is_allowed(self):
        matrix = np.random.default_rng(0).random((4, 4))
        assert D.knn_from_matrix(matrix, 3, exclude_self=True).shape == (4, 3)
        assert D.knn_from_matrix(matrix, 4, exclude_self=False).shape == (4, 4)


class TestEfficiencyProbe:
    def test_matrix_build_latency_reports_strategy(self, trajectories):
        result = matrix_build_latency(trajectories, "dtw",
                                      engine=MatrixEngine(strategy="chunked"),
                                      repeats=1)
        assert result["latency_seconds"] > 0.0
        assert result["num_trajectories"] == len(trajectories)
        assert result["strategy"] == "chunked"
