"""Integration tests: the full pipeline and the paper's central claims end-to-end."""

import numpy as np
import pytest

import repro
from repro import LHPlugin, LHPluginConfig, generate_dataset
from repro.core import cosh_projection, lorentz_distance_matrix
from repro.distances import normalize_matrix, pairwise_distance_matrix
from repro.eval import evaluate_retrieval
from repro.models import MeanPoolEncoder, NeutrajEncoder
from repro.training import SimilarityTrainer
from repro.violation import ratio_of_violation, violation_report


class TestPackageSurface:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_public_names_importable(self):
        for name in repro.__all__:
            assert hasattr(repro, name)


class TestCentralClaims:
    def test_euclidean_embeddings_cannot_violate_but_lorentz_can(self):
        """The core observation of the paper, on raw embeddings."""
        rng = np.random.default_rng(0)
        embeddings = rng.normal(size=(20, 6)) * 2
        euclidean = np.sqrt(((embeddings[:, None] - embeddings[None]) ** 2).sum(-1))
        assert ratio_of_violation(euclidean, max_triplets=800) == 0.0

        hyperbolic = cosh_projection(embeddings, beta=1.0, c=2.0)
        lorentz = lorentz_distance_matrix(hyperbolic, beta=1.0)
        np.fill_diagonal(lorentz, 0.0)
        assert ratio_of_violation(lorentz, max_triplets=800) > 0.0

    def test_ground_truth_measures_violate_on_synthetic_data(self):
        dataset = generate_dataset("chengdu", size=25, seed=1)
        matrix = normalize_matrix(
            pairwise_distance_matrix(dataset.point_arrays(spatial_only=True), "dtw"))
        report = violation_report(matrix, max_triplets=1500)
        assert report["ratio_of_violation"] > 0.03
        assert report["average_relative_violation"] > 0.0

    def test_fused_distance_matrix_can_violate_triangle_inequality(self):
        """After training, the plugin's distance space is not constrained to be metric."""
        dataset = generate_dataset("chengdu", size=20, seed=2)
        truth = normalize_matrix(
            pairwise_distance_matrix(dataset.point_arrays(spatial_only=True), "dtw"))
        encoder = MeanPoolEncoder.build(dataset, embedding_dim=8, seed=0)
        plugin = LHPlugin(LHPluginConfig(factor_dim=4, fusion_hidden=8))
        trainer = SimilarityTrainer(encoder, plugin=plugin, learning_rate=1e-2, seed=0)
        trainer.fit(dataset, truth, epochs=2)
        predicted = trainer.model_distance_matrix(dataset)
        assert ratio_of_violation(predicted, max_triplets=800) > 0.0

    def test_plugin_fits_violating_targets_better_than_euclidean(self):
        """Regression quality on a severely violating synthetic target matrix.

        A tiny fixed set of embeddings cannot reproduce targets that violate the
        triangle inequality with a Euclidean distance; the fused Lorentz distance has
        the extra degrees of freedom to get closer.
        """
        dataset = generate_dataset("porto", size=18, seed=3)
        truth = normalize_matrix(
            pairwise_distance_matrix(dataset.point_arrays(spatial_only=True), "dtw"))

        def final_loss(plugin):
            encoder = MeanPoolEncoder.build(dataset, embedding_dim=8, seed=0)
            trainer = SimilarityTrainer(encoder, plugin=plugin, learning_rate=1e-2, seed=0)
            history = trainer.fit(dataset, truth, epochs=5)
            return history.losses[-1]

        euclidean_loss = final_loss(None)
        fused_loss = final_loss(LHPlugin(LHPluginConfig(factor_dim=4, fusion_hidden=8)))
        assert fused_loss <= euclidean_loss * 1.25


class TestEndToEndPipelines:
    def test_spatial_pipeline_beats_untrained_baseline(self):
        dataset = generate_dataset("chengdu", size=18, seed=4)
        truth = normalize_matrix(
            pairwise_distance_matrix(dataset.point_arrays(spatial_only=True), "dtw"))
        encoder = MeanPoolEncoder.build(dataset, embedding_dim=8, seed=0)
        untrained = SimilarityTrainer(encoder, seed=0).model_distance_matrix(dataset)
        before = evaluate_retrieval(untrained, truth, hr_ks=(5,), ndcg_ks=(5,))["hr@5"]

        trainer = SimilarityTrainer(encoder, learning_rate=1e-2, seed=0)
        trainer.fit(dataset, truth, epochs=5)
        after = evaluate_retrieval(trainer.model_distance_matrix(dataset), truth,
                                   hr_ks=(5,), ndcg_ks=(5,))["hr@5"]
        assert after >= before

    def test_recurrent_model_with_plugin_trains(self):
        dataset = generate_dataset("chengdu", size=10, seed=5)
        truth = normalize_matrix(
            pairwise_distance_matrix(dataset.point_arrays(spatial_only=True), "sspd"))
        encoder = NeutrajEncoder.build(dataset, embedding_dim=8, hidden_dim=12, seed=0)
        plugin = LHPlugin(LHPluginConfig(factor_dim=4, fusion_hidden=8))
        trainer = SimilarityTrainer(encoder, plugin=plugin, learning_rate=5e-3, seed=0)
        history = trainer.fit(dataset, truth, epochs=1)
        assert np.isfinite(history.losses[0])
        matrix = trainer.model_distance_matrix(dataset)
        assert np.isfinite(matrix).all()

    def test_spatiotemporal_pipeline(self):
        dataset = generate_dataset("tdrive", size=10, seed=6)
        truth = normalize_matrix(
            pairwise_distance_matrix(dataset.point_arrays(spatial_only=False), "tp"))
        plugin = LHPlugin(LHPluginConfig(factor_dim=4, fusion_hidden=8, point_features=3))
        encoder = MeanPoolEncoder.build(dataset, embedding_dim=8, seed=0)
        trainer = SimilarityTrainer(encoder, plugin=plugin, learning_rate=5e-3, seed=0)
        history = trainer.fit(dataset, truth, epochs=2)
        assert history.losses[-1] <= history.losses[0] * 2.0

    def test_retrieval_from_pre_embedded_database(self):
        dataset = generate_dataset("chengdu", size=15, seed=7)
        truth = normalize_matrix(
            pairwise_distance_matrix(dataset.point_arrays(spatial_only=True), "dtw"))
        encoder = MeanPoolEncoder.build(dataset, embedding_dim=8, seed=0)
        plugin = LHPlugin(LHPluginConfig(factor_dim=4, fusion_hidden=8))
        trainer = SimilarityTrainer(encoder, plugin=plugin, learning_rate=1e-2, seed=0)
        trainer.fit(dataset, truth, epochs=2)

        from repro.data import Normalizer

        embeddings = trainer.embed(dataset)
        normalizer = Normalizer.fit(dataset)
        sequences = [normalizer.transform_points(t.coordinates) for t in dataset]
        database = plugin.embed_database(embeddings, sequences)
        distances = plugin.distance_matrix(database)
        assert distances.shape == (15, 15)
        metrics = evaluate_retrieval(distances, truth, hr_ks=(5,), ndcg_ks=(5,))
        assert 0.0 <= metrics["hr@5"] <= 1.0
