"""Chaos suite for the resilience layer: faults, retries, deadlines, ladder.

The invariant every scenario here re-asserts, whatever is injected: **a query
that completes returns values bit-identical to the serial no-fault
reference**, telemetry cell counts match a clean run (retried chunks fold
exactly once), the retry budget is respected, and no shared-memory segment
outlives its call.  Faults come from :mod:`repro.resilience.faults` —
deterministic, seeded, off by default — plus real ``SIGKILL``s for the
worker-death paths the injector cannot fake better than the OS can.
"""

from __future__ import annotations

import os
import signal
import threading
import time
import warnings

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

import repro.engine.shared as shared_module
from repro.config import EnvError, env_flag, env_float, env_int
from repro.engine import (
    MatrixEngine,
    dp_cell_count,
    live_arena_names,
    reset_dp_cell_count,
    reset_shared_pool,
    shared_memory_available,
)
from repro.engine.arena_cache import reset_arena_cache
from repro.obs.registry import get_registry
from repro.resilience import (
    DEADLINE_ENV,
    FAULTS_ENV,
    LADDER,
    RETRIES_ENV,
    DeadlineExceededError,
    DegradationLadder,
    FaultPlan,
    OverloadedError,
    ResiliencePolicy,
    RetryBudgetExceededError,
    TransientFaultError,
    clear_fault_plan,
    current_spec,
    ensure_plan,
    fault_point,
    install_fault_plan,
)
from repro.resilience import faults as faults_module
from repro.search import SearchService, StreamMonitor
from repro.search.service import MAX_PENDING_ENV

needs_shm = pytest.mark.skipif(not shared_memory_available(),
                               reason="multiprocessing.shared_memory unavailable")


@pytest.fixture(autouse=True)
def _fault_free():
    """No fault plan — and no cached arena from earlier modules — leaks in.

    Draining the process-wide arena cache up front makes the suite's
    ``live_arena_names() == frozenset()`` asserts mean "this test leaked
    nothing" rather than "nobody before me cached anything".
    """
    clear_fault_plan()
    reset_arena_cache()
    yield
    clear_fault_plan()


@pytest.fixture(scope="module")
def spatial():
    rng = np.random.default_rng(7)
    return [rng.random((int(rng.integers(4, 12)), 2)) for _ in range(10)]


def serial_reference(spatial, measure="dtw", **kwargs):
    return MatrixEngine(strategy="serial", cache=None).pairwise(
        spatial, measure, **kwargs)


def counter_value(name: str) -> int:
    return get_registry().counter(name).value


# ---------------------------------------------------------------------- parsing

class TestFaultPlanParsing:
    def test_grammar_round_trip(self):
        plan = FaultPlan.parse(
            "seed=42;worker_crash@call=3;slow_worker@p=0.1,delay=0.2")
        assert plan.seed == 42
        kinds = [rule.kind for rule in plan.rules]
        assert kinds == ["worker_crash", "slow_worker"]
        assert plan.rules[0].call == 3
        assert plan.rules[1].probability == 0.1
        assert plan.rules[1].delay == 0.2

    @pytest.mark.parametrize("spec", [
        "explode@call=1",            # unknown kind
        "worker_crash",              # missing trigger
        "worker_crash@call=zero",    # non-integer call
        "worker_crash@call=0",       # call < 1
        "slow_worker@p=1.5",         # p out of range
        "slow_worker@p=0.1,delay=-1",  # negative delay
        "worker_crash@boom=1",       # unknown option
        "seed=abc",                  # bad seed
        "frobnicate",                # not a rule at all
    ])
    def test_malformed_specs_name_the_variable(self, spec):
        with pytest.raises(ValueError, match=FAULTS_ENV):
            FaultPlan.parse(spec)

    def test_call_rule_fires_on_exactly_the_nth_invocation(self):
        plan = FaultPlan.parse("worker_crash@call=3")
        assert [plan.evaluate("worker_crash") is not None
                for _ in range(5)] == [False, False, True, False, False]

    def test_probabilistic_rules_replay_bit_identically(self):
        decisions = []
        for _ in range(2):
            plan = FaultPlan.parse("seed=9;slow_worker@p=0.3")
            decisions.append([plan.evaluate("slow_worker") is not None
                              for _ in range(64)])
        assert decisions[0] == decisions[1]
        assert any(decisions[0]) and not all(decisions[0])

    def test_unrelated_kinds_stay_rng_free(self):
        plan = FaultPlan.parse("seed=9;slow_worker@p=0.5")
        for _ in range(10):
            assert plan.evaluate("worker_crash") is None
        assert plan._rngs.keys() <= {"slow_worker"}

    def test_malformed_env_warns_and_runs_fault_free(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV, "garbage@nope")
        with pytest.warns(RuntimeWarning, match=FAULTS_ENV):
            assert faults_module._plan_from_env() is None

    def test_ensure_plan_preserves_state_on_matching_token(self):
        plan = install_fault_plan("worker_crash@call=3")
        plan.evaluate("worker_crash")
        token = current_spec()
        ensure_plan(token)  # matching token: no-op, counters survive
        assert faults_module._PLAN is plan
        assert plan._calls["worker_crash"] == 1
        ensure_plan(("worker_crash@call=5", 0))  # changed: fresh plan
        assert faults_module._PLAN is not plan
        ensure_plan(None)
        assert faults_module._PLAN is None

    def test_trigger_counts_and_raises(self):
        install_fault_plan("shm_attach_fail@call=1")
        before = counter_value("resilience.faults_injected")
        with pytest.raises(TransientFaultError) as info:
            fault_point("shm_attach_fail")
        assert info.value.kind == "shm_attach_fail"
        assert counter_value("resilience.faults_injected") == before + 1
        fault_point("shm_attach_fail")  # call 2: no rule, no fault


# ------------------------------------------------------------- disabled overhead

class TestDisabledOverhead:
    def test_disabled_fault_point_overhead_is_negligible(self):
        # Same contract (and same guard style) as a disabled obs span: one
        # module-global load plus one ``is None`` test.  Budget is relative
        # (20x an empty function call) with an absolute 1.5us floor so a slow
        # shared box does not flake.
        clear_fault_plan()
        iterations = 50_000

        def timed(fn):
            best = float("inf")
            for _ in range(5):
                start = time.perf_counter()
                for _ in range(iterations):
                    fn()
                best = min(best, time.perf_counter() - start)
            return best / iterations

        def noop(_kind="worker_crash"):
            return None

        baseline = timed(lambda: noop("worker_crash"))
        disabled = timed(lambda: fault_point("worker_crash"))
        assert disabled < max(1.5e-6, 20.0 * baseline), (
            f"disabled fault_point costs {disabled * 1e9:.0f}ns/call "
            f"(baseline {baseline * 1e9:.0f}ns)")


# ----------------------------------------------------------------------- policy

class TestResiliencePolicy:
    def test_defaults_and_normalisation(self):
        policy = ResiliencePolicy()
        assert policy.deadline is None and policy.max_retries == 2
        assert ResiliencePolicy(deadline=0).deadline is None
        assert ResiliencePolicy(deadline=-3).deadline is None
        with pytest.raises(ValueError):
            ResiliencePolicy(max_retries=-1)

    def test_from_env_reads_and_overrides(self, monkeypatch):
        monkeypatch.setenv(DEADLINE_ENV, "1.5")
        monkeypatch.setenv(RETRIES_ENV, "5")
        policy = ResiliencePolicy.from_env()
        assert policy.deadline == 1.5 and policy.max_retries == 5
        assert ResiliencePolicy.from_env(max_retries=0).max_retries == 0

    @pytest.mark.parametrize("env,value", [(DEADLINE_ENV, "soon"),
                                           (RETRIES_ENV, "-1"),
                                           (RETRIES_ENV, "many")])
    def test_env_errors_name_the_variable(self, monkeypatch, env, value):
        monkeypatch.setenv(env, value)
        with pytest.raises(ValueError, match=env):
            ResiliencePolicy.from_env()

    def test_backoff_is_deterministic_and_bounded(self):
        policy = ResiliencePolicy(backoff_base=0.05, backoff_factor=2.0,
                                  backoff_max=0.4, jitter=0.25, seed=3)
        delays = [policy.backoff_delay(n) for n in range(1, 6)]
        assert delays == [policy.backoff_delay(n) for n in range(1, 6)]
        assert all(d <= 0.4 * 1.25 + 1e-12 for d in delays)
        assert policy.backoff_delay(0) == 0.0
        # Different seeds jitter differently (the point of seeding at all).
        other = ResiliencePolicy(backoff_base=0.05, backoff_max=0.4, seed=4)
        assert other.backoff_delay(1) != policy.backoff_delay(1)


# ----------------------------------------------------------------------- ladder

class TestDegradationLadder:
    def test_steps_down_then_probes_back_up(self):
        ladder = DegradationLadder(breaker_threshold=2, probe_interval=3)
        assert ladder.effective_strategy("shared") == "shared"
        ladder.record_failure("shared")  # streak 1 of 2: no step yet
        assert not ladder.degraded
        with pytest.warns(RuntimeWarning, match="degrading"):
            ladder.record_failure("shared")
        assert ladder.degraded
        assert ladder.effective_strategy("shared") == "process"
        # The warning is one-time per ladder.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            ladder.record_failure("shared")
            ladder.record_failure("shared")
        assert ladder.effective_strategy("shared") == "chunked"
        for _ in range(3):
            ladder.record_success()
        assert ladder.effective_strategy("shared") == "process"
        for _ in range(3):
            ladder.record_success()
        assert not ladder.degraded

    def test_clamps_at_serial(self):
        ladder = DegradationLadder(breaker_threshold=1)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            for _ in range(10):
                ladder.record_failure("process")
        assert ladder.effective_strategy("process") == "serial"
        assert ladder.offset == len(LADDER) - 1 - LADDER.index("process")

    def test_reset(self):
        ladder = DegradationLadder(breaker_threshold=1)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            ladder.record_failure("shared")
        ladder.reset()
        assert not ladder.degraded
        assert ladder.effective_strategy("shared") == "shared"


# ---------------------------------------------------------- engine under faults

def resilient_engine(strategy: str, **policy_overrides) -> MatrixEngine:
    defaults = dict(max_retries=2, backoff_base=0.01, backoff_max=0.05)
    defaults.update(policy_overrides)
    return MatrixEngine(strategy=strategy, cache=None, chunk_size=3,
                        max_workers=2, policy=ResiliencePolicy(**defaults))


@needs_shm
class TestEngineUnderFaults:
    def test_transient_attach_fault_is_retried_bit_identically(self, spatial):
        expected = serial_reference(spatial)
        engine = resilient_engine("shared")
        install_fault_plan("shm_attach_fail@call=1")
        before = counter_value("resilience.retries")
        np.testing.assert_array_equal(engine.pairwise(spatial, "dtw"), expected)
        assert counter_value("resilience.retries") > before
        assert engine.last_dispatch["retries"] <= engine.policy.max_retries
        assert live_arena_names() == frozenset()
        assert engine._breaker is not None and not engine._breaker.degraded

    @pytest.mark.parametrize("strategy", ["shared", "process"])
    def test_retried_chunks_never_double_count_cells(self, spatial, strategy):
        # The no-double-count matrix, extended to retried-chunk recovery:
        # whatever subset of chunks completed before each crash, total DP
        # cells equal a clean run because each chunk's delta folds exactly
        # once — harvested, retried or ladder-fallback alike.
        expected = serial_reference(spatial)
        clean = MatrixEngine(strategy=strategy, cache=None, chunk_size=3,
                             max_workers=2)
        reset_dp_cell_count()
        np.testing.assert_array_equal(clean.pairwise(spatial, "dtw"), expected)
        clean_cells = dp_cell_count()
        engine = resilient_engine(strategy)
        install_fault_plan("worker_crash@call=2")
        reset_dp_cell_count()
        with warnings.catch_warnings():
            # The ladder may legitimately degrade if the budget drains.
            warnings.simplefilter("ignore", RuntimeWarning)
            np.testing.assert_array_equal(engine.pairwise(spatial, "dtw"),
                                          expected)
        assert dp_cell_count() == clean_cells
        assert live_arena_names() == frozenset()

    def test_hard_down_pool_degrades_with_one_warning_then_recovers(self, spatial):
        # worker_crash@call=1 crashes every fresh worker's first chunk: the
        # pool is deterministically unusable, the budget drains, and the
        # ladder must finish the call in-process and step down.
        expected = serial_reference(spatial)
        engine = resilient_engine("shared", max_retries=1)
        install_fault_plan("worker_crash@call=1")
        trips = counter_value("resilience.breaker_trips")
        fallback = counter_value("resilience.fallback_chunks")
        with pytest.warns(RuntimeWarning, match="degrading"):
            np.testing.assert_array_equal(engine.pairwise(spatial, "dtw"),
                                          expected)
        assert engine._breaker.degraded
        assert engine._breaker.effective_strategy("shared") == "process"
        assert counter_value("resilience.breaker_trips") > trips
        assert counter_value("resilience.fallback_chunks") > fallback
        assert live_arena_names() == frozenset()
        # Still sick: the degraded rung (process) also crashes its workers,
        # stepping further down to in-process chunked, which cannot fault.
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            np.testing.assert_array_equal(engine.pairwise(spatial, "dtw"),
                                          expected)
        assert engine._breaker.effective_strategy("shared") == "chunked"
        # Fault cleared: clean calls at the degraded rung probe back up.
        clear_fault_plan()
        recoveries = counter_value("resilience.recoveries")
        for _ in range(2 * engine.policy.probe_interval + 1):
            np.testing.assert_array_equal(engine.pairwise(spatial, "dtw"),
                                          expected)
        assert not engine._breaker.degraded
        assert counter_value("resilience.recoveries") >= recoveries + 2
        assert live_arena_names() == frozenset()

    @pytest.mark.parametrize("strategy", ["shared", "process"])
    def test_deadline_exceeded_raises_typed_error(self, spatial, strategy):
        engine = resilient_engine(strategy, deadline=0.05)
        install_fault_plan("slow_worker@p=1,delay=0.5")
        hits = counter_value("resilience.deadline_hits")
        with pytest.raises(DeadlineExceededError) as info:
            engine.pairwise(spatial, "dtw")
        assert info.value.deadline == 0.05
        assert counter_value("resilience.deadline_hits") == hits + 1
        assert live_arena_names() == frozenset()
        # A deadline is not pool sickness: the ladder must not have tripped.
        assert not engine._breaker.degraded
        clear_fault_plan()
        if strategy == "shared":
            reset_shared_pool(engine.max_workers)  # drain the sleepy workers

    def test_budget_exceeded_without_ladder_raises_with_partials(self, spatial):
        engine = resilient_engine("shared", max_retries=1, degrade=False)
        assert engine._breaker is None
        install_fault_plan("worker_crash@call=1")
        with pytest.raises(RetryBudgetExceededError) as info:
            engine.pairwise(spatial, "dtw")
        assert info.value.retries == 1
        assert info.value.pending  # the chunks that never landed
        assert live_arena_names() == frozenset()

    def test_repeated_worker_kills_with_pinned_arena(self, spatial):
        # Satellite: SIGKILL a shared-pool worker mid-query, twice in a row,
        # while the dispatch rides a pinned cached arena.  The query must
        # still complete bitwise-exactly within the retry budget, and closing
        # the cache must drain every segment.
        cache = reset_arena_cache()
        arrays = [np.ascontiguousarray(t, dtype=np.float64) for t in spatial]
        engine = MatrixEngine(strategy="shared", cache=None, chunk_size=2,
                              max_workers=2,
                              policy=ResiliencePolicy(max_retries=3,
                                                      backoff_base=0.01))
        reversed_arrays = list(reversed(arrays))
        expected = MatrixEngine(strategy="serial", cache=None).pairs(
            arrays, reversed_arrays, "dtw")
        entry = cache.pin(arrays)
        assert entry is not None
        # Stretch every chunk so the kills land mid-dispatch.
        install_fault_plan("slow_worker@p=1,delay=0.05")
        kills = []

        def killer():
            for _ in range(2):
                pool = None
                for _ in range(400):
                    pool = shared_module._POOLS.get(engine.max_workers)
                    if pool is not None and pool._processes:
                        break
                    time.sleep(0.005)
                else:
                    return
                victim = next(iter(pool._processes))
                try:
                    os.kill(victim, signal.SIGKILL)
                    kills.append(victim)
                except ProcessLookupError:  # pragma: no cover - worker won
                    return
                for _ in range(400):  # wait for the broken pool to be replaced
                    if shared_module._POOLS.get(engine.max_workers) is not pool:
                        break
                    time.sleep(0.005)

        before = counter_value("resilience.retries")
        thread = threading.Thread(target=killer)
        thread.start()
        try:
            values = engine.pairs(arrays, reversed_arrays, "dtw", arena=entry)
        finally:
            thread.join(timeout=30)
        np.testing.assert_array_equal(values, expected)
        assert kills, "the killer thread never found a worker to kill"
        assert counter_value("resilience.retries") - before <= \
            engine.policy.max_retries
        cache.unpin(entry)
        reset_arena_cache()
        assert live_arena_names() == frozenset()

    @settings(max_examples=5, deadline=None,
              suppress_health_check=[HealthCheck.too_slow,
                                     HealthCheck.function_scoped_fixture])
    @given(seed=st.integers(min_value=0, max_value=2 ** 16),
           strategy=st.sampled_from(["shared", "process"]),
           crash_p=st.sampled_from([0.0, 0.1]),
           attach_p=st.sampled_from([0.0, 0.3]))
    def test_randomized_fault_schedules_stay_bit_identical(
            self, spatial, seed, strategy, crash_p, attach_p):
        # Property form of the whole contract: any seeded mix of crashes,
        # slowdowns and attach failures, under either pool strategy, either
        # completes bit-identically or degrades and *then* completes
        # bit-identically.  Never a wrong answer, never a leaked segment.
        expected = serial_reference(spatial)
        engine = resilient_engine(strategy)
        spec = (f"seed={seed};worker_crash@p={crash_p};"
                f"slow_worker@p=0.2,delay=0.002;shm_attach_fail@p={attach_p}")
        install_fault_plan(spec)
        try:
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", RuntimeWarning)
                values = engine.pairwise(spatial, "dtw")
        finally:
            clear_fault_plan()
        np.testing.assert_array_equal(values, expected)
        assert live_arena_names() == frozenset()


# ------------------------------------------------------- service and monitor

class TestServiceResilience:
    def test_admission_control_turns_away_at_the_bound(self, spatial):
        service = SearchService(spatial, k=2, batch_size=100, max_pending=2,
                                arena_reuse=False)
        service.submit(spatial[0])
        service.submit(spatial[1])
        with pytest.raises(OverloadedError) as info:
            service.submit(spatial[2])
        assert info.value.pending == 2 and info.value.limit == 2
        assert service.registry.counter("service.overloaded").value == 1
        service.flush()  # draining the queue re-admits work
        handle = service.submit(spatial[2])
        assert handle.result().indices.size > 0

    def test_service_accepts_a_resilience_policy(self, spatial):
        policy = ResiliencePolicy(max_retries=0, degrade=False)
        service = SearchService(spatial, k=2, policy=policy, arena_reuse=False)
        assert service.engine.policy is policy
        with pytest.raises(ValueError, match="policy"):
            SearchService(spatial, k=2, engine=service.engine, policy=policy)

    def test_max_pending_env_knob(self, monkeypatch, spatial):
        monkeypatch.setenv(MAX_PENDING_ENV, "1")
        service = SearchService(spatial, k=2, batch_size=100, arena_reuse=False)
        assert service.max_pending == 1
        monkeypatch.setenv(MAX_PENDING_ENV, "0")
        assert SearchService(spatial, k=2, arena_reuse=False).max_pending is None
        monkeypatch.setenv(MAX_PENDING_ENV, "lots")
        with pytest.raises(ValueError, match=MAX_PENDING_ENV):
            SearchService(spatial, k=2, arena_reuse=False)

    def test_service_close_is_idempotent_under_cache_churn(self, spatial):
        reset_arena_cache()
        engine = MatrixEngine(strategy="shared", cache=None, chunk_size=2,
                              max_workers=2)
        service = SearchService(spatial, k=2, engine=engine, batch_size=2,
                                refine_batch_size=64, arena_reuse=True)
        service.search(spatial[0])
        service.close()
        service.close()  # double close: no-op
        reset_arena_cache()  # the atexit-style drain
        service.close()  # close after the cache already drained: still a no-op
        assert live_arena_names() == frozenset()

    def test_monitor_tick_skips_and_catches_up(self):
        rng = np.random.default_rng(11)
        from repro.data import BoundingBox

        windows = [np.cumsum(rng.normal(scale=0.05, size=(8, 2)), axis=0)
                   for _ in range(6)]
        pattern = np.cumsum(rng.normal(scale=0.05, size=(6, 2)), axis=0)
        region = BoundingBox(-5, -5, 5, 5)
        monitor = StreamMonitor([w.copy() for w in windows], pattern, region, k=2)
        reference = StreamMonitor([w.copy() for w in windows], pattern, region, k=2)
        monitor.tick()
        reference.tick()
        # Break exactly one re-screen, transiently.
        original = monitor.index.range_query
        state = {"fail": True}

        def flaky(query_region):
            if state["fail"]:
                state["fail"] = False
                raise TransientFaultError("shm_attach_fail")
            return original(query_region)

        monitor.index.range_query = flaky
        appends = {0: windows[0][-1] + rng.normal(scale=0.05, size=(2, 2))}
        skipped = counter_value("monitor.skipped_ticks")
        alerts = monitor.tick(appends)
        assert alerts == []  # the skipped tick alerts nothing...
        assert counter_value("monitor.skipped_ticks") == skipped + 1
        assert isinstance(monitor.last_tick_error, TransientFaultError)
        reference.tick(appends)
        # ...and the next clean tick catches up to the reference exactly.
        monitor.tick()
        reference.tick()
        assert monitor.last_tick_error is None
        assert monitor.topk() == reference.topk()
        assert monitor.tick_count == reference.tick_count

    def test_monitor_still_raises_genuine_bugs(self):
        rng = np.random.default_rng(12)
        from repro.data import BoundingBox

        monitor = StreamMonitor([rng.random((5, 2))], rng.random((4, 2)),
                                BoundingBox(-5, -5, 5, 5), k=1)

        def broken(query_region):
            raise ZeroDivisionError("a bug, not a fault")

        monitor.index.range_query = broken
        with pytest.raises(ZeroDivisionError):
            monitor.tick()


# ------------------------------------------------------------ arena hardening

@needs_shm
class TestArenaHardening:
    def test_injected_append_failure_falls_back_to_fresh_pack(self, spatial):
        cache = reset_arena_cache()
        arrays = [np.ascontiguousarray(t, dtype=np.float64) for t in spatial]
        first = cache.pin(arrays[:9])
        assert first is not None
        cache.unpin(first)
        install_fault_plan("arena_append_fail@call=1")
        failures = counter_value("engine.arena.append_failures")
        # A one-array delta fits the pack-time slack, so the pin takes the
        # absorb path; the injected fault makes the append fail and the pin
        # must fall back to a fresh full pack.
        second = cache.pin(arrays)
        assert second is not None and second is not first
        assert counter_value("engine.arena.append_failures") == failures + 1
        assert all(second.slot_of(a) is not None for a in arrays)
        # The first entry survived the failed absorb untouched.
        assert all(first.slot_of(a) is not None for a in arrays[:9])
        cache.unpin(second)
        reset_arena_cache()
        assert live_arena_names() == frozenset()

    def test_evict_and_unpin_are_idempotent(self, spatial):
        cache = reset_arena_cache()
        arrays = [np.ascontiguousarray(t, dtype=np.float64) for t in spatial]
        from repro.engine.cache import fingerprint_trajectories

        fingerprint = fingerprint_trajectories(arrays)
        entry = cache.pin(arrays, fingerprint=fingerprint)
        assert cache.evict(fingerprint) is False  # pinned: doomed, not gone
        assert cache.evict(fingerprint) is False  # second evict: no-op
        evictions = cache.evictions
        cache.unpin(entry)  # last pin: the doomed entry unlinks now
        assert entry.closed
        assert cache.evictions == evictions + 1
        cache.unpin(entry)  # over-unpin: clamped, no double unlink, no count
        assert entry.pins == 0
        assert cache.evictions == evictions + 1
        assert live_arena_names() == frozenset()


# ------------------------------------------------------------------ env knobs

class TestConfigHelpers:
    def test_messages_always_name_the_variable(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_KNOB", "abc")
        with pytest.raises(EnvError, match="REPRO_TEST_KNOB"):
            env_int("REPRO_TEST_KNOB")
        with pytest.raises(EnvError, match="REPRO_TEST_KNOB"):
            env_float("REPRO_TEST_KNOB")
        with pytest.raises(EnvError, match="REPRO_TEST_KNOB"):
            env_flag("REPRO_TEST_KNOB")

    def test_blank_means_default_and_minimum_is_enforced(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_KNOB", "   ")
        assert env_int("REPRO_TEST_KNOB", 7) == 7
        monkeypatch.setenv("REPRO_TEST_KNOB", "0")
        with pytest.raises(EnvError, match="at least 1"):
            env_int("REPRO_TEST_KNOB", minimum=1)
        monkeypatch.setenv("REPRO_TEST_KNOB", "nan")
        with pytest.raises(EnvError, match="REPRO_TEST_KNOB"):
            env_float("REPRO_TEST_KNOB")
        monkeypatch.setenv("REPRO_TEST_KNOB", "on")
        assert env_flag("REPRO_TEST_KNOB") is True

    def test_env_error_is_a_value_error(self):
        assert issubclass(EnvError, ValueError)
