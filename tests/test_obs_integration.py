"""Cross-layer telemetry integration: cell accounting, stats schema, training.

Three contracts live here:

* **No double-counting** — ``engine.dp_cells`` (and the legacy
  ``dp_cell_count()`` view of it) grows by exactly the same amount per run
  for every strategy × backend combination, including after a shared-pool
  worker is killed and the pool restarts mid-dispatch.  Worker registries
  come back as deltas and are merged exactly once.
* **Pinned stats schema** — ``SearchStats.as_dict()`` and
  ``SearchService.stats()`` expose an exact, typed key set.  Any field added
  to the dataclass must show up here (and in ``merge``) deliberately.
* **Training telemetry** — with ``REPRO_OBS=on`` the trainer records
  per-epoch timing metrics into ``TrainingHistory`` and streams each epoch
  through the JSONL exporter.
"""

import dataclasses
import json
import os
import signal

import numpy as np
import pytest

import repro.engine.backends as backends
import repro.engine.backends.numba_kernels as numba_kernels
from repro.data import generate_dataset
from repro.distances import normalize_matrix, pairwise_distance_matrix
from repro.engine import (
    MatrixEngine,
    dp_cell_count,
    get_shared_pool,
    reset_dp_cell_count,
    reset_shared_pool,
)
from repro.models import MeanPoolEncoder
from repro.obs import get_registry
from repro.obs.export import JSONL_ENV, set_jsonl_path
from repro.obs.spans import OBS_ENV, obs_mode, set_obs_mode
from repro.search import SearchService, SearchStats, TrajectoryIndex
from repro.training import SimilarityTrainer, TrainingHistory


@pytest.fixture(autouse=True)
def _restore_obs_state(monkeypatch):
    previous_mode = obs_mode()
    monkeypatch.delenv(OBS_ENV, raising=False)
    monkeypatch.delenv(JSONL_ENV, raising=False)
    yield
    set_obs_mode(previous_mode)
    set_jsonl_path(None)


@pytest.fixture(scope="module")
def spatial():
    rng = np.random.default_rng(0)
    return [rng.random((int(rng.integers(3, 15)), 2)) for _ in range(12)]


@pytest.fixture
def numba_stub(monkeypatch):
    """Pretend numba imported so the compiled backend is selectable; its
    kernels then run as pure Python through the njit stub.  Only valid for
    in-process strategies — pool workers do not inherit the monkeypatch."""
    monkeypatch.setattr(numba_kernels, "NUMBA_AVAILABLE", True)
    monkeypatch.setattr(backends, "_ACTIVE", None)
    monkeypatch.setattr(backends, "_FALLBACK_WARNED", False)
    monkeypatch.delenv(backends.BACKEND_ENV, raising=False)
    yield


def _engine(strategy: str, **overrides) -> MatrixEngine:
    options = dict(strategy=strategy, cache=None, chunk_size=4)
    if strategy in ("process", "shared"):
        options["max_workers"] = 2
    options.update(overrides)
    return MatrixEngine(**options)


def _cells_for_run(engine, trajectories, measure="dtw", runs=1):
    reset_dp_cell_count()
    for _ in range(runs):
        engine.pairwise(trajectories, measure)
    return dp_cell_count()


class TestCellAccounting:
    """`dp_cell_count` must never double-count, for any strategy × backend."""

    @pytest.mark.parametrize("strategy",
                             ["serial", "chunked", "process", "shared"])
    def test_numpy_runs_are_additive(self, strategy, spatial):
        engine = _engine(strategy, backend="numpy")
        once = _cells_for_run(engine, spatial)
        twice = _cells_for_run(engine, spatial, runs=2)
        assert once > 0
        assert twice == 2 * once

    def test_parallel_strategies_count_like_chunked(self, spatial):
        # Same chunk size → identical padded batches → identical cell counts,
        # whether the chunks run in-process or in pool workers (whose counts
        # come back as registry deltas).  Serial is excluded on purpose: it
        # runs unpadded per-pair kernels, so its exact count is lower.
        chunked = _cells_for_run(_engine("chunked", backend="numpy"), spatial)
        assert chunked > 0
        for strategy in ("process", "shared"):
            cells = _cells_for_run(_engine(strategy, backend="numpy"), spatial)
            assert cells == chunked, f"{strategy} disagrees with chunked"

    @pytest.mark.parametrize("strategy", ["serial", "chunked"])
    def test_numba_backend_runs_are_additive(self, strategy, spatial,
                                             numba_stub):
        engine = _engine(strategy, backend="numba")
        once = _cells_for_run(engine, spatial)
        twice = _cells_for_run(engine, spatial, runs=2)
        assert once > 0
        assert twice == 2 * once

    def test_registry_counter_is_the_legacy_counter(self, spatial):
        reset_dp_cell_count()
        _engine("chunked").pairwise(spatial, "dtw")
        assert get_registry().counter("engine.dp_cells").value == dp_cell_count()

    def test_per_measure_counters_partition_the_total(self, spatial):
        reset_dp_cell_count()
        engine = _engine("shared")
        engine.pairwise(spatial, "dtw")
        engine.pairwise(spatial, "erp")
        counters = get_registry().snapshot()["counters"]
        total = counters["engine.dp_cells"]
        per_measure = {name: value for name, value in counters.items()
                       if name.startswith("engine.dp_cells.") and value}
        assert total == dp_cell_count() > 0
        assert sum(per_measure.values()) == total
        assert per_measure["engine.dp_cells.dtw"] > 0
        assert per_measure["engine.dp_cells.erp"] > 0

    def test_worker_deltas_survive_pool_restart_without_double_count(
            self, spatial):
        engine = _engine("shared")
        try:
            clean_cells = _cells_for_run(engine, spatial)
            pool = get_shared_pool(engine.max_workers)
            victim = next(iter(pool._processes))
            os.kill(victim, signal.SIGKILL)
            # The next dispatch hits BrokenProcessPool, restarts the pool and
            # retries; deltas from the aborted attempt must not be merged.
            assert _cells_for_run(engine, spatial) == clean_cells
            counters = get_registry().snapshot()["counters"]
            assert counters["engine.dp_cells"] == clean_cells
            assert counters["engine.dp_cells.dtw"] == clean_cells
        finally:
            reset_shared_pool(engine.max_workers)


#: stats() contract: exactly these keys, of exactly these types.
SERVICE_STATS_SCHEMA = {
    "database_size": int,
    "measure": str,
    "batch_size": int,
    "queries_served": int,
    "cache_hits": int,
    "cache_misses": int,
    "batches_flushed": int,
    "batch_fill": dict,
    "total_latency_seconds": float,
    "mean_latency_seconds": float,
    "num_database": int,
    "num_candidates": int,
    "num_refined": int,
    "num_pruned": int,
    "num_abandoned": int,
    "num_batches": int,
    "pruned_fraction": float,
    "lower_bound_seconds": float,
    "refine_seconds": float,
    "kernel_backend": str,
}

#: SearchStats field inventory; `merge` and `as_dict` must cover all of it.
SEARCH_STATS_FIELDS = {
    "num_database", "num_candidates", "num_refined", "num_pruned",
    "num_abandoned", "num_batches", "lower_bound_seconds", "refine_seconds",
    "kernel_backend",
}


class TestStatsSchema:
    def test_dataclass_fields_are_pinned(self):
        assert {field.name for field in dataclasses.fields(SearchStats)} \
            == SEARCH_STATS_FIELDS, (
                "SearchStats grew or lost a field: update merge(), as_dict(), "
                "SERVICE_STATS_SCHEMA and this inventory together")

    def test_as_dict_keys_are_fields_plus_pruned_fraction(self):
        assert set(SearchStats().as_dict()) \
            == SEARCH_STATS_FIELDS | {"pruned_fraction"}

    def test_merge_sums_counts_and_keeps_first_backend(self):
        first = SearchStats(num_database=10, num_candidates=8, num_refined=5,
                            num_pruned=3, num_abandoned=1, num_batches=2,
                            lower_bound_seconds=0.5, refine_seconds=1.5,
                            kernel_backend="numpy")
        second = SearchStats(num_database=10, num_candidates=6, num_refined=2,
                             num_pruned=4, num_abandoned=0, num_batches=1,
                             lower_bound_seconds=0.25, refine_seconds=0.75,
                             kernel_backend="numba")
        first.merge(second)
        assert first.num_candidates == 14 and first.num_refined == 7
        assert first.num_pruned == 7 and first.num_batches == 3
        assert first.lower_bound_seconds == 0.75
        assert first.refine_seconds == 2.25
        assert first.kernel_backend == "numpy"
        # An empty aggregate adopts the first real pass's backend.
        empty = SearchStats()
        empty.merge(second)
        assert empty.kernel_backend == "numba"

    def test_service_stats_matches_schema_exactly(self, spatial):
        service = SearchService(TrajectoryIndex(spatial), measure="dtw", k=3,
                                batch_size=4)
        service.search_many(spatial[:3], exclude_self=True)
        service.search(spatial[0], exclude=0)  # cache hit
        stats = service.stats()
        assert set(stats) == set(SERVICE_STATS_SCHEMA)
        for key, expected_type in SERVICE_STATS_SCHEMA.items():
            assert isinstance(stats[key], expected_type), (
                f"stats()[{key!r}] is {type(stats[key]).__name__}, "
                f"expected {expected_type.__name__}")
        assert stats["queries_served"] == 4
        assert stats["cache_hits"] == 1
        assert stats["cache_misses"] == 3
        assert stats["batch_fill"]["count"] == stats["batches_flushed"]
        assert stats["kernel_backend"] in ("numpy", "numba")

    def test_service_snapshot_mirrors_stats(self, spatial):
        service = SearchService(TrajectoryIndex(spatial), measure="dtw", k=2)
        service.search(spatial[1])
        snap = service.snapshot()
        assert snap["counters"]["service.queries"] \
            == service.stats()["queries_served"] == 1


class TestTrainingTelemetry:
    @pytest.fixture(scope="class")
    def tiny_training(self):
        dataset = generate_dataset("chengdu", size=8, seed=0)
        trajectories = dataset.point_arrays(spatial_only=True)
        truth = normalize_matrix(pairwise_distance_matrix(trajectories, "dtw"),
                                 method="mean")
        return dataset, truth

    def _fit_one_epoch(self, tiny_training):
        dataset, truth = tiny_training
        encoder = MeanPoolEncoder.build(dataset, embedding_dim=4,
                                        hidden_dim=6, seed=0)
        return SimilarityTrainer(encoder, seed=0).fit(dataset, truth, epochs=2)

    def test_epoch_timings_recorded_when_observing(self, tiny_training):
        set_obs_mode("on")
        before = get_registry().histogram("train.epoch_seconds").state()["count"]
        history = self._fit_one_epoch(tiny_training)
        for metrics in history.metrics:
            assert {"epoch_seconds", "encode_seconds", "loss_seconds",
                    "step_seconds"} <= set(metrics)
            assert metrics["epoch_seconds"] >= metrics["encode_seconds"]
        after = get_registry().histogram("train.epoch_seconds").state()["count"]
        assert after - before == len(history)

    def test_no_timing_metrics_when_off(self, tiny_training):
        set_obs_mode("off")
        history = self._fit_one_epoch(tiny_training)
        for metrics in history.metrics:
            assert "epoch_seconds" not in metrics

    def test_loss_unchanged_by_observability(self, tiny_training):
        set_obs_mode("off")
        baseline = self._fit_one_epoch(tiny_training).losses
        set_obs_mode("on")
        observed = self._fit_one_epoch(tiny_training).losses
        assert observed == baseline

    def test_history_streams_epochs_to_jsonl(self, tmp_path):
        sink = tmp_path / "train.jsonl"
        set_obs_mode("on")
        set_jsonl_path(str(sink))
        history = TrainingHistory()
        history.record(1, 0.5, {"hr10": 0.9})
        history.record(2, 0.25)
        events = [json.loads(line) for line in sink.read_text().splitlines()]
        assert [event["kind"] for event in events] == ["training_epoch"] * 2
        assert events[0]["epoch"] == 1 and events[0]["loss"] == 0.5
        assert events[0]["metrics"] == {"hr10": 0.9}
        assert events[1]["metrics"] == {}

    def test_history_does_not_stream_when_off(self, tmp_path):
        sink = tmp_path / "quiet.jsonl"
        set_obs_mode("off")
        set_jsonl_path(str(sink))
        TrainingHistory().record(1, 0.5)
        assert not sink.exists()
