"""Parity and soundness suite for τ-aware early abandoning in the kernels.

The abandoning contract has three legs, each pinned here for every batch
kernel and every engine strategy:

* ``thresholds=+inf`` (or ``None``) is a **no-op** — bit-identical results;
* with finite thresholds, **survivors** (finite results) are bit-identical to
  the unthresholded sweep, and every ``+inf`` is **sound**: the true distance
  really exceeds that pair's threshold;
* ``knn_search`` with in-kernel abandoning stays **bit-identical** to
  ``knn_from_matrix`` — ties included — because a pair is only abandoned when
  its exact distance provably exceeds the heap's τ, and τ never grows.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import generate_dataset
from repro.distances import knn_from_matrix
from repro.engine import (
    MatrixEngine,
    available_batch_kernels,
    dp_cell_count,
    get_batch_kernel,
    reset_dp_cell_count,
)
from repro.search import TrajectoryIndex, knn_search

#: Kernel kwargs exercised per measure (banded DTW runs the per-pair wavefront).
KERNEL_KWARGS = {
    "dtw": [{}, {"band": 2}],
    "erp": [{}, {"gap": (0.3, 0.7)}],
    "edr": [{"epsilon": 0.25}],
    "lcss": [{"epsilon": 0.25}],
    "frechet": [{}],
    "dita": [{}],
}

SPATIOTEMPORAL = {"dita"}


def _pair_lists(seed: int = 0):
    """Ragged pair lists incl. single points, equal pairs and skewed lengths."""
    rng = np.random.default_rng(seed)
    lengths_a = [1, 1, 2, 3, 5, 9, 17, 33, 33]
    lengths_b = [1, 33, 2, 7, 5, 3, 17, 33, 1]
    list_a = [rng.uniform(0.0, 2.0, size=(n, 3)) for n in lengths_a]
    list_b = [rng.uniform(0.0, 2.0, size=(m, 3)) for m in lengths_b]
    list_b[4] = list_a[4].copy()  # exact duplicate → distance 0
    for points in list_a + list_b:
        points[:, 2] = np.sort(points[:, 2])
    return list_a, list_b


def test_every_batch_kernel_is_covered():
    assert sorted(KERNEL_KWARGS) == available_batch_kernels()


@pytest.mark.parametrize("measure", sorted(KERNEL_KWARGS))
def test_thresholds_inf_is_a_noop(measure):
    list_a, list_b = _pair_lists()
    kernel = get_batch_kernel(measure)
    for kwargs in KERNEL_KWARGS[measure]:
        base = kernel(list_a, list_b, **kwargs)
        infs = kernel(list_a, list_b, thresholds=np.full(len(list_a), np.inf),
                      **kwargs)
        np.testing.assert_array_equal(infs, base, err_msg=f"{measure} {kwargs}")


@pytest.mark.parametrize("measure", sorted(KERNEL_KWARGS))
def test_survivors_match_and_abandons_are_sound(measure):
    """Finite results equal the unthresholded kernel; +inf implies true > τ."""
    list_a, list_b = _pair_lists()
    kernel = get_batch_kernel(measure)
    for kwargs in KERNEL_KWARGS[measure]:
        base = kernel(list_a, list_b, **kwargs)
        for scale in (0.0, 0.5, 0.999, 1.0, 1.5):
            thresholds = base * scale
            values = kernel(list_a, list_b, thresholds=thresholds, **kwargs)
            for pair, value in enumerate(values):
                if np.isfinite(value):
                    assert value == base[pair], (measure, kwargs, scale, pair)
                else:
                    assert base[pair] > thresholds[pair], (measure, kwargs,
                                                           scale, pair)
        # τ equal to the exact distance must never abandon (tie safety).
        np.testing.assert_array_equal(
            kernel(list_a, list_b, thresholds=base.copy(), **kwargs), base,
            err_msg=f"{measure} {kwargs}: tau == distance was abandoned")


@pytest.mark.parametrize("measure", sorted(KERNEL_KWARGS))
def test_scalar_threshold_broadcast_and_validation(measure):
    list_a, list_b = _pair_lists()
    kernel = get_batch_kernel(measure)
    kwargs = KERNEL_KWARGS[measure][0]
    base = kernel(list_a, list_b, **kwargs)
    np.testing.assert_array_equal(kernel(list_a, list_b, thresholds=np.inf,
                                         **kwargs), base)
    with pytest.raises(ValueError):
        kernel(list_a, list_b, thresholds=np.zeros(len(list_a) + 1), **kwargs)


def test_tight_thresholds_abandon_cheaper():
    """A tight τ must cut the DP cell-work the counter observes."""
    list_a, list_b = _pair_lists()
    kernel = get_batch_kernel("dtw")
    base = kernel(list_a, list_b)
    reset_dp_cell_count()
    kernel(list_a, list_b)
    full = dp_cell_count()
    reset_dp_cell_count()
    abandoned = kernel(list_a, list_b, thresholds=base * 0.25)
    partial = dp_cell_count()
    assert full > 0
    assert partial < full
    assert np.isinf(abandoned).any()


@pytest.mark.parametrize("strategy", ["serial", "chunked", "process"])
def test_engine_pairs_threads_thresholds_per_strategy(strategy):
    list_a, list_b = _pair_lists()
    spatial_a = [points[:, :2] for points in list_a]
    spatial_b = [points[:, :2] for points in list_b]
    engine = MatrixEngine(strategy=strategy, cache=None, chunk_size=3,
                          max_workers=2)
    base = engine.pairs(spatial_a, spatial_b, "dtw")
    np.testing.assert_array_equal(
        engine.pairs(spatial_a, spatial_b, "dtw",
                     thresholds=np.full(len(spatial_a), np.inf)), base)
    thresholds = base * 0.5
    values = engine.pairs(spatial_a, spatial_b, "dtw", thresholds=thresholds)
    for pair, value in enumerate(values):
        if np.isfinite(value):
            assert value == base[pair]
        else:
            assert base[pair] > thresholds[pair]
    with pytest.raises(ValueError):
        engine.pairs(spatial_a, spatial_b, "dtw", thresholds=np.zeros(2))


def test_engine_pairs_ignores_thresholds_without_a_batch_kernel():
    """Measures without a batch kernel compute full distances — still exact."""
    list_a, list_b = _pair_lists()
    spatial_a = [points[:, :2] for points in list_a]
    spatial_b = [points[:, :2] for points in list_b]
    engine = MatrixEngine(cache=None)
    base = engine.pairs(spatial_a, spatial_b, "hausdorff")
    values = engine.pairs(spatial_a, spatial_b, "hausdorff",
                          thresholds=np.zeros(len(spatial_a)))
    np.testing.assert_array_equal(values, base)
    assert np.isfinite(values).all()


def test_reference_engine_ignores_thresholds():
    """use_kernels=False keeps the historical per-pair loop untouched."""
    list_a, list_b = _pair_lists()
    spatial_a = [points[:, :2] for points in list_a]
    spatial_b = [points[:, :2] for points in list_b]
    reference = MatrixEngine(strategy="serial", use_kernels=False, cache=None)
    base = reference.pairs(spatial_a, spatial_b, "dtw")
    values = reference.pairs(spatial_a, spatial_b, "dtw",
                             thresholds=np.zeros(len(spatial_a)))
    np.testing.assert_array_equal(values, base)


# ------------------------------------------------------------- knn integration
@pytest.mark.parametrize("measure", ["dtw", "erp", "edr", "frechet"])
def test_knn_search_with_abandoning_stays_bit_identical(measure):
    dataset = generate_dataset("chengdu", size=60, seed=4)
    arrays = dataset.point_arrays(spatial_only=True)
    kwargs = {"epsilon": 0.25} if measure == "edr" else {}
    engine = MatrixEngine(cache=None)
    index = TrajectoryIndex(arrays)
    matrix = engine.cross(arrays[:4], arrays, measure, **kwargs)
    expected = knn_from_matrix(matrix, 7, exclude_self=True)
    for query in range(4):
        on = knn_search(index, arrays[query], 7, measure=measure, engine=engine,
                        exclude=query, abandon=True, batch_size=4, **kwargs)
        off = knn_search(index, arrays[query], 7, measure=measure, engine=engine,
                         exclude=query, abandon=False, batch_size=4, **kwargs)
        np.testing.assert_array_equal(on.indices, expected[query])
        np.testing.assert_array_equal(off.indices, expected[query])
        np.testing.assert_array_equal(on.distances, off.distances)
        # Abandoning never changes which candidates get refined, only their cost.
        assert on.stats.num_refined == off.stats.num_refined
        assert off.stats.num_abandoned == 0


def test_knn_search_with_duplicate_ties_and_abandoning():
    """Exact distance ties survive abandoning with ascending-index order."""
    base = np.array([[0.0, 0.0], [1.0, 0.0], [2.0, 0.5]])
    far = base + 7.0
    arrays = [base, far.copy(), base.copy(), far.copy(), base.copy(), far.copy()]
    query = base + 0.01
    engine = MatrixEngine(cache=None)
    matrix = engine.cross([query], arrays, "dtw")
    expected = knn_from_matrix(matrix, 5)
    result = knn_search(arrays, query, 5, measure="dtw", engine=engine,
                        abandon=True, batch_size=1)
    np.testing.assert_array_equal(result.indices, expected[0])
    assert result.indices.tolist()[:3] == [0, 2, 4]


def test_knn_abandon_default_is_measure_aware():
    """abandon=None engages the kernels only for DEFAULT_ABANDON_MEASURES."""
    from repro.search import DEFAULT_ABANDON_MEASURES

    dataset = generate_dataset("chengdu", size=50, seed=2)
    arrays = dataset.point_arrays(spatial_only=True)
    engine = MatrixEngine(cache=None)
    index = TrajectoryIndex(arrays)
    assert "dtw" in DEFAULT_ABANDON_MEASURES
    assert "erp" not in DEFAULT_ABANDON_MEASURES
    default_dtw = knn_search(index, arrays[0], 5, measure="dtw", engine=engine,
                             exclude=0, batch_size=4)
    forced_dtw = knn_search(index, arrays[0], 5, measure="dtw", engine=engine,
                            exclude=0, batch_size=4, abandon=True)
    assert default_dtw.stats.num_abandoned == forced_dtw.stats.num_abandoned
    default_erp = knn_search(index, arrays[0], 5, measure="erp", engine=engine,
                             exclude=0, batch_size=4)
    assert default_erp.stats.num_abandoned == 0
    forced_erp = knn_search(index, arrays[0], 5, measure="erp", engine=engine,
                            exclude=0, batch_size=4, abandon=True)
    np.testing.assert_array_equal(forced_erp.indices, default_erp.indices)


def test_knn_abandoning_cuts_cell_work_on_clustered_data():
    dataset = generate_dataset("chengdu", size=120, seed=9)
    arrays = dataset.point_arrays(spatial_only=True)
    engine = MatrixEngine(cache=None)
    index = TrajectoryIndex(arrays)
    reset_dp_cell_count()
    off = knn_search(index, arrays[0], 5, measure="dtw", engine=engine,
                     exclude=0, abandon=False, batch_size=4)
    cells_off = dp_cell_count()
    reset_dp_cell_count()
    on = knn_search(index, arrays[0], 5, measure="dtw", engine=engine,
                    exclude=0, abandon=True, batch_size=4)
    cells_on = dp_cell_count()
    np.testing.assert_array_equal(on.indices, off.indices)
    assert on.stats.num_abandoned > 0
    assert cells_on < cells_off
    assert "num_abandoned" in on.stats.as_dict()
