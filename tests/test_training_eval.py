"""Unit tests for sampling, the trainer, callbacks and evaluation metrics."""

import numpy as np
import pytest

from repro.core import LHPlugin, LHPluginConfig
from repro.data import generate_dataset
from repro.distances import normalize_matrix, pairwise_distance_matrix
from repro.eval import (
    database_memory_bytes,
    euclidean_distance_matrix,
    evaluate_retrieval,
    hit_rate,
    ndcg,
    per_query_hit_rate,
    retrieval_latency,
    time_callable,
)
from repro.models import MeanPoolEncoder
from repro.training import (
    EarlyStopping,
    PairSampler,
    SimilarityTrainer,
    TrainingHistory,
    sample_triplets,
)


@pytest.fixture(scope="module")
def small_problem():
    dataset = generate_dataset("chengdu", size=16, seed=0)
    truth = normalize_matrix(
        pairwise_distance_matrix(dataset.point_arrays(spatial_only=True), "dtw"))
    return dataset, truth


class TestPairSampler:
    def _matrix(self, n=8):
        rng = np.random.default_rng(0)
        matrix = rng.random((n, n))
        matrix = (matrix + matrix.T) / 2
        np.fill_diagonal(matrix, 0.0)
        return matrix

    def test_epoch_pairs_cover_every_anchor(self):
        sampler = PairSampler(self._matrix(), num_nearest=2, num_random=1, seed=0)
        pairs = sampler.epoch_pairs(shuffle=False)
        anchors = {i for i, _ in pairs}
        assert anchors == set(range(8))

    def test_nearest_pairs_are_nearest(self):
        matrix = self._matrix()
        sampler = PairSampler(matrix, num_nearest=1, num_random=0, seed=0)
        pairs = sampler.epoch_pairs(shuffle=False)
        for anchor, other in pairs:
            masked = matrix[anchor].copy()
            masked[anchor] = np.inf
            assert other == int(np.argmin(masked))

    def test_no_self_pairs(self):
        sampler = PairSampler(self._matrix(), num_nearest=2, num_random=3, seed=1)
        assert all(i != j for i, j in sampler.epoch_pairs())

    def test_target_of(self):
        matrix = self._matrix()
        sampler = PairSampler(matrix)
        assert sampler.target_of((1, 2)) == pytest.approx(matrix[1, 2])

    def test_validation(self):
        with pytest.raises(ValueError):
            PairSampler(np.zeros((3, 4)))
        with pytest.raises(ValueError):
            PairSampler(self._matrix(), num_nearest=0, num_random=0)

    def test_length_buckets_group_batches_without_changing_pairs(self):
        matrix = self._matrix(n=24)
        rng = np.random.default_rng(3)
        lengths = rng.integers(2, 60, size=24)
        plain = PairSampler(matrix, num_nearest=2, num_random=2, seed=7)
        bucketed = PairSampler(matrix, num_nearest=2, num_random=2, seed=7,
                               lengths=lengths, length_buckets=4)
        plain_pairs = plain.epoch_pairs()
        bucketed_pairs = bucketed.epoch_pairs()
        # Same multiset of pairs — bucketing only reorders the epoch.
        assert (sorted(map(tuple, plain_pairs.tolist()))
                == sorted(map(tuple, bucketed_pairs.tolist())))
        # Bucket ids must be non-decreasing along the epoch (grouped batches).
        pair_lengths = np.maximum(lengths[bucketed_pairs[:, 0]],
                                  lengths[bucketed_pairs[:, 1]])
        edges = np.quantile(pair_lengths, np.linspace(0, 1, 5)[1:-1])
        buckets = np.searchsorted(edges, pair_lengths, side="right")
        assert (np.diff(buckets) >= 0).all()
        # Grouping reduces the padded waste of fixed-size batches.
        def padded_waste(pairs, batch=8):
            waste = 0
            for start in range(0, len(pairs), batch):
                chunk = np.maximum(lengths[pairs[start:start + batch, 0]],
                                   lengths[pairs[start:start + batch, 1]])
                waste += int((chunk.max() - chunk).sum())
            return waste
        assert padded_waste(bucketed_pairs) <= padded_waste(plain_pairs)

    def test_length_buckets_are_deterministic_under_a_seed(self):
        matrix = self._matrix(n=16)
        lengths = np.arange(16) * 3 + 2
        first = PairSampler(matrix, seed=11, lengths=lengths, length_buckets=3)
        second = PairSampler(matrix, seed=11, lengths=lengths, length_buckets=3)
        np.testing.assert_array_equal(first.epoch_pairs(), second.epoch_pairs())
        np.testing.assert_array_equal(first.epoch_pairs(), second.epoch_pairs())

    def test_length_buckets_validation(self):
        with pytest.raises(ValueError):
            PairSampler(self._matrix(), length_buckets=2)
        with pytest.raises(ValueError):
            PairSampler(self._matrix(), lengths=np.arange(3), length_buckets=2)

    def test_sample_triplets_properties(self):
        matrix = self._matrix()
        triplets = sample_triplets(matrix, num_triplets=20, seed=0)
        assert len(triplets) == 20
        for anchor, positive, negative in triplets:
            assert anchor != positive
            assert matrix[anchor, positive] <= matrix[anchor, negative] + 1e-12

    def test_sample_triplets_needs_three(self):
        with pytest.raises(ValueError):
            sample_triplets(np.zeros((2, 2)), 5)


class TestCallbacks:
    def test_history_records(self):
        history = TrainingHistory()
        history.record(1, 0.5, {"hr@10": 0.2})
        history.record(2, 0.3)
        assert len(history) == 2
        assert history.best_loss == pytest.approx(0.3)
        assert history.metric_curve("hr@10") == [0.2]
        assert "losses" in history.as_dict()

    def test_early_stopping_triggers(self):
        stopper = EarlyStopping(patience=2)
        assert not stopper.update(1.0)
        assert not stopper.update(1.0)
        assert stopper.update(1.0)

    def test_early_stopping_resets_on_improvement(self):
        stopper = EarlyStopping(patience=2)
        stopper.update(1.0)
        stopper.update(1.0)
        assert not stopper.update(0.5)

    def test_early_stopping_validation(self):
        with pytest.raises(ValueError):
            EarlyStopping(patience=0)


class TestTrainer:
    def test_loss_decreases_without_plugin(self, small_problem):
        dataset, truth = small_problem
        encoder = MeanPoolEncoder.build(dataset, embedding_dim=8, seed=0)
        trainer = SimilarityTrainer(encoder, learning_rate=1e-2, seed=0)
        history = trainer.fit(dataset, truth, epochs=4)
        assert history.losses[-1] < history.losses[0]

    def test_loss_decreases_with_plugin(self, small_problem):
        dataset, truth = small_problem
        encoder = MeanPoolEncoder.build(dataset, embedding_dim=8, seed=0)
        plugin = LHPlugin(LHPluginConfig(factor_dim=4, fusion_hidden=8))
        trainer = SimilarityTrainer(encoder, plugin=plugin, learning_rate=1e-2, seed=0)
        history = trainer.fit(dataset, truth, epochs=3)
        assert history.losses[-1] < history.losses[0]

    def test_model_distance_matrix_properties(self, small_problem):
        dataset, truth = small_problem
        encoder = MeanPoolEncoder.build(dataset, embedding_dim=8, seed=0)
        trainer = SimilarityTrainer(encoder, seed=0)
        trainer.fit(dataset, truth, epochs=1)
        matrix = trainer.model_distance_matrix(dataset)
        assert matrix.shape == (len(dataset), len(dataset))
        np.testing.assert_allclose(np.diag(matrix), np.zeros(len(dataset)), atol=1e-9)
        np.testing.assert_allclose(matrix, matrix.T, atol=1e-9)

    def test_eval_fn_recorded_in_history(self, small_problem):
        dataset, truth = small_problem
        encoder = MeanPoolEncoder.build(dataset, embedding_dim=8, seed=0)
        trainer = SimilarityTrainer(encoder, seed=0)
        history = trainer.fit(dataset, truth, epochs=2, eval_fn=lambda: {"marker": 1.0})
        assert history.metric_curve("marker") == [1.0, 1.0]

    def test_early_stopping_limits_epochs(self, small_problem):
        dataset, truth = small_problem
        encoder = MeanPoolEncoder.build(dataset, embedding_dim=8, seed=0)
        trainer = SimilarityTrainer(encoder, learning_rate=1e-9, seed=0)
        history = trainer.fit(dataset, truth, epochs=10,
                              early_stopping=EarlyStopping(patience=1, min_delta=10.0))
        assert len(history) < 10

    def test_mismatched_matrix_rejected(self, small_problem):
        dataset, truth = small_problem
        encoder = MeanPoolEncoder.build(dataset, embedding_dim=8, seed=0)
        trainer = SimilarityTrainer(encoder, seed=0)
        with pytest.raises(ValueError):
            trainer.fit(dataset, truth[:4, :4], epochs=1)

    def test_unknown_loss_rejected(self, small_problem):
        dataset, _ = small_problem
        encoder = MeanPoolEncoder.build(dataset, embedding_dim=8, seed=0)
        with pytest.raises(ValueError):
            SimilarityTrainer(encoder, loss="hinge")


class TestRetrievalMetrics:
    def test_perfect_prediction_scores_one(self):
        rng = np.random.default_rng(0)
        truth = rng.random((10, 10))
        truth = (truth + truth.T) / 2
        np.fill_diagonal(truth, 0.0)
        metrics = evaluate_retrieval(truth, truth, hr_ks=(5,), ndcg_ks=(5,))
        assert metrics["hr@5"] == pytest.approx(1.0)
        assert metrics["ndcg@5"] == pytest.approx(1.0)

    def test_random_prediction_scores_below_perfect(self):
        rng = np.random.default_rng(1)
        truth = rng.random((20, 20))
        truth = (truth + truth.T) / 2
        np.fill_diagonal(truth, 0.0)
        shuffled = rng.random((20, 20))
        assert hit_rate(shuffled, truth, 5) < 1.0

    def test_hit_rate_manual_case(self):
        truth = np.array([[0.0, 1.0, 2.0, 3.0],
                          [1.0, 0.0, 1.0, 2.0],
                          [2.0, 1.0, 0.0, 1.0],
                          [3.0, 2.0, 1.0, 0.0]])
        prediction = truth[:, ::-1]  # reverse the ranking
        assert hit_rate(prediction, truth, 1) <= 0.25

    def test_ndcg_discounts_rank(self):
        truth = np.array([[0.0, 1.0, 2.0, 3.0],
                          [1.0, 0.0, 1.5, 2.0],
                          [2.0, 1.5, 0.0, 1.0],
                          [3.0, 2.0, 1.0, 0.0]])
        slightly_wrong = truth.copy()
        slightly_wrong[0, 1], slightly_wrong[0, 2] = truth[0, 2], truth[0, 1]
        assert ndcg(slightly_wrong, truth, 2) <= 1.0

    def test_per_query_hit_rate_shape(self):
        rng = np.random.default_rng(2)
        truth = rng.random((8, 8))
        truth = (truth + truth.T) / 2
        np.fill_diagonal(truth, 0.0)
        rates = per_query_hit_rate(truth, truth, 3)
        assert rates.shape == (8,)
        np.testing.assert_allclose(rates, np.ones(8))

    def test_evaluate_retrieval_clamps_large_k(self):
        truth = np.random.default_rng(3).random((6, 6))
        truth = (truth + truth.T) / 2
        np.fill_diagonal(truth, 0.0)
        metrics = evaluate_retrieval(truth, truth, hr_ks=(50,), ndcg_ks=(50,))
        assert metrics["hr@50"] == pytest.approx(1.0)

    def test_evaluate_retrieval_shape_mismatch(self):
        with pytest.raises(ValueError):
            evaluate_retrieval(np.zeros((3, 3)), np.zeros((4, 4)))

    def test_euclidean_distance_matrix_matches_direct(self):
        rng = np.random.default_rng(4)
        a = rng.normal(size=(5, 3))
        b = rng.normal(size=(7, 3))
        matrix = euclidean_distance_matrix(a, b)
        direct = np.sqrt(((a[:, None] - b[None]) ** 2).sum(-1))
        np.testing.assert_allclose(matrix, direct, atol=1e-9)


class TestEfficiency:
    def test_time_callable_positive(self):
        assert time_callable(lambda: sum(range(1000)), repeats=2) >= 0.0

    def test_time_callable_validation(self):
        with pytest.raises(ValueError):
            time_callable(lambda: None, repeats=0)

    def test_database_memory_bytes(self):
        embeddings = np.zeros((10, 4))
        assert database_memory_bytes(embeddings) == embeddings.nbytes
        plugin = LHPlugin(LHPluginConfig(factor_dim=2, fusion_hidden=4))
        sequences = [np.random.default_rng(i).random((4, 2)) for i in range(10)]
        database = plugin.embed_database(embeddings, sequences)
        assert database_memory_bytes(database) > embeddings.nbytes

    def test_retrieval_latency_reports(self):
        rng = np.random.default_rng(5)
        database = rng.normal(size=(200, 8))
        queries = rng.normal(size=(5, 8))
        report = retrieval_latency(queries, database, k=3, repeats=2)
        assert report["latency_seconds"] > 0.0
        assert report["database_size"] == 200
        assert not report["with_plugin"]

    def test_retrieval_latency_with_plugin(self):
        rng = np.random.default_rng(6)
        database = rng.normal(size=(100, 8))
        queries = rng.normal(size=(4, 8))
        plugin = LHPlugin(LHPluginConfig(factor_dim=2, fusion_hidden=4))
        sequences = [rng.random((4, 2)) for _ in range(100)]
        query_sequences = [rng.random((4, 2)) for _ in range(4)]
        report = retrieval_latency(queries, database, k=3, plugin=plugin,
                                   query_sequences=query_sequences,
                                   database_sequences=sequences, repeats=2)
        assert report["with_plugin"]
        assert report["memory_bytes"] > 0
