"""Unit tests for trajectory containers, synthetic generation and preprocessing."""

import numpy as np
import pytest

from repro.data import (
    BoundingBox,
    CITY_PRESETS,
    Grid,
    Normalizer,
    QuadTree,
    SpatioTemporalGrid,
    Trajectory,
    TrajectoryDataset,
    available_presets,
    clip_to_box,
    generate_dataset,
    load_csv,
    load_npz,
    remove_stationary_points,
    save_csv,
    save_npz,
    trajectory_graph,
)


class TestBoundingBox:
    def test_dimensions(self):
        box = BoundingBox(0.0, 1.0, 4.0, 3.0)
        assert box.width == pytest.approx(4.0)
        assert box.height == pytest.approx(2.0)

    def test_contains(self):
        box = BoundingBox(0.0, 0.0, 1.0, 1.0)
        assert box.contains(0.5, 0.5)
        assert not box.contains(2.0, 0.5)

    def test_expanded(self):
        box = BoundingBox(0.0, 0.0, 1.0, 1.0).expanded(0.5)
        assert box.min_lon == pytest.approx(-0.5)
        assert box.max_lat == pytest.approx(1.5)

    def test_of_points(self):
        box = BoundingBox.of_points(np.array([[0.0, 1.0], [2.0, -1.0]]))
        assert box.min_lat == pytest.approx(-1.0)
        assert box.max_lon == pytest.approx(2.0)


class TestTrajectory:
    def test_validation(self):
        with pytest.raises(ValueError):
            Trajectory(np.zeros((3, 4)))
        with pytest.raises(ValueError):
            Trajectory(np.zeros((0, 2)))

    def test_basic_accessors(self):
        t = Trajectory(np.array([[0.0, 0.0, 1.0], [1.0, 1.0, 2.0]]), trajectory_id="a")
        assert len(t) == 2
        assert t.has_time
        np.testing.assert_allclose(t.timestamps, [1.0, 2.0])
        assert t.coordinates.shape == (2, 2)

    def test_timestamps_raise_without_time(self):
        t = Trajectory(np.zeros((2, 2)))
        with pytest.raises(AttributeError):
            _ = t.timestamps

    def test_length(self):
        t = Trajectory(np.array([[0.0, 0.0], [3.0, 4.0]]))
        assert t.length() == pytest.approx(5.0)

    def test_resample_endpoints_preserved(self):
        t = Trajectory(np.array([[0.0, 0.0], [1.0, 0.0], [2.0, 0.0]]))
        resampled = t.resample(7)
        assert len(resampled) == 7
        np.testing.assert_allclose(resampled.points[0], t.points[0])
        np.testing.assert_allclose(resampled.points[-1], t.points[-1])

    def test_resample_validation(self):
        with pytest.raises(ValueError):
            Trajectory(np.zeros((3, 2))).resample(1)

    def test_downsample_keeps_last_point(self):
        t = Trajectory(np.arange(10.0).reshape(5, 2))
        down = t.downsample(2)
        np.testing.assert_allclose(down.points[-1], t.points[-1])

    def test_spatial_only_drops_time(self):
        t = Trajectory(np.ones((3, 3)))
        assert not t.spatial_only().has_time


class TestTrajectoryDataset:
    def _dataset(self, n=6):
        return TrajectoryDataset([Trajectory(np.random.default_rng(i).random((4, 2)),
                                             trajectory_id=i) for i in range(n)])

    def test_requires_trajectories(self):
        with pytest.raises(ValueError):
            TrajectoryDataset([])

    def test_indexing_and_slicing(self):
        ds = self._dataset()
        assert isinstance(ds[0], Trajectory)
        assert isinstance(ds[:3], TrajectoryDataset)
        assert len(ds[:3]) == 3

    def test_statistics_keys(self):
        stats = self._dataset().statistics()
        for key in ("size", "mean_points", "min_points", "max_points", "has_time"):
            assert key in stats

    def test_split_sizes(self):
        parts = self._dataset(10).split([0.5, 0.5], seed=0)
        assert len(parts) == 2
        assert sum(len(p) for p in parts) == 10

    def test_split_validation(self):
        with pytest.raises(ValueError):
            self._dataset().split([0.9, 0.9])

    def test_subset_preserves_order(self):
        ds = self._dataset()
        subset = ds.subset([3, 1])
        assert subset[0].trajectory_id == 3
        assert subset[1].trajectory_id == 1

    def test_map(self):
        ds = self._dataset()
        doubled = ds.map(lambda t: Trajectory(t.points * 2, t.trajectory_id))
        np.testing.assert_allclose(doubled[0].points, ds[0].points * 2)


class TestSyntheticGeneration:
    def test_available_presets(self):
        assert set(available_presets()) == set(CITY_PRESETS)

    def test_deterministic(self):
        a = generate_dataset("chengdu", size=10, seed=3)
        b = generate_dataset("chengdu", size=10, seed=3)
        for ta, tb in zip(a, b):
            np.testing.assert_allclose(ta.points, tb.points)

    def test_different_seeds_differ(self):
        a = generate_dataset("chengdu", size=5, seed=0)
        b = generate_dataset("chengdu", size=5, seed=1)
        same_shape = a[0].points.shape == b[0].points.shape
        assert not (same_shape and np.allclose(a[0].points, b[0].points))

    def test_size(self):
        assert len(generate_dataset("porto", size=17, seed=0)) == 17

    def test_size_validation(self):
        with pytest.raises(ValueError):
            generate_dataset("porto", size=0)

    def test_unknown_preset(self):
        with pytest.raises(KeyError):
            generate_dataset("atlantis", size=5)

    def test_time_presets_have_timestamps(self):
        ds = generate_dataset("tdrive", size=5, seed=0)
        assert ds.has_time
        for trajectory in ds:
            assert np.all(np.diff(trajectory.timestamps) >= 0)

    def test_with_time_override(self):
        ds = generate_dataset("chengdu", size=5, seed=0, with_time=True)
        assert ds.has_time

    def test_minimum_points_respected(self):
        preset = CITY_PRESETS["chengdu"]
        ds = generate_dataset("chengdu", size=30, seed=0)
        assert ds.lengths().min() >= preset.min_points

    def test_all_presets_generate(self):
        for preset in available_presets():
            ds = generate_dataset(preset, size=4, seed=1)
            assert len(ds) == 4


class TestGrid:
    def _grid(self):
        return Grid(BoundingBox(0.0, 0.0, 10.0, 10.0), num_columns=5, num_rows=5)

    def test_validation(self):
        with pytest.raises(ValueError):
            Grid(BoundingBox(0, 0, 1, 1), num_columns=0)

    def test_cell_of_and_clamping(self):
        grid = self._grid()
        assert grid.cell_of(0.5, 0.5) == (0, 0)
        assert grid.cell_of(9.9, 9.9) == (4, 4)
        assert grid.cell_of(-5.0, 50.0) == (0, 4)

    def test_token_roundtrip(self):
        grid = self._grid()
        token = grid.token_of(4.5, 6.5)
        column, row = token % grid.num_columns, token // grid.num_columns
        assert (column, row) == grid.cell_of(4.5, 6.5)

    def test_cell_center_inside_cell(self):
        grid = self._grid()
        lon, lat = grid.cell_center(2, 3)
        assert grid.cell_of(lon, lat) == (2, 3)

    def test_neighbors_corner(self):
        grid = self._grid()
        assert len(grid.neighbors_of(0, 0)) == 3
        assert len(grid.neighbors_of(2, 2)) == 8

    def test_tokenize_and_features(self):
        grid = self._grid()
        trajectory = Trajectory(np.array([[1.0, 1.0], [9.0, 9.0]]))
        tokens = grid.tokenize(trajectory)
        assert tokens.shape == (2,)
        features = grid.features(trajectory)
        assert features.shape == (2, 4)
        assert features.min() >= 0.0 and features.max() <= 1.0

    def test_for_dataset_covers_points(self):
        ds = generate_dataset("chengdu", size=5, seed=0)
        grid = Grid.for_dataset(ds, 8, 8)
        for trajectory in ds:
            tokens = grid.tokenize(trajectory)
            assert tokens.min() >= 0 and tokens.max() < grid.num_cells


class TestSpatioTemporalGrid:
    def test_requires_time(self):
        ds = generate_dataset("chengdu", size=4, seed=0)
        with pytest.raises(ValueError):
            SpatioTemporalGrid.for_dataset(ds)

    def test_tokenize(self):
        ds = generate_dataset("tdrive", size=4, seed=0)
        st_grid = SpatioTemporalGrid.for_dataset(ds, 4, 4, num_time_bins=6)
        tokens = st_grid.tokenize(ds[0])
        assert tokens.min() >= 0
        assert tokens.max() < st_grid.num_cells

    def test_time_bin_clamped(self):
        ds = generate_dataset("tdrive", size=4, seed=0)
        st_grid = SpatioTemporalGrid.for_dataset(ds, 4, 4, num_time_bins=6)
        assert st_grid.time_bin(-1e9) == 0
        assert st_grid.time_bin(1e9) == 5

    def test_features_shape(self):
        ds = generate_dataset("tdrive", size=4, seed=0)
        st_grid = SpatioTemporalGrid.for_dataset(ds, 4, 4)
        assert st_grid.features(ds[0]).shape == (len(ds[0]), 6)


class TestQuadTree:
    def test_split_on_overflow(self):
        tree = QuadTree(BoundingBox(0.0, 0.0, 1.0, 1.0), max_points=2, max_depth=4)
        rng = np.random.default_rng(0)
        for lon, lat in rng.random((20, 2)):
            tree.insert(lon, lat)
        assert not tree.root.is_leaf
        assert tree.num_nodes > 5

    def test_leaf_for_contains_point(self):
        ds = generate_dataset("chengdu", size=5, seed=0)
        tree = QuadTree.for_dataset(ds, max_points=8, max_depth=5)
        lon, lat = ds[0].coordinates[0]
        leaf = tree.leaf_for(lon, lat)
        assert leaf.is_leaf
        assert leaf.box.min_lon <= lon <= leaf.box.max_lon

    def test_path_to_leaf_monotone_depth(self):
        ds = generate_dataset("chengdu", size=5, seed=0)
        tree = QuadTree.for_dataset(ds, max_points=8, max_depth=5)
        lon, lat = ds[0].coordinates[0]
        path = tree.path_to_leaf(lon, lat)
        assert [node.depth for node in path] == list(range(len(path)))

    def test_validation(self):
        with pytest.raises(ValueError):
            QuadTree(BoundingBox(0, 0, 1, 1), max_points=0)

    def test_trajectory_graph_structure(self):
        ds = generate_dataset("chengdu", size=5, seed=0)
        tree = QuadTree.for_dataset(ds)
        features, adjacency = trajectory_graph(ds[0], tree)
        num_points = len(ds[0])
        assert features.shape[0] == adjacency.shape[0] >= num_points
        assert np.all(adjacency == adjacency.T)
        assert np.all(np.diag(adjacency))
        # consecutive trajectory points are connected
        assert adjacency[0, 1]


class TestNormalizeAndIO:
    def test_normalizer_roundtrip(self):
        ds = generate_dataset("chengdu", size=5, seed=0)
        normalizer = Normalizer.fit(ds)
        points = ds[0].points
        back = normalizer.inverse_transform_points(normalizer.transform_points(points))
        np.testing.assert_allclose(back, points, atol=1e-9)

    def test_normalizer_unit_square(self):
        ds = generate_dataset("chengdu", size=10, seed=0)
        normalised = Normalizer.fit(ds).transform_dataset(ds)
        box = normalised.bounding_box
        assert box.min_lon >= -1e-9 and box.max_lon <= 1.0 + 1e-9

    def test_normalizer_time_requires_fit_with_time(self):
        ds = generate_dataset("chengdu", size=3, seed=0)
        normalizer = Normalizer.fit(ds)
        with pytest.raises(ValueError):
            normalizer.transform_points(np.ones((2, 3)))

    def test_remove_stationary_points(self):
        t = Trajectory(np.array([[0.0, 0.0], [0.0, 0.0], [1.0, 1.0]]))
        cleaned = remove_stationary_points(t, min_step=1e-3)
        assert len(cleaned) == 2

    def test_clip_to_box(self):
        t = Trajectory(np.array([[0.0, 0.0], [5.0, 5.0]]))
        clipped = clip_to_box(t, BoundingBox(-1.0, -1.0, 1.0, 1.0))
        assert len(clipped) == 1
        assert clip_to_box(t, BoundingBox(10.0, 10.0, 11.0, 11.0)) is None

    def test_npz_roundtrip(self, tmp_path):
        ds = generate_dataset("tdrive", size=5, seed=0)
        path = tmp_path / "dataset.npz"
        save_npz(ds, path)
        loaded = load_npz(path)
        assert len(loaded) == len(ds)
        np.testing.assert_allclose(loaded[0].points, ds[0].points)

    def test_csv_roundtrip(self, tmp_path):
        ds = generate_dataset("chengdu", size=4, seed=0)
        path = tmp_path / "dataset.csv"
        save_csv(ds, path)
        loaded = load_csv(path)
        assert len(loaded) == len(ds)
        np.testing.assert_allclose(loaded[0].points, ds[0].points, atol=1e-12)

    def test_csv_missing_header(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b\n1,2\n")
        with pytest.raises(ValueError):
            load_csv(path)
