"""Unit tests for recurrent and attention layers."""

import numpy as np
import pytest

from repro.nn import (
    GRU,
    LSTM,
    CoAttention,
    GraphAttentionLayer,
    GRUCell,
    LSTMCell,
    ScaledDotProductAttention,
    Tensor,
)


class TestCells:
    def test_lstm_cell_shapes(self):
        cell = LSTMCell(3, 5)
        state = cell.initial_state(2)
        hidden, memory = cell(Tensor(np.ones((2, 3))), state)
        assert hidden.shape == (2, 5)
        assert memory.shape == (2, 5)

    def test_gru_cell_shapes(self):
        cell = GRUCell(3, 5)
        hidden = cell(Tensor(np.ones((2, 3))), cell.initial_state(2))
        assert hidden.shape == (2, 5)

    def test_lstm_cell_hidden_bounded(self):
        cell = LSTMCell(2, 4)
        hidden, _ = cell(Tensor(np.full((1, 2), 100.0)), cell.initial_state(1))
        assert np.abs(hidden.data).max() <= 1.0

    def test_gru_cell_hidden_bounded(self):
        cell = GRUCell(2, 4)
        hidden = cell(Tensor(np.full((1, 2), 100.0)), cell.initial_state(1))
        assert np.abs(hidden.data).max() <= 1.0


class TestSequenceEncoders:
    @pytest.mark.parametrize("encoder_cls", [LSTM, GRU])
    def test_batched_shapes(self, encoder_cls):
        encoder = encoder_cls(3, 6)
        outputs, final = encoder(Tensor(np.random.default_rng(0).normal(size=(2, 7, 3))))
        assert outputs.shape == (2, 7, 6)
        hidden = final[0] if isinstance(final, tuple) else final
        assert hidden.shape == (2, 6)

    @pytest.mark.parametrize("encoder_cls", [LSTM, GRU])
    def test_unbatched_shapes(self, encoder_cls):
        encoder = encoder_cls(3, 6)
        outputs, final = encoder(Tensor(np.random.default_rng(0).normal(size=(7, 3))))
        assert outputs.shape == (7, 6)
        hidden = final[0] if isinstance(final, tuple) else final
        assert hidden.shape == (6,)

    @pytest.mark.parametrize("encoder_cls", [LSTM, GRU])
    def test_return_sequence_false(self, encoder_cls):
        encoder = encoder_cls(3, 6)
        outputs, final = encoder(Tensor(np.ones((5, 3))), return_sequence=False)
        assert outputs is None
        hidden = final[0] if isinstance(final, tuple) else final
        assert hidden.shape == (6,)

    @pytest.mark.parametrize("encoder_cls", [LSTM, GRU])
    def test_final_state_matches_last_output(self, encoder_cls):
        encoder = encoder_cls(2, 4)
        sequence = Tensor(np.random.default_rng(1).normal(size=(6, 2)))
        outputs, final = encoder(sequence)
        hidden = final[0] if isinstance(final, tuple) else final
        np.testing.assert_allclose(outputs.data[-1], hidden.data)

    @pytest.mark.parametrize("encoder_cls", [LSTM, GRU])
    def test_gradients_reach_all_parameters(self, encoder_cls):
        encoder = encoder_cls(2, 4)
        _, final = encoder(Tensor(np.ones((5, 2))), return_sequence=False)
        hidden = final[0] if isinstance(final, tuple) else final
        (hidden * hidden).sum().backward()
        assert all(p.grad is not None for p in encoder.parameters())

    def test_order_sensitivity(self):
        encoder = LSTM(1, 4, rng=np.random.default_rng(0))
        forward = np.arange(5.0).reshape(5, 1)
        _, (h1, _) = encoder(Tensor(forward), return_sequence=False)
        _, (h2, _) = encoder(Tensor(forward[::-1].copy()), return_sequence=False)
        assert not np.allclose(h1.data, h2.data)


class TestAttention:
    def test_dot_product_attention_weights_sum_to_one(self):
        attention = ScaledDotProductAttention()
        rng = np.random.default_rng(0)
        out, weights = attention(Tensor(rng.normal(size=(3, 4))),
                                 Tensor(rng.normal(size=(5, 4))),
                                 Tensor(rng.normal(size=(5, 6))))
        assert out.shape == (3, 6)
        np.testing.assert_allclose(weights.data.sum(axis=-1), np.ones(3))

    def test_dot_product_attention_mask(self):
        attention = ScaledDotProductAttention()
        query = Tensor(np.ones((1, 2)))
        key = Tensor(np.ones((3, 2)))
        value = Tensor(np.eye(3))
        mask = np.array([[True, False, False]])
        _, weights = attention(query, key, value, mask=mask)
        np.testing.assert_allclose(weights.data, [[1.0, 0.0, 0.0]], atol=1e-6)

    def test_coattention_shapes_and_gradients(self):
        module = CoAttention(6)
        a = Tensor(np.random.default_rng(0).normal(size=(4, 6)), requires_grad=True)
        b = Tensor(np.random.default_rng(1).normal(size=(5, 6)), requires_grad=True)
        fused_a, fused_b = module(a, b)
        assert fused_a.shape == (4, 6)
        assert fused_b.shape == (5, 6)
        (fused_a.sum() + fused_b.sum()).backward()
        assert a.grad is not None and b.grad is not None

    def test_graph_attention_respects_adjacency(self):
        layer = GraphAttentionLayer(3, 4, rng=np.random.default_rng(0))
        features = np.random.default_rng(1).normal(size=(4, 3))
        isolated = np.eye(4, dtype=bool)
        out_isolated = layer(Tensor(features), isolated)
        connected = isolated.copy()
        connected[0, 1] = connected[1, 0] = True
        out_connected = layer(Tensor(features), connected)
        # Node 2 has the same neighbourhood in both graphs, node 0 does not.
        np.testing.assert_allclose(out_isolated.data[2], out_connected.data[2])
        assert not np.allclose(out_isolated.data[0], out_connected.data[0])

    def test_graph_attention_gradients(self):
        layer = GraphAttentionLayer(3, 4)
        features = Tensor(np.ones((3, 3)), requires_grad=True)
        layer(features, np.ones((3, 3), dtype=bool)).sum().backward()
        assert features.grad is not None
        assert all(p.grad is not None for p in layer.parameters())
