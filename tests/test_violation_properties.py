"""Property-based tests for the violation statistics and experiment settings helpers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.experiments import ExperimentSettings
from repro.violation import (
    ratio_of_violation,
    relative_violation_scale,
    triangle_violation_flag,
    violation_report,
)

SETTINGS = dict(max_examples=30, deadline=None)


def symmetric_matrices(min_size=3, max_size=8):
    """Random symmetric matrices with strictly positive off-diagonal entries."""

    def build(values):
        n = values.shape[0]
        matrix = (values + values.T) / 2
        np.fill_diagonal(matrix, 0.0)
        return matrix

    return st.integers(min_size, max_size).flatmap(
        lambda n: arrays(np.float64, (n, n),
                         elements=st.floats(0.0625, 10.0, allow_nan=False, width=32))
        .map(build))


def point_sets(min_points=3, max_points=10):
    return st.integers(min_points, max_points).flatmap(
        lambda n: arrays(np.float64, (n, 2),
                         elements=st.floats(-5.0, 5.0, allow_nan=False, width=32)))


@given(symmetric_matrices())
@settings(**SETTINGS)
def test_flag_consistent_with_rvs_sign(matrix):
    n = len(matrix)
    for i in range(n - 2):
        for j in range(i + 1, n - 1):
            for k in range(j + 1, n):
                flag = triangle_violation_flag(matrix, i, j, k)
                scale = relative_violation_scale(matrix, i, j, k)
                if flag:
                    assert scale > 0.0
                else:
                    assert scale <= 1e-9


@given(symmetric_matrices())
@settings(**SETTINGS)
def test_rv_between_zero_and_one(matrix):
    rv = ratio_of_violation(matrix)
    assert 0.0 <= rv <= 1.0


@given(symmetric_matrices())
@settings(**SETTINGS)
def test_report_consistent_with_individual_statistics(matrix):
    report = violation_report(matrix)
    assert report["ratio_of_violation"] == pytest.approx(ratio_of_violation(matrix))
    assert report["violating_triplets"] <= report["triplets"]


@given(point_sets())
@settings(**SETTINGS)
def test_euclidean_point_distances_never_violate(points):
    matrix = np.sqrt(((points[:, None] - points[None]) ** 2).sum(-1))
    assert ratio_of_violation(matrix) == 0.0


@given(symmetric_matrices())
@settings(**SETTINGS)
def test_scaling_matrix_preserves_statistics(matrix):
    report = violation_report(matrix)
    scaled = violation_report(matrix * 7.5)
    assert scaled["ratio_of_violation"] == pytest.approx(report["ratio_of_violation"])
    assert scaled["average_relative_violation"] == pytest.approx(
        report["average_relative_violation"], rel=1e-9, abs=1e-12)


class TestExperimentSettings:
    def test_measure_kwargs_for_edr(self):
        assert "epsilon" in ExperimentSettings(measure="edr").measure_kwargs()
        assert ExperimentSettings(measure="dtw").measure_kwargs() == {}

    def test_needs_time(self):
        assert ExperimentSettings(measure="tp").needs_time()
        assert ExperimentSettings(model="st2vec").needs_time()
        assert not ExperimentSettings(measure="dtw", model="neutraj").needs_time()

    def test_default_plugin_config(self):
        settings = ExperimentSettings()
        assert settings.plugin.beta == 1.0
        assert settings.plugin.compression == 4.0
