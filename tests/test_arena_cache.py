"""Arena-cache lifecycle: content-addressed shared-memory reuse stays leak-free.

The contract under test (ISSUE 8): repeated work against the same database hits
the *same* shared-memory segment instead of re-packing per call; an index
mutation appends only the delta; eviction under a tight
``REPRO_ARENA_CACHE_BYTES`` budget unlinks segments; ``live_arena_names()``
drains to empty after ``clear()``/service shutdown; and a worker killed
mid-query never leaks a cached arena.
"""

from __future__ import annotations

import os
import signal

import numpy as np
import pytest

from repro.engine import (
    ArenaCapacityError,
    MatrixEngine,
    TrajectoryArena,
    get_shared_pool,
    live_arena_names,
    reset_shared_pool,
    shared_memory_available,
)
from repro.engine.arena_cache import ArenaCache, get_arena_cache, reset_arena_cache
from repro.engine.executor import CanonicalArrays
from repro.engine.shared import unpack_views
from repro.search import SearchService, TrajectoryIndex, knn_search

pytestmark = pytest.mark.skipif(not shared_memory_available(),
                                reason="multiprocessing.shared_memory unavailable")


def make_arrays(count: int = 10, seed: int = 0, length: int = 12) -> CanonicalArrays:
    rng = np.random.default_rng(seed)
    return CanonicalArrays(
        np.ascontiguousarray(rng.random((length, 2))) for _ in range(count))


def shared_engine(chunk_size: int = 4) -> MatrixEngine:
    return MatrixEngine(strategy="shared", chunk_size=chunk_size, max_workers=2)


@pytest.fixture(autouse=True)
def _fresh_cache():
    """Every test starts from an empty cache and must leak no segments."""
    cache = reset_arena_cache()
    yield cache
    reset_arena_cache()
    assert live_arena_names() == frozenset()


@pytest.fixture(autouse=True, scope="module")
def _release_pools():
    yield
    reset_shared_pool(2)


class TestArenaAppend:
    def test_append_roundtrip_through_attached_views(self):
        arrays = list(make_arrays(4))
        extra = list(make_arrays(2, seed=9, length=7))
        arena = TrajectoryArena(arrays, reserve_slots=4,
                                reserve_bytes=sum(a.nbytes for a in extra))
        try:
            slots = arena.append(extra)
            np.testing.assert_array_equal(slots, [4, 5])
            views = unpack_views(arena._shm.buf)
            assert len(views) == 6
            for view, original in zip(views, arrays + extra):
                np.testing.assert_array_equal(view, original)
            del views  # release buffer exports before unlink
        finally:
            arena.close()

    def test_append_beyond_capacity_raises(self):
        arrays = list(make_arrays(3))
        arena = TrajectoryArena(arrays)  # no slack at all
        try:
            assert not arena.can_append(arrays[:1])
            with pytest.raises(ArenaCapacityError):
                arena.append(arrays[:1])
        finally:
            arena.close()


class TestArenaCache:
    def test_repeated_pin_hits_the_same_segment(self, _fresh_cache):
        cache = _fresh_cache
        arrays = make_arrays()
        first = cache.pin(arrays)
        second = cache.pin(arrays)
        assert second is first
        assert cache.hits == 1 and cache.misses == 1
        # One live segment for both pins — reuse, not re-pack.
        assert live_arena_names() == frozenset({first.name})
        cache.unpin(first)
        cache.unpin(second)
        assert live_arena_names() == frozenset({first.name})  # cached, still linked

    def test_mutation_appends_delta_instead_of_repacking(self, _fresh_cache):
        cache = _fresh_cache
        arrays = make_arrays()
        entry = cache.pin(arrays)
        cache.unpin(entry)
        grown = CanonicalArrays(list(arrays) + list(make_arrays(2, seed=5)))
        grown_entry = cache.pin(grown)
        assert grown_entry is entry  # same segment, delta appended
        assert cache.appends == 1 and cache.misses == 1
        assert all(entry.slot_of(a) is not None for a in grown)
        cache.unpin(grown_entry)

    def test_tight_budget_evicts_and_unlinks(self):
        arrays = make_arrays()
        probe = ArenaCache(max_bytes=1 << 30)
        entry = probe.pin(arrays)
        budget = entry.nbytes + 1024  # fits one arena, never two
        probe.unpin(entry)
        probe.clear()

        cache = reset_arena_cache(max_bytes=budget)
        first = cache.pin(arrays)
        first_name = first.name
        cache.unpin(first)
        other = cache.pin(make_arrays(seed=7))
        assert cache.evictions == 1
        assert first_name not in live_arena_names()
        with pytest.raises(FileNotFoundError):
            import multiprocessing.shared_memory as shm
            shm.SharedMemory(name=first_name)
        cache.unpin(other)

    def test_zero_budget_disables_caching(self):
        cache = reset_arena_cache(max_bytes=0)
        assert cache.pin(make_arrays()) is None
        assert live_arena_names() == frozenset()

    def test_oversized_database_is_not_cached(self):
        cache = reset_arena_cache(max_bytes=256)  # smaller than any real pack
        assert cache.pin(make_arrays()) is None
        assert len(cache) == 0 and live_arena_names() == frozenset()

    def test_doomed_pinned_entry_unlinks_at_last_unpin(self, _fresh_cache):
        cache = _fresh_cache
        arrays = make_arrays()
        entry = cache.pin(arrays)
        fingerprint = next(iter(entry.fingerprints))
        assert cache.evict(fingerprint) is False  # pinned: doomed, not unlinked
        assert entry.doomed and entry.name in live_arena_names()
        replacement = cache.pin(arrays)
        assert replacement is not entry  # doomed entries take no new pins
        cache.unpin(replacement)
        cache.unpin(entry)
        assert entry.name not in live_arena_names()

    def test_clear_drains_every_segment(self, _fresh_cache):
        cache = _fresh_cache
        for seed in range(3):
            cache.unpin(cache.pin(make_arrays(seed=seed)))
        assert len(cache) == 3 and len(live_arena_names()) == 3
        cache.clear()
        assert live_arena_names() == frozenset()


class TestEngineReuse:
    def test_packed_dispatch_is_bit_identical_and_reuses(self, _fresh_cache):
        cache = _fresh_cache
        db = make_arrays(count=24)
        query = np.ascontiguousarray(np.random.default_rng(3).random((12, 2)))
        engine = shared_engine()
        entry = cache.pin(db)
        reference = MatrixEngine(strategy="serial").pairs([query] * len(db),
                                                          list(db), "dtw")
        for _ in range(2):
            values = engine.pairs(CanonicalArrays([query] * len(db)), db, "dtw",
                                  arena=entry)
            np.testing.assert_array_equal(values, reference)
            assert engine.last_dispatch["arena_reused"] is True
            assert engine.last_dispatch["arena_bytes"] == 0  # nothing re-published
        # The query is not in the arena: it rides along as a pickled extra.
        assert entry.slot_of(query) is None
        cache.unpin(entry)

    def test_knn_auto_pins_process_cache(self, _fresh_cache):
        cache = _fresh_cache
        trajectories = [np.random.default_rng(i).random((10, 2)) for i in range(20)]
        index = TrajectoryIndex(trajectories)
        engine = shared_engine(chunk_size=4)
        serial = MatrixEngine(strategy="serial")
        expected = knn_search(TrajectoryIndex(trajectories), trajectories[0], 5,
                              engine=serial, exclude=0, arena=False)
        # batch_size > chunk_size: refinement dispatches, so knn pins the cache.
        result = knn_search(index, trajectories[0], 5, engine=engine, exclude=0,
                            batch_size=16)
        assert cache.misses == 1 and len(cache) == 1
        again = knn_search(index, trajectories[1], 5, engine=engine, exclude=1,
                           batch_size=16)
        assert cache.hits == 1
        np.testing.assert_array_equal(result.indices, expected.indices)
        np.testing.assert_array_equal(result.distances, expected.distances)
        assert again.stats.num_refined > 0
        # arena=False opts out: no new entries, results unchanged.
        opted_out = knn_search(index, trajectories[0], 5, engine=engine, exclude=0,
                               batch_size=16, arena=False)
        np.testing.assert_array_equal(opted_out.indices, expected.indices)
        assert cache.misses == 1

    def test_knn_skips_pinning_when_dispatch_cannot_happen(self, _fresh_cache):
        cache = _fresh_cache
        trajectories = [np.random.default_rng(i).random((10, 2)) for i in range(12)]
        index = TrajectoryIndex(trajectories)
        # Default batch_size (8) <= chunk_size: single-chunk batches never
        # leave the process, so pinning would only cost fingerprint hashing.
        knn_search(index, trajectories[0], 3, engine=shared_engine(chunk_size=128),
                   exclude=0)
        assert len(cache) == 0 and cache.misses == 0


class TestServiceLifecycle:
    def test_service_reuses_across_flushes_and_drains_on_close(self, _fresh_cache):
        cache = _fresh_cache
        trajectories = [np.random.default_rng(i).random((10, 2)) for i in range(20)]
        with SearchService(trajectories, k=3, engine=shared_engine(chunk_size=4),
                           refine_batch_size=16, cache_entries=0) as service:
            service.search(trajectories[0], exclude=0)
            service.search(trajectories[1], exclude=1)
            assert cache.misses == 1 and cache.hits == 1
            assert len(live_arena_names()) == 1
        assert live_arena_names() == frozenset()

    def test_worker_death_mid_query_leaks_nothing(self, _fresh_cache):
        """SIGKILLing a pool worker triggers the retry; the pinned cached arena
        survives the retry and the service close still drains every segment."""
        cache = _fresh_cache
        trajectories = [np.random.default_rng(i).random((10, 2)) for i in range(20)]
        engine = shared_engine(chunk_size=4)
        service = SearchService(trajectories, k=3, engine=engine,
                                refine_batch_size=16, cache_entries=0)
        expected = service.search(trajectories[0], exclude=0)
        pool = get_shared_pool(engine.max_workers)
        victim = next(iter(pool._processes))
        os.kill(victim, signal.SIGKILL)
        result = service.search(trajectories[1], exclude=1)
        reference = knn_search(TrajectoryIndex(trajectories), trajectories[1], 3,
                               engine=MatrixEngine(strategy="serial"), exclude=1,
                               arena=False)
        np.testing.assert_array_equal(result.indices, reference.indices)
        np.testing.assert_array_equal(result.distances, reference.distances)
        assert len(expected.indices) == 3
        assert len(live_arena_names()) == 1  # the cached arena, still intact
        service.close()
        assert live_arena_names() == frozenset()

    def test_efficiency_probe_reports_arena_traffic_and_stays_clean(self):
        from repro.eval import search_latency

        trajectories = [np.random.default_rng(i).random((10, 2)) for i in range(16)]
        result = search_latency(trajectories, trajectories[:2], k=3, repeats=2,
                                engine=shared_engine(chunk_size=4),
                                exclude_self=True)
        assert result["arena_hits"] + result["arena_misses"] >= 0
        assert result["index_shards"] >= 1
        assert live_arena_names() == frozenset()
