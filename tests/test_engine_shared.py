"""Shared-memory engine strategy: parity, arena lifecycle, pool robustness.

The contract under test: ``strategy="shared"`` produces **bit-identical**
results to the ``serial`` strategy for every registered measure (thresholds
and tie safety included), aggregates worker-side DP cell counts into the
parent, never leaks a shared-memory arena — even when a worker raises — and
survives a killed worker by restarting its persistent pool.
"""

import os
import signal
from multiprocessing import shared_memory

import numpy as np
import pytest

import repro.engine.shared as shared_module
from repro.data import generate_dataset
from repro.distances import knn_from_matrix
from repro.engine import (
    CanonicalArrays,
    MatrixEngine,
    TrajectoryArena,
    as_canonical_arrays,
    dp_cell_count,
    get_shared_pool,
    live_arena_names,
    reset_dp_cell_count,
    reset_shared_pool,
    shared_memory_available,
)
from repro.engine.executor import _point_arrays
from repro.engine.shared import unpack_views
from repro.search import TrajectoryIndex, knn_search

#: Every registered measure (kwargs included); spatio-temporal ones get a
#: time column via the ``temporal`` fixture.
MEASURES = [
    ("dtw", {}),
    ("dtw", {"band": 2}),
    ("erp", {}),
    ("edr", {"epsilon": 0.2}),
    ("lcss", {"epsilon": 0.2}),
    ("frechet", {}),
    ("hausdorff", {}),
    ("sspd", {}),
    ("dita", {}),
    ("tp", {}),
]
TEMPORAL = {"dita", "tp"}


def _boom(a, b):
    """Module-level (hence picklable) measure that always fails in a worker."""
    raise RuntimeError("intentional worker failure")


@pytest.fixture(scope="module")
def spatial():
    rng = np.random.default_rng(0)
    return [rng.random((int(rng.integers(3, 15)), 2)) for _ in range(12)]


@pytest.fixture(scope="module")
def temporal():
    rng = np.random.default_rng(1)
    trajectories = []
    for _ in range(12):
        points = rng.random((int(rng.integers(3, 12)), 3))
        points[:, 2] = np.sort(points[:, 2])
        trajectories.append(points)
    return trajectories


def serial_engine() -> MatrixEngine:
    return MatrixEngine(strategy="serial", cache=None)


def shared_engine(**overrides) -> MatrixEngine:
    options = dict(strategy="shared", cache=None, chunk_size=4, max_workers=2)
    options.update(overrides)
    return MatrixEngine(**options)


class TestSharedParity:
    @pytest.mark.parametrize("measure,kwargs", MEASURES,
                             ids=[f"{m}-{sorted(k)}" if k else m for m, k in MEASURES])
    def test_pairwise_bitwise_identical_to_serial(self, measure, kwargs,
                                                  spatial, temporal):
        trajectories = temporal if measure in TEMPORAL else spatial
        expected = serial_engine().pairwise(trajectories, measure, **kwargs)
        actual = shared_engine().pairwise(trajectories, measure, **kwargs)
        np.testing.assert_array_equal(actual, expected)

    def test_cross_and_pairs_bitwise_identical(self, spatial):
        serial = serial_engine()
        engine = shared_engine()
        np.testing.assert_array_equal(
            engine.cross(spatial[:3], spatial[3:], "erp"),
            serial.cross(spatial[:3], spatial[3:], "erp"))
        list_a = [spatial[0]] * (len(spatial) - 1)
        list_b = spatial[1:]
        np.testing.assert_array_equal(engine.pairs(list_a, list_b, "dtw"),
                                      serial.pairs(list_a, list_b, "dtw"))

    def test_thresholds_abandon_soundness_and_survivor_parity(self, spatial):
        list_a = [spatial[0]] * (len(spatial) - 1)
        list_b = spatial[1:]
        exact = serial_engine().pairs(list_a, list_b, "dtw")
        taus = exact.copy()
        taus[::2] *= 0.5  # provably below the exact value → may abandon
        values = shared_engine().pairs(list_a, list_b, "dtw", thresholds=taus)
        finite = np.isfinite(values)
        np.testing.assert_array_equal(values[finite], exact[finite])
        assert np.all(exact[~finite] > taus[~finite])

    def test_exact_tie_thresholds_never_abandon(self, spatial):
        list_a = [spatial[0]] * (len(spatial) - 1)
        list_b = spatial[1:]
        exact = serial_engine().pairs(list_a, list_b, "dtw")
        # τ equal to the exact distance: abandoning requires *strictly* above.
        values = shared_engine().pairs(list_a, list_b, "dtw", thresholds=exact)
        np.testing.assert_array_equal(values, exact)

    def test_single_chunk_runs_in_process(self, spatial):
        engine = shared_engine(chunk_size=1024)
        engine.last_dispatch = None
        matrix = engine.pairwise(spatial, "dtw")
        assert engine.last_dispatch is None  # never dispatched to the pool
        np.testing.assert_array_equal(matrix, serial_engine().pairwise(spatial, "dtw"))


class TestCellAggregation:
    def test_worker_cells_fold_into_parent_counter(self, spatial):
        reset_dp_cell_count()
        MatrixEngine(strategy="chunked", cache=None, chunk_size=4).pairwise(
            spatial, "dtw")
        chunked_cells = dp_cell_count()
        assert chunked_cells > 0

        reset_dp_cell_count()
        shared_engine().pairwise(spatial, "dtw")
        assert dp_cell_count() == chunked_cells

        reset_dp_cell_count()
        MatrixEngine(strategy="process", cache=None, chunk_size=4,
                     max_workers=2).pairwise(spatial, "dtw")
        assert dp_cell_count() == chunked_cells

    def test_dispatch_metadata_records_zero_copy_payload(self, spatial):
        engine = shared_engine()
        engine.pairwise(spatial, "dtw")
        dispatch = engine.last_dispatch
        assert dispatch["strategy"] == "shared" and dispatch["arena_bytes"] > 0

        process = MatrixEngine(strategy="process", cache=None, chunk_size=4,
                               max_workers=2)
        process.pairwise(spatial, "dtw")
        shipped = dispatch["payload_bytes"] + dispatch["arena_bytes"]
        assert process.last_dispatch["payload_bytes"] > shipped


class TestArena:
    def test_roundtrip_preserves_arrays_and_is_read_only(self, spatial, temporal):
        arrays = [np.ascontiguousarray(a) for a in spatial[:3] + temporal[:3]]
        arena = TrajectoryArena(arrays)
        try:
            attachment = shared_memory.SharedMemory(name=arena.name)
            views = unpack_views(attachment.buf)
            assert len(views) == len(arrays)
            for view, original in zip(views, arrays):
                np.testing.assert_array_equal(view, original)
                assert not view.flags.writeable
            del views
            attachment.close()
        finally:
            arena.close()

    def test_close_unlinks_and_is_idempotent(self, spatial):
        arena = TrajectoryArena(spatial[:2])
        name = arena.name
        assert name in live_arena_names()
        arena.close()
        arena.close()
        assert name not in live_arena_names()
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)

    def test_worker_exception_propagates_and_cleans_arena(self, spatial):
        engine = shared_engine(chunk_size=1)
        with pytest.raises(RuntimeError, match="intentional worker failure"):
            engine.pairwise(spatial, _boom)
        assert live_arena_names() == frozenset()


class TestPoolLifecycle:
    def test_pool_is_persistent_across_calls_and_engines(self, spatial):
        first = shared_engine()
        first.pairwise(spatial, "dtw")
        pool = get_shared_pool(first.max_workers)
        shared_engine().pairwise(spatial, "erp")
        assert get_shared_pool(first.max_workers) is pool

    def test_restart_after_killed_worker(self, spatial):
        engine = shared_engine()
        expected = serial_engine().pairwise(spatial, "dtw")
        reset_dp_cell_count()
        np.testing.assert_array_equal(engine.pairwise(spatial, "dtw"), expected)
        clean_cells = dp_cell_count()
        pool = get_shared_pool(engine.max_workers)
        victim = next(iter(pool._processes))
        os.kill(victim, signal.SIGKILL)
        # The next dispatch hits BrokenProcessPool, resets the pool and retries.
        reset_dp_cell_count()
        np.testing.assert_array_equal(engine.pairwise(spatial, "dtw"), expected)
        assert live_arena_names() == frozenset()
        # Chunks gathered before the breakage must not be double-counted: the
        # fold happens once, for the dispatch attempt that completed.
        assert dp_cell_count() == clean_cells

    def test_engine_close_releases_pool(self, spatial):
        engine = shared_engine()
        engine.pairwise(spatial, "dtw")
        assert engine.max_workers in shared_module._POOLS
        engine.close()
        assert engine.max_workers not in shared_module._POOLS
        # close() is not terminal: the next call lazily starts a fresh pool.
        np.testing.assert_array_equal(engine.pairwise(spatial, "dtw"),
                                      serial_engine().pairwise(spatial, "dtw"))


class TestFallback:
    def test_degrades_to_pickled_dispatch_without_shared_memory(self, spatial,
                                                                monkeypatch):
        monkeypatch.setattr(shared_module, "_shared_memory", None)
        monkeypatch.setattr(shared_module, "_FALLBACK_WARNED", False)
        assert not shared_memory_available()
        engine = shared_engine()
        with pytest.warns(RuntimeWarning, match="falling back"):
            matrix = engine.pairwise(spatial, "dtw")
        np.testing.assert_array_equal(matrix,
                                      serial_engine().pairwise(spatial, "dtw"))
        assert engine.last_dispatch["arena_bytes"] == 0
        assert engine.last_dispatch["payload_bytes"] > 0

    def test_arena_construction_requires_shared_memory(self, spatial, monkeypatch):
        monkeypatch.setattr(shared_module, "_shared_memory", None)
        with pytest.raises(RuntimeError, match="unavailable"):
            TrajectoryArena(spatial[:2])


class TestCanonicalArrays:
    def test_point_arrays_passthrough(self, spatial):
        canonical = as_canonical_arrays(spatial)
        assert _point_arrays(canonical) is canonical
        assert as_canonical_arrays(canonical) is canonical
        assert all(actual is original
                   for actual, original in zip(canonical, spatial))

    def test_trajectory_index_holds_canonical_arrays(self, spatial):
        index = TrajectoryIndex(spatial)
        assert isinstance(index.arrays, CanonicalArrays)

    def test_knn_search_with_shared_engine_matches_matrix_route(self):
        dataset = generate_dataset("chengdu", size=16, seed=3)
        trajectories = dataset.point_arrays(spatial_only=True)
        engine = shared_engine()
        matrix = serial_engine().cross(trajectories, trajectories, "dtw")
        expected = knn_from_matrix(matrix, 3, exclude_self=True)
        index = TrajectoryIndex(trajectories)
        for query in range(4):
            result = knn_search(index, trajectories[query], 3, measure="dtw",
                                engine=engine, exclude=query)
            np.testing.assert_array_equal(result.indices, expected[query])
            np.testing.assert_array_equal(result.distances,
                                          matrix[query][result.indices])


@pytest.fixture(autouse=True, scope="module")
def _release_pools():
    """Drop the pools this module started so the suite exits promptly."""
    yield
    reset_shared_pool(2)
