"""Property suite for the streaming engine: incremental DP ≡ from-scratch.

Hypothesis drives random append/slide schedules against every streaming
measure on both kernel backends (without numba installed the compiled extend
loops run as plain Python through the ``njit`` stub — same arithmetic, same
code paths) and pins the subsystem's contracts:

* after every operation, :meth:`StreamingEngine.value` equals the batch
  kernel on the current window **bitwise** — growing and sliding windows,
  with checkpointing enabled at an aggressive interval so promotions and
  replays are actually exercised;
* the frontier :meth:`~StreamingEngine.lower_bound` never exceeds the value;
* τ-abandoning stays sound and resumable: a finite thresholded value is the
  exact bitwise distance, ``+inf`` is returned only when the true distance
  provably exceeds τ, and a later unthresholded call recovers the exact
  value;
* dp-cell accounting: on append-only streams, the cells an extension charges
  (``stream.dp_cells``) never exceed what recomputing the same window from
  scratch costs, and a growing stream's cumulative streaming cells come in
  strictly below cumulative recompute cells.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.engine import (
    StreamingEngine,
    dp_cell_count,
    get_batch_kernel,
    reset_dp_cell_count,
)
from repro.engine.backends import NumbaBackend, NumpyBackend
from repro.obs import snapshot

#: (config id, measure, watch kwargs, point dimension)
CONFIGS = [
    ("dtw", "dtw", {}, 2),
    ("dtw_banded", "dtw", {"band": 2}, 2),
    ("erp", "erp", {"gap": (0.25, -0.5)}, 2),
    ("edr", "edr", {"epsilon": 0.3}, 2),
    ("lcss", "lcss", {"epsilon": 0.3}, 2),
    ("frechet", "frechet", {}, 2),
    ("dita", "dita", {"lambda_spatial": 0.6, "time_scale": 2.0}, 3),
]
BACKENDS = [("numpy", NumpyBackend), ("numba", NumbaBackend)]

#: Random append/evict schedules: (op, size) with sizes kept small so windows
#: stay in the tens of points and examples shrink readably.
OPS = st.lists(st.tuples(st.sampled_from(["append", "evict"]),
                         st.integers(min_value=1, max_value=4)),
               min_size=1, max_size=10)
APPEND_OPS = st.lists(st.integers(min_value=1, max_value=4),
                      min_size=1, max_size=8)
SEEDS = st.integers(min_value=0, max_value=2**32 - 1)

SETTINGS = settings(max_examples=25, deadline=None,
                    suppress_health_check=[HealthCheck.too_slow])


def _make_points(seed: int, count: int, dim: int) -> np.ndarray:
    """A bounded random walk; the time column (if any) strictly increases."""
    rng = np.random.default_rng(seed)
    points = np.cumsum(rng.normal(scale=0.3, size=(count, 2)), axis=0)
    if dim == 3:
        times = np.cumsum(rng.uniform(0.5, 1.5, size=count))
        points = np.column_stack([points, times])
    return points


def _reference(measure: str, pattern: np.ndarray, window: np.ndarray,
               kwargs: dict, threshold: float | None = None) -> float:
    batch = get_batch_kernel(measure)
    thresholds = None if threshold is None else [threshold]
    return float(np.asarray(batch([pattern], [window],
                                  thresholds=thresholds, **kwargs))[0])


def _stream_cells() -> int:
    return snapshot()["counters"].get("stream.dp_cells", 0)


class _Replay:
    """Drive one (measure, backend) pair through an op schedule."""

    def __init__(self, measure, kwargs, dim, backend, seed,
                 checkpoint_every=4):
        self.measure = measure
        self.kwargs = kwargs
        self.engine = StreamingEngine(backend=backend(),
                                      checkpoint_every=checkpoint_every)
        self.feed = _make_points(seed, 64, dim)
        self.pattern = _make_points(seed + 1, 9, dim)
        self.cursor = 4
        self.start = 0
        self.engine.register_stream("s", points=self.feed[:self.cursor])
        self.pair = self.engine.watch(self.pattern, "s", measure, **kwargs)

    @property
    def window(self) -> np.ndarray:
        return self.feed[self.start:self.cursor]

    def apply(self, op: str, size: int) -> bool:
        if op == "append":
            size = min(size, len(self.feed) - self.cursor)
            if size <= 0:
                return False
            self.engine.append("s", self.feed[self.cursor:self.cursor + size],
                               lazy=True)
            self.cursor += size
            return True
        size = min(size, self.cursor - self.start - 1)
        if size <= 0:
            return False
        self.engine.evict("s", size)
        self.start += size
        return True


@pytest.mark.parametrize("backend_name,backend",
                         BACKENDS, ids=[b[0] for b in BACKENDS])
@pytest.mark.parametrize("config_id,measure,kwargs,dim",
                         CONFIGS, ids=[c[0] for c in CONFIGS])
@SETTINGS
@given(seed=SEEDS, ops=OPS)
def test_streaming_matches_batch_bitwise(config_id, measure, kwargs, dim,
                                         backend_name, backend, seed, ops):
    replay = _Replay(measure, kwargs, dim, backend, seed)
    for op, size in ops:
        if not replay.apply(op, size):
            continue
        value = replay.engine.value(replay.pair)
        expected = _reference(measure, replay.pattern, replay.window, kwargs)
        assert value == expected  # bitwise, not approx
        bound = replay.engine.lower_bound(replay.pair)
        assert bound <= value


@pytest.mark.parametrize("backend_name,backend",
                         BACKENDS, ids=[b[0] for b in BACKENDS])
@pytest.mark.parametrize("config_id,measure,kwargs,dim",
                         CONFIGS, ids=[c[0] for c in CONFIGS])
@SETTINGS
@given(seed=SEEDS, ops=OPS, scale=st.sampled_from([0.5, 1.0, 2.0]))
def test_threshold_contract(config_id, measure, kwargs, dim,
                            backend_name, backend, seed, ops, scale):
    replay = _Replay(measure, kwargs, dim, backend, seed)
    for op, size in ops:
        replay.apply(op, size)
    exact = _reference(measure, replay.pattern, replay.window, kwargs)
    tau = exact * scale
    got = replay.engine.value(replay.pair, threshold=tau)
    if np.isfinite(got):
        assert got == exact
    else:
        assert exact > tau - 1e-9 * max(1.0, abs(tau))
    # When both survive the threshold they must agree bitwise (abandon
    # *decisions* may differ: the batch sweep's remaining-work suffix bound is
    # stronger than the streaming frontier bound, so it may abandon earlier —
    # both honour "finite ⇒ exact, +inf ⇒ provably > τ").
    batch = _reference(measure, replay.pattern, replay.window, kwargs,
                       threshold=tau)
    if np.isfinite(got) and np.isfinite(batch):
        assert got == batch
    # An abandoned frontier must resume to the exact value.
    assert replay.engine.value(replay.pair) == exact


@pytest.mark.parametrize("config_id,measure,kwargs,dim",
                         CONFIGS, ids=[c[0] for c in CONFIGS])
@SETTINGS
@given(seed=SEEDS, appends=APPEND_OPS)
def test_extend_cells_never_exceed_recompute(config_id, measure, kwargs, dim,
                                             seed, appends):
    replay = _Replay(measure, kwargs, dim, NumpyBackend, seed)
    total_stream = total_recompute = effective = 0
    for size in appends:
        if not replay.apply("append", size):
            continue
        effective += 1
        before = _stream_cells()
        replay.engine.value(replay.pair)
        stream_cells = _stream_cells() - before
        reset_dp_cell_count()
        _reference(measure, replay.pattern, replay.window, kwargs)
        recompute_cells = dp_cell_count()
        assert stream_cells <= recompute_cells
        total_stream += stream_cells
        total_recompute += recompute_cells
    if effective >= 2 and config_id != "dtw_banded":
        # At least one extension was incremental (only the first value() pays
        # full price), so the cumulative streaming bill is strictly smaller.
        # Banded DTW is exempt: while |n − m| still exceeds the band the
        # radius changes with every append, forcing a full-window replay each
        # time — cells then legitimately tie the recompute count.
        assert total_stream < total_recompute


def test_checkpoint_promotion_saves_replay():
    """An evict landing on a checkpoint boundary adopts it without replaying."""
    feed = _make_points(11, 40, 2)
    pattern = _make_points(12, 8, 2)
    engine = StreamingEngine(backend=NumpyBackend(), checkpoint_every=4)
    engine.register_stream("s", points=feed[:8], windowed=True)
    pair = engine.watch(pattern, "s", "dtw")
    engine.value(pair)
    engine.append("s", feed[8:20])
    engine.value(pair)
    engine.evict("s", 4)  # head lands exactly on a checkpoint start
    replays_before = engine.replays
    value = engine.value(pair)
    assert engine.checkpoint_promotions >= 1
    assert engine.replays == replays_before
    expected = _reference("dtw", pattern, feed[4:20], {})
    assert value == expected
