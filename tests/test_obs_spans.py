"""Tests for the span API, mode switching, exporters, and the overhead guard."""

import json
import time
from contextlib import nullcontext

import pytest

from repro.obs import export as obs_export
from repro.obs import spans as obs_spans
from repro.obs.export import (
    JSONL_ENV,
    export_snapshot,
    format_report,
    jsonl_path,
    set_jsonl_path,
    write_event,
)
from repro.obs.registry import Registry, get_registry
from repro.obs.spans import (
    OBS_ENV,
    OBS_OFF,
    OBS_ON,
    OBS_TRACE,
    Span,
    obs_enabled,
    obs_mode,
    obs_mode_name,
    set_obs_mode,
    span,
    span_key,
)


@pytest.fixture(autouse=True)
def _restore_obs_state(monkeypatch):
    """Leave the process-wide mode, sink, and span registry as we found them."""
    previous_mode = obs_mode()
    monkeypatch.delenv(OBS_ENV, raising=False)
    monkeypatch.delenv(JSONL_ENV, raising=False)
    yield
    set_obs_mode(previous_mode)
    set_jsonl_path(None)
    get_registry().reset("test.")


class TestModeSwitching:
    @pytest.mark.parametrize("spelling, expected", [
        ("off", OBS_OFF), ("0", OBS_OFF), ("false", OBS_OFF), ("", OBS_OFF),
        ("on", OBS_ON), ("1", OBS_ON), ("true", OBS_ON), ("yes", OBS_ON),
        ("trace", OBS_TRACE), ("2", OBS_TRACE), ("ON", OBS_ON),
        (" trace ", OBS_TRACE),
    ])
    def test_string_spellings(self, spelling, expected):
        assert set_obs_mode(spelling) == expected
        assert obs_mode() == expected

    def test_int_modes(self):
        for mode in (OBS_OFF, OBS_ON, OBS_TRACE):
            assert set_obs_mode(mode) == mode
            assert obs_mode() == mode

    def test_unknown_modes_raise(self):
        with pytest.raises(ValueError):
            set_obs_mode("bogus")
        with pytest.raises(ValueError):
            set_obs_mode(7)

    def test_none_rereads_environment(self, monkeypatch):
        monkeypatch.setenv(OBS_ENV, "trace")
        assert set_obs_mode(None) == OBS_TRACE
        monkeypatch.delenv(OBS_ENV)
        assert set_obs_mode(None) == OBS_OFF

    def test_mode_name_and_enabled(self):
        set_obs_mode("off")
        assert obs_mode_name() == "off" and not obs_enabled()
        set_obs_mode("on")
        assert obs_mode_name() == "on" and obs_enabled()
        set_obs_mode("trace")
        assert obs_mode_name() == "trace" and obs_enabled()


class TestSpanKey:
    def test_no_tags_is_bare_name(self):
        assert span_key("engine.pairs", {}) == "engine.pairs"

    def test_tags_sorted_for_stable_keys(self):
        assert span_key("s", {"b": 1, "a": "x"}) == "s{a=x,b=1}"
        assert span_key("s", {"a": "x", "b": 1}) == span_key("s", {"b": 1, "a": "x"})


class TestSpanRecording:
    def test_disabled_span_is_shared_singleton(self):
        set_obs_mode("off")
        first = span("test.anything", measure="dtw")
        second = span("test.other")
        assert first is second is obs_spans._NULL_SPAN
        with first as entered:
            assert entered is first
        assert first.elapsed == 0.0

    def test_disabled_span_records_nothing(self):
        set_obs_mode("off")
        with span("test.disabled_span", tag="v"):
            pass
        snapshot = get_registry().snapshot()
        assert not any(name.startswith("test.disabled_span")
                       for name in snapshot["histograms"])

    def test_enabled_span_records_tagged_histogram(self):
        set_obs_mode("on")
        with span("test.enabled_span", measure="dtw", backend="numpy") as live:
            time.sleep(0.001)
        assert isinstance(live, Span)
        assert live.elapsed >= 0.001
        state = get_registry().histogram(
            "test.enabled_span{backend=numpy,measure=dtw}").state()
        assert state["count"] == 1
        assert state["sum"] == live.elapsed

    def test_span_records_even_when_body_raises(self):
        set_obs_mode("on")
        with pytest.raises(RuntimeError):
            with span("test.raising_span"):
                raise RuntimeError("boom")
        assert get_registry().histogram("test.raising_span").state()["count"] == 1

    def test_trace_mode_streams_nested_span_events(self, tmp_path):
        sink = tmp_path / "trace.jsonl"
        set_obs_mode("trace")
        set_jsonl_path(str(sink))
        with span("test.outer", layer="a"):
            with span("test.inner"):
                pass
        events = [json.loads(line) for line in sink.read_text().splitlines()]
        assert [event["name"] for event in events] == ["test.inner", "test.outer"]
        assert [event["depth"] for event in events] == [2, 1]
        inner, outer = events
        assert inner["kind"] == outer["kind"] == "span"
        assert outer["tags"] == {"layer": "a"}
        assert all(event["seconds"] >= 0 for event in events)


class TestDisabledOverhead:
    def test_disabled_span_overhead_is_negligible(self):
        # The contract is "one int compare and a constant return": a disabled
        # span must cost no more than a few hundred nanoseconds amortized.
        # Budget is relative (20x an empty nullcontext loop) with an absolute
        # 1.5us floor so a slow shared box does not flake.
        set_obs_mode("off")
        iterations = 50_000

        def timed(make_cm):
            best = float("inf")
            for _ in range(5):
                start = time.perf_counter()
                for _ in range(iterations):
                    with make_cm():
                        pass
                best = min(best, time.perf_counter() - start)
            return best / iterations

        baseline = timed(nullcontext)
        disabled = timed(lambda: span("test.overhead", measure="dtw"))
        assert disabled < max(1.5e-6, 20.0 * baseline), (
            f"disabled span costs {disabled * 1e9:.0f}ns/call "
            f"(baseline {baseline * 1e9:.0f}ns)")


class TestExport:
    def test_write_event_without_sink_returns_false(self):
        set_jsonl_path(None)
        assert jsonl_path() is None
        assert write_event("span", {"name": "x"}) is False

    def test_write_event_appends_ts_and_kind(self, tmp_path):
        sink = tmp_path / "events.jsonl"
        set_jsonl_path(str(sink))
        assert write_event("custom", {"value": 3}) is True
        assert write_event("custom", {"value": 4}) is True
        events = [json.loads(line) for line in sink.read_text().splitlines()]
        assert len(events) == 2
        assert events[0]["kind"] == "custom"
        assert events[0]["value"] == 3
        assert isinstance(events[0]["ts"], float)

    def test_env_var_configures_sink(self, monkeypatch, tmp_path):
        sink = tmp_path / "env.jsonl"
        monkeypatch.setenv(JSONL_ENV, str(sink))
        set_jsonl_path(None)  # drop any explicit path; fall back to the env
        assert jsonl_path() == str(sink)
        assert write_event("custom", {}) is True
        assert sink.exists()

    def test_export_snapshot_merges_extra_and_streams(self, tmp_path):
        registry = Registry()
        registry.counter("c").add(2)
        sink = tmp_path / "snap.jsonl"
        set_jsonl_path(str(sink))
        snap = export_snapshot(registry, workload={"size": 9})
        assert snap["counters"] == {"c": 2}
        assert snap["workload"] == {"size": 9}
        event = json.loads(sink.read_text().splitlines()[0])
        assert event["kind"] == "snapshot"
        assert event["snapshot"]["counters"] == {"c": 2}

    def test_format_report_lists_every_instrument(self):
        registry = Registry()
        registry.counter("engine.dp_cells").add(12)
        registry.gauge("pool.workers").set(2)
        registry.histogram("engine.pairs{measure=dtw}").observe(0.25)
        registry.histogram("empty.hist")
        report = format_report(registry)
        assert "engine.dp_cells" in report and "12" in report
        assert "pool.workers" in report
        assert "engine.pairs{measure=dtw}" in report and "count=1" in report
        assert "empty.hist" in report and "count=0" in report
