"""Suite-wide fixtures: the shared-memory leak tripwire.

The engine's contract is that every shared-memory segment this process
creates is unlinked by the time the process exits — per-call arenas in their
``finally`` blocks, cached arenas on eviction / ``clear()`` / atexit.  The
session fixture below turns that contract into a test failure instead of an
OS-level leak: after the last test it drains the process arena cache (cached
but unpinned entries are *supposed* to still be linked at that point) and
asserts ``live_arena_names()`` is empty.  Any name left is a segment some
test path created and lost track of.
"""

import pytest


@pytest.fixture(scope="session", autouse=True)
def assert_no_leaked_arenas():
    yield
    from repro.engine.arena_cache import reset_arena_cache
    from repro.engine.shared import live_arena_names

    # Legitimately cached (unpinned) arenas are still linked here by design;
    # drain the cache first so only genuinely orphaned segments remain.
    reset_arena_cache()
    leaked = sorted(live_arena_names())
    assert not leaked, (
        f"shared-memory segments leaked by the test session: {leaked} — some "
        f"code path created a TrajectoryArena and never unlinked it")
