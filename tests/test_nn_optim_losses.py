"""Unit tests for optimisers, schedules, gradient clipping and loss functions."""

import numpy as np
import pytest

from repro.nn import (
    SGD,
    Adam,
    Linear,
    StepLR,
    Tensor,
    clip_grad_norm,
    mae_loss,
    mse_loss,
    relative_distance_loss,
    triplet_margin_loss,
    weighted_rank_loss,
)


def _fit_linear(optimizer_factory, steps=150):
    rng = np.random.default_rng(0)
    layer = Linear(3, 1, rng=rng)
    optimizer = optimizer_factory(layer.parameters())
    inputs = rng.normal(size=(64, 3))
    targets = inputs @ np.array([1.0, -2.0, 0.5]) + 0.3
    loss_value = None
    for _ in range(steps):
        optimizer.zero_grad()
        predictions = layer(Tensor(inputs)).reshape(64)
        loss = mse_loss(predictions, Tensor(targets))
        loss.backward()
        optimizer.step()
        loss_value = float(loss.data)
    return loss_value


class TestOptimizers:
    def test_sgd_converges_on_linear_regression(self):
        assert _fit_linear(lambda params: SGD(params, lr=0.05)) < 1e-2

    def test_sgd_momentum_converges(self):
        assert _fit_linear(lambda params: SGD(params, lr=0.02, momentum=0.9)) < 1e-2

    def test_adam_converges_on_linear_regression(self):
        assert _fit_linear(lambda params: Adam(params, lr=0.05)) < 1e-3

    def test_weight_decay_shrinks_weights(self):
        layer = Linear(2, 1)
        layer.weight.data = np.ones((1, 2))
        optimizer = SGD(layer.parameters(), lr=0.1, weight_decay=1.0)
        layer(Tensor(np.zeros(2))).sum().backward()
        optimizer.step()
        assert np.all(np.abs(layer.weight.data) < 1.0)

    def test_optimizer_requires_parameters(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_optimizer_requires_positive_lr(self):
        layer = Linear(2, 1)
        with pytest.raises(ValueError):
            Adam(layer.parameters(), lr=0.0)

    def test_step_skips_parameters_without_grad(self):
        layer = Linear(2, 1)
        before = layer.weight.data.copy()
        Adam(layer.parameters(), lr=0.1).step()
        np.testing.assert_allclose(layer.weight.data, before)

    def test_step_lr_schedule(self):
        layer = Linear(2, 1)
        optimizer = SGD(layer.parameters(), lr=1.0)
        schedule = StepLR(optimizer, step_size=2, gamma=0.1)
        schedule.step()
        assert optimizer.lr == pytest.approx(1.0)
        schedule.step()
        assert optimizer.lr == pytest.approx(0.1)

    def test_step_lr_validates_step_size(self):
        layer = Linear(2, 1)
        with pytest.raises(ValueError):
            StepLR(SGD(layer.parameters(), lr=0.1), step_size=0)

    def test_clip_grad_norm(self):
        layer = Linear(4, 1)
        (layer(Tensor(np.full(4, 100.0))) * 100.0).sum().backward()
        total = clip_grad_norm(layer.parameters(), max_norm=1.0)
        assert total > 1.0
        clipped = np.sqrt(sum(float((p.grad ** 2).sum())
                              for p in layer.parameters() if p.grad is not None))
        assert clipped == pytest.approx(1.0, rel=1e-6)


class TestLosses:
    def test_mse_zero_for_equal_inputs(self):
        x = Tensor([1.0, 2.0, 3.0])
        assert mse_loss(x, x).item() == pytest.approx(0.0)

    def test_mse_value(self):
        assert mse_loss(Tensor([2.0]), Tensor([0.0])).item() == pytest.approx(4.0)

    def test_mae_value(self):
        assert mae_loss(Tensor([2.0, -2.0]), Tensor([0.0, 0.0])).item() == pytest.approx(2.0)

    def test_relative_loss_scales_with_target(self):
        small = relative_distance_loss(Tensor([1.1]), Tensor([1.0]))
        large = relative_distance_loss(Tensor([11.0]), Tensor([10.0]))
        assert small.item() == pytest.approx(large.item(), rel=1e-2)

    def test_weighted_rank_loss_prioritises_nearest(self):
        target = Tensor([0.1, 10.0])
        error_on_near = weighted_rank_loss(Tensor([1.1, 10.0]), target)
        error_on_far = weighted_rank_loss(Tensor([0.1, 11.0]), target)
        assert error_on_near.item() > error_on_far.item()

    def test_triplet_margin_zero_when_separated(self):
        loss = triplet_margin_loss(Tensor([0.1]), Tensor([5.0]), margin=1.0)
        assert loss.item() == pytest.approx(0.0)

    def test_triplet_margin_positive_when_violated(self):
        loss = triplet_margin_loss(Tensor([2.0]), Tensor([1.0]), margin=1.0)
        assert loss.item() == pytest.approx(2.0)

    def test_losses_are_differentiable(self):
        prediction = Tensor([1.0, 2.0], requires_grad=True)
        mse_loss(prediction, Tensor([0.0, 0.0])).backward()
        assert prediction.grad is not None
