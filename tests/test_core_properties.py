"""Property-based tests (hypothesis) for the LH-plugin core invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core import (
    cosh_projection,
    is_on_hyperboloid,
    lorentz_distance,
    lorentz_inner,
    project,
    projection_scalars,
    vanilla_projection,
)

SETTINGS = dict(max_examples=40, deadline=None)


def embeddings(dim_min=1, dim_max=4, magnitude=1.5):
    # Magnitudes stay moderate: with c = 1 the compressed norm equals the squared norm,
    # and cosh of a large argument loses the hyperboloid identity to floating-point
    # cancellation (the library guards membership checks, but exact-value properties
    # such as the self-distance need well-conditioned inputs).
    return st.integers(dim_min, dim_max).flatmap(
        lambda d: arrays(np.float64, (d,),
                         elements=st.floats(-magnitude, magnitude, allow_nan=False, width=32)))


betas = st.sampled_from([0.25, 0.5, 1.0, 2.0])
compressions = st.sampled_from([1.0, 2.0, 4.0, 8.0])


@given(embeddings(), betas)
@settings(**SETTINGS)
def test_vanilla_projection_membership(x, beta):
    assert is_on_hyperboloid(vanilla_projection(x, beta=beta), beta=beta).all()


@given(embeddings(), betas, compressions)
@settings(**SETTINGS)
def test_cosh_projection_membership(x, beta, c):
    assert is_on_hyperboloid(cosh_projection(x, beta=beta, c=c), beta=beta).all()


@given(embeddings(), embeddings(), betas, compressions)
@settings(**SETTINGS)
def test_lorentz_distance_nonnegative_on_projected_points(x, y, beta, c):
    if len(x) != len(y):
        y = np.resize(y, len(x))
    a = cosh_projection(x, beta=beta, c=c)
    b = cosh_projection(y, beta=beta, c=c)
    assert lorentz_distance(a, b, beta=beta) >= -1e-9


@given(embeddings(), betas, compressions)
@settings(**SETTINGS)
def test_lorentz_self_distance_zero(x, beta, c):
    a = cosh_projection(x, beta=beta, c=c)
    assert float(lorentz_distance(a, a, beta=beta)) == pytest.approx(0.0, abs=1e-7)


@given(embeddings(), embeddings(), betas)
@settings(**SETTINGS)
def test_lorentz_distance_symmetry(x, y, beta):
    if len(x) != len(y):
        y = np.resize(y, len(x))
    a = vanilla_projection(x, beta=beta)
    b = vanilla_projection(y, beta=beta)
    assert float(lorentz_distance(a, b, beta=beta)) == pytest.approx(
        float(lorentz_distance(b, a, beta=beta)), rel=1e-9, abs=1e-9)


@given(embeddings(), embeddings())
@settings(**SETTINGS)
def test_lorentz_inner_bilinear_symmetry(x, y):
    if len(x) != len(y):
        y = np.resize(y, len(x))
    a = vanilla_projection(x)
    b = vanilla_projection(y)
    assert float(lorentz_inner(a, b)) == pytest.approx(float(lorentz_inner(b, a)), rel=1e-9)


@given(embeddings(dim_min=2), betas, compressions,
       st.sampled_from(["vanilla", "cosh"]))
@settings(**SETTINGS)
def test_projection_scalars_reconstruct_projection(x, beta, c, method):
    time_like, scale = projection_scalars(x[None, :], beta=beta, c=c, method=method)
    full = project(x[None, :], beta=beta, c=c, method=method)
    np.testing.assert_allclose(time_like, full[:, 0], atol=1e-8)
    np.testing.assert_allclose(scale[:, None] * x[None, :], full[:, 1:], atol=1e-8)


@given(st.floats(0.1, 8.0), st.floats(0.1, 3.0))
@settings(**SETTINGS)
def test_cosh_distance_never_below_vanilla_for_far_collinear_pairs(offset, gap):
    """The cosh projection's raison d'être: no distance collapse for far-away pairs."""
    a = np.array([offset])
    b = np.array([offset + gap])
    vanilla = float(lorentz_distance(vanilla_projection(a), vanilla_projection(b)))
    cosh = float(lorentz_distance(cosh_projection(a, c=2.0), cosh_projection(b, c=2.0)))
    assert cosh >= vanilla - 1e-9


@given(st.floats(0.0, 3.0), st.floats(0.0, 3.0))
@settings(**SETTINGS)
def test_theorem7_closed_form(a_value, b_value):
    a = cosh_projection(np.array([a_value]), beta=1.0, c=2.0)
    b = cosh_projection(np.array([b_value]), beta=1.0, c=2.0)
    expected = np.cosh(a_value - b_value) - 1.0
    assert float(lorentz_distance(a, b)) == pytest.approx(expected, rel=1e-6, abs=1e-8)
