"""Property-based tests (hypothesis) for the distance measures."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro import distances as D

SETTINGS = dict(max_examples=25, deadline=None)


def trajectories(min_points=1, max_points=8):
    """Strategy producing small random trajectories."""
    return st.integers(min_points, max_points).flatmap(
        lambda n: arrays(np.float64, (n, 2),
                         elements=st.floats(-5.0, 5.0, allow_nan=False, width=32)))


@given(trajectories(), trajectories())
@settings(**SETTINGS)
def test_dtw_symmetry_and_nonnegativity(a, b):
    forward = D.dtw_distance(a, b)
    assert forward >= 0.0
    assert forward == pytest.approx(D.dtw_distance(b, a), rel=1e-9, abs=1e-9)


@given(trajectories())
@settings(**SETTINGS)
def test_dtw_identity(a):
    assert D.dtw_distance(a, a) == pytest.approx(0.0, abs=1e-9)


@given(trajectories(), trajectories())
@settings(**SETTINGS)
def test_sspd_symmetry_and_nonnegativity(a, b):
    forward = D.sspd_distance(a, b)
    assert forward >= 0.0
    assert forward == pytest.approx(D.sspd_distance(b, a), rel=1e-9, abs=1e-9)


@given(trajectories(), trajectories())
@settings(**SETTINGS)
def test_edr_bounded_by_total_length(a, b):
    value = D.edr_distance(a, b, epsilon=0.5)
    assert 0.0 <= value <= len(a) + len(b)


@given(trajectories(min_points=2), trajectories(min_points=2))
@settings(**SETTINGS)
def test_lcss_distance_in_unit_interval(a, b):
    assert 0.0 <= D.lcss_distance(a, b, epsilon=0.5) <= 1.0


@given(trajectories(), trajectories(), trajectories())
@settings(**SETTINGS)
def test_hausdorff_triangle_inequality(a, b, c):
    # Hausdorff is a true metric: the triangle inequality must always hold.
    ab = D.hausdorff_distance(a, b)
    bc = D.hausdorff_distance(b, c)
    ac = D.hausdorff_distance(a, c)
    assert ac <= ab + bc + 1e-9


@given(trajectories(), trajectories(), trajectories())
@settings(**SETTINGS)
def test_frechet_triangle_inequality(a, b, c):
    ab = D.discrete_frechet_distance(a, b)
    bc = D.discrete_frechet_distance(b, c)
    ac = D.discrete_frechet_distance(a, c)
    assert ac <= ab + bc + 1e-9


@given(trajectories(), trajectories(), trajectories())
@settings(**SETTINGS)
def test_erp_triangle_inequality(a, b, c):
    ab = D.erp_distance(a, b)
    bc = D.erp_distance(b, c)
    ac = D.erp_distance(a, c)
    assert ac <= ab + bc + 1e-6


@given(trajectories(), trajectories())
@settings(**SETTINGS)
def test_frechet_dominates_hausdorff(a, b):
    assert D.discrete_frechet_distance(a, b) >= D.hausdorff_distance(a, b) - 1e-9


@given(trajectories(), trajectories())
@settings(**SETTINGS)
def test_dtw_dominates_frechet(a, b):
    # DTW sums costs along the coupling while Fréchet takes the max, so DTW >= Fréchet.
    assert D.dtw_distance(a, b) >= D.discrete_frechet_distance(a, b) - 1e-9


@given(trajectories(), st.floats(-3.0, 3.0), st.floats(-3.0, 3.0))
@settings(**SETTINGS)
def test_translation_invariance_of_shape_measures(a, dx, dy):
    shift = np.array([dx, dy])
    for measure in (D.dtw_distance, D.hausdorff_distance, D.discrete_frechet_distance):
        assert measure(a, a + shift) == pytest.approx(measure(a + shift, a), rel=1e-9, abs=1e-9)
