"""Unit tests for nn layers, modules and initialisers."""

import numpy as np
import pytest

from repro.nn import (
    Dropout,
    Embedding,
    Identity,
    LayerNorm,
    Linear,
    MLP,
    Module,
    Parameter,
    Sequential,
    Tensor,
    init,
)


class TestInitializers:
    def test_xavier_uniform_bounds(self):
        rng = np.random.default_rng(0)
        weights = init.xavier_uniform((20, 10), rng)
        limit = np.sqrt(6.0 / 30)
        assert np.abs(weights).max() <= limit

    def test_xavier_normal_scale(self):
        rng = np.random.default_rng(0)
        weights = init.xavier_normal((200, 100), rng)
        assert weights.std() == pytest.approx(np.sqrt(2.0 / 300), rel=0.2)

    def test_uniform_range(self):
        rng = np.random.default_rng(0)
        weights = init.uniform((50,), rng, low=-0.5, high=0.5)
        assert weights.min() >= -0.5 and weights.max() <= 0.5

    def test_zeros(self):
        np.testing.assert_array_equal(init.zeros((3, 2)), np.zeros((3, 2)))

    def test_orthogonal_is_orthonormal(self):
        rng = np.random.default_rng(0)
        q = init.orthogonal((6, 6), rng)
        np.testing.assert_allclose(q @ q.T, np.eye(6), atol=1e-8)

    def test_orthogonal_rejects_1d(self):
        with pytest.raises(ValueError):
            init.orthogonal((5,), np.random.default_rng(0))


class TestModule:
    def test_parameter_registration(self):
        class Toy(Module):
            def __init__(self):
                super().__init__()
                self.weight = Parameter(np.ones(3))
                self.child = Linear(2, 2)

        toy = Toy()
        names = [name for name, _ in toy.named_parameters()]
        assert "weight" in names
        assert any(name.startswith("child.") for name in names)

    def test_num_parameters(self):
        layer = Linear(3, 4)
        assert layer.num_parameters() == 3 * 4 + 4

    def test_zero_grad(self):
        layer = Linear(2, 2)
        out = layer(Tensor(np.ones(2)))
        out.sum().backward()
        assert any(p.grad is not None for p in layer.parameters())
        layer.zero_grad()
        assert all(p.grad is None for p in layer.parameters())

    def test_train_eval_mode(self):
        model = Sequential(Linear(2, 2), Dropout(0.5))
        model.eval()
        assert all(not module.training for module in model.modules())
        model.train()
        assert all(module.training for module in model.modules())

    def test_state_dict_roundtrip(self):
        layer_a = Linear(3, 2, rng=np.random.default_rng(0))
        layer_b = Linear(3, 2, rng=np.random.default_rng(1))
        assert not np.allclose(layer_a.weight.data, layer_b.weight.data)
        layer_b.load_state_dict(layer_a.state_dict())
        np.testing.assert_allclose(layer_a.weight.data, layer_b.weight.data)

    def test_load_state_dict_rejects_mismatch(self):
        layer = Linear(3, 2)
        with pytest.raises(KeyError):
            layer.load_state_dict({"weight": np.zeros((2, 3))})

    def test_forward_not_implemented(self):
        with pytest.raises(NotImplementedError):
            Module()(1)


class TestLinear:
    def test_output_shape(self):
        layer = Linear(4, 3)
        assert layer(Tensor(np.ones((5, 4)))).shape == (5, 3)

    def test_no_bias(self):
        layer = Linear(4, 3, bias=False)
        assert layer.bias is None
        assert layer.num_parameters() == 12

    def test_linearity(self):
        layer = Linear(3, 2, rng=np.random.default_rng(0))
        x = np.random.default_rng(1).normal(size=3)
        doubled = layer(Tensor(2 * x)).data - layer.bias.data
        single = layer(Tensor(x)).data - layer.bias.data
        np.testing.assert_allclose(doubled, 2 * single, atol=1e-12)

    def test_gradients_flow(self):
        layer = Linear(3, 2)
        layer(Tensor(np.ones(3))).sum().backward()
        assert layer.weight.grad is not None
        assert layer.bias.grad is not None


class TestEmbedding:
    def test_lookup_shape(self):
        table = Embedding(10, 4)
        assert table([1, 2, 3]).shape == (3, 4)

    def test_gradient_only_on_used_rows(self):
        table = Embedding(5, 3)
        table([0, 0, 2]).sum().backward()
        grad = table.weight.grad
        assert np.abs(grad[0]).sum() > 0
        assert np.abs(grad[1]).sum() == 0
        assert np.abs(grad[2]).sum() > 0


class TestMLPAndSequential:
    def test_mlp_shape(self):
        mlp = MLP(4, [8, 8], 2)
        assert mlp(Tensor(np.ones(4))).shape == (2,)

    def test_mlp_single_hidden_int(self):
        mlp = MLP(4, 8, 2)
        assert mlp(Tensor(np.ones((3, 4)))).shape == (3, 2)

    def test_mlp_invalid_activation(self):
        with pytest.raises(ValueError):
            MLP(2, 2, 2, activation="swish")

    def test_sequential_order(self):
        seq = Sequential(Identity(), Linear(2, 3), Identity())
        assert len(seq) == 3
        assert seq(Tensor(np.ones(2))).shape == (3,)


class TestLayerNormDropout:
    def test_layernorm_normalises(self):
        layer = LayerNorm(8)
        out = layer(Tensor(np.random.default_rng(0).normal(5.0, 3.0, size=(4, 8))))
        np.testing.assert_allclose(out.data.mean(axis=-1), np.zeros(4), atol=1e-6)
        np.testing.assert_allclose(out.data.std(axis=-1), np.ones(4), atol=1e-2)

    def test_dropout_eval_is_identity(self):
        layer = Dropout(0.5)
        layer.eval()
        x = np.random.default_rng(0).normal(size=10)
        np.testing.assert_allclose(layer(Tensor(x)).data, x)

    def test_dropout_training_masks(self):
        layer = Dropout(0.5, rng=np.random.default_rng(0))
        out = layer(Tensor(np.ones(1000)))
        assert (out.data == 0).any()
        assert out.data.mean() == pytest.approx(1.0, abs=0.15)

    def test_dropout_invalid_probability(self):
        with pytest.raises(ValueError):
            Dropout(1.0)
