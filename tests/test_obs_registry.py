"""Unit tests for the telemetry registry: instruments, deltas, merging, safety."""

import math
import threading
from concurrent.futures import ProcessPoolExecutor

from repro.obs import registry as obs_registry
from repro.obs.registry import (
    BUCKET_BOUNDS,
    NUM_BUCKETS,
    Registry,
    bucket_index,
)


class TestBucketIndex:
    def test_bounds_are_powers_of_two(self):
        assert BUCKET_BOUNDS[0] == 2.0 ** -30
        assert BUCKET_BOUNDS[-1] == 2.0 ** 10
        assert NUM_BUCKETS == len(BUCKET_BOUNDS) + 1

    def test_zero_and_negative_land_in_first_bucket(self):
        assert bucket_index(0.0) == 0
        assert bucket_index(-5.0) == 0
        assert bucket_index(1e-12) == 0

    def test_overflow_bucket(self):
        assert bucket_index(2.0 ** 10) == NUM_BUCKETS - 2
        assert bucket_index(2.0 ** 10 + 1) == NUM_BUCKETS - 1
        assert bucket_index(math.inf) == NUM_BUCKETS - 1

    def test_exact_powers_belong_to_lower_bucket(self):
        # Buckets cover (lower, upper]: an exact power of two is its bucket's
        # *upper* boundary, one off from the next value up.
        for exponent in range(-29, 10):
            value = 2.0 ** exponent
            assert BUCKET_BOUNDS[bucket_index(value)] == value
            assert bucket_index(math.nextafter(value, math.inf)) \
                == bucket_index(value) + 1

    def test_every_bucket_reachable_and_consistent_with_bounds(self):
        for index, bound in enumerate(BUCKET_BOUNDS):
            assert bucket_index(bound) == index
        # Midpoints fall in the bucket whose upper bound covers them.
        for index in range(1, len(BUCKET_BOUNDS)):
            midpoint = (BUCKET_BOUNDS[index - 1] + BUCKET_BOUNDS[index]) / 2
            assert bucket_index(midpoint) == index


class TestInstruments:
    def test_counter_add_and_reset(self):
        registry = Registry()
        counter = registry.counter("c")
        counter.add()
        counter.add(41)
        assert counter.value == 42
        counter.reset()
        assert counter.value == 0

    def test_counter_get_or_create_is_stable(self):
        registry = Registry()
        assert registry.counter("same") is registry.counter("same")

    def test_gauge_last_write_wins(self):
        registry = Registry()
        gauge = registry.gauge("g")
        gauge.set(1.5)
        gauge.set(-3.0)
        assert gauge.value == -3.0

    def test_histogram_tracks_count_sum_min_max_buckets(self):
        registry = Registry()
        hist = registry.histogram("h")
        for value in (0.25, 0.5, 3.0):
            hist.observe(value)
        state = hist.state()
        assert state["count"] == 3
        assert state["sum"] == 3.75
        assert state["min"] == 0.25
        assert state["max"] == 3.0
        assert sum(state["buckets"]) == 3

    def test_empty_histogram_state_and_summary(self):
        hist = Registry().histogram("h")
        assert hist.state()["min"] is None
        summary = hist.summary()
        assert summary == {"count": 0, "sum": 0.0, "min": None, "max": None,
                           "mean": None}

    def test_summary_mean(self):
        hist = Registry().histogram("h")
        hist.observe(1.0)
        hist.observe(3.0)
        assert hist.summary()["mean"] == 2.0

    def test_registry_reset_by_prefix(self):
        registry = Registry()
        registry.counter("engine.dp_cells").add(5)
        registry.counter("search.queries").add(2)
        registry.reset("engine.")
        assert registry.counter("engine.dp_cells").value == 0
        assert registry.counter("search.queries").value == 2

    def test_snapshot_is_json_shaped(self):
        registry = Registry()
        registry.counter("c").add(1)
        registry.gauge("g").set(2.0)
        registry.histogram("h").observe(0.5)
        snap = registry.snapshot()
        assert snap["counters"] == {"c": 1}
        assert snap["gauges"] == {"g": 2.0}
        assert snap["histograms"]["h"]["count"] == 1


class TestDeltas:
    def test_counter_delta_roundtrip(self):
        worker = Registry()
        worker.counter("c").add(3)
        mark = worker.checkpoint()
        worker.counter("c").add(7)
        worker.counter("new").add(1)
        delta = worker.delta_since(mark)
        assert delta["counters"] == {"c": 7, "new": 1}

        parent = Registry()
        parent.counter("c").add(100)
        parent.merge_delta(delta)
        assert parent.counter("c").value == 107
        assert parent.counter("new").value == 1

    def test_histogram_delta_roundtrip(self):
        worker = Registry()
        worker.histogram("h").observe(0.5)
        mark = worker.checkpoint()
        worker.histogram("h").observe(2.0)
        worker.histogram("h").observe(4.0)
        delta = worker.delta_since(mark)
        state = delta["histograms"]["h"]
        assert state["count"] == 2
        assert state["sum"] == 6.0
        assert sum(state["buckets"]) == 2

        parent = Registry()
        parent.merge_delta(delta)
        merged = parent.histogram("h").state()
        assert merged["count"] == 2
        assert merged["sum"] == 6.0

    def test_empty_delta_is_empty(self):
        registry = Registry()
        registry.counter("c").add(1)
        registry.histogram("h").observe(1.0)
        mark = registry.checkpoint()
        delta = registry.delta_since(mark)
        assert delta["counters"] == {}
        assert delta["histograms"] == {}

    def test_merge_none_is_noop(self):
        registry = Registry()
        registry.merge_delta(None)
        registry.merge_delta({})
        assert registry.snapshot()["counters"] == {}

    def test_delta_is_picklable(self):
        import pickle

        worker = Registry()
        mark = worker.checkpoint()
        worker.counter("c").add(1)
        worker.histogram("h").observe(0.5)
        delta = pickle.loads(pickle.dumps(worker.delta_since(mark)))
        parent = Registry()
        parent.merge_delta(delta)
        assert parent.counter("c").value == 1


class TestMergeAssociativity:
    """Histogram merging must be a true associative, commutative fold."""

    @staticmethod
    def _histogram_of(observations):
        registry = Registry()
        hist = registry.histogram("h")
        for value in observations:
            hist.observe(value)
        return hist

    def test_bucket_merge_associative_and_commutative(self):
        # Dyadic-rational observations (k/8) make the float sums exact, so
        # full-state equality — buckets, count, sum, min, max — must hold for
        # every grouping and ordering of the merge.
        groups = [
            [1 / 8, 3 / 8, 200.0],
            [5 / 8, 2.0 ** -29],
            [7 / 8, 9 / 8, 2.0 ** 11],
        ]
        a, b, c = (self._histogram_of(group).state() for group in groups)

        def merged(*states):
            target = Registry().histogram("m")
            for state in states:
                target.merge_state(state)
            return target.state()

        left = merged(merged(a, b), c)
        right = merged(a, merged(b, c))
        flat = merged(a, b, c)
        reordered = merged(c, a, b)
        reference = self._histogram_of(
            [v for group in groups for v in group]).state()
        assert left == right == flat == reordered == reference

    def test_merge_with_empty_state_is_identity(self):
        state = self._histogram_of([0.5, 1.5]).state()
        empty = Registry().histogram("e").state()
        target = Registry().histogram("t")
        target.merge_state(empty)
        target.merge_state(state)
        target.merge_state(empty)
        assert target.state() == state


class TestThreadSafety:
    def test_concurrent_counter_increments_all_land(self):
        registry = Registry()
        counter = registry.counter("c")
        threads_count, per_thread = 8, 10_000

        def work():
            for _ in range(per_thread):
                counter.add(1)

        threads = [threading.Thread(target=work) for _ in range(threads_count)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value == threads_count * per_thread

    def test_concurrent_histogram_observes_all_land(self):
        registry = Registry()
        hist = registry.histogram("h")
        threads_count, per_thread = 4, 2_000

        def work():
            for _ in range(per_thread):
                hist.observe(0.5)

        threads = [threading.Thread(target=work) for _ in range(threads_count)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        state = hist.state()
        assert state["count"] == threads_count * per_thread
        assert sum(state["buckets"]) == state["count"]


def _process_worker(amount: int) -> dict:
    """Increment the process-default registry and return the delta (module-level
    so ProcessPoolExecutor can pickle it)."""
    registry = obs_registry.get_registry()
    mark = registry.checkpoint()
    registry.counter("proc.test").add(amount)
    registry.histogram("proc.hist").observe(float(amount))
    return registry.delta_since(mark)


class TestProcessSafety:
    def test_worker_deltas_merge_exactly(self):
        parent = obs_registry.get_registry()
        before_counter = parent.counter("proc.test").value
        before_hist = parent.histogram("proc.hist").state()["count"]
        amounts = [1, 2, 3, 4, 5, 6]
        with ProcessPoolExecutor(max_workers=2) as pool:
            deltas = list(pool.map(_process_worker, amounts))
        for delta in deltas:
            parent.merge_delta(delta)
        assert parent.counter("proc.test").value - before_counter == sum(amounts)
        assert parent.histogram("proc.hist").state()["count"] - before_hist \
            == len(amounts)
