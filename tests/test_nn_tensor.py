"""Unit tests for the autodiff Tensor engine."""

import numpy as np
import pytest

from repro.nn import Tensor, as_tensor, concat, is_grad_enabled, no_grad, softmax, stack


def numerical_gradient(func, value, eps=1e-6):
    """Central-difference gradient of a scalar function of an array."""
    value = np.asarray(value, dtype=np.float64)
    grad = np.zeros_like(value)
    it = np.nditer(value, flags=["multi_index"])
    while not it.finished:
        index = it.multi_index
        plus = value.copy()
        minus = value.copy()
        plus[index] += eps
        minus[index] -= eps
        grad[index] = (func(plus) - func(minus)) / (2 * eps)
        it.iternext()
    return grad


class TestTensorBasics:
    def test_construction_from_list(self):
        t = Tensor([1.0, 2.0, 3.0])
        assert t.shape == (3,)
        assert t.data.dtype == np.float64

    def test_as_tensor_passthrough(self):
        t = Tensor([1.0])
        assert as_tensor(t) is t

    def test_as_tensor_wraps_scalar(self):
        t = as_tensor(2.5)
        assert t.item() == pytest.approx(2.5)

    def test_detach_drops_grad(self):
        t = Tensor([1.0], requires_grad=True)
        assert not t.detach().requires_grad

    def test_repr_mentions_shape(self):
        assert "shape=(2,)" in repr(Tensor([1.0, 2.0]))

    def test_len_and_size(self):
        t = Tensor(np.zeros((4, 3)))
        assert len(t) == 4
        assert t.size == 12

    def test_backward_requires_grad(self):
        t = Tensor([1.0])
        with pytest.raises(RuntimeError):
            t.backward()

    def test_backward_needs_scalar_or_grad(self):
        t = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(RuntimeError):
            (t * 2).backward()

    def test_no_grad_context(self):
        assert is_grad_enabled()
        with no_grad():
            assert not is_grad_enabled()
            y = Tensor([1.0], requires_grad=True) * 2
            assert not y.requires_grad
        assert is_grad_enabled()


class TestArithmeticGradients:
    def test_add_gradient(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = Tensor([3.0, 4.0], requires_grad=True)
        (a + b).sum().backward()
        np.testing.assert_allclose(a.grad, [1.0, 1.0])
        np.testing.assert_allclose(b.grad, [1.0, 1.0])

    def test_mul_gradient(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = Tensor([3.0, 4.0], requires_grad=True)
        (a * b).sum().backward()
        np.testing.assert_allclose(a.grad, [3.0, 4.0])
        np.testing.assert_allclose(b.grad, [1.0, 2.0])

    def test_sub_and_neg(self):
        a = Tensor([5.0], requires_grad=True)
        (2.0 - a).backward()
        np.testing.assert_allclose(a.grad, [-1.0])

    def test_div_gradient(self):
        a = Tensor([4.0], requires_grad=True)
        b = Tensor([2.0], requires_grad=True)
        (a / b).backward()
        np.testing.assert_allclose(a.grad, [0.5])
        np.testing.assert_allclose(b.grad, [-1.0])

    def test_rdiv(self):
        a = Tensor([4.0], requires_grad=True)
        (8.0 / a).backward()
        np.testing.assert_allclose(a.grad, [-0.5])

    def test_pow_gradient(self):
        a = Tensor([3.0], requires_grad=True)
        (a ** 2).backward()
        np.testing.assert_allclose(a.grad, [6.0])

    def test_pow_rejects_tensor_exponent(self):
        with pytest.raises(TypeError):
            Tensor([2.0]) ** Tensor([2.0])

    def test_broadcast_add_gradient(self):
        a = Tensor(np.ones((3, 2)), requires_grad=True)
        b = Tensor(np.ones(2), requires_grad=True)
        (a + b).sum().backward()
        assert a.grad.shape == (3, 2)
        np.testing.assert_allclose(b.grad, [3.0, 3.0])

    def test_broadcast_mul_keepdims(self):
        a = Tensor(np.ones((2, 3)), requires_grad=True)
        b = Tensor(np.full((2, 1), 2.0), requires_grad=True)
        (a * b).sum().backward()
        np.testing.assert_allclose(b.grad, [[3.0], [3.0]])

    def test_matmul_gradient_matches_numerical(self):
        rng = np.random.default_rng(0)
        a_value = rng.normal(size=(3, 4))
        b_value = rng.normal(size=(4, 2))
        a = Tensor(a_value, requires_grad=True)
        b = Tensor(b_value, requires_grad=True)
        (a @ b).sum().backward()
        num_a = numerical_gradient(lambda v: float((v @ b_value).sum()), a_value)
        num_b = numerical_gradient(lambda v: float((a_value @ v).sum()), b_value)
        np.testing.assert_allclose(a.grad, num_a, atol=1e-6)
        np.testing.assert_allclose(b.grad, num_b, atol=1e-6)

    def test_matvec_gradient(self):
        a = Tensor(np.eye(2), requires_grad=True)
        v = Tensor([1.0, 2.0], requires_grad=True)
        (a @ v).sum().backward()
        assert a.grad.shape == (2, 2)
        # d/dv of sum(A v) is A^T 1 = [1, 1] for the identity matrix.
        np.testing.assert_allclose(v.grad, [1.0, 1.0])

    def test_gradient_accumulates_over_reuse(self):
        a = Tensor([2.0], requires_grad=True)
        (a * a).backward()
        np.testing.assert_allclose(a.grad, [4.0])


class TestActivations:
    @pytest.mark.parametrize("name", ["exp", "tanh", "sigmoid", "relu", "softplus",
                                      "cosh", "sinh", "abs", "sqrt", "log"])
    def test_unary_gradient_matches_numerical(self, name):
        rng = np.random.default_rng(1)
        value = rng.uniform(0.2, 1.5, size=(3,))
        x = Tensor(value, requires_grad=True)
        getattr(x, name)().sum().backward()
        numerical = numerical_gradient(
            lambda v: float(getattr(Tensor(v), name)().sum().data), value)
        np.testing.assert_allclose(x.grad, numerical, atol=1e-5)

    def test_relu_zeroes_negative(self):
        x = Tensor([-1.0, 2.0])
        np.testing.assert_allclose(x.relu().data, [0.0, 2.0])

    def test_clip(self):
        x = Tensor([-2.0, 0.5, 3.0], requires_grad=True)
        y = x.clip(0.0, 1.0)
        np.testing.assert_allclose(y.data, [0.0, 0.5, 1.0])
        y.sum().backward()
        np.testing.assert_allclose(x.grad, [0.0, 1.0, 0.0])


class TestReductionsAndShapes:
    def test_sum_axis_gradient(self):
        x = Tensor(np.ones((2, 3)), requires_grad=True)
        x.sum(axis=0).sum().backward()
        np.testing.assert_allclose(x.grad, np.ones((2, 3)))

    def test_sum_keepdims(self):
        x = Tensor(np.ones((2, 3)))
        assert x.sum(axis=1, keepdims=True).shape == (2, 1)

    def test_mean(self):
        x = Tensor(np.arange(6.0).reshape(2, 3), requires_grad=True)
        x.mean().backward()
        np.testing.assert_allclose(x.grad, np.full((2, 3), 1 / 6))

    def test_max_gradient_goes_to_argmax(self):
        x = Tensor([1.0, 5.0, 3.0], requires_grad=True)
        x.max().backward()
        np.testing.assert_allclose(x.grad, [0.0, 1.0, 0.0])

    def test_max_axis(self):
        x = Tensor(np.array([[1.0, 2.0], [5.0, 0.0]]), requires_grad=True)
        x.max(axis=1).sum().backward()
        np.testing.assert_allclose(x.grad, [[0.0, 1.0], [1.0, 0.0]])

    def test_norm(self):
        x = Tensor([3.0, 4.0])
        assert x.norm().item() == pytest.approx(5.0, abs=1e-6)

    def test_norm_gradient_safe_at_zero(self):
        x = Tensor([0.0, 0.0], requires_grad=True)
        x.norm().backward()
        assert np.isfinite(x.grad).all()

    def test_reshape_roundtrip_gradient(self):
        x = Tensor(np.arange(6.0), requires_grad=True)
        x.reshape(2, 3).sum().backward()
        assert x.grad.shape == (6,)

    def test_transpose(self):
        x = Tensor(np.arange(6.0).reshape(2, 3), requires_grad=True)
        y = x.T
        assert y.shape == (3, 2)
        y.sum().backward()
        assert x.grad.shape == (2, 3)

    def test_getitem_gradient_scatter(self):
        x = Tensor(np.arange(5.0), requires_grad=True)
        x[1:3].sum().backward()
        np.testing.assert_allclose(x.grad, [0.0, 1.0, 1.0, 0.0, 0.0])

    def test_getitem_repeated_index_accumulates(self):
        x = Tensor(np.arange(3.0), requires_grad=True)
        x[np.array([0, 0, 2])].sum().backward()
        np.testing.assert_allclose(x.grad, [2.0, 0.0, 1.0])


class TestOps:
    def test_concat_gradient_routing(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = Tensor([3.0], requires_grad=True)
        out = concat([a, b], axis=0)
        assert out.shape == (3,)
        (out * Tensor([1.0, 2.0, 3.0])).sum().backward()
        np.testing.assert_allclose(a.grad, [1.0, 2.0])
        np.testing.assert_allclose(b.grad, [3.0])

    def test_stack(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = Tensor([3.0, 4.0], requires_grad=True)
        out = stack([a, b], axis=0)
        assert out.shape == (2, 2)
        out.sum().backward()
        np.testing.assert_allclose(a.grad, [1.0, 1.0])

    def test_softmax_rows_sum_to_one(self):
        x = Tensor(np.random.default_rng(0).normal(size=(4, 5)))
        np.testing.assert_allclose(softmax(x, axis=-1).data.sum(axis=-1), np.ones(4))

    def test_softmax_stable_for_large_values(self):
        x = Tensor([1000.0, 1000.0])
        np.testing.assert_allclose(softmax(x).data, [0.5, 0.5])
