"""Unit tests for the functional ops in repro.nn.ops not covered elsewhere."""

import numpy as np
import pytest

from repro.core import lorentz_inner as lorentz_inner_np
from repro.nn import (
    Tensor,
    dot,
    euclidean_distance,
    log_softmax,
    lorentz_inner,
    pairwise_euclidean,
    softmax,
    squared_distance,
    stack,
)


class TestReductionsOps:
    def test_dot_matches_numpy(self):
        rng = np.random.default_rng(0)
        a, b = rng.normal(size=6), rng.normal(size=6)
        assert dot(Tensor(a), Tensor(b)).item() == pytest.approx(float(a @ b))

    def test_dot_batched(self):
        rng = np.random.default_rng(1)
        a, b = rng.normal(size=(4, 3)), rng.normal(size=(4, 3))
        np.testing.assert_allclose(dot(Tensor(a), Tensor(b)).data, (a * b).sum(axis=-1))

    def test_squared_distance(self):
        assert squared_distance(Tensor([0.0, 0.0]), Tensor([3.0, 4.0])).item() == pytest.approx(25.0)

    def test_euclidean_distance(self):
        assert euclidean_distance(Tensor([0.0, 0.0]), Tensor([3.0, 4.0])).item() == \
            pytest.approx(5.0, abs=1e-6)

    def test_euclidean_distance_gradient_at_zero_is_finite(self):
        a = Tensor([1.0, 1.0], requires_grad=True)
        euclidean_distance(a, Tensor([1.0, 1.0])).backward()
        assert np.isfinite(a.grad).all()

    def test_pairwise_euclidean(self):
        rng = np.random.default_rng(2)
        x = rng.normal(size=(5, 3))
        matrix = pairwise_euclidean(Tensor(x)).data
        direct = np.sqrt(((x[:, None] - x[None]) ** 2).sum(-1))
        np.testing.assert_allclose(matrix, direct, atol=1e-5)
        np.testing.assert_allclose(np.diag(matrix), np.zeros(5), atol=1e-5)


class TestSoftmaxFamily:
    def test_log_softmax_consistent_with_softmax(self):
        x = Tensor(np.random.default_rng(3).normal(size=(4, 6)))
        np.testing.assert_allclose(np.exp(log_softmax(x).data), softmax(x).data, atol=1e-9)

    def test_log_softmax_rows_normalised(self):
        x = Tensor(np.random.default_rng(4).normal(size=(3, 5)))
        np.testing.assert_allclose(np.exp(log_softmax(x).data).sum(axis=-1), np.ones(3))

    def test_softmax_gradient_flows(self):
        x = Tensor(np.random.default_rng(5).normal(size=4), requires_grad=True)
        (softmax(x) * Tensor([1.0, 0.0, 0.0, 0.0])).sum().backward()
        assert x.grad is not None
        assert abs(x.grad.sum()) < 1e-9  # softmax Jacobian rows sum to zero


class TestLorentzOp:
    def test_matches_numpy_implementation(self):
        rng = np.random.default_rng(6)
        a, b = rng.normal(size=(5, 4)), rng.normal(size=(5, 4))
        np.testing.assert_allclose(lorentz_inner(Tensor(a), Tensor(b)).data,
                                   lorentz_inner_np(a, b), atol=1e-12)

    def test_rejects_non_last_axis(self):
        with pytest.raises(ValueError):
            lorentz_inner(Tensor(np.ones((2, 3))), Tensor(np.ones((2, 3))), axis=0)

    def test_differentiable(self):
        a = Tensor(np.ones(3), requires_grad=True)
        lorentz_inner(a, Tensor([2.0, 3.0, 4.0])).backward()
        np.testing.assert_allclose(a.grad, [-2.0, 3.0, 4.0])


class TestStack:
    def test_stack_new_axis_position(self):
        a, b = Tensor(np.ones((2, 3))), Tensor(np.zeros((2, 3)))
        assert stack([a, b], axis=1).shape == (2, 2, 3)

    def test_stack_gradient_split(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = Tensor([3.0, 4.0], requires_grad=True)
        (stack([a, b], axis=1) * Tensor([[1.0, 10.0], [2.0, 20.0]])).sum().backward()
        np.testing.assert_allclose(a.grad, [1.0, 2.0])
        np.testing.assert_allclose(b.grad, [10.0, 20.0])
