"""Exact-search parity, index behaviour and the engine pair-refinement primitive.

The headline guarantee: ``knn_search`` returns exactly ``knn_from_matrix``'s
neighbours — same indices, same order, same tie-breaking — for every registered
measure at several k, while refining only a subset of candidates.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import BoundingBox, generate_dataset
from repro.distances import cross_distance_matrix, knn_from_matrix
from repro.engine import MatrixEngine
from repro.search import SearchStats, TrajectoryIndex, knn_search

SPATIOTEMPORAL = {"tp", "dita"}
MEASURE_KWARGS = {"edr": {"epsilon": 0.25}, "lcss": {"epsilon": 0.25}}


@pytest.fixture(scope="module")
def city():
    dataset = generate_dataset("chengdu", size=30, seed=1, with_time=True)
    return dataset.point_arrays(spatial_only=False)


@pytest.fixture(scope="module")
def spatial(city):
    return [points[:, :2] for points in city]


@pytest.mark.parametrize("measure", ["dtw", "erp", "edr", "lcss", "hausdorff",
                                     "frechet", "sspd", "tp", "dita"])
@pytest.mark.parametrize("k", [1, 3, 7])
def test_knn_search_matches_knn_from_matrix(city, spatial, measure, k):
    arrays = city if measure in SPATIOTEMPORAL else spatial
    kwargs = MEASURE_KWARGS.get(measure, {})
    engine = MatrixEngine(cache=None)
    index = TrajectoryIndex(arrays)
    num_queries = 4
    matrix = engine.cross(arrays[:num_queries], arrays, measure, **kwargs)
    expected = knn_from_matrix(matrix, k, exclude_self=True)
    for query in range(num_queries):
        result = knn_search(index, arrays[query], k, measure=measure, engine=engine,
                            exclude=query, **kwargs)
        np.testing.assert_array_equal(result.indices, expected[query])
        np.testing.assert_allclose(result.distances, matrix[query][result.indices],
                                   rtol=0, atol=1e-9)
        assert result.stats.num_refined + result.stats.num_pruned == len(arrays) - 1


def test_knn_search_prunes(spatial):
    """On route-clustered data the lower bounds must actually skip refinements."""
    dataset = generate_dataset("chengdu", size=80, seed=2)
    arrays = dataset.point_arrays(spatial_only=True)
    index = TrajectoryIndex(arrays)
    result = knn_search(index, arrays[0], 5, measure="dtw", exclude=0, batch_size=4)
    assert result.stats.num_pruned > 0
    assert result.stats.pruned_fraction > 0.0
    assert result.stats.num_batches >= 1
    assert result.stats.refine_seconds >= 0.0


def test_knn_search_tie_breaking_matches_stable_argsort():
    base = np.array([[0.0, 0.0], [1.0, 0.0]])
    far = np.array([[5.0, 5.0], [6.0, 5.0]])
    # Duplicates produce exact distance ties; parity requires ascending-index order.
    arrays = [base, far.copy(), base.copy(), far.copy(), base.copy()]
    query = base + 0.01
    matrix = cross_distance_matrix([query], arrays, "dtw")
    expected = knn_from_matrix(matrix, 4)
    result = knn_search(arrays, query, 4, measure="dtw")
    np.testing.assert_array_equal(result.indices, expected[0])
    assert result.indices.tolist()[:2] == [0, 2]  # tied duplicates, lowest index first


def test_knn_from_matrix_tie_breaking_is_documented_and_stable():
    matrix = np.array([[3.0, 1.0, 1.0, 2.0, 1.0]])
    np.testing.assert_array_equal(knn_from_matrix(matrix, 4)[0], [1, 2, 4, 3])


def test_knn_search_k_and_exclude_validation(spatial):
    index = TrajectoryIndex(spatial[:5])
    with pytest.raises(ValueError):
        knn_search(index, spatial[0], 0, measure="dtw")
    with pytest.raises(ValueError):
        knn_search(index, spatial[0], 5, measure="dtw", exclude=0)
    with pytest.raises(ValueError):
        knn_search(index, spatial[0], 3, measure="dtw", batch_size=0)
    result = knn_search(index, spatial[0], 4, measure="dtw", exclude=0)
    assert 0 not in result.indices
    result = knn_search(index, spatial[0], 3, measure="dtw", exclude=[0, 1])
    assert not {0, 1} & set(result.indices.tolist())


def test_knn_search_accepts_raw_sequences_and_batch_sizes(spatial):
    expected = knn_search(TrajectoryIndex(spatial), spatial[3], 5, measure="dtw",
                          exclude=3).indices
    for batch_size in (1, 3, 64):
        result = knn_search(spatial, spatial[3], 5, measure="dtw", exclude=3,
                            batch_size=batch_size)
        np.testing.assert_array_equal(result.indices, expected)


def test_search_stats_merge_and_dict():
    first = SearchStats(num_database=10, num_candidates=9, num_refined=4,
                        num_pruned=5, num_batches=1)
    second = SearchStats(num_database=10, num_candidates=9, num_refined=6,
                         num_pruned=3, num_batches=2)
    first.merge(second)
    assert first.num_refined == 10 and first.num_pruned == 8
    report = first.as_dict()
    assert report["pruned_fraction"] == pytest.approx(8 / 18)
    assert SearchStats().pruned_fraction == 0.0


def test_engine_pairs_matches_reference(spatial):
    engine = MatrixEngine(cache=None)
    reference = MatrixEngine(strategy="serial", use_kernels=False, cache=None)
    list_a = spatial[:6]
    list_b = spatial[6:12]
    np.testing.assert_allclose(engine.pairs(list_a, list_b, "dtw"),
                               reference.pairs(list_a, list_b, "dtw"), atol=1e-9)
    assert engine.pairs([], [], "dtw").shape == (0,)
    with pytest.raises(ValueError):
        engine.pairs(list_a, list_b[:-1], "dtw")


# ---------------------------------------------------------------------- the index
def test_index_summaries_and_fingerprint(spatial):
    index = TrajectoryIndex(spatial)
    assert len(index) == len(spatial)
    assert index.summary(0).length == len(spatial[0])
    assert index.fingerprint == TrajectoryIndex(spatial).fingerprint
    assert index.fingerprint != TrajectoryIndex(spatial[:-1]).fingerprint
    assert "grid" in repr(index)


def test_index_cell_candidates_rank_overlapping_first(spatial):
    index = TrajectoryIndex(spatial)
    ranked = index.cell_candidates(spatial[0])
    assert 0 < len(ranked) <= len(spatial)
    assert 0 in ranked  # the trajectory overlaps its own cells
    full = index.cell_candidates(spatial[0], include_all=True)
    assert len(full) == len(spatial)
    assert sorted(full.tolist()) == list(range(len(spatial)))


def test_index_range_query(spatial):
    index = TrajectoryIndex(spatial)
    everything = index.range_query(index.bounding_box)
    assert everything.tolist() == list(range(len(spatial)))
    empty = index.range_query(BoundingBox(99.0, 99.0, 100.0, 100.0))
    assert len(empty) == 0


def test_index_quadtree_backend_matches_grid_for_search(spatial):
    grid_index = TrajectoryIndex(spatial, spatial_index="grid")
    tree_index = TrajectoryIndex(spatial, spatial_index="quadtree")
    expected = knn_search(grid_index, spatial[1], 5, measure="hausdorff",
                          exclude=1).indices
    actual = knn_search(tree_index, spatial[1], 5, measure="hausdorff",
                        exclude=1).indices
    np.testing.assert_array_equal(actual, expected)
    with pytest.raises(ValueError):
        TrajectoryIndex(spatial, spatial_index="rtree")
    with pytest.raises(ValueError):
        TrajectoryIndex([])


def test_index_lower_bounds_vector(spatial):
    index = TrajectoryIndex(spatial)
    bounds = index.lower_bounds(spatial[0], "dtw")
    assert bounds.shape == (len(spatial),)
    assert bounds[0] == pytest.approx(0.0)  # the query itself
    assert index.lower_bounds(spatial[0], "unregistered-measure").max() == 0.0
