"""Smoke tests for the experiment harnesses (tiny settings so the suite stays fast)."""

import numpy as np
import pytest

from repro.experiments import (
    ExperimentSettings,
    VARIANTS,
    fig1_violation_accuracy,
    fig5_rvs_distribution,
    fig6_scalability,
    fig7_robustness,
    fig8_hyperparams,
    format_percent,
    format_table,
    make_plugin,
    percent_increase,
    prepare_experiment,
    table1_constraint_variability,
    table3_accuracy,
    table4_spatiotemporal,
    table5_efficiency,
    table6_ablation,
    train_variant,
)

TINY = ExperimentSettings(model="meanpool", dataset_size=14, epochs=1, seed=0,
                          hr_ks=(3, 5), ndcg_ks=(5,))


class TestReporting:
    def test_format_table_alignment(self):
        table = format_table(["a", "bbb"], [[1, 2], [33, 4]], title="t")
        lines = table.splitlines()
        assert lines[0] == "t"
        assert "a" in lines[1] and "bbb" in lines[1]
        assert len(lines) == 5

    def test_format_percent(self):
        assert format_percent(0.123) == "12.30%"
        assert format_percent(None) == "-"

    def test_percent_increase(self):
        assert percent_increase(2.0, 3.0) == pytest.approx(0.5)
        assert percent_increase(0.0, 3.0) == 0.0


class TestRunner:
    def test_prepare_experiment_shapes(self):
        dataset, truth = prepare_experiment(TINY)
        assert len(dataset) == TINY.dataset_size
        assert truth.shape == (14, 14)
        np.testing.assert_allclose(truth, truth.T)

    def test_prepare_spatiotemporal_measure_forces_time(self):
        settings = ExperimentSettings(model="meanpool", measure="tp", dataset_size=8,
                                      preset="chengdu")
        dataset, _ = prepare_experiment(settings)
        assert dataset.has_time

    def test_make_plugin_variants(self):
        assert make_plugin(TINY, "original") is None
        assert make_plugin(TINY, "lh-cosh").fusion is None
        assert make_plugin(TINY, "fusion-dist").fusion is not None
        with pytest.raises(KeyError):
            make_plugin(TINY, "mystery")

    def test_variants_constant(self):
        assert VARIANTS == ("original", "lh-vanilla", "lh-cosh", "fusion-dist")

    def test_train_variant_returns_metrics_and_history(self):
        dataset, truth = prepare_experiment(TINY)
        outcome = train_variant(TINY, dataset, truth, "original")
        assert "hr@3" in outcome["metrics"]
        assert len(outcome["history"]) == TINY.epochs
        assert outcome["predicted_matrix"].shape == truth.shape


class TestExperimentSmoke:
    def test_table1(self):
        result = table1_constraint_variability.run(presets=("chengdu",), measures=("dtw",),
                                                   dataset_size=12, max_triplets=200)
        assert "chengdu" in result["results"]
        assert isinstance(table1_constraint_variability.format_result(result), str)

    def test_fig1(self):
        result = fig1_violation_accuracy.run(TINY, num_buckets=2, k=3, max_triplets=300)
        assert len(result["results"]["original"]["bucket_hit_rates"]) == 2
        assert isinstance(fig1_violation_accuracy.format_result(result), str)

    def test_table3(self):
        result = table3_accuracy.run(TINY, models=("meanpool",), measures=("dtw",),
                                     presets=("chengdu",))
        cell = result["results"]["chengdu"]["meanpool"]["dtw"]
        assert "original" in cell and "lh-plugin" in cell
        assert isinstance(table3_accuracy.format_result(result), str)

    def test_table4(self):
        settings = ExperimentSettings(model="meanpool", preset="tdrive", dataset_size=12,
                                      epochs=1, hr_ks=(3, 5), ndcg_ks=(5,))
        result = table4_spatiotemporal.run(settings, models=("meanpool",), measures=("tp",))
        assert "meanpool" in result["results"]
        assert isinstance(table4_spatiotemporal.format_result(result), str)

    def test_fig5(self):
        settings = ExperimentSettings(model="meanpool", dataset_size=20, epochs=1,
                                      hr_ks=(3,), ndcg_ks=(3,))
        result = fig5_rvs_distribution.run(settings, max_triplets=800, max_violating=50)
        assert result["summary"]["ground_truth"]["fraction_positive"] == 1.0
        assert isinstance(fig5_rvs_distribution.format_result(result), str)

    def test_table5(self):
        result = table5_efficiency.run(database_sizes=(200,), num_queries=4, repeats=1)
        assert len(result["rows"]) == 1
        assert isinstance(table5_efficiency.format_result(result), str)

    def test_fig6(self):
        result = fig6_scalability.run(TINY, fractions=(0.5, 1.0))
        assert len(result["results"]["original"]) == 2
        assert isinstance(fig6_scalability.format_result(result), str)

    def test_fig7(self):
        settings = ExperimentSettings(model="meanpool", dataset_size=12, epochs=2,
                                      hr_ks=(3, 10), ndcg_ks=(5,))
        result = fig7_robustness.run(settings)
        assert len(result["curves"]["original"]["curve"]) == 2
        assert isinstance(fig7_robustness.format_result(result), str)

    def test_table6(self):
        result = table6_ablation.run(TINY, measures=("dtw",), variants=("original", "lh-cosh"))
        assert set(result["results"]["dtw"]) == {"original", "lh-cosh"}
        assert isinstance(table6_ablation.format_result(result), str)

    def test_fig8(self):
        result = fig8_hyperparams.run(TINY, betas=(1.0,), compressions=(4.0,))
        assert len(result["beta_sweep"]) == 1
        assert len(result["compression_sweep"]) == 1
        assert isinstance(fig8_hyperparams.format_result(result), str)
