"""Pruning-soundness property tests for the per-measure lower bounds.

The whole filter-and-refine contract rests on one inequality: every registered
lower bound must be ≤ the true distance for the same keyword arguments.  These
tests hammer that property on random trajectory pairs — including degenerate
single-point and duplicated trajectories — for every measure in the registry.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import generate_dataset
from repro.distances import available_distances, get_distance
from repro.search import (
    StackedSummaries,
    TrajectoryIndex,
    TrajectorySummary,
    available_batch_lower_bounds,
    available_lower_bounds,
    get_batch_lower_bound,
    get_lower_bound,
    lower_bound,
    register_lower_bound,
)

#: Per-measure kwargs variants the soundness property is checked under.
MEASURE_KWARGS = {
    "dtw": [{}, {"band": 1}, {"band": 4}],
    "erp": [{}, {"gap": (0.3, 0.7)}],
    "edr": [{"epsilon": 0.25}, {"epsilon": 0.05}],
    "lcss": [{"epsilon": 0.25}, {"epsilon": 0.05}],
    "hausdorff": [{}],
    "frechet": [{}],
    "sspd": [{}],
    "tp": [{}, {"lambda_spatial": 0.8, "time_scale": 2.0}],
    "dita": [{}, {"lambda_spatial": 0.2, "time_scale": 0.5}],
}

SPATIOTEMPORAL = {"tp", "dita"}


def random_trajectories(rng: np.random.Generator, with_time: bool) -> list[np.ndarray]:
    """Assorted random trajectories: varied lengths, duplicates, single points."""
    lengths = [1, 1, 2, 3, 5, 8, 13, 21, 34]
    trajectories = []
    for length in lengths:
        points = rng.uniform(0.0, 2.0, size=(length, 2))
        if with_time:
            times = np.sort(rng.uniform(0.0, 10.0, size=(length, 1)), axis=0)
            points = np.hstack([points, times])
        trajectories.append(points)
    trajectories.append(trajectories[-1].copy())  # exact duplicate → distance 0
    return trajectories


@pytest.mark.parametrize("measure", sorted(MEASURE_KWARGS))
def test_lower_bound_is_sound(measure):
    rng = np.random.default_rng(7)
    trajectories = random_trajectories(rng, with_time=measure in SPATIOTEMPORAL)
    bound = get_lower_bound(measure)
    distance = get_distance(measure)
    assert bound is not None
    for kwargs in MEASURE_KWARGS[measure]:
        for a in trajectories:
            for b in trajectories:
                lb = bound(a, b, **kwargs)
                d = distance(a, b, **kwargs)
                assert lb <= d + 1e-9, (
                    f"{measure} bound {lb} exceeds distance {d} for kwargs {kwargs}")
                assert lb >= 0.0


@pytest.mark.parametrize("measure", sorted(MEASURE_KWARGS))
def test_lower_bound_sound_on_synthetic_city(measure):
    """Same property on realistic route-clustered data (the regime that prunes)."""
    dataset = generate_dataset("chengdu", size=12, seed=3,
                               with_time=measure in SPATIOTEMPORAL or None)
    arrays = dataset.point_arrays(spatial_only=measure not in SPATIOTEMPORAL)
    bound = get_lower_bound(measure)
    distance = get_distance(measure)
    kwargs = MEASURE_KWARGS[measure][0]
    for i in range(len(arrays)):
        for j in range(len(arrays)):
            assert bound(arrays[i], arrays[j], **kwargs) <= \
                distance(arrays[i], arrays[j], **kwargs) + 1e-9


def test_every_registered_distance_has_a_lower_bound():
    assert set(available_distances()) <= set(available_lower_bounds())


def test_precomputed_summaries_do_not_change_the_bound():
    rng = np.random.default_rng(11)
    a = rng.uniform(0.0, 1.0, size=(20, 3))
    b = rng.uniform(0.0, 1.0, size=(15, 3))
    for measure in available_lower_bounds():
        kwargs = MEASURE_KWARGS[measure][0]
        bound = get_lower_bound(measure)
        plain = bound(a, b, **kwargs)
        summarised = bound(a, b, summary=TrajectorySummary.of(b),
                           query_summary=TrajectorySummary.of(a), **kwargs)
        assert summarised == pytest.approx(plain, abs=1e-12), measure


def test_summary_fields():
    points = np.array([[0.0, 1.0], [2.0, 3.0], [4.0, 0.5], [1.0, 2.0]])
    summary = TrajectorySummary.of(points, segments=2)
    assert summary.length == 4
    np.testing.assert_allclose(summary.mins, [0.0, 0.5])
    np.testing.assert_allclose(summary.maxs, [4.0, 3.0])
    np.testing.assert_allclose(summary.first, [0.0, 1.0])
    np.testing.assert_allclose(summary.last, [1.0, 2.0])
    np.testing.assert_allclose(summary.point_sum, [7.0, 6.5])
    assert not summary.has_time
    # Pieces overlap by one point so polyline segments stay inside some box.
    assert summary.segment_starts.tolist() == [0, 2]
    assert summary.segment_ends.tolist() == [2, 3]


def test_identical_trajectories_bound_to_zero():
    rng = np.random.default_rng(5)
    spatial = rng.uniform(size=(12, 2))
    temporal = np.hstack([spatial, np.linspace(0, 1, 12)[:, None]])
    for measure in available_lower_bounds():
        kwargs = MEASURE_KWARGS[measure][0]
        points = temporal if measure in SPATIOTEMPORAL else spatial
        assert lower_bound(measure, points, points, **kwargs) == pytest.approx(0.0)


def test_registry_rejects_duplicates_and_unknown_names_are_zero():
    with pytest.raises(KeyError):
        register_lower_bound("dtw")(lambda *args, **kwargs: 0.0)
    assert get_lower_bound("no-such-measure") is None
    assert lower_bound("no-such-measure", np.zeros((2, 2)), np.ones((2, 2))) == 0.0


# ------------------------------------------------------------- batch bound parity
def test_every_lower_bound_has_a_batch_twin():
    assert set(available_lower_bounds()) == set(available_batch_lower_bounds())


@pytest.mark.parametrize("measure", sorted(MEASURE_KWARGS))
def test_index_lower_bounds_unchanged_by_vectorisation(measure):
    """The stacked one-pass bounds must equal the per-candidate loop's values.

    Covers ragged lengths (including single-point and duplicated trajectories)
    and every kwargs variant; the banded-DTW variant exercises the per-candidate
    fallback through the same public entry point.
    """
    rng = np.random.default_rng(13)
    with_time = measure in SPATIOTEMPORAL
    candidates = random_trajectories(rng, with_time=with_time)
    index = TrajectoryIndex(candidates)
    bound = get_lower_bound(measure)
    for kwargs in MEASURE_KWARGS[measure]:
        for query in (candidates[0], candidates[5], candidates[-1]):
            vectorised = index.lower_bounds(query, measure, **kwargs)
            query_summary = TrajectorySummary.of(query)
            reference = np.array([
                bound(query, candidate, summary=summary,
                      query_summary=query_summary, **kwargs)
                for candidate, summary in zip(index.arrays, index.summaries)])
            np.testing.assert_allclose(vectorised, reference, rtol=1e-10,
                                       atol=1e-12, err_msg=f"{measure} {kwargs}")


def test_batch_bounds_are_sound(with_time_measures=("tp", "dita")):
    """Vectorised bounds inherit the soundness property: bound ≤ true distance."""
    for measure in available_batch_lower_bounds():
        with_time = measure in with_time_measures
        rng = np.random.default_rng(17)
        candidates = random_trajectories(rng, with_time=with_time)
        index = TrajectoryIndex(candidates)
        distance = get_distance(measure)
        kwargs = MEASURE_KWARGS[measure][0]
        query = candidates[4]
        bounds = index.lower_bounds(query, measure, **kwargs)
        for candidate, value in zip(candidates, bounds):
            assert value <= distance(query, candidate, **kwargs) + 1e-9, measure
            assert value >= 0.0


def test_banded_dtw_batch_twin_matches_scalar_and_is_sound():
    """The windowed stacked-envelope bound replaces the per-candidate fallback.

    It must return actual values (not the None fallback sentinel), equal the
    scalar sliding-envelope bound, and stay below the banded DTW distance.
    """
    rng = np.random.default_rng(29)
    candidates = random_trajectories(rng, with_time=False)
    stacked = StackedSummaries.of(candidates)
    scalar = get_lower_bound("dtw")
    batch = get_batch_lower_bound("dtw")
    distance = get_distance("dtw")
    for band in (0, 1, 3, 10):
        for query in (candidates[0], candidates[4], candidates[-1]):
            query_summary = TrajectorySummary.of(query)
            values = batch(query, stacked, query_summary, band=band)
            assert values is not None
            reference = np.array([
                scalar(query, candidate, band=band,
                       summary=TrajectorySummary.of(candidate),
                       query_summary=query_summary)
                for candidate in candidates])
            np.testing.assert_allclose(values, reference, rtol=1e-10, atol=1e-12,
                                       err_msg=f"band={band}")
            for candidate, value in zip(candidates, values):
                assert value <= distance(query, candidate, band=band) + 1e-9


def test_stacked_summaries_keep_piece_ranges():
    rng = np.random.default_rng(31)
    arrays = [rng.random((length, 2)) for length in (20, 3, 1)]
    stacked = StackedSummaries.of(arrays)
    summaries = [TrajectorySummary.of(array) for array in arrays]
    pieces = stacked.seg_starts.shape[1]
    for row, summary in enumerate(summaries):
        own = len(summary.segment_starts)
        np.testing.assert_array_equal(stacked.seg_starts[row, :own],
                                      summary.segment_starts)
        np.testing.assert_array_equal(stacked.seg_ends[row, :own],
                                      summary.segment_ends)
        # Padding repeats the final piece, which never changes a windowed min.
        assert (stacked.seg_starts[row, own:]
                == summary.segment_starts[-1]).all()
        assert (stacked.seg_ends[row, own:] == summary.segment_ends[-1]).all()
    assert pieces == max(len(s.segment_starts) for s in summaries)


def test_stacked_summaries_validation_and_shape():
    rng = np.random.default_rng(19)
    arrays = [rng.random((length, 2)) for length in (3, 11, 1)]
    stacked = StackedSummaries.of(arrays)
    assert len(stacked) == 3
    assert stacked.points.shape == (15, 2)
    np.testing.assert_array_equal(stacked.offsets, [0, 3, 14, 15])
    assert not stacked.has_time
    with pytest.raises(ValueError):
        StackedSummaries.of([])
    with pytest.raises(ValueError):
        StackedSummaries.of([rng.random((3, 2)), rng.random((3, 3))])


def test_mixed_width_database_falls_back_to_loop():
    """A database mixing (lon, lat) and (lon, lat, t) rows still yields bounds."""
    rng = np.random.default_rng(23)
    arrays = [rng.random((5, 2)), rng.random((4, 3))]
    index = TrajectoryIndex(arrays)
    values = index.lower_bounds(rng.random((3, 2)), "hausdorff")
    assert values.shape == (2,)
    assert np.all(values >= 0.0)
