"""Sampling utilities for violation analysis.

Two samplers back the paper's figures:

* :func:`sample_violating_triplets` — random triplets restricted to those violating the
  triangle inequality (Figure 5 compares RVS distributions on exactly such triplets);
* :func:`stratify_queries_by_violation` — buckets query trajectories by how strongly
  their neighbourhood violates the triangle inequality (Figure 1 plots accuracy as a
  function of the violation degree).
"""

from __future__ import annotations

import numpy as np

from .metrics import (
    batched_relative_violation_scale,
    batched_violation_flags,
    triplet_array,
)

__all__ = [
    "sample_violating_triplets",
    "per_trajectory_violation_score",
    "stratify_queries_by_violation",
]


def sample_violating_triplets(matrix: np.ndarray, max_triplets: int = 10000,
                              limit: int | None = None, seed: int = 0,
                              tolerance: float = 1e-12) -> list[tuple[int, int, int]]:
    """Return (up to ``limit``) triplets that violate the triangle inequality.

    ``max_triplets`` bounds how many candidate triplets are examined; ``limit`` bounds
    how many violating ones are returned (None = all found).
    """
    matrix = np.asarray(matrix, dtype=np.float64)
    rng = np.random.default_rng(seed)
    triplets = triplet_array(len(matrix), max_triplets, rng)
    if len(triplets) == 0:
        return []
    flags = batched_violation_flags(matrix, triplets, tolerance=tolerance)
    violating = triplets[flags]
    if limit is not None:
        violating = violating[:limit]
    return [tuple(int(index) for index in row) for row in violating]


def per_trajectory_violation_score(matrix: np.ndarray, max_triplets: int = 20000,
                                   seed: int = 0) -> np.ndarray:
    """Average positive RVS of the violating triplets each trajectory participates in.

    Trajectories that never participate in a violating triplet get score 0.  This is
    the per-query "degree of triangle inequality violation" used to stratify Figure 1.
    """
    matrix = np.asarray(matrix, dtype=np.float64)
    rng = np.random.default_rng(seed)
    totals = np.zeros(len(matrix))
    counts = np.zeros(len(matrix))
    triplets = triplet_array(len(matrix), max_triplets, rng)
    if len(triplets):
        flags = batched_violation_flags(matrix, triplets)
        violating = triplets[flags]
        scales = batched_relative_violation_scale(matrix, violating)
        members = violating.ravel()
        np.add.at(totals, members, np.repeat(scales, 3))
        np.add.at(counts, members, 1.0)
    scores = np.zeros(len(matrix))
    mask = counts > 0
    scores[mask] = totals[mask] / counts[mask]
    return scores


def stratify_queries_by_violation(matrix: np.ndarray, num_buckets: int = 4,
                                  max_triplets: int = 20000, seed: int = 0
                                  ) -> list[np.ndarray]:
    """Split trajectory indices into ``num_buckets`` of increasing violation degree.

    Buckets are equal-frequency (quantile) groups of the per-trajectory violation
    score, ordered from least to most violating.
    """
    if num_buckets < 2:
        raise ValueError("num_buckets must be at least 2")
    scores = per_trajectory_violation_score(matrix, max_triplets=max_triplets, seed=seed)
    order = np.argsort(scores, kind="stable")
    return [np.array(chunk, dtype=np.intp) for chunk in np.array_split(order, num_buckets)]
