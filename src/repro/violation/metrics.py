"""Triangle-inequality violation statistics (Section V-A of the paper).

Given a symmetric trajectory-distance matrix, a triplet ``(i, j, k)`` violates the
triangle inequality when one side exceeds the sum of the other two.  The paper
quantifies this with:

* ``Sim[k|i, j] = f(Ti, Tj) − f(Ti, Tk) − f(Tj, Tk)`` — the signed slack of the side
  ``(i, j)`` versus the path through ``k``;
* the **Triangle Violation Flag** ``TVF`` — 1 when any of the three slacks is positive;
* the **Ratio of Violation** ``RV`` — fraction of violating triplets;
* the **Relative Violation Scale** ``RVS`` — the positive slack of the longest side
  normalised by the sum of the two shorter sides through the opposite vertex;
* the **Average Relative Violation** ``ARVS`` — mean RVS over violating triplets.
"""

from __future__ import annotations

from itertools import combinations
from typing import Iterable, Sequence

import numpy as np

__all__ = [
    "sim_slack",
    "triangle_violation_flag",
    "relative_violation_scale",
    "ratio_of_violation",
    "average_relative_violation",
    "violation_report",
    "iter_triplets",
]


def _check_matrix(matrix: np.ndarray) -> np.ndarray:
    matrix = np.asarray(matrix, dtype=np.float64)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise ValueError("distance matrix must be square")
    return matrix


def iter_triplets(count: int, max_triplets: int | None = None,
                  rng: np.random.Generator | None = None) -> Iterable[tuple[int, int, int]]:
    """Yield index triplets, either exhaustively or as a random sample.

    When ``max_triplets`` is given and smaller than ``C(count, 3)``, triplets are
    sampled uniformly at random without replacement semantics being required (the
    statistics are ratio estimates, so independent draws suffice).
    """
    if count < 3:
        return
    total = count * (count - 1) * (count - 2) // 6
    if max_triplets is None or max_triplets >= total:
        yield from combinations(range(count), 3)
        return
    rng = rng if rng is not None else np.random.default_rng(0)
    seen: set[tuple[int, int, int]] = set()
    while len(seen) < max_triplets:
        i, j, k = sorted(rng.choice(count, size=3, replace=False).tolist())
        triplet = (int(i), int(j), int(k))
        if triplet in seen:
            continue
        seen.add(triplet)
        yield triplet


def sim_slack(matrix: np.ndarray, i: int, j: int, k: int) -> float:
    """``Sim[k|i, j]``: how much the side (i, j) exceeds the path through ``k``."""
    matrix = np.asarray(matrix, dtype=np.float64)
    return float(matrix[i, j] - matrix[i, k] - matrix[j, k])


def triangle_violation_flag(matrix: np.ndarray, i: int, j: int, k: int,
                            tolerance: float = 1e-12) -> int:
    """TVF: 1 if the triplet violates the triangle inequality, else 0."""
    matrix = np.asarray(matrix, dtype=np.float64)
    slacks = (
        matrix[i, j] - matrix[i, k] - matrix[j, k],
        matrix[i, k] - matrix[i, j] - matrix[j, k],
        matrix[j, k] - matrix[i, j] - matrix[i, k],
    )
    return int(max(slacks) > tolerance)


def relative_violation_scale(matrix: np.ndarray, i: int, j: int, k: int) -> float:
    """RVS: slack of the largest side divided by the sum of the two other sides.

    Following Definition 11, the largest of the three pairwise distances determines
    which slack is normalised; the denominator is the sum of the two distances from
    the opposite vertex.  The value is positive exactly when the triplet violates the
    triangle inequality and can also be used (negative) as a "how far from violating"
    score for model-predicted distances (Figure 5).
    """
    matrix = np.asarray(matrix, dtype=np.float64)
    d_ij, d_ik, d_jk = matrix[i, j], matrix[i, k], matrix[j, k]
    sides = {"ij": d_ij, "ik": d_ik, "jk": d_jk}
    largest = max(sides, key=sides.get)
    if largest == "ij":
        numerator = d_ij - d_ik - d_jk
        denominator = d_ik + d_jk
    elif largest == "jk":
        numerator = d_jk - d_ij - d_ik
        denominator = d_ij + d_ik
    else:
        numerator = d_ik - d_ij - d_jk
        denominator = d_ij + d_jk
    if denominator <= 0.0:
        return 0.0
    return float(numerator / denominator)


def ratio_of_violation(matrix: np.ndarray, max_triplets: int | None = None,
                       seed: int = 0, tolerance: float = 1e-12) -> float:
    """RV: fraction of (sampled) triplets that violate the triangle inequality."""
    matrix = _check_matrix(matrix)
    rng = np.random.default_rng(seed)
    total = 0
    violations = 0
    for i, j, k in iter_triplets(len(matrix), max_triplets, rng):
        total += 1
        violations += triangle_violation_flag(matrix, i, j, k, tolerance)
    if total == 0:
        return 0.0
    return violations / total


def average_relative_violation(matrix: np.ndarray, max_triplets: int | None = None,
                               seed: int = 0, tolerance: float = 1e-12) -> float:
    """ARVS: mean relative violation over the violating (sampled) triplets."""
    matrix = _check_matrix(matrix)
    rng = np.random.default_rng(seed)
    scales = []
    for i, j, k in iter_triplets(len(matrix), max_triplets, rng):
        if triangle_violation_flag(matrix, i, j, k, tolerance):
            scales.append(relative_violation_scale(matrix, i, j, k))
    if not scales:
        return 0.0
    return float(np.mean(scales))


def violation_report(matrix: np.ndarray, max_triplets: int | None = None,
                     seed: int = 0, tolerance: float = 1e-12) -> dict:
    """RV and ARVS computed in a single pass (used by the Table I benchmark)."""
    matrix = _check_matrix(matrix)
    rng = np.random.default_rng(seed)
    total = 0
    violating = 0
    scale_sum = 0.0
    for i, j, k in iter_triplets(len(matrix), max_triplets, rng):
        total += 1
        if triangle_violation_flag(matrix, i, j, k, tolerance):
            violating += 1
            scale_sum += relative_violation_scale(matrix, i, j, k)
    ratio = violating / total if total else 0.0
    average = scale_sum / violating if violating else 0.0
    return {
        "triplets": total,
        "violating_triplets": violating,
        "ratio_of_violation": ratio,
        "average_relative_violation": average,
    }
