"""Triangle-inequality violation statistics (Section V-A of the paper).

Given a symmetric trajectory-distance matrix, a triplet ``(i, j, k)`` violates the
triangle inequality when one side exceeds the sum of the other two.  The paper
quantifies this with:

* ``Sim[k|i, j] = f(Ti, Tj) − f(Ti, Tk) − f(Tj, Tk)`` — the signed slack of the side
  ``(i, j)`` versus the path through ``k``;
* the **Triangle Violation Flag** ``TVF`` — 1 when any of the three slacks is positive;
* the **Ratio of Violation** ``RV`` — fraction of violating triplets;
* the **Relative Violation Scale** ``RVS`` — the positive slack of the longest side
  normalised by the sum of the two shorter sides through the opposite vertex;
* the **Average Relative Violation** ``ARVS`` — mean RVS over violating triplets.

Two execution paths coexist.  The scalar functions (``sim_slack``,
``triangle_violation_flag``, ``relative_violation_scale``) are the per-triplet
reference; the ``batched_*`` functions evaluate whole ``(m, 3)`` index arrays with
broadcasting and back the default ``vectorized=True`` mode of the aggregate
statistics.  Both paths walk the same triplet sequence for a given seed, and the
engine parity suite pins them together to 1e-9.
"""

from __future__ import annotations

import math
from itertools import chain, combinations, islice
from typing import Iterable, Iterator

import numpy as np

__all__ = [
    "sim_slack",
    "triangle_violation_flag",
    "relative_violation_scale",
    "batched_sim_slack",
    "batched_violation_flags",
    "batched_relative_violation_scale",
    "ratio_of_violation",
    "average_relative_violation",
    "violation_report",
    "iter_triplets",
    "triplet_array",
]

#: Above this population size, ``rng.choice(total, replace=False)`` (which permutes
#: the whole population) would dominate memory; rank rejection-sampling takes over.
_DENSE_SAMPLING_LIMIT = 1 << 24

#: Exhaustive statistics stream triplets in blocks of this many rows, so the
#: vectorized aggregates stay O(block) in memory even when ``C(n, 3)`` is huge.
_EXHAUSTIVE_BLOCK = 1 << 20


def _check_matrix(matrix: np.ndarray) -> np.ndarray:
    matrix = np.asarray(matrix, dtype=np.float64)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise ValueError("distance matrix must be square")
    return matrix


# ------------------------------------------------------------ triplet sampling

def _sample_ranks(total: int, size: int, rng: np.random.Generator) -> np.ndarray:
    """``size`` distinct integers from ``range(total)``, deterministic per rng state."""
    if total <= _DENSE_SAMPLING_LIMIT or size * 8 >= total:
        return rng.choice(total, size=size, replace=False)
    # Sparse regime: draws rarely collide, so rejection on ranks converges in a
    # couple of rounds without materialising the population.
    chosen: set[int] = set()
    picked: list[int] = []
    while len(picked) < size:
        for rank in rng.integers(total, size=size - len(picked)).tolist():
            if rank not in chosen:
                chosen.add(rank)
                picked.append(rank)
    return np.array(picked, dtype=np.int64)


def _unrank_triplets(ranks: np.ndarray, count: int) -> np.ndarray:
    """Map combination ranks to ``i < j < k`` index triplets (vectorized).

    Uses the combinatorial number system: every rank has a unique decomposition
    ``rank = C(k, 3) + C(j, 2) + C(i, 1)`` with ``i < j < k``, recovered per digit
    with a searchsorted over the precomputed binomial tables.
    """
    ranks = np.asarray(ranks, dtype=np.int64)
    candidates = np.arange(count, dtype=np.int64)
    choose3 = candidates * (candidates - 1) * (candidates - 2) // 6
    choose2 = candidates * (candidates - 1) // 2
    k = np.searchsorted(choose3, ranks, side="right") - 1
    remainder = ranks - choose3[k]
    j = np.searchsorted(choose2, remainder, side="right") - 1
    i = remainder - choose2[j]
    return np.stack([i, j, k], axis=1).astype(np.intp)


def triplet_array(count: int, max_triplets: int | None = None,
                  rng: np.random.Generator | None = None) -> np.ndarray:
    """``(m, 3)`` array of index triplets, exhaustive or sampled without replacement.

    When ``max_triplets`` is smaller than ``C(count, 3)``, triplet *ranks* are drawn
    without replacement and unranked, so the sample stays uniform and loop-free even
    when ``max_triplets`` approaches the total (no coupon-collector stalls).  Rows
    always satisfy ``i < j < k``; the exhaustive enumeration is lexicographic.
    """
    if count < 3:
        return np.empty((0, 3), dtype=np.intp)
    total = math.comb(count, 3)
    if max_triplets is None or max_triplets >= total:
        flat = np.fromiter(chain.from_iterable(combinations(range(count), 3)),
                           dtype=np.intp, count=3 * total)
        return flat.reshape(-1, 3)
    if max_triplets <= 0:
        return np.empty((0, 3), dtype=np.intp)
    rng = rng if rng is not None else np.random.default_rng(0)
    return _unrank_triplets(_sample_ranks(total, max_triplets, rng), count)


def _triplet_blocks(count: int, max_triplets: int | None,
                    rng: np.random.Generator | None) -> Iterator[np.ndarray]:
    """Yield ``(block, 3)`` triplet arrays covering the same sequence as
    :func:`triplet_array`, without materialising the exhaustive enumeration."""
    if count < 3:
        return
    total = math.comb(count, 3)
    if max_triplets is None or max_triplets >= total:
        iterator = combinations(range(count), 3)
        while True:
            flat = np.fromiter(
                chain.from_iterable(islice(iterator, _EXHAUSTIVE_BLOCK)), dtype=np.intp)
            if not flat.size:
                return
            yield flat.reshape(-1, 3)
        return
    sampled = triplet_array(count, max_triplets, rng)
    if len(sampled):
        yield sampled


def iter_triplets(count: int, max_triplets: int | None = None,
                  rng: np.random.Generator | None = None) -> Iterable[tuple[int, int, int]]:
    """Yield index triplets, either exhaustively or as a random sample.

    The exhaustive path streams ``itertools.combinations`` lazily; the sampled path
    delegates to :func:`triplet_array`, so both the scalar and batched statistics
    visit exactly the same triplets for a given seed.
    """
    if count < 3:
        return
    total = math.comb(count, 3)
    if max_triplets is None or max_triplets >= total:
        yield from combinations(range(count), 3)
        return
    for i, j, k in triplet_array(count, max_triplets, rng):
        yield int(i), int(j), int(k)


# ------------------------------------------------------------- scalar reference

def sim_slack(matrix: np.ndarray, i: int, j: int, k: int) -> float:
    """``Sim[k|i, j]``: how much the side (i, j) exceeds the path through ``k``."""
    matrix = np.asarray(matrix, dtype=np.float64)
    return float(matrix[i, j] - matrix[i, k] - matrix[j, k])


def triangle_violation_flag(matrix: np.ndarray, i: int, j: int, k: int,
                            tolerance: float = 1e-12) -> int:
    """TVF: 1 if the triplet violates the triangle inequality, else 0."""
    matrix = np.asarray(matrix, dtype=np.float64)
    slacks = (
        matrix[i, j] - matrix[i, k] - matrix[j, k],
        matrix[i, k] - matrix[i, j] - matrix[j, k],
        matrix[j, k] - matrix[i, j] - matrix[i, k],
    )
    return int(max(slacks) > tolerance)


def relative_violation_scale(matrix: np.ndarray, i: int, j: int, k: int) -> float:
    """RVS: slack of the largest side divided by the sum of the two other sides.

    Following Definition 11, the largest of the three pairwise distances determines
    which slack is normalised; the denominator is the sum of the two distances from
    the opposite vertex.  The value is positive exactly when the triplet violates the
    triangle inequality and can also be used (negative) as a "how far from violating"
    score for model-predicted distances (Figure 5).
    """
    matrix = np.asarray(matrix, dtype=np.float64)
    d_ij, d_ik, d_jk = matrix[i, j], matrix[i, k], matrix[j, k]
    sides = {"ij": d_ij, "ik": d_ik, "jk": d_jk}
    largest = max(sides, key=sides.get)
    if largest == "ij":
        numerator = d_ij - d_ik - d_jk
        denominator = d_ik + d_jk
    elif largest == "jk":
        numerator = d_jk - d_ij - d_ik
        denominator = d_ij + d_ik
    else:
        numerator = d_ik - d_ij - d_jk
        denominator = d_ij + d_jk
    if denominator <= 0.0:
        return 0.0
    return float(numerator / denominator)


# --------------------------------------------------------------- batched path

def _triplet_sides(matrix: np.ndarray, triplets: np.ndarray
                   ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    triplets = np.asarray(triplets, dtype=np.intp).reshape(-1, 3)
    i, j, k = triplets[:, 0], triplets[:, 1], triplets[:, 2]
    return matrix[i, j], matrix[i, k], matrix[j, k]


def batched_sim_slack(matrix: np.ndarray, triplets: np.ndarray) -> np.ndarray:
    """``Sim[k|i, j]`` for every row of an ``(m, 3)`` triplet array."""
    matrix = np.asarray(matrix, dtype=np.float64)
    d_ij, d_ik, d_jk = _triplet_sides(matrix, triplets)
    return d_ij - d_ik - d_jk


def batched_violation_flags(matrix: np.ndarray, triplets: np.ndarray,
                            tolerance: float = 1e-12) -> np.ndarray:
    """Boolean TVF for every row of an ``(m, 3)`` triplet array."""
    matrix = np.asarray(matrix, dtype=np.float64)
    d_ij, d_ik, d_jk = _triplet_sides(matrix, triplets)
    slack = np.maximum(d_ij - d_ik - d_jk, d_ik - d_ij - d_jk)
    np.maximum(slack, d_jk - d_ij - d_ik, out=slack)
    return slack > tolerance


def batched_relative_violation_scale(matrix: np.ndarray,
                                     triplets: np.ndarray) -> np.ndarray:
    """RVS for every row of an ``(m, 3)`` triplet array.

    Ties between sides resolve to the first of (ij, ik, jk) exactly as the scalar
    reference's ``max`` over the side dict does (the tied cases are numerically
    identical either way).
    """
    matrix = np.asarray(matrix, dtype=np.float64)
    d_ij, d_ik, d_jk = _triplet_sides(matrix, triplets)
    sides = np.stack([d_ij, d_ik, d_jk])
    numerators = np.stack([d_ij - d_ik - d_jk, d_ik - d_ij - d_jk, d_jk - d_ij - d_ik])
    denominators = np.stack([d_ik + d_jk, d_ij + d_jk, d_ij + d_ik])
    largest = np.argmax(sides, axis=0)
    columns = np.arange(sides.shape[1])
    numerator = numerators[largest, columns]
    denominator = denominators[largest, columns]
    positive = denominator > 0.0
    return np.where(positive, numerator / np.where(positive, denominator, 1.0), 0.0)


# ------------------------------------------------------- aggregate statistics

def ratio_of_violation(matrix: np.ndarray, max_triplets: int | None = None,
                       seed: int = 0, tolerance: float = 1e-12,
                       vectorized: bool = True) -> float:
    """RV: fraction of (sampled) triplets that violate the triangle inequality."""
    matrix = _check_matrix(matrix)
    rng = np.random.default_rng(seed)
    if vectorized:
        total = 0
        violations = 0
        for triplets in _triplet_blocks(len(matrix), max_triplets, rng):
            total += len(triplets)
            violations += int(batched_violation_flags(matrix, triplets, tolerance).sum())
        if total == 0:
            return 0.0
        return violations / total
    total = 0
    violations = 0
    for i, j, k in iter_triplets(len(matrix), max_triplets, rng):
        total += 1
        violations += triangle_violation_flag(matrix, i, j, k, tolerance)
    if total == 0:
        return 0.0
    return violations / total


def average_relative_violation(matrix: np.ndarray, max_triplets: int | None = None,
                               seed: int = 0, tolerance: float = 1e-12,
                               vectorized: bool = True) -> float:
    """ARVS: mean relative violation over the violating (sampled) triplets."""
    matrix = _check_matrix(matrix)
    rng = np.random.default_rng(seed)
    if vectorized:
        scale_sum = 0.0
        violating = 0
        for triplets in _triplet_blocks(len(matrix), max_triplets, rng):
            flags = batched_violation_flags(matrix, triplets, tolerance)
            if not flags.any():
                continue
            violating += int(flags.sum())
            scale_sum += float(
                batched_relative_violation_scale(matrix, triplets[flags]).sum())
        if violating == 0:
            return 0.0
        return scale_sum / violating
    scales = []
    for i, j, k in iter_triplets(len(matrix), max_triplets, rng):
        if triangle_violation_flag(matrix, i, j, k, tolerance):
            scales.append(relative_violation_scale(matrix, i, j, k))
    if not scales:
        return 0.0
    return float(np.mean(scales))


def violation_report(matrix: np.ndarray, max_triplets: int | None = None,
                     seed: int = 0, tolerance: float = 1e-12,
                     vectorized: bool = True) -> dict:
    """RV and ARVS computed in a single pass (used by the Table I benchmark)."""
    matrix = _check_matrix(matrix)
    rng = np.random.default_rng(seed)
    if vectorized:
        total = 0
        violating = 0
        scale_sum = 0.0
        for triplets in _triplet_blocks(len(matrix), max_triplets, rng):
            total += len(triplets)
            flags = batched_violation_flags(matrix, triplets, tolerance)
            block_violating = int(flags.sum())
            if block_violating:
                violating += block_violating
                scale_sum += float(
                    batched_relative_violation_scale(matrix, triplets[flags]).sum())
    else:
        total = 0
        violating = 0
        scale_sum = 0.0
        for i, j, k in iter_triplets(len(matrix), max_triplets, rng):
            total += 1
            if triangle_violation_flag(matrix, i, j, k, tolerance):
                violating += 1
                scale_sum += relative_violation_scale(matrix, i, j, k)
    ratio = violating / total if total else 0.0
    average = scale_sum / violating if violating else 0.0
    return {
        "triplets": total,
        "violating_triplets": violating,
        "ratio_of_violation": ratio,
        "average_relative_violation": average,
    }
