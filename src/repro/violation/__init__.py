"""``repro.violation`` — triangle-inequality violation metrics and samplers.

Implements the paper's Section V-A statistics (TVF, RV, RVS, ARVS) plus the triplet
and query-stratification samplers used by Figures 1 and 5 and Table I.
"""

from .metrics import (
    sim_slack,
    triangle_violation_flag,
    relative_violation_scale,
    batched_sim_slack,
    batched_violation_flags,
    batched_relative_violation_scale,
    ratio_of_violation,
    average_relative_violation,
    violation_report,
    iter_triplets,
    triplet_array,
)
from .sampler import (
    sample_violating_triplets,
    per_trajectory_violation_score,
    stratify_queries_by_violation,
)

__all__ = [
    "sim_slack", "triangle_violation_flag", "relative_violation_scale",
    "batched_sim_slack", "batched_violation_flags", "batched_relative_violation_scale",
    "ratio_of_violation", "average_relative_violation", "violation_report",
    "iter_triplets", "triplet_array",
    "sample_violating_triplets", "per_trajectory_violation_score",
    "stratify_queries_by_violation",
]
