"""Latency and memory probes for the efficiency experiment (Table V).

The paper's efficiency study pre-embeds the trajectory database offline and measures
the *online* retrieval cost: given a query embedding, compute its distance to every
database embedding and take the top-k.  The plugin adds a per-pair O(d) overhead
(projection is folded into the pre-embedding; fusion adds two inner products), so its
relative cost shrinks as the database grows.
"""

from __future__ import annotations

import time
from typing import Callable

import numpy as np

from ..core import LHPlugin
from .retrieval import euclidean_distance_matrix

__all__ = [
    "time_callable",
    "database_memory_bytes",
    "retrieval_latency",
    "matrix_build_latency",
    "search_latency",
    "EfficiencyResult",
]


class EfficiencyResult(dict):
    """Dict-like result of one efficiency measurement (keeps key order for reporting)."""


def time_callable(func: Callable[[], object], repeats: int = 3) -> float:
    """Median wall-clock time of ``func()`` over ``repeats`` runs (seconds)."""
    if repeats <= 0:
        raise ValueError("repeats must be positive")
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        func()
        samples.append(time.perf_counter() - start)
    return float(np.median(samples))


def database_memory_bytes(database: dict | np.ndarray) -> int:
    """Bytes consumed by a pre-embedded database (plain embeddings or plugin dict)."""
    if isinstance(database, np.ndarray):
        return int(database.nbytes)
    total = 0
    for value in database.values():
        if isinstance(value, np.ndarray):
            total += value.nbytes
        elif isinstance(value, tuple):
            total += sum(item.nbytes for item in value if isinstance(item, np.ndarray))
    return int(total)


def matrix_build_latency(trajectories, measure: str = "dtw", engine=None,
                         repeats: int = 3, **measure_kwargs) -> EfficiencyResult:
    """Wall-clock cost of building the pairwise ground-truth matrix with an engine.

    This is the offline counterpart of :func:`retrieval_latency`: the dominant
    pre-processing cost of every experiment is the O(n²) ground-truth matrix, and
    this probe is how the engine micro-benchmarks compare execution strategies.
    Caching is bypassed (each run recomputes) so the measurement reflects compute,
    not cache hits.
    """
    from ..engine import MatrixEngine

    engine = engine or MatrixEngine()
    probe = MatrixEngine(strategy=engine.strategy, use_kernels=engine.use_kernels,
                         cache=None, chunk_size=engine.chunk_size,
                         max_workers=engine.max_workers,
                         # engine.chunk_bytes is the *resolved* budget (None =
                         # disabled); -1 re-disables it on the probe copy.
                         chunk_bytes=engine.chunk_bytes
                         if engine.chunk_bytes is not None else -1)
    latency = time_callable(
        lambda: probe.pairwise(trajectories, measure, **measure_kwargs),
        repeats=repeats)
    return EfficiencyResult(
        latency_seconds=latency,
        num_trajectories=len(trajectories),
        measure=measure,
        strategy=probe.strategy,
        use_kernels=probe.use_kernels,
        max_workers=probe.max_workers,
    )


def search_latency(trajectories, queries, k: int = 10, measure: str = "dtw",
                   engine=None, batch_size: int | None = None, repeats: int = 3,
                   exclude_self: bool = False, **measure_kwargs) -> EfficiencyResult:
    """Online top-k latency through the filter-and-refine search service.

    The index is built once (offline, like the paper's pre-embedding step) and the
    measurement covers serving every query through a fresh
    :class:`~repro.search.SearchService`, so *result* cache effects across
    repeats are excluded while pruning statistics reflect a cold service.  The
    shared-memory arena cache is deliberately left on (it is keyed by index
    content, not by service): under the ``shared`` strategy repeats after the
    first reuse the packed database segment, exactly as a warm deployment
    would, and the probe reports the hit/miss split.  The last service is
    closed after the measurement so the probe leaks no shared memory.
    Alongside latency, the result reports how many candidate refinements the
    lower bounds avoided — the quantity the search micro-benchmark gates on.
    """
    from ..engine.arena_cache import get_arena_cache
    from ..search import SearchService, TrajectoryIndex

    index = trajectories if isinstance(trajectories, TrajectoryIndex) \
        else TrajectoryIndex(trajectories)
    last_service: dict = {}

    def run() -> None:
        service = SearchService(index, measure=measure, k=k, engine=engine,
                                batch_size=batch_size, **measure_kwargs)
        service.search_many(queries, k=k, exclude_self=exclude_self)
        last_service["service"] = service

    arena_cache = get_arena_cache()
    arena_before = (arena_cache.hits, arena_cache.misses)
    try:
        latency = time_callable(run, repeats=repeats)
        stats = last_service["service"].stats()
    finally:
        service = last_service.get("service")
        if service is not None:
            service.close()
    return EfficiencyResult(
        latency_seconds=latency,
        latency_per_query_seconds=latency / max(len(queries), 1),
        database_size=len(index),
        num_queries=len(queries),
        k=k,
        measure=measure,
        num_candidates=stats["num_candidates"],
        num_refined=stats["num_refined"],
        num_pruned=stats["num_pruned"],
        pruned_fraction=stats["pruned_fraction"],
        index_generation=index.generation,
        index_shards=getattr(index, "num_shards", 1),
        arena_hits=arena_cache.hits - arena_before[0],
        arena_misses=arena_cache.misses - arena_before[1],
    )


def _brute_force_topk_euclidean(queries: np.ndarray, database: np.ndarray, k: int) -> np.ndarray:
    distances = euclidean_distance_matrix(queries, database)
    return np.argsort(distances, axis=1)[:, :k]


def retrieval_latency(query_embeddings: np.ndarray, database_embeddings: np.ndarray,
                      k: int = 10, plugin: LHPlugin | None = None,
                      query_sequences=None, database_sequences=None,
                      repeats: int = 3) -> EfficiencyResult:
    """Measure top-k retrieval latency and database memory, with or without the plugin.

    Without a plugin, retrieval is brute-force Euclidean top-k.  With a plugin, the
    database is pre-embedded once (projection + factor vectors, excluded from the
    online latency, as in the paper) and the online step computes the fused distance
    matrix before the top-k selection.
    """
    query_embeddings = np.asarray(query_embeddings, dtype=np.float64)
    database_embeddings = np.asarray(database_embeddings, dtype=np.float64)
    k = min(k, len(database_embeddings))

    if plugin is None:
        database: dict | np.ndarray = database_embeddings

        def run() -> np.ndarray:
            return _brute_force_topk_euclidean(query_embeddings, database_embeddings, k)
    else:
        database = plugin.embed_database(database_embeddings, database_sequences)
        query_db = plugin.embed_database(query_embeddings, query_sequences)

        def run() -> np.ndarray:
            distances = plugin.distance_matrix(query_db, database)
            return np.argsort(distances, axis=1)[:, :k]

    latency = time_callable(run, repeats=repeats)
    return EfficiencyResult(
        latency_seconds=latency,
        memory_bytes=database_memory_bytes(database),
        database_size=len(database_embeddings),
        num_queries=len(query_embeddings),
        k=k,
        with_plugin=plugin is not None,
    )
