"""``repro.eval`` — retrieval quality (HR@k, NDCG@k) and efficiency probes."""

from .retrieval import (
    hit_rate,
    per_query_hit_rate,
    ndcg,
    evaluate_retrieval,
    euclidean_distance_matrix,
)
from .efficiency import (
    time_callable,
    database_memory_bytes,
    retrieval_latency,
    matrix_build_latency,
    search_latency,
    EfficiencyResult,
)

__all__ = [
    "hit_rate", "per_query_hit_rate", "ndcg", "evaluate_retrieval",
    "euclidean_distance_matrix",
    "time_callable", "database_memory_bytes", "retrieval_latency",
    "matrix_build_latency", "search_latency", "EfficiencyResult",
]
