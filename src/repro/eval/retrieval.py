"""Retrieval-quality metrics: HR@k and NDCG@k (Section VI-A).

Given a model distance matrix and a ground-truth distance matrix over the same
query/database split, HR@k is the fraction of the true top-k neighbours recovered in
the predicted top-k, averaged over queries; NDCG@k discounts hits by their predicted
rank, rewarding models that put the true neighbours early in the ranking.
"""

from __future__ import annotations

import numpy as np

from ..distances import knn_from_matrix

__all__ = [
    "hit_rate",
    "per_query_hit_rate",
    "ndcg",
    "evaluate_retrieval",
    "euclidean_distance_matrix",
]


def euclidean_distance_matrix(queries: np.ndarray, database: np.ndarray | None = None
                              ) -> np.ndarray:
    """All-pairs Euclidean distances between query and database embeddings.

    Uses the Gram-matrix identity ``‖a − b‖² = ‖a‖² + ‖b‖² − 2·a·b`` so the dominant
    cost is a single matrix multiplication (the same kernel the Lorentz-distance path
    uses, which keeps the efficiency comparison fair).
    """
    queries = np.asarray(queries, dtype=np.float64)
    database = queries if database is None else np.asarray(database, dtype=np.float64)
    gram = queries @ database.T
    squared = (queries ** 2).sum(axis=1)[:, None] + (database ** 2).sum(axis=1)[None, :]
    return np.sqrt(np.maximum(squared - 2.0 * gram, 0.0))


def hit_rate(predicted_matrix: np.ndarray, true_matrix: np.ndarray, k: int,
             exclude_self: bool = True) -> float:
    """HR@k: overlap between predicted and true top-k neighbour sets."""
    predicted_knn = knn_from_matrix(predicted_matrix, k, exclude_self=exclude_self)
    true_knn = knn_from_matrix(true_matrix, k, exclude_self=exclude_self)
    hits = 0
    for predicted_row, true_row in zip(predicted_knn, true_knn):
        hits += len(set(predicted_row.tolist()) & set(true_row.tolist()))
    return hits / (len(predicted_knn) * k)


def per_query_hit_rate(predicted_matrix: np.ndarray, true_matrix: np.ndarray, k: int,
                       exclude_self: bool = True) -> np.ndarray:
    """HR@k of every individual query (used to stratify accuracy by violation degree)."""
    predicted_knn = knn_from_matrix(predicted_matrix, k, exclude_self=exclude_self)
    true_knn = knn_from_matrix(true_matrix, k, exclude_self=exclude_self)
    rates = np.zeros(len(predicted_knn))
    for index, (predicted_row, true_row) in enumerate(zip(predicted_knn, true_knn)):
        rates[index] = len(set(predicted_row.tolist()) & set(true_row.tolist())) / k
    return rates


def ndcg(predicted_matrix: np.ndarray, true_matrix: np.ndarray, k: int,
         exclude_self: bool = True) -> float:
    """NDCG@k with binary relevance (item relevant iff in the true top-k)."""
    predicted_knn = knn_from_matrix(predicted_matrix, k, exclude_self=exclude_self)
    true_knn = knn_from_matrix(true_matrix, k, exclude_self=exclude_self)
    discounts = 1.0 / np.log2(np.arange(2, k + 2))
    ideal = discounts.sum()
    total = 0.0
    for predicted_row, true_row in zip(predicted_knn, true_knn):
        relevant = set(true_row.tolist())
        gains = np.array([1.0 if item in relevant else 0.0 for item in predicted_row])
        total += (gains * discounts).sum() / ideal
    return total / len(predicted_knn)


def evaluate_retrieval(predicted_matrix: np.ndarray, true_matrix: np.ndarray,
                       hr_ks: tuple[int, ...] = (5, 10, 50),
                       ndcg_ks: tuple[int, ...] = (10, 50),
                       exclude_self: bool = True) -> dict[str, float]:
    """HR@k and NDCG@k for the requested cut-offs, as a flat metrics dict.

    Cut-offs larger than the database size are clamped (small synthetic databases).
    """
    predicted_matrix = np.asarray(predicted_matrix, dtype=np.float64)
    true_matrix = np.asarray(true_matrix, dtype=np.float64)
    if predicted_matrix.shape != true_matrix.shape:
        raise ValueError("predicted and true matrices must have the same shape")
    database_size = predicted_matrix.shape[1] - (1 if exclude_self else 0)
    metrics: dict[str, float] = {}
    for k in hr_ks:
        effective = min(k, database_size)
        metrics[f"hr@{k}"] = hit_rate(predicted_matrix, true_matrix, effective, exclude_self)
    for k in ndcg_ks:
        effective = min(k, database_size)
        metrics[f"ndcg@{k}"] = ndcg(predicted_matrix, true_matrix, effective, exclude_self)
    return metrics
