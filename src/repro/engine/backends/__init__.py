"""Pluggable kernel backends: numpy reference vs compiled (numba) DP kernels.

The distance/kernel registries in :mod:`repro.distances.base` and
:mod:`repro.engine.kernels` map a *measure name* to an implementation; this
package adds the orthogonal axis — *which implementation family* the engine
uses:

* ``numpy`` — the anti-diagonal wavefront batch kernels of
  :mod:`repro.engine.kernels`.  Always available; the bitwise reference.
* ``numba`` — per-pair ``@njit``-compiled row-major DP loops
  (:mod:`repro.engine.backends.numba_kernels`) covering all nine measures,
  with the ``thresholds=`` early-abandoning contract inside the jitted loop.
  Selectable only when numba is importable.
* ``auto`` (the default) — ``numba`` when importable, else ``numpy`` with a
  single process-wide warning.

Resolution order for every engine call: the engine's explicit ``backend=``
argument, then :func:`set_backend`'s process-wide override, then the
``REPRO_KERNEL_BACKEND`` environment variable, then ``auto``.  Third-party
backends plug in through :func:`register_backend`.

Worker processes of the ``process``/``shared`` strategies receive the parent's
*resolved* backend name with each chunk and re-resolve it on attach
(non-strict: a worker without numba falls back to numpy with a warning rather
than poisoning the pool), calling :meth:`KernelBackend.warmup` once per worker
so JIT compilation never rides inside a timed chunk.
"""

from __future__ import annotations

import os
import warnings
from typing import Callable

from ...distances.base import get_kernel
from ..kernels import available_batch_kernels, get_batch_kernel

__all__ = [
    "KernelBackend",
    "NumpyBackend",
    "NumbaBackend",
    "BACKEND_ENV",
    "register_backend",
    "available_backends",
    "backend_available",
    "set_backend",
    "get_backend_name",
    "resolve_backend",
    "active_backend",
    "backend_provenance",
    "numba_version",
]

BACKEND_ENV = "REPRO_KERNEL_BACKEND"

#: Resolution pseudo-name: numba when importable, else numpy (one warning).
AUTO = "auto"


class KernelBackend:
    """Interface every kernel backend implements.

    A backend maps measure names to batch kernels (``(list_a, list_b,
    thresholds=None, **kwargs) -> (P,) float64``) and per-pair kernels
    (``(a, b, threshold=None, **kwargs) -> float``).  Returning ``None`` from
    either lookup makes the engine fall through to the reference
    implementation for that measure, so a backend may cover any subset.
    """

    name: str = "?"
    #: Whether kernels run as compiled native code (drives backend-aware
    #: defaults like :data:`repro.search.knn.COMPILED_ABANDON_MEASURES`).
    compiled: bool = False

    def available(self) -> bool:
        """Whether this backend can run in this process."""
        return True

    def batch_kernel(self, measure: str) -> Callable | None:
        """Batch kernel for ``measure`` or None."""
        return None

    def pair_kernel(self, measure: str) -> Callable | None:
        """Per-pair kernel for ``measure`` or None."""
        return None

    def supports_threshold(self, measure: str) -> bool:
        """Whether this backend's kernels honour abandon thresholds for ``measure``."""
        return False

    def stream_kernel(self, measure: str) -> Callable | None:
        """Prefix-incremental frontier extension for ``measure``, or None.

        Keys follow :data:`repro.engine.stream_kernels.STREAM_KERNELS`
        (``"dtw_banded"`` selects the band-restricted DTW extension).  A
        backend returning None makes :class:`~repro.engine.streaming.
        StreamingEngine` fall back to the reference loops, so partial
        coverage degrades to correct-but-slower, never to wrong.
        """
        return None

    def warmup(self) -> float:
        """Prepare the backend (JIT compilation); returns the seconds it took.

        Idempotent — repeat calls return the recorded first-call duration.
        """
        return 0.0


class NumpyBackend(KernelBackend):
    """The anti-diagonal wavefront kernels — always available, bitwise reference."""

    name = "numpy"
    compiled = False

    def batch_kernel(self, measure: str) -> Callable | None:
        return get_batch_kernel(measure)

    def pair_kernel(self, measure: str) -> Callable | None:
        return get_kernel(measure)

    def supports_threshold(self, measure: str) -> bool:
        # Pairwise kernel and batch kernel are registered together with
        # threshold support; measures with only a reference function are not.
        return (get_batch_kernel(measure) is not None
                and get_kernel(measure) is not None)

    def stream_kernel(self, measure: str) -> Callable | None:
        from ..stream_kernels import STREAM_KERNELS

        return STREAM_KERNELS.get(measure.lower())


class NumbaBackend(KernelBackend):
    """Per-pair ``@njit`` DP kernels for all nine measures."""

    name = "numba"
    compiled = True

    def _module(self):
        from . import numba_kernels

        return numba_kernels

    def available(self) -> bool:
        return bool(self._module().NUMBA_AVAILABLE)

    def batch_kernel(self, measure: str) -> Callable | None:
        return self._module().BATCH_KERNELS.get(measure.lower())

    def pair_kernel(self, measure: str) -> Callable | None:
        return self._module().PAIR_KERNELS.get(measure.lower())

    def supports_threshold(self, measure: str) -> bool:
        return measure.lower() in self._module().THRESHOLD_MEASURES

    def stream_kernel(self, measure: str) -> Callable | None:
        return self._module().STREAM_KERNELS.get(measure.lower())

    def warmup(self) -> float:
        return self._module().warmup()


# ------------------------------------------------------------------ registry

_FACTORIES: dict[str, Callable[[], KernelBackend]] = {}
_INSTANCES: dict[str, KernelBackend] = {}
_ACTIVE: str | None = None
_FALLBACK_WARNED = False


def register_backend(name: str, factory: Callable[[], KernelBackend]) -> None:
    """Register a backend factory under ``name`` (case-insensitive, unique)."""
    key = name.lower()
    if key == AUTO:
        raise ValueError(f"'{AUTO}' is reserved for the resolution default")
    if key in _FACTORIES:
        raise KeyError(f"kernel backend '{name}' already registered")
    _FACTORIES[key] = factory


def _instance(name: str) -> KernelBackend:
    backend = _INSTANCES.get(name)
    if backend is None:
        backend = _INSTANCES[name] = _FACTORIES[name]()
    return backend


def available_backends() -> list[str]:
    """Names of registered backends usable in this process."""
    return sorted(name for name in _FACTORIES if _instance(name).available())


def backend_available(name: str) -> bool:
    """Whether ``name`` is registered and usable in this process."""
    key = name.lower()
    return key in _FACTORIES and _instance(key).available()


def _validate_name(name: str) -> str:
    key = str(name).lower()
    if key != AUTO and key not in _FACTORIES:
        options = (AUTO, *sorted(_FACTORIES))
        raise KeyError(f"unknown kernel backend '{name}'; options: {options}")
    return key


def set_backend(name: str | None) -> None:
    """Process-wide backend override (None resets to env/auto resolution).

    Selecting an unavailable backend (e.g. ``numba`` without numba installed)
    raises immediately rather than failing on first use.
    """
    global _ACTIVE
    if name is None:
        _ACTIVE = None
        return
    key = _validate_name(name)
    if key != AUTO and not _instance(key).available():
        raise RuntimeError(f"kernel backend '{key}' is not available in this "
                           f"process (is its dependency installed?)")
    _ACTIVE = key


def get_backend_name() -> str | None:
    """The :func:`set_backend` override currently in force (None when unset)."""
    return _ACTIVE


def _warn_fallback(requested: str) -> None:
    global _FALLBACK_WARNED
    if not _FALLBACK_WARNED:
        _FALLBACK_WARNED = True
        warnings.warn(f"kernel backend '{requested}' requested but numba is "
                      f"not importable; falling back to the numpy backend "
                      f"(set {BACKEND_ENV}=numpy to silence)",
                      RuntimeWarning, stacklevel=3)


def resolve_backend(spec=None, strict: bool = True) -> KernelBackend:
    """Resolve a backend spec to an instance.

    ``spec`` may be a :class:`KernelBackend` (returned as-is), a name, or
    None — which falls through :func:`set_backend`'s override, then the
    ``REPRO_KERNEL_BACKEND`` environment variable, then ``auto``.  ``auto``
    resolves to numba when importable, else numpy with a one-time warning.
    An explicitly named backend that is unavailable raises when ``strict``
    (the parent process fails loudly) and warns + falls back to numpy when
    not (pool workers degrade gracefully instead of poisoning the pool).
    """
    if isinstance(spec, KernelBackend):
        return spec
    name = spec if spec is not None else (
        _ACTIVE or os.environ.get(BACKEND_ENV) or AUTO)
    key = _validate_name(name)
    if key == AUTO:
        if backend_available("numba"):
            return _instance("numba")
        _warn_fallback(AUTO)
        return _instance("numpy")
    backend = _instance(key)
    if not backend.available():
        if strict:
            raise RuntimeError(f"kernel backend '{key}' is not available in "
                               f"this process (is its dependency installed?)")
        _warn_fallback(key)
        return _instance("numpy")
    return backend


def active_backend() -> KernelBackend:
    """The backend the engine would use right now (override → env → auto)."""
    return resolve_backend(None, strict=False)


def numba_version() -> str:
    """Installed numba version, or ``"absent"``."""
    from . import numba_kernels

    return numba_kernels.NUMBA_VERSION or "absent"


def backend_provenance(warmup: bool = True) -> dict:
    """Provenance record for benchmark JSONs: active backend, numba version,
    and (when ``warmup``) the JIT warm-up seconds this process paid."""
    backend = active_backend()
    record = {
        "kernel_backend": backend.name,
        "numba_version": numba_version(),
    }
    if warmup:
        record["warmup_seconds"] = float(backend.warmup())
    return record


register_backend("numpy", NumpyBackend)
register_backend("numba", NumbaBackend)
