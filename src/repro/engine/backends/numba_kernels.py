"""Numba-JIT per-pair DP kernels — the ``numba`` kernel backend.

The numpy wavefront kernels in :mod:`repro.engine.kernels` amortise interpreter
overhead across anti-diagonals and batches, but every diagonal still costs a
handful of Python-level NumPy calls — which is why τ-aware abandoning *removes*
DP cells yet loses wall-clock there (``prune_speedup.json``).  The kernels here
run each pair's whole DP table inside one ``@njit``-compiled function: plain
row-major loops with zero interpreter overhead per cell, where UCR-style
row-wise early abandoning finally pays for itself.

**Parity contract.**  Every kernel performs cell-for-cell the same floating-
point arithmetic, in the same order, as the numpy reference — point costs
accumulate squared per-coordinate deltas left to right, DP cells reduce their
predecessors in the reference's min/max order — so unabandoned values are
*bitwise identical* to the numpy backend (the parity suite asserts it).  The
non-DP point-set measures (SSPD, TP) differ only in summation order of their
final means (sequential here vs numpy's pairwise ``mean``), which the suite
bounds at 1e-12 relative.

**Abandoning contract.**  Batch kernels accept the same ``thresholds=`` vector
as the numpy kernels: a pair may report ``+inf`` instead of its exact value,
but only when an *admissible* lower bound on the final value strictly exceeds
its threshold (padded by the same fp safety slack as the numpy sweep, so exact
ties never abandon).  After each DP row ``i`` the bound is
``min_j table[i, j] + remaining-work(i, j)`` — every monotone path visits row
``i``, values are monotone along paths, and the remaining-work suffixes
(row/column minimum-cost sums for the min-plus measures, suffix maxima for
Fréchet, unmatchable-point / length-difference terms for EDR, matchable caps
for LCSS) are true lower bounds on what any path still pays.  Because the two
backends bound at different granularities (rows here, anti-diagonals there)
they may abandon *different* pairs; both only ever abandon pairs whose exact
distance provably exceeds τ, so τ-consumers (``knn_search``) get bit-identical
results either way.

**Cell accounting.**  Every jitted DP function returns ``(value, cells)``;
the Python wrappers fold the per-pair cell counts into the process-local
counter in :mod:`repro.engine.kernels`, so ``dp_cell_count()`` keeps working
identically under both backends and all engine strategies.

**Import contract.**  This module imports *without* numba: ``njit`` degrades
to a no-op decorator and the kernels run as (slow) pure Python.  That keeps
the kernel logic testable everywhere; whether the ``numba`` *backend* is
selectable is decided by :data:`NUMBA_AVAILABLE` in the backend registry.
An explicit :func:`warmup` compiles every kernel once (per process — pool
workers call it when they attach) so benchmarks never time compilation.
"""

from __future__ import annotations

import time
from typing import Sequence

import numpy as np

try:  # pragma: no cover - exercised only where numba is installed
    import numba as _numba
    from numba import njit

    NUMBA_AVAILABLE = True
    NUMBA_VERSION: str | None = _numba.__version__
except ImportError:
    NUMBA_AVAILABLE = False
    NUMBA_VERSION = None

    def njit(*args, **kwargs):  # noqa: D103 - no-op stand-in
        if args and callable(args[0]):
            return args[0]

        def decorator(func):
            return func

        return decorator

from ..kernels import (
    _abandon_cutoff,
    _as_thresholds,
    _check_batch,
    _count_abandoned,
    _count_cells,
    _spatial_batch,
    _spatiotemporal_batch,
)

__all__ = [
    "NUMBA_AVAILABLE",
    "NUMBA_VERSION",
    "BATCH_KERNELS",
    "PAIR_KERNELS",
    "STREAM_KERNELS",
    "THRESHOLD_MEASURES",
    "warmup",
    "warmup_seconds",
]

_INF = np.inf


# ------------------------------------------------------------- jitted helpers

@njit(cache=True)
def _cost_matrix(a, b):
    """Euclidean point-cost matrix, accumulated per coordinate like the reference."""
    n, m, d = a.shape[0], b.shape[0], a.shape[1]
    out = np.empty((n, m))
    for i in range(n):
        for j in range(m):
            s = 0.0
            for ax in range(d):
                delta = a[i, ax] - b[j, ax]
                s += delta * delta
            out[i, j] = np.sqrt(s)
    return out


@njit(cache=True)
def _st_cost_matrix(a, b, lambda_spatial, time_scale):
    """DITA/TP blended spatio-temporal cost, same expression order as the reference."""
    n, m = a.shape[0], b.shape[0]
    out = np.empty((n, m))
    for i in range(n):
        for j in range(m):
            dx = a[i, 0] - b[j, 0]
            dy = a[i, 1] - b[j, 1]
            spatial = np.sqrt(dx * dx + dy * dy)
            temporal = abs(a[i, 2] - b[j, 2]) / time_scale
            out[i, j] = lambda_spatial * spatial + (1.0 - lambda_spatial) * temporal
    return out


@njit(cache=True)
def _match_matrix(a, b, epsilon):
    """Boolean per-pair point matches: within ``epsilon`` on every coordinate."""
    n, m, d = a.shape[0], b.shape[0], a.shape[1]
    out = np.empty((n, m), dtype=np.bool_)
    for i in range(n):
        for j in range(m):
            ok = True
            for ax in range(d):
                if abs(a[i, ax] - b[j, ax]) > epsilon:
                    ok = False
                    break
            out[i, j] = ok
    return out


@njit(cache=True)
def _minplus_suffixes(cost):
    """Remaining-work suffixes for DTW/DITA: ``(row_rem, col_rem)``.

    ``row_rem[i]`` lower-bounds what a path pays after visiting table row ``i``:
    each interior cost row ``i..n-2`` still pays at least its row minimum and
    the forced final cell pays exactly ``cost[n-1, m-1]``; ``row_rem[n] = 0``
    (all rows consumed).  ``col_rem`` is the column twin.
    """
    n, m = cost.shape
    rowmin = np.empty(n)
    colmin = np.full(m, _INF)
    for i in range(n):
        best = _INF
        for j in range(m):
            c = cost[i, j]
            if c < best:
                best = c
            if c < colmin[j]:
                colmin[j] = c
        rowmin[i] = best
    tail = cost[n - 1, m - 1]
    row_rem = np.zeros(n + 1)
    acc = tail
    for i in range(n - 1, -1, -1):
        row_rem[i] = acc
        if i >= 1:
            acc += rowmin[i - 1]
    col_rem = np.zeros(m + 1)
    acc = tail
    for j in range(m - 1, -1, -1):
        col_rem[j] = acc
        if j >= 1:
            acc += colmin[j - 1]
    return row_rem, col_rem


# ----------------------------------------------------------------- DTW / DITA

@njit(cache=True)
def _dtw_dp(cost, band, cutoff):
    """Row-wise (optionally banded) min-plus DP with per-cell pruned windows.

    ``band < 0`` disables the Sakoe–Chiba band; otherwise it is widened to
    ``|n - m|`` exactly like the reference.  ``cutoff`` is τ plus the fp
    safety slack; ``+inf`` disables abandoning and runs the plain full sweep.
    Returns ``(value, cells)`` with ``value = +inf`` when abandoned.

    Pruning (PrunedDTW-style): a cell is *doomed* when its value plus the
    admissible remaining-work bound ``max(row_rem[i], col_rem[j])`` exceeds
    the cutoff; doomed cells are stored as ``+inf`` and each row only visits
    the window of columns reachable from the previous row's alive span.  The
    pair is abandoned the moment a row's alive span empties.  Survivors stay
    bitwise exact: the value-achieving path of any pair with distance ≤ τ
    never touches a doomed cell (its prefix + admissible bound ≤ τ < cutoff),
    so removing doomed candidates from the ``min`` cannot change the result.
    """
    n, m = cost.shape
    w = n + m  # no band: every cell is in range
    if band >= 0:
        diff = n - m if n > m else m - n
        w = band if band > diff else diff
    table = np.full((n + 1, m + 1), _INF)
    table[0, 0] = 0.0
    cells = 0
    if not np.isfinite(cutoff):
        for i in range(1, n + 1):
            jlo = i - w if i - w > 1 else 1
            jhi = i + w if i + w < m else m
            for j in range(jlo, jhi + 1):
                best = table[i - 1, j]
                if table[i, j - 1] < best:
                    best = table[i, j - 1]
                if table[i - 1, j - 1] < best:
                    best = table[i - 1, j - 1]
                table[i, j] = best + cost[i - 1, j - 1]
            cells += jhi - jlo + 1
        return table[n, m], cells
    row_rem, col_rem = _minplus_suffixes(cost)
    # Border: every path starts at (0, 0).
    rem0 = row_rem[0] if row_rem[0] > col_rem[0] else col_rem[0]
    if rem0 > cutoff:
        return _INF, cells
    lo_prev = 0
    hi_prev = 0
    for i in range(1, n + 1):
        jlo = i - w if i - w > 1 else 1
        jhi = i + w if i + w < m else m
        start = jlo if jlo > lo_prev else lo_prev
        lo_cur = -1
        hi_cur = -1
        for j in range(start, jhi + 1):
            if j > hi_prev + 1 and not table[i, j - 1] < _INF:
                break  # no predecessor can reach any further cell in this row
            best = table[i - 1, j]
            if table[i, j - 1] < best:
                best = table[i, j - 1]
            if table[i - 1, j - 1] < best:
                best = table[i - 1, j - 1]
            value = best + cost[i - 1, j - 1]
            cells += 1
            rem = row_rem[i]
            if col_rem[j] > rem:
                rem = col_rem[j]
            if value + rem > cutoff:
                table[i, j] = _INF  # doomed: no completion can stay within τ
            else:
                table[i, j] = value
                if lo_cur < 0:
                    lo_cur = j
                hi_cur = j
        if lo_cur < 0:
            return _INF, cells
        lo_prev = lo_cur
        hi_prev = hi_cur
    return table[n, m], cells


# ------------------------------------------------------------------------ ERP

@njit(cache=True)
def _erp_dp(cost, gap_a, gap_b, cutoff):
    """Row-wise ERP DP with per-cell pruned windows (gap borders are real
    cells: they are doom-checked too, and an alive left border re-opens the
    row from column 1)."""
    n, m = cost.shape
    do_bound = np.isfinite(cutoff)
    if do_bound:
        table = np.full((n + 1, m + 1), _INF)
        table[0, 0] = 0.0
    else:
        table = np.zeros((n + 1, m + 1))
    acc = 0.0
    for i in range(1, n + 1):
        acc += gap_a[i - 1]
        table[i, 0] = acc
    acc = 0.0
    for j in range(1, m + 1):
        acc += gap_b[j - 1]
        table[0, j] = acc
    cells = 0
    if not do_bound:
        for i in range(1, n + 1):
            for j in range(1, m + 1):
                sub = table[i - 1, j - 1] + cost[i - 1, j - 1]
                da = table[i - 1, j] + gap_a[i - 1]
                db = table[i, j - 1] + gap_b[j - 1]
                if db < da:
                    da = db
                if da < sub:
                    sub = da
                table[i, j] = sub
            cells += m
        return table[n, m], cells
    # A remaining row is matched (>= its row-minimum cost) or gapped
    # (>= its gap cost): each contributes the smaller of the two.
    row_rem = np.zeros(n + 1)
    col_rem = np.zeros(m + 1)
    acc = 0.0
    for i in range(n - 1, -1, -1):
        rmin = gap_a[i]
        for j in range(m):
            if cost[i, j] < rmin:
                rmin = cost[i, j]
        acc += rmin
        row_rem[i] = acc
    acc = 0.0
    for j in range(m - 1, -1, -1):
        cmin = gap_b[j]
        for i in range(n):
            if cost[i, j] < cmin:
                cmin = cost[i, j]
        acc += cmin
        col_rem[j] = acc
    # Doom-mark the borders (they are real path cells but not counted as DP
    # work, matching the reference's cell accounting).
    lo_prev = m + 1
    hi_prev = -1
    for j in range(m + 1):
        rem = row_rem[0]
        if col_rem[j] > rem:
            rem = col_rem[j]
        if table[0, j] + rem > cutoff:
            table[0, j] = _INF
        else:
            if lo_prev > j:
                lo_prev = j
            hi_prev = j
    for i in range(1, n + 1):
        rem = row_rem[i]
        if col_rem[0] > rem:
            rem = col_rem[0]
        if table[i, 0] + rem > cutoff:
            table[i, 0] = _INF
    for i in range(1, n + 1):
        border_alive = table[i, 0] < _INF
        lo_cur = 0 if border_alive else -1
        hi_cur = 0 if border_alive else -1
        start = 1 if (border_alive or lo_prev < 1) else lo_prev
        for j in range(start, m + 1):
            if j > hi_prev + 1 and not table[i, j - 1] < _INF:
                break  # no predecessor can reach any further cell in this row
            sub = table[i - 1, j - 1] + cost[i - 1, j - 1]
            da = table[i - 1, j] + gap_a[i - 1]
            db = table[i, j - 1] + gap_b[j - 1]
            if db < da:
                da = db
            if da < sub:
                sub = da
            cells += 1
            rem = row_rem[i]
            if col_rem[j] > rem:
                rem = col_rem[j]
            if sub + rem > cutoff:
                table[i, j] = _INF  # doomed: no completion can stay within τ
            else:
                table[i, j] = sub
                if lo_cur < 0:
                    lo_cur = j
                hi_cur = j
        if hi_cur < 0:
            return _INF, cells
        lo_prev = lo_cur
        hi_prev = hi_cur
    return table[n, m], cells


# ------------------------------------------------------------------------ EDR

@njit(cache=True)
def _edr_rem(row_rem, col_rem, tail, n, m, i, j):
    """Admissible remaining-cost bound for EDR cell ``(i, j)``: the
    length-difference, unmatchable-point and final-pair terms can share edit
    steps so they combine with ``max``, never a sum.  The ``tail`` term is
    inadmissible only at the terminal cell (its pair is already consumed)."""
    ld = (n - i) - (m - j)
    if ld < 0:
        ld = -ld
    rem = float(ld)
    if row_rem[i] > rem:
        rem = row_rem[i]
    if col_rem[j] > rem:
        rem = col_rem[j]
    if tail > rem and not (i == n and j == m):
        rem = tail
    return rem


@njit(cache=True)
def _edr_dp(match, cutoff):
    """Row-wise EDR DP with per-cell pruned windows; borders are real cells
    (doom-checked, not counted) and an alive left border re-opens the row."""
    n, m = match.shape
    do_bound = np.isfinite(cutoff)
    if do_bound:
        table = np.full((n + 1, m + 1), _INF)
    else:
        table = np.zeros((n + 1, m + 1))
    for i in range(n + 1):
        table[i, 0] = i
    for j in range(m + 1):
        table[0, j] = j
    cells = 0
    if not do_bound:
        for i in range(1, n + 1):
            for j in range(1, m + 1):
                sub = table[i - 1, j - 1]
                if not match[i - 1, j - 1]:
                    sub += 1.0
                gap = table[i - 1, j]
                if table[i, j - 1] < gap:
                    gap = table[i, j - 1]
                gap += 1.0
                if gap < sub:
                    sub = gap
                table[i, j] = sub
            cells += m
        return table[n, m], cells
    row_rem = np.zeros(n + 1)
    col_rem = np.zeros(m + 1)
    acc = 0.0
    for i in range(n - 1, -1, -1):
        has = False
        for j in range(m):
            if match[i, j]:
                has = True
                break
        if not has:
            acc += 1.0
        row_rem[i] = acc
    acc = 0.0
    for j in range(m - 1, -1, -1):
        has = False
        for i in range(n):
            if match[i, j]:
                has = True
                break
        if not has:
            acc += 1.0
        col_rem[j] = acc
    tail = 0.0 if match[n - 1, m - 1] else 1.0
    lo_prev = m + 1
    hi_prev = -1
    for j in range(m + 1):
        if table[0, j] + _edr_rem(row_rem, col_rem, tail, n, m, 0, j) > cutoff:
            table[0, j] = _INF
        else:
            if lo_prev > j:
                lo_prev = j
            hi_prev = j
    for i in range(1, n + 1):
        if table[i, 0] + _edr_rem(row_rem, col_rem, tail, n, m, i, 0) > cutoff:
            table[i, 0] = _INF
    for i in range(1, n + 1):
        border_alive = table[i, 0] < _INF
        lo_cur = 0 if border_alive else -1
        hi_cur = 0 if border_alive else -1
        start = 1 if (border_alive or lo_prev < 1) else lo_prev
        for j in range(start, m + 1):
            if j > hi_prev + 1 and not table[i, j - 1] < _INF:
                break  # no predecessor can reach any further cell in this row
            sub = table[i - 1, j - 1]
            if not match[i - 1, j - 1]:
                sub += 1.0
            gap = table[i - 1, j]
            if table[i, j - 1] < gap:
                gap = table[i, j - 1]
            gap += 1.0
            if gap < sub:
                sub = gap
            cells += 1
            if sub + _edr_rem(row_rem, col_rem, tail, n, m, i, j) > cutoff:
                table[i, j] = _INF  # doomed: no completion can stay within τ
            else:
                table[i, j] = sub
                if lo_cur < 0:
                    lo_cur = j
                hi_cur = j
        if hi_cur < 0:
            return _INF, cells
        lo_prev = lo_cur
        hi_prev = hi_cur
    return table[n, m], cells


# ----------------------------------------------------------------------- LCSS

@njit(cache=True)
def _lcss_dp(match, cutoff):
    """Row-wise LCSS DP; tracks the admissible *upper* bound on the remaining
    common length (capped by remaining rows/columns and ε-matchable counts),
    converted to a lower bound on the distance ``1 - common/shorter``."""
    n, m = match.shape
    shorter = float(n if n < m else m)
    do_bound = np.isfinite(cutoff)
    if do_bound:
        # LCSS maximizes, so the dead marker is -inf (never wins a max, and a
        # match step through a dead diagonal stays dead).
        table = np.full((n + 1, m + 1), -_INF)
        table[0, :] = 0.0
        table[:, 0] = 0.0
    else:
        table = np.zeros((n + 1, m + 1))
    cells = 0
    if not do_bound:
        for i in range(1, n + 1):
            for j in range(1, m + 1):
                if match[i - 1, j - 1]:
                    table[i, j] = table[i - 1, j - 1] + 1.0
                else:
                    up = table[i - 1, j]
                    left = table[i, j - 1]
                    table[i, j] = up if up > left else left
            cells += m
        return 1.0 - table[n, m] / shorter, cells
    row_rem = np.zeros(n + 1)
    col_rem = np.zeros(m + 1)
    acc = 0.0
    for i in range(n - 1, -1, -1):
        for j in range(m):
            if match[i, j]:
                acc += 1.0
                break
        row_rem[i] = acc
    acc = 0.0
    for j in range(m - 1, -1, -1):
        for i in range(n):
            if match[i, j]:
                acc += 1.0
                break
        col_rem[j] = acc
    # A cell is doomed when even the admissible *upper* bound on the total
    # common length through it keeps the distance above the cutoff.
    lo_prev = m + 1
    hi_prev = -1
    for j in range(m + 1):
        cap = float(n)
        if float(m - j) < cap:
            cap = float(m - j)
        if row_rem[0] < cap:
            cap = row_rem[0]
        if col_rem[j] < cap:
            cap = col_rem[j]
        if 1.0 - (table[0, j] + cap) / shorter > cutoff:
            table[0, j] = -_INF
        else:
            if lo_prev > j:
                lo_prev = j
            hi_prev = j
    for i in range(1, n + 1):
        cap = float(n - i)
        if float(m) < cap:
            cap = float(m)
        if row_rem[i] < cap:
            cap = row_rem[i]
        if col_rem[0] < cap:
            cap = col_rem[0]
        if 1.0 - (table[i, 0] + cap) / shorter > cutoff:
            table[i, 0] = -_INF
    for i in range(1, n + 1):
        border_alive = table[i, 0] > -_INF
        lo_cur = 0 if border_alive else -1
        hi_cur = 0 if border_alive else -1
        start = 1 if (border_alive or lo_prev < 1) else lo_prev
        for j in range(start, m + 1):
            if j > hi_prev + 1 and not table[i, j - 1] > -_INF:
                break  # no predecessor can reach any further cell in this row
            if match[i - 1, j - 1]:
                value = table[i - 1, j - 1] + 1.0
            else:
                up = table[i - 1, j]
                left = table[i, j - 1]
                value = up if up > left else left
            cells += 1
            cap = float(n - i)
            if float(m - j) < cap:
                cap = float(m - j)
            if row_rem[i] < cap:
                cap = row_rem[i]
            if col_rem[j] < cap:
                cap = col_rem[j]
            if 1.0 - (value + cap) / shorter > cutoff:
                table[i, j] = -_INF  # doomed: distance through here exceeds τ
            else:
                table[i, j] = value
                if lo_cur < 0:
                    lo_cur = j
                hi_cur = j
        if hi_cur < 0:
            return _INF, cells
        lo_prev = lo_cur
        hi_prev = hi_cur
    if not table[n, m] > -_INF:
        return _INF, cells
    return 1.0 - table[n, m] / shorter, cells


# -------------------------------------------------------------------- Fréchet

@njit(cache=True)
def _frechet_dp(cost, cutoff):
    """Row-wise min-max DP; the running maximum must still absorb every
    remaining row/column minimum (suffix maxima), plus the exact final cell."""
    n, m = cost.shape
    do_bound = np.isfinite(cutoff)
    row_rem = np.zeros(n + 1)
    col_rem = np.zeros(m + 1)
    if do_bound:
        rowmin = np.empty(n)
        colmin = np.full(m, _INF)
        for i in range(n):
            best = _INF
            for j in range(m):
                c = cost[i, j]
                if c < best:
                    best = c
                if c < colmin[j]:
                    colmin[j] = c
            rowmin[i] = best
        tail = cost[n - 1, m - 1]
        acc = tail
        for i in range(n - 1, -1, -1):
            row_rem[i] = acc
            if i >= 1 and rowmin[i - 1] > acc:
                acc = rowmin[i - 1]
        acc = tail
        for j in range(m - 1, -1, -1):
            col_rem[j] = acc
            if j >= 1 and colmin[j - 1] > acc:
                acc = colmin[j - 1]
    table = np.full((n + 1, m + 1), _INF)
    table[0, 0] = 0.0
    cells = 0
    if not do_bound:
        for i in range(1, n + 1):
            for j in range(1, m + 1):
                reach = table[i - 1, j]
                if table[i, j - 1] < reach:
                    reach = table[i, j - 1]
                if table[i - 1, j - 1] < reach:
                    reach = table[i - 1, j - 1]
                c = cost[i - 1, j - 1]
                table[i, j] = reach if reach > c else c
            cells += m
        return table[n, m], cells
    # Border: every path starts at (0, 0).
    rem0 = row_rem[0] if row_rem[0] > col_rem[0] else col_rem[0]
    if rem0 > cutoff:
        return _INF, cells
    lo_prev = 0
    hi_prev = 0
    for i in range(1, n + 1):
        start = 1 if lo_prev < 1 else lo_prev
        lo_cur = -1
        hi_cur = -1
        for j in range(start, m + 1):
            if j > hi_prev + 1 and not table[i, j - 1] < _INF:
                break  # no predecessor can reach any further cell in this row
            reach = table[i - 1, j]
            if table[i, j - 1] < reach:
                reach = table[i, j - 1]
            if table[i - 1, j - 1] < reach:
                reach = table[i - 1, j - 1]
            c = cost[i - 1, j - 1]
            value = reach if reach > c else c
            cells += 1
            rem = row_rem[i]
            if col_rem[j] > rem:
                rem = col_rem[j]
            bound = value if value > rem else rem
            if bound > cutoff:
                table[i, j] = _INF  # doomed: no completion can stay within τ
            else:
                table[i, j] = value
                if lo_cur < 0:
                    lo_cur = j
                hi_cur = j
        if lo_cur < 0:
            return _INF, cells
        lo_prev = lo_cur
        hi_prev = hi_cur
    return table[n, m], cells


# --------------------------------------------------- point-set (non-DP) pairs

@njit(cache=True)
def _hausdorff_pair(a, b, cutoff):
    """Symmetric Hausdorff with early exit once the running max exceeds cutoff."""
    n, m, d = a.shape[0], b.shape[0], a.shape[1]
    worst = 0.0
    colmin = np.full(m, _INF)
    for i in range(n):
        best = _INF
        for j in range(m):
            s = 0.0
            for ax in range(d):
                delta = a[i, ax] - b[j, ax]
                s += delta * delta
            c = np.sqrt(s)
            if c < best:
                best = c
            if c < colmin[j]:
                colmin[j] = c
        if best > worst:
            worst = best
        if worst > cutoff:
            # worst already lower-bounds the final max — abandon.
            return _INF
    for j in range(m):
        if colmin[j] > worst:
            worst = colmin[j]
    return worst


@njit(cache=True)
def _point_to_segments(px, py, pts):
    """Minimum distance from ``(px, py)`` to any segment of polyline ``pts``."""
    best = _INF
    for s in range(pts.shape[0] - 1):
        sx = pts[s + 1, 0] - pts[s, 0]
        sy = pts[s + 1, 1] - pts[s, 1]
        length_sq = sx * sx + sy * sy
        safe = length_sq if length_sq > 0.0 else 1.0
        t = ((px - pts[s, 0]) * sx + (py - pts[s, 1]) * sy) / safe
        if t < 0.0:
            t = 0.0
        elif t > 1.0:
            t = 1.0
        if length_sq > 0.0:
            qx = pts[s, 0] + t * sx
            qy = pts[s, 1] + t * sy
        else:
            qx = pts[s, 0]
            qy = pts[s, 1]
        dx = px - qx
        dy = py - qy
        dist = np.sqrt(dx * dx + dy * dy)
        if dist < best:
            best = dist
    return best


@njit(cache=True)
def _sspd_one_sided(a, b):
    n = a.shape[0]
    if b.shape[0] == 1:
        total = 0.0
        for i in range(n):
            dx = a[i, 0] - b[0, 0]
            dy = a[i, 1] - b[0, 1]
            total += np.sqrt(dx * dx + dy * dy)
        return total / n
    total = 0.0
    for i in range(n):
        total += _point_to_segments(a[i, 0], a[i, 1], b)
    return total / n


@njit(cache=True)
def _sspd_pair(a, b):
    return 0.5 * (_sspd_one_sided(a, b) + _sspd_one_sided(b, a))


@njit(cache=True)
def _tp_pair(a, b, lambda_spatial, time_scale):
    """TP: symmetric mean closest-pair blend over spatio-temporal point costs."""
    n, m = a.shape[0], b.shape[0]
    colmin = np.full(m, _INF)
    forward = 0.0
    for i in range(n):
        best = _INF
        for j in range(m):
            dx = a[i, 0] - b[j, 0]
            dy = a[i, 1] - b[j, 1]
            spatial = np.sqrt(dx * dx + dy * dy)
            temporal = abs(a[i, 2] - b[j, 2]) / time_scale
            c = lambda_spatial * spatial + (1.0 - lambda_spatial) * temporal
            if c < best:
                best = c
            if c < colmin[j]:
                colmin[j] = c
        forward += best
    backward = 0.0
    for j in range(m):
        backward += colmin[j]
    return 0.5 * (forward / n + backward / m)


# ----------------------------------------------------------- python wrappers

def _contiguous(array: np.ndarray) -> np.ndarray:
    """C-contiguous float64 view or copy (jitted kernels index row-major)."""
    return np.ascontiguousarray(array, dtype=np.float64)


def _cutoffs(thresholds, batch: int):
    """Per-pair abandon cutoffs (+inf when thresholds is None)."""
    taus = _as_thresholds(thresholds, batch)
    if taus is None:
        return np.full(batch, _INF)
    return np.asarray(_abandon_cutoff(taus), dtype=np.float64)


def dtw_batch(trajectories_a: Sequence, trajectories_b: Sequence,
              band: int | None = None, thresholds=None) -> np.ndarray:
    """Compiled DTW (optionally banded) for a batch of trajectory pairs."""
    _check_batch(trajectories_a, trajectories_b)
    cutoffs = _cutoffs(thresholds, len(trajectories_a))
    arrays_a = [_contiguous(a) for a in _spatial_batch(trajectories_a)]
    arrays_b = [_contiguous(b) for b in _spatial_batch(trajectories_b)]
    band_arg = -1 if band is None else int(band)
    out = np.empty(len(arrays_a))
    total = 0
    for index, (a, b) in enumerate(zip(arrays_a, arrays_b)):
        value, cells = _dtw_dp(_cost_matrix(a, b), band_arg, cutoffs[index])
        out[index] = value
        total += cells
    _count_cells(total, "dtw")
    if thresholds is not None:
        _count_abandoned(int(np.isinf(out).sum()), "dtw")
    return out


def erp_batch(trajectories_a: Sequence, trajectories_b: Sequence,
              gap=None, thresholds=None) -> np.ndarray:
    """Compiled ERP for a batch of trajectory pairs."""
    _check_batch(trajectories_a, trajectories_b)
    cutoffs = _cutoffs(thresholds, len(trajectories_a))
    gap_point = np.zeros(2) if gap is None else np.asarray(gap, dtype=np.float64)[:2]
    arrays_a = [_contiguous(a) for a in _spatial_batch(trajectories_a)]
    arrays_b = [_contiguous(b) for b in _spatial_batch(trajectories_b)]
    out = np.empty(len(arrays_a))
    total = 0
    for index, (a, b) in enumerate(zip(arrays_a, arrays_b)):
        gap_a = np.sqrt(((a - gap_point) ** 2).sum(axis=1))
        gap_b = np.sqrt(((b - gap_point) ** 2).sum(axis=1))
        value, cells = _erp_dp(_cost_matrix(a, b), gap_a, gap_b, cutoffs[index])
        out[index] = value
        total += cells
    _count_cells(total, "erp")
    if thresholds is not None:
        _count_abandoned(int(np.isinf(out).sum()), "erp")
    return out


def edr_batch(trajectories_a: Sequence, trajectories_b: Sequence,
              epsilon: float = 0.25, thresholds=None) -> np.ndarray:
    """Compiled EDR for a batch of trajectory pairs."""
    if epsilon <= 0:
        raise ValueError("epsilon must be positive")
    _check_batch(trajectories_a, trajectories_b)
    cutoffs = _cutoffs(thresholds, len(trajectories_a))
    arrays_a = [_contiguous(a) for a in _spatial_batch(trajectories_a)]
    arrays_b = [_contiguous(b) for b in _spatial_batch(trajectories_b)]
    out = np.empty(len(arrays_a))
    total = 0
    for index, (a, b) in enumerate(zip(arrays_a, arrays_b)):
        value, cells = _edr_dp(_match_matrix(a, b, epsilon), cutoffs[index])
        out[index] = value
        total += cells
    _count_cells(total, "edr")
    if thresholds is not None:
        _count_abandoned(int(np.isinf(out).sum()), "edr")
    return out


def lcss_batch(trajectories_a: Sequence, trajectories_b: Sequence,
               epsilon: float = 0.25, thresholds=None) -> np.ndarray:
    """Compiled LCSS (``1 - LCSS/min(n, m)``) for a batch of trajectory pairs."""
    if epsilon <= 0:
        raise ValueError("epsilon must be positive")
    _check_batch(trajectories_a, trajectories_b)
    cutoffs = _cutoffs(thresholds, len(trajectories_a))
    arrays_a = [_contiguous(a) for a in _spatial_batch(trajectories_a)]
    arrays_b = [_contiguous(b) for b in _spatial_batch(trajectories_b)]
    out = np.empty(len(arrays_a))
    total = 0
    for index, (a, b) in enumerate(zip(arrays_a, arrays_b)):
        value, cells = _lcss_dp(_match_matrix(a, b, epsilon), cutoffs[index])
        out[index] = value
        total += cells
    _count_cells(total, "lcss")
    if thresholds is not None:
        _count_abandoned(int(np.isinf(out).sum()), "lcss")
    return out


def frechet_batch(trajectories_a: Sequence, trajectories_b: Sequence,
                  thresholds=None) -> np.ndarray:
    """Compiled discrete Fréchet for a batch of trajectory pairs."""
    _check_batch(trajectories_a, trajectories_b)
    cutoffs = _cutoffs(thresholds, len(trajectories_a))
    arrays_a = [_contiguous(a) for a in _spatial_batch(trajectories_a)]
    arrays_b = [_contiguous(b) for b in _spatial_batch(trajectories_b)]
    out = np.empty(len(arrays_a))
    total = 0
    for index, (a, b) in enumerate(zip(arrays_a, arrays_b)):
        value, cells = _frechet_dp(_cost_matrix(a, b), cutoffs[index])
        out[index] = value
        total += cells
    _count_cells(total, "frechet")
    if thresholds is not None:
        _count_abandoned(int(np.isinf(out).sum()), "frechet")
    return out


def dita_batch(trajectories_a: Sequence, trajectories_b: Sequence,
               lambda_spatial: float = 0.5, time_scale: float = 1.0,
               thresholds=None) -> np.ndarray:
    """Compiled DITA (DTW recurrence over blended spatio-temporal costs)."""
    _check_batch(trajectories_a, trajectories_b)
    cutoffs = _cutoffs(thresholds, len(trajectories_a))
    arrays_a = [_contiguous(a) for a in
                _spatiotemporal_batch(trajectories_a, "dita_distance")]
    arrays_b = [_contiguous(b) for b in
                _spatiotemporal_batch(trajectories_b, "dita_distance")]
    out = np.empty(len(arrays_a))
    total = 0
    for index, (a, b) in enumerate(zip(arrays_a, arrays_b)):
        cost = _st_cost_matrix(a, b, float(lambda_spatial), float(time_scale))
        value, cells = _dtw_dp(cost, -1, cutoffs[index])
        out[index] = value
        total += cells
    _count_cells(total, "dita")
    if thresholds is not None:
        _count_abandoned(int(np.isinf(out).sum()), "dita")
    return out


def hausdorff_batch(trajectories_a: Sequence, trajectories_b: Sequence,
                    thresholds=None) -> np.ndarray:
    """Compiled symmetric Hausdorff (abandons once the running max exceeds τ)."""
    _check_batch(trajectories_a, trajectories_b)
    cutoffs = _cutoffs(thresholds, len(trajectories_a))
    arrays_a = [_contiguous(a) for a in _spatial_batch(trajectories_a)]
    arrays_b = [_contiguous(b) for b in _spatial_batch(trajectories_b)]
    out = np.array([
        _hausdorff_pair(a, b, cutoffs[index])
        for index, (a, b) in enumerate(zip(arrays_a, arrays_b))
    ])
    if thresholds is not None:
        _count_abandoned(int(np.isinf(out).sum()), "hausdorff")
    return out


def sspd_batch(trajectories_a: Sequence, trajectories_b: Sequence,
               thresholds=None) -> np.ndarray:
    """Compiled SSPD.  ``thresholds`` accepted but unused (means bound weakly);
    a finite result is always the exact distance, which honours the contract."""
    _check_batch(trajectories_a, trajectories_b)
    _as_thresholds(thresholds, len(trajectories_a))  # validate shape only
    arrays_a = [_contiguous(a) for a in _spatial_batch(trajectories_a)]
    arrays_b = [_contiguous(b) for b in _spatial_batch(trajectories_b)]
    return np.array([_sspd_pair(a, b) for a, b in zip(arrays_a, arrays_b)])


def tp_batch(trajectories_a: Sequence, trajectories_b: Sequence,
             lambda_spatial: float = 0.5, time_scale: float = 1.0,
             thresholds=None) -> np.ndarray:
    """Compiled TP.  ``thresholds`` accepted but unused (mean-based measure)."""
    if not 0.0 <= lambda_spatial <= 1.0:
        raise ValueError("lambda_spatial must lie in [0, 1]")
    _check_batch(trajectories_a, trajectories_b)
    _as_thresholds(thresholds, len(trajectories_a))  # validate shape only
    arrays_a = [_contiguous(a) for a in
                _spatiotemporal_batch(trajectories_a, "tp_distance")]
    arrays_b = [_contiguous(b) for b in
                _spatiotemporal_batch(trajectories_b, "tp_distance")]
    return np.array([
        _tp_pair(a, b, float(lambda_spatial), float(time_scale))
        for a, b in zip(arrays_a, arrays_b)
    ])


# ----------------------------------------------------------- per-pair facade

def _single(batch_func, trajectory_a, trajectory_b, threshold=None, **kwargs):
    thresholds = None if threshold is None else [threshold]
    return float(batch_func([trajectory_a], [trajectory_b],
                            thresholds=thresholds, **kwargs)[0])


def dtw_pair(trajectory_a, trajectory_b, band=None, threshold=None) -> float:
    return _single(dtw_batch, trajectory_a, trajectory_b, threshold, band=band)


def erp_pair(trajectory_a, trajectory_b, gap=None, threshold=None) -> float:
    return _single(erp_batch, trajectory_a, trajectory_b, threshold, gap=gap)


def edr_pair(trajectory_a, trajectory_b, epsilon: float = 0.25,
             threshold=None) -> float:
    return _single(edr_batch, trajectory_a, trajectory_b, threshold, epsilon=epsilon)


def lcss_pair(trajectory_a, trajectory_b, epsilon: float = 0.25,
              threshold=None) -> float:
    return _single(lcss_batch, trajectory_a, trajectory_b, threshold, epsilon=epsilon)


def frechet_pair(trajectory_a, trajectory_b, threshold=None) -> float:
    return _single(frechet_batch, trajectory_a, trajectory_b, threshold)


def dita_pair(trajectory_a, trajectory_b, lambda_spatial: float = 0.5,
              time_scale: float = 1.0, threshold=None) -> float:
    return _single(dita_batch, trajectory_a, trajectory_b, threshold,
                   lambda_spatial=lambda_spatial, time_scale=time_scale)


def hausdorff_pair(trajectory_a, trajectory_b, threshold=None) -> float:
    return _single(hausdorff_batch, trajectory_a, trajectory_b, threshold)


def sspd_pair(trajectory_a, trajectory_b, threshold=None) -> float:
    return _single(sspd_batch, trajectory_a, trajectory_b, threshold)


def tp_pair(trajectory_a, trajectory_b, lambda_spatial: float = 0.5,
            time_scale: float = 1.0, threshold=None) -> float:
    return _single(tp_batch, trajectory_a, trajectory_b, threshold,
                   lambda_spatial=lambda_spatial, time_scale=time_scale)


#: Batch kernels by measure name — the numba backend's kernel table.
BATCH_KERNELS = {
    "dtw": dtw_batch,
    "erp": erp_batch,
    "edr": edr_batch,
    "lcss": lcss_batch,
    "frechet": frechet_batch,
    "dita": dita_batch,
    "hausdorff": hausdorff_batch,
    "sspd": sspd_batch,
    "tp": tp_batch,
}

#: Per-pair kernels by measure name (the serial strategy's callables).
PAIR_KERNELS = {
    "dtw": dtw_pair,
    "erp": erp_pair,
    "edr": edr_pair,
    "lcss": lcss_pair,
    "frechet": frechet_pair,
    "dita": dita_pair,
    "hausdorff": hausdorff_pair,
    "sspd": sspd_pair,
    "tp": tp_pair,
}

#: Measures whose compiled kernels honour the in-kernel abandoning contract
#: (SSPD and TP accept ``thresholds`` but always compute exactly).
THRESHOLD_MEASURES = frozenset({
    "dtw", "erp", "edr", "lcss", "frechet", "dita", "hausdorff",
})


# --------------------------------------------------- streaming frontier extends
#
# Prefix-incremental twins of :mod:`repro.engine.stream_kernels`: extend a
# pair's DP frontier ``column`` in place by the columns of ``b_new``, using the
# rolling-diagonal trick.  Cell-for-cell the same IEEE arithmetic and operand
# order as both the reference loops and the batch kernels, so a frontier
# extended here is bitwise identical to a from-scratch kernel call on the
# extended window.  Each returns the number of DP cells computed; the
# StreamingEngine folds the counts into the ``stream.*`` registry counters.

@njit(cache=True)
def _stream_dtw(a, b_new, column):
    n, p, d = a.shape[0], b_new.shape[0], a.shape[1]
    for jj in range(p):
        diag = column[0]
        column[0] = _INF
        for i in range(1, n + 1):
            s = 0.0
            for ax in range(d):
                delta = a[i - 1, ax] - b_new[jj, ax]
                s += delta * delta
            left = column[i]
            best = column[i - 1]
            if left < best:
                best = left
            if diag < best:
                best = diag
            column[i] = best + np.sqrt(s)
            diag = left
    return n * p


@njit(cache=True)
def _stream_dtw_banded(a, b_new, column, m_prev, radius):
    n, p, d = a.shape[0], b_new.shape[0], a.shape[1]
    cells = 0
    for jj in range(p):
        j = m_prev + jj + 1
        lo = j - radius if j - radius > 1 else 1
        hi = j + radius if j + radius < n else n
        diag = column[0]
        column[0] = _INF
        for i in range(1, n + 1):
            left = column[i]
            if lo <= i <= hi:
                s = 0.0
                for ax in range(d):
                    delta = a[i - 1, ax] - b_new[jj, ax]
                    s += delta * delta
                best = column[i - 1]
                if left < best:
                    best = left
                if diag < best:
                    best = diag
                column[i] = best + np.sqrt(s)
                cells += 1
            else:
                column[i] = _INF
            diag = left
    return cells


@njit(cache=True)
def _stream_erp(a, b_new, column, gap_cost_a, gap_x, gap_y):
    n, p, d = a.shape[0], b_new.shape[0], a.shape[1]
    for jj in range(p):
        dx = b_new[jj, 0] - gap_x
        dy = b_new[jj, 1] - gap_y
        gap_b = np.sqrt(dx * dx + dy * dy)
        diag = column[0]
        column[0] = column[0] + gap_b
        for i in range(1, n + 1):
            s = 0.0
            for ax in range(d):
                delta = a[i - 1, ax] - b_new[jj, ax]
                s += delta * delta
            left = column[i]
            value = diag + np.sqrt(s)
            delete_a = column[i - 1] + gap_cost_a[i - 1]
            delete_b = left + gap_b
            if delete_b < delete_a:
                delete_a = delete_b
            if delete_a < value:
                value = delete_a
            column[i] = value
            diag = left
    return n * p


@njit(cache=True)
def _stream_edr(a, b_new, column, epsilon):
    n, p, d = a.shape[0], b_new.shape[0], a.shape[1]
    for jj in range(p):
        diag = column[0]
        column[0] = column[0] + 1.0
        for i in range(1, n + 1):
            match = True
            for ax in range(d):
                if abs(a[i - 1, ax] - b_new[jj, ax]) > epsilon:
                    match = False
                    break
            left = column[i]
            value = diag if match else diag + 1.0
            gap = column[i - 1]
            if left < gap:
                gap = left
            gap = gap + 1.0
            if gap < value:
                value = gap
            column[i] = value
            diag = left
    return n * p


@njit(cache=True)
def _stream_lcss(a, b_new, column, epsilon):
    n, p, d = a.shape[0], b_new.shape[0], a.shape[1]
    for jj in range(p):
        diag = column[0]
        for i in range(1, n + 1):
            match = True
            for ax in range(d):
                if abs(a[i - 1, ax] - b_new[jj, ax]) > epsilon:
                    match = False
                    break
            left = column[i]
            if match:
                column[i] = diag + 1.0
            elif column[i - 1] > left:
                column[i] = column[i - 1]
            diag = left
    return n * p


@njit(cache=True)
def _stream_frechet(a, b_new, column):
    n, p, d = a.shape[0], b_new.shape[0], a.shape[1]
    for jj in range(p):
        diag = column[0]
        column[0] = _INF
        for i in range(1, n + 1):
            s = 0.0
            for ax in range(d):
                delta = a[i - 1, ax] - b_new[jj, ax]
                s += delta * delta
            cost = np.sqrt(s)
            left = column[i]
            reachable = column[i - 1]
            if left < reachable:
                reachable = left
            if diag < reachable:
                reachable = diag
            column[i] = cost if cost > reachable else reachable
            diag = left
    return n * p


@njit(cache=True)
def _stream_dita(a, b_new, column, lambda_spatial, time_scale):
    n, p = a.shape[0], b_new.shape[0]
    for jj in range(p):
        diag = column[0]
        column[0] = _INF
        for i in range(1, n + 1):
            dx = a[i - 1, 0] - b_new[jj, 0]
            dy = a[i - 1, 1] - b_new[jj, 1]
            spatial = np.sqrt(dx * dx + dy * dy)
            temporal = abs(a[i - 1, 2] - b_new[jj, 2]) / time_scale
            cost = lambda_spatial * spatial + (1.0 - lambda_spatial) * temporal
            left = column[i]
            best = column[i - 1]
            if left < best:
                best = left
            if diag < best:
                best = diag
            column[i] = best + cost
            diag = left
    return n * p


#: Streaming frontier extensions by kernel key — the numba backend's
#: ``stream_kernel`` table (same keys as the reference map).
STREAM_KERNELS = {
    "dtw": _stream_dtw,
    "dtw_banded": _stream_dtw_banded,
    "erp": _stream_erp,
    "edr": _stream_edr,
    "lcss": _stream_lcss,
    "frechet": _stream_frechet,
    "dita": _stream_dita,
}


# -------------------------------------------------------------------- warm-up

_WARMED = False
_WARMUP_SECONDS = 0.0


def warmup_seconds() -> float:
    """JIT compile time paid by :func:`warmup` in this process (0.0 before/without)."""
    return _WARMUP_SECONDS


def warmup() -> float:
    """Compile every jitted kernel once (idempotent), returning the seconds spent.

    Called explicitly by benchmarks (so timed sections never include
    compilation) and once per pool worker when a compiled chunk first
    arrives.  Runs the raw jitted functions on two-point dummies — bypassing
    the wrappers keeps the process-local DP cell counter untouched.
    """
    global _WARMED, _WARMUP_SECONDS
    if _WARMED:
        return _WARMUP_SECONDS
    start = time.perf_counter()
    a = np.ascontiguousarray(np.array([[0.0, 0.0, 0.0], [1.0, 1.0, 1.0]]))
    s = np.ascontiguousarray(a[:, :2])
    cost = _cost_matrix(s, s)
    gaps = np.sqrt((s ** 2).sum(axis=1))
    match = _match_matrix(s, s, 0.25)
    for cutoff in (_INF, 1.0):
        _dtw_dp(cost, -1, cutoff)
        _dtw_dp(cost, 1, cutoff)
        _erp_dp(cost, gaps, gaps, cutoff)
        _edr_dp(match, cutoff)
        _lcss_dp(match, cutoff)
        _frechet_dp(cost, cutoff)
        _hausdorff_pair(s, s, cutoff)
    _st_cost_matrix(a, a, 0.5, 1.0)
    _sspd_pair(s, s)
    _tp_pair(a, a, 0.5, 1.0)
    column = np.array([0.0, _INF, _INF])
    _stream_dtw(s, s, column.copy())
    _stream_dtw_banded(s, s, column.copy(), 0, 1)
    _stream_erp(s, s, np.array([0.0, 1.0, 2.0]), gaps, 0.0, 0.0)
    _stream_edr(s, s, np.array([0.0, 1.0, 2.0]), 0.25)
    _stream_lcss(s, s, np.zeros(3), 0.25)
    _stream_frechet(s, s, column.copy())
    _stream_dita(a, a, column.copy(), 0.5, 1.0)
    _WARMUP_SECONDS = time.perf_counter() - start
    _WARMED = True
    return _WARMUP_SECONDS
