"""``repro.engine`` — pluggable compute engine for matrix construction.

The engine layer sits between the distance measures and everything that consumes
distance matrices (training, violation analysis, experiments).  It owns:

* :class:`MatrixEngine` — selectable execution strategies (``serial`` reference
  loop, ``chunked`` batched kernels, ``process`` pool) behind one API;
* vectorized wavefront kernels for the DP distances (:mod:`repro.engine.kernels`),
  registered alongside the reference implementations;
* a content-addressed matrix cache (:mod:`repro.engine.cache`).

``get_default_engine()`` returns the process-wide engine used by the thin wrappers
in :mod:`repro.distances.matrix`.
"""

from .cache import MatrixCache, cache_key, fingerprint_trajectories
from . import kernels  # noqa: F401 — importing registers the vectorized kernels
from .kernels import (
    available_batch_kernels,
    get_batch_kernel,
    dtw_batch,
    erp_batch,
    edr_batch,
    lcss_batch,
    frechet_batch,
    dita_batch,
    dp_cell_count,
    reset_dp_cell_count,
)
from .executor import (
    STRATEGIES,
    DEFAULT_CHUNK_BYTES,
    MatrixEngine,
    get_default_engine,
    set_default_engine,
)

__all__ = [
    "MatrixCache", "cache_key", "fingerprint_trajectories",
    "available_batch_kernels", "get_batch_kernel",
    "dtw_batch", "erp_batch", "edr_batch", "lcss_batch", "frechet_batch", "dita_batch",
    "dp_cell_count", "reset_dp_cell_count",
    "STRATEGIES", "DEFAULT_CHUNK_BYTES", "MatrixEngine",
    "get_default_engine", "set_default_engine",
]
