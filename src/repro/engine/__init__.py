"""``repro.engine`` — pluggable compute engine for matrix construction.

The engine layer sits between the distance measures and everything that consumes
distance matrices (training, violation analysis, experiments).  It owns:

* :class:`MatrixEngine` — selectable execution strategies (``serial`` reference
  loop, ``chunked`` batched kernels, ``process`` pool, zero-copy ``shared``
  pool) behind one API;
* vectorized wavefront kernels for the DP distances (:mod:`repro.engine.kernels`),
  registered alongside the reference implementations;
* a packed shared-memory trajectory arena and persistent worker pool backing
  the ``shared`` strategy (:mod:`repro.engine.shared`);
* a content-addressed matrix cache (:mod:`repro.engine.cache`);
* pluggable kernel backends (:mod:`repro.engine.backends`) — the numpy
  wavefront kernels as the bitwise reference plus compiled (numba) per-pair
  DP loops, selected via ``MatrixEngine(backend=...)``, :func:`set_backend`
  or ``REPRO_KERNEL_BACKEND``;
* a stateful :class:`StreamingEngine` (:mod:`repro.engine.streaming`) that
  persists per-pair DP frontiers so appending points to a live stream costs
  one new column per point instead of a full recompute, bitwise identical to
  the batch kernels.

``get_default_engine()`` returns the process-wide engine used by the thin wrappers
in :mod:`repro.distances.matrix`.
"""

from .cache import MatrixCache, cache_key, fingerprint_trajectories
from . import kernels  # noqa: F401 — importing registers the vectorized kernels
from .kernels import (
    available_batch_kernels,
    get_batch_kernel,
    dtw_batch,
    erp_batch,
    edr_batch,
    lcss_batch,
    frechet_batch,
    dita_batch,
    dp_cell_count,
    reset_dp_cell_count,
    add_dp_cell_count,
)
from .backends import (
    BACKEND_ENV,
    KernelBackend,
    active_backend,
    available_backends,
    backend_available,
    backend_provenance,
    register_backend,
    resolve_backend,
    set_backend,
)
from .executor import (
    STRATEGIES,
    DEFAULT_CHUNK_BYTES,
    CanonicalArrays,
    MatrixEngine,
    as_canonical_arrays,
    get_default_engine,
    set_default_engine,
)
from .shared import (
    ArenaCapacityError,
    TrajectoryArena,
    get_shared_pool,
    live_arena_names,
    reset_shared_pool,
    shared_memory_available,
    shutdown_shared_pools,
)
from .arena_cache import (
    ARENA_CACHE_ENV,
    DEFAULT_ARENA_CACHE_BYTES,
    ArenaCache,
    CachedArena,
    get_arena_cache,
    reset_arena_cache,
)
from .streaming import (
    CHECKPOINT_ENV,
    DEFAULT_CHECKPOINT,
    STREAM_MEASURES,
    StreamingEngine,
)

__all__ = [
    "MatrixCache", "cache_key", "fingerprint_trajectories",
    "available_batch_kernels", "get_batch_kernel",
    "dtw_batch", "erp_batch", "edr_batch", "lcss_batch", "frechet_batch", "dita_batch",
    "dp_cell_count", "reset_dp_cell_count", "add_dp_cell_count",
    "BACKEND_ENV", "KernelBackend", "active_backend", "available_backends",
    "backend_available", "backend_provenance", "register_backend",
    "resolve_backend", "set_backend",
    "STRATEGIES", "DEFAULT_CHUNK_BYTES", "MatrixEngine",
    "CanonicalArrays", "as_canonical_arrays",
    "get_default_engine", "set_default_engine",
    "ArenaCapacityError", "TrajectoryArena", "shared_memory_available",
    "get_shared_pool", "reset_shared_pool", "shutdown_shared_pools",
    "live_arena_names",
    "ARENA_CACHE_ENV", "DEFAULT_ARENA_CACHE_BYTES", "ArenaCache", "CachedArena",
    "get_arena_cache", "reset_arena_cache",
    "CHECKPOINT_ENV", "DEFAULT_CHECKPOINT", "STREAM_MEASURES", "StreamingEngine",
]
