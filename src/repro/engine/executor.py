"""Pluggable matrix-construction engine (serial / chunked / process strategies).

:class:`MatrixEngine` owns the two hot paths of every experiment: building pairwise
and cross distance matrices, and computing triplet violation statistics.  Layers
above (``distances.matrix``, ``experiments.runner``, ``eval.efficiency``) route
through an engine instance instead of looping in place, so execution policy is a
configuration knob rather than a code path:

* ``serial`` — one pair at a time; with ``use_kernels=False`` this is exactly the
  historical reference loop (it remains the baseline of the parity suite and the
  micro-benchmarks).
* ``chunked`` — pairs are grouped into chunks and each chunk is dispatched to a
  batched wavefront kernel (:mod:`repro.engine.kernels`) when the measure has one,
  which amortises NumPy call overhead across the whole chunk.
* ``process`` — chunks are distributed over a process pool; useful once datasets
  outgrow a single core.  Measures must be picklable (registered names always are).
* ``shared`` — the zero-copy variant of ``process``: a persistent worker pool
  (started lazily, reused across calls, shut down via ``atexit`` or
  :meth:`MatrixEngine.close`) fed through a packed
  :class:`~repro.engine.shared.TrajectoryArena` — every point array of the call
  published once through ``multiprocessing.shared_memory``, so each chunk ships
  only integer pair indices and threshold slices instead of pickled arrays.

Results are cached in an optional :class:`~repro.engine.cache.MatrixCache` keyed by
the trajectory content fingerprint, the measure and its kwargs.

Two knobs bound resource use per chunk: ``chunk_size`` caps the pair count, and
``chunk_bytes`` (environment variable ``REPRO_ENGINE_CHUNK_BYTES``) caps the
padded DP tensor footprint, so a handful of very long trajectories cannot blow
up peak RSS just because they share a chunk.  ``max_workers`` (environment
variable ``REPRO_ENGINE_MAX_WORKERS``) sizes the ``process``/``shared`` pools.
:meth:`MatrixEngine.pairs` additionally forwards per-pair ``thresholds`` into
the τ-aware batch kernels — the refinement half of the search subsystem's
bound → τ → in-kernel-abandon cascade.

Both multi-process strategies return per-chunk ``(values, dp_cells,
obs_delta)`` triples from their workers: the chunk's distances, the DP cells
its kernels computed, and a serialized :mod:`repro.obs` registry delta
covering *every* counter and histogram the chunk touched (the total and
per-measure cell counters among them).  The parent folds the deltas — and
only the deltas, so cells are never double-counted — after the whole
dispatch resolves, which keeps :func:`repro.engine.dp_cell_count` and the
telemetry snapshot equal under every strategy, including across a
``BrokenProcessPool`` retry.

Telemetry spans (on when ``REPRO_OBS`` says so) bracket each public call
(``engine.pairs`` / ``engine.pairwise`` / ``engine.cross``, tagged with
measure and strategy), the shared-memory arena pack (``engine.pack``), each
pool dispatch (``engine.dispatch``) and each batch-kernel invocation
(``engine.kernel``, tagged with measure and backend).
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from typing import Sequence

import numpy as np

from ..config import env_int
from ..distances.base import get_distance, get_kernel
from ..obs import registry as obs_registry
from ..obs import spans as obs_spans
from ..obs.spans import span
from ..resilience import faults
from ..resilience.errors import (
    DeadlineExceededError,
    RetryBudgetExceededError,
    TransientFaultError,
)
from ..resilience.breaker import DegradationLadder
from ..resilience.policy import ResiliencePolicy
from .backends import resolve_backend
from .cache import MatrixCache, cache_key, fingerprint_trajectories
from .kernels import dp_cell_count, get_batch_kernel

__all__ = ["MatrixEngine", "get_default_engine", "set_default_engine", "STRATEGIES",
           "DEFAULT_CHUNK_BYTES", "CanonicalArrays", "as_canonical_arrays"]

STRATEGIES = ("serial", "chunked", "process", "shared")

#: Strategies whose multi-chunk work leaves the process (and can therefore
#: fail in ways the resilience layer retries / degrades).
_POOL_STRATEGIES = ("process", "shared")

#: Worker-side failures a retry round may fix.  Everything else raised by a
#: chunk is a bug in the measure or the caller's data and propagates.
_RETRYABLE = (BrokenProcessPool, TransientFaultError)

_STRATEGY_ENV = "REPRO_ENGINE_STRATEGY"
_CHUNK_BYTES_ENV = "REPRO_ENGINE_CHUNK_BYTES"
_MAX_WORKERS_ENV = "REPRO_ENGINE_MAX_WORKERS"

#: Default cap on the padded per-chunk DP tensor footprint (cost + table), in
#: bytes.  Generous enough that typical workloads keep their full
#: ``chunk_size`` batches; very long trajectories split into smaller chunks
#: instead of blowing up peak RSS.
DEFAULT_CHUNK_BYTES = 64 * 1024 * 1024


def _default_chunk_bytes() -> int | None:
    """Chunk byte budget from ``REPRO_ENGINE_CHUNK_BYTES`` (≤ 0 disables)."""
    parsed = env_int(_CHUNK_BYTES_ENV, DEFAULT_CHUNK_BYTES)
    return parsed if parsed > 0 else None


def _default_max_workers() -> int:
    """Pool size from ``REPRO_ENGINE_MAX_WORKERS`` (must be a positive integer)."""
    return env_int(_MAX_WORKERS_ENV, min(4, os.cpu_count() or 1), minimum=1)


class CanonicalArrays(list):
    """A list of point arrays already in the engine's canonical form.

    Elements are guaranteed to be 2-D ``float64`` NumPy arrays, so
    :func:`_point_arrays` passes the list through untouched.  Long-lived
    holders of trajectory collections (:class:`~repro.search.TrajectoryIndex`)
    convert once at build time and tag the result, which stops every
    ``engine.pairs`` refinement batch from re-walking the same database
    trajectories through ``np.asarray``.
    """

    __slots__ = ()


def as_canonical_arrays(trajectories: Sequence) -> CanonicalArrays:
    """Convert a trajectory collection to canonical point arrays, once.

    Canonical means C-contiguous ``float64``: the compiled backends index
    row-major, so coercing here (``np.ascontiguousarray`` returns the input
    object unchanged when it already qualifies) guarantees jitted kernels
    never silently copy the same database trajectory on every refinement call.
    """
    if isinstance(trajectories, CanonicalArrays):
        return trajectories
    return CanonicalArrays(
        np.ascontiguousarray(getattr(t, "points", t), dtype=np.float64)
        for t in trajectories)


def _pair_function(measure, use_kernels: bool, backend=None):
    """Per-pair distance callable: vectorized kernel if allowed, else the reference.

    ``backend`` (a resolved :class:`~repro.engine.backends.KernelBackend`) gets
    first pick; a measure the backend does not cover falls through to the
    reference numpy kernel, then to the reference distance function.
    """
    if callable(measure):
        return measure
    if use_kernels:
        kernel = backend.pair_kernel(measure) if backend is not None else None
        if kernel is None:
            kernel = get_kernel(measure)
        if kernel is not None:
            return kernel
    return get_distance(measure)


def _chunk_values(list_a: Sequence, list_b: Sequence, measure, measure_kwargs: dict,
                  use_kernels: bool, thresholds=None, backend=None) -> np.ndarray:
    """Distances for aligned trajectory lists, batched when a batch kernel exists.

    ``thresholds`` (per-pair abandon thresholds) only reach a batch kernel —
    they are an optimisation contract, not a semantic one, so reference loops
    and callable measures simply compute the full distance.  ``backend`` is a
    resolved :class:`~repro.engine.backends.KernelBackend` (None means the
    numpy reference lookup, preserving the historical path).
    """
    if use_kernels and isinstance(measure, str):
        batch = backend.batch_kernel(measure) if backend is not None else None
        if batch is None:
            batch = get_batch_kernel(measure)
        if batch is not None:
            with span("engine.kernel", measure=measure,
                      backend=backend.name if backend is not None else "numpy"):
                if thresholds is not None:
                    return np.asarray(batch(list_a, list_b, thresholds=thresholds,
                                            **measure_kwargs), dtype=np.float64)
                return np.asarray(batch(list_a, list_b, **measure_kwargs),
                                  dtype=np.float64)
    func = _pair_function(measure, use_kernels, backend)
    return np.array([func(a, b, **measure_kwargs) for a, b in zip(list_a, list_b)],
                    dtype=np.float64)


def _worker_chunk(list_a, list_b, measure, measure_kwargs, use_kernels,
                  thresholds=None, backend=None, obs_mode=None,
                  fault_spec=None):
    """Top-level worker so the process strategy can pickle its tasks.

    Returns ``(values, dp_cells, obs_delta)``: the chunk's distances, the
    number of DP cells its kernels computed, and a picklable
    ``Registry.delta_since`` dict covering every telemetry instrument the
    chunk touched (including those same cells, split per measure, and any
    span histograms when observability is on).  The parent merges the delta —
    the ``dp_cells`` element is informational and must *not* be re-added, or
    cells would double-count.

    ``backend`` is the parent's *resolved backend name*; the worker re-resolves
    it on attach (non-strict: a worker without numba degrades to numpy with a
    warning instead of poisoning the pool) and pays JIT warm-up once per
    process, outside any timed chunk the caller measures.  ``obs_mode`` is the
    parent's observability mode at submit time: persistent pool workers may
    have been forked before the parent (or a test) switched modes, so each
    chunk re-aligns explicitly instead of trusting fork inheritance.
    ``fault_spec`` is the parent's :func:`repro.resilience.current_spec` token,
    threaded the same way so injected fault schedules reach pool workers.
    """
    faults.ensure_plan(fault_spec)
    faults.fault_point("worker_crash")
    faults.fault_point("slow_worker")
    if obs_mode is not None and obs_mode != obs_spans.obs_mode():
        obs_spans.set_obs_mode(obs_mode)
    resolved = None
    if backend is not None and use_kernels:
        resolved = resolve_backend(backend, strict=False)
        if resolved.compiled:
            resolved.warmup()
    registry = obs_registry.get_registry()
    mark = registry.checkpoint()
    before = dp_cell_count()
    values = _chunk_values(list_a, list_b, measure, measure_kwargs, use_kernels,
                           thresholds=thresholds, backend=resolved)
    return values, dp_cell_count() - before, registry.delta_since(mark)


class MatrixEngine:
    """Compute engine for distance matrices and batched violation statistics."""

    def __init__(self, strategy: str = "chunked", use_kernels: bool = True,
                 cache: MatrixCache | None = None, chunk_size: int = 128,
                 max_workers: int | None = None, chunk_bytes: int | None = None,
                 backend: str | None = None,
                 policy: ResiliencePolicy | None = None):
        if strategy not in STRATEGIES:
            raise ValueError(f"unknown strategy '{strategy}'; options: {STRATEGIES}")
        if chunk_size <= 0:
            raise ValueError("chunk_size must be positive")
        self.strategy = strategy
        # ``policy`` bounds failure handling on pool dispatch (deadline, retry
        # budget, backoff, degradation).  None reads REPRO_ENGINE_DEADLINE /
        # REPRO_ENGINE_RETRIES; the defaults subsume the historical behaviour
        # (one whole-dispatch BrokenProcessPool retry, no deadline).
        self.policy = policy if policy is not None else ResiliencePolicy.from_env()
        self._breaker = (DegradationLadder(self.policy.breaker_threshold,
                                           self.policy.probe_interval)
                         if self.policy.degrade else None)
        self.use_kernels = use_kernels
        # ``backend`` names the kernel backend ("numpy", "numba", "auto" or a
        # registered third party); None defers to set_backend() / the
        # REPRO_KERNEL_BACKEND environment variable / auto at call time, so a
        # long-lived engine follows process-wide backend switches.  An explicit
        # unknown name fails here; availability is checked when work runs.
        self.backend = backend
        if backend is not None:
            resolve_backend(backend, strict=False)  # validate the name early
        self.cache = cache
        self.chunk_size = chunk_size
        # ``max_workers`` sizes the process/shared pools.  None defers to
        # REPRO_ENGINE_MAX_WORKERS / min(4, cpu_count); an explicit value must
        # be positive (a silent fallback here once masked max_workers=0 bugs).
        if max_workers is None:
            self.max_workers = _default_max_workers()
        else:
            self.max_workers = int(max_workers)
            if self.max_workers <= 0:
                raise ValueError(f"max_workers must be a positive integer, "
                                 f"got {max_workers!r}")
        #: Dispatch accounting of the most recent multi-chunk run: strategy,
        #: chunk count, per-task payload bytes (the arrays a ``process`` pool
        #: pickles, or the index/threshold metadata ``shared`` ships) and the
        #: bytes published once through the shared-memory arena.  The parallel
        #: micro-benchmark reads this to record bytes-shipped reductions.
        self.last_dispatch: dict | None = None
        # ``chunk_bytes`` caps the padded DP tensor footprint of one chunk (an
        # adaptive memory budget complementing the fixed pair-count cap).  None
        # defers to REPRO_ENGINE_CHUNK_BYTES / the default; <= 0 disables the cap.
        if chunk_bytes is None:
            self.chunk_bytes: int | None = _default_chunk_bytes()
        else:
            self.chunk_bytes = int(chunk_bytes) if chunk_bytes > 0 else None

    def __repr__(self) -> str:
        return (f"MatrixEngine(strategy={self.strategy!r}, use_kernels={self.use_kernels}, "
                f"backend={self.backend or 'auto'!r}, "
                f"chunk_size={self.chunk_size}, chunk_bytes={self.chunk_bytes}, "
                f"cache={'on' if self.cache is not None else 'off'})")

    def resolved_backend(self):
        """The :class:`~repro.engine.backends.KernelBackend` this engine's next
        call will use (None when kernels are disabled entirely)."""
        if not self.use_kernels:
            return None
        return resolve_backend(self.backend)

    # ------------------------------------------------------------- matrix API
    def pairwise(self, trajectories: Sequence, measure="dtw", arena=None,
                 **measure_kwargs) -> np.ndarray:
        """Symmetric matrix of distances between every pair of ``trajectories``.

        ``arena`` — an optional pinned :class:`~repro.engine.arena_cache.CachedArena`
        already packing (some of) the trajectories; under the ``shared``
        strategy the dispatch reuses it instead of packing a per-call arena.
        """
        with span("engine.pairwise", measure=_measure_tag(measure),
                  strategy=self.strategy):
            arrays = _point_arrays(trajectories)
            n = len(arrays)
            key = self._cache_lookup_key(arrays, measure, measure_kwargs, "pairwise")
            if key is not None:
                cached = self.cache.get(key)
                if cached is not None:
                    return cached
            matrix = np.zeros((n, n))
            if n >= 2:
                rows, cols = np.triu_indices(n, k=1)
                values = self._run(arrays, arrays, rows, cols, measure,
                                   measure_kwargs, arena=arena)
                matrix[rows, cols] = values
                matrix[cols, rows] = values
            if key is not None:
                self.cache.put(key, matrix)
            return matrix

    def cross(self, queries: Sequence, database: Sequence, measure="dtw",
              arena=None, **measure_kwargs) -> np.ndarray:
        """Matrix of distances from every query to every database trajectory.

        ``arena`` — optional pinned cached arena, as on :meth:`pairwise`.
        """
        with span("engine.cross", measure=_measure_tag(measure),
                  strategy=self.strategy):
            query_arrays = _point_arrays(queries)
            database_arrays = _point_arrays(database)
            key = self._cache_lookup_key(query_arrays + database_arrays, measure,
                                         measure_kwargs, f"cross:{len(query_arrays)}")
            if key is not None:
                cached = self.cache.get(key)
                if cached is not None:
                    return cached
            matrix = np.zeros((len(query_arrays), len(database_arrays)))
            if matrix.size:
                grid = np.indices(matrix.shape)
                rows, cols = grid[0].ravel(), grid[1].ravel()
                values = self._run(query_arrays, database_arrays, rows, cols,
                                   measure, measure_kwargs, arena=arena)
                matrix[rows, cols] = values
            if key is not None:
                self.cache.put(key, matrix)
            return matrix

    def pairs(self, list_a: Sequence, list_b: Sequence, measure="dtw",
              thresholds=None, arena=None, **measure_kwargs) -> np.ndarray:
        """Distances for aligned trajectory pairs ``(list_a[i], list_b[i])``.

        This is the refinement primitive of the search subsystem: a top-k query
        refines a *subset* of candidates against one query, which is a ragged pair
        list rather than a full matrix.  Runs under the configured strategy and
        kernel policy; results are never cached (the pair lists are query-shaped
        and would only pollute the matrix cache).

        ``thresholds`` — optional ``(len(list_a),)`` per-pair abandon thresholds
        (the kNN heap's τ) forwarded into the batched wavefront kernels, which
        stop a pair's DP sweep — reporting ``+inf`` — as soon as its running
        lower bound strictly exceeds its threshold.  Chunked, process and
        shared strategies slice the vector per chunk (slices ride along to
        pool workers); the serial strategy threads one threshold per pair.  Measures
        without a batch kernel (and ``use_kernels=False``) compute full
        distances, so thresholds are purely an optimisation: a finite result is
        always the exact distance.

        ``arena`` — an optional pinned
        :class:`~repro.engine.arena_cache.CachedArena` that already packs the
        database side of the pairs (the serving fast path): under the
        ``shared`` strategy, multi-chunk dispatch resolves each array to its
        cached arena slot instead of packing a fresh per-call arena, and the
        few arrays outside the arena (typically just the query) ride along
        pickled.  Other strategies ignore it.
        """
        with span("engine.pairs", measure=_measure_tag(measure),
                  strategy=self.strategy):
            arrays_a = _point_arrays(list_a)
            arrays_b = _point_arrays(list_b)
            if len(arrays_a) != len(arrays_b):
                raise ValueError("pairs() needs aligned lists of equal length")
            if not arrays_a:
                return np.zeros(0)
            if thresholds is not None:
                thresholds = np.asarray(thresholds, dtype=np.float64)
                if thresholds.shape != (len(arrays_a),):
                    raise ValueError(f"thresholds must have shape ({len(arrays_a)},), "
                                     f"got {thresholds.shape}")
            positions = np.arange(len(arrays_a))
            return self._run(arrays_a, arrays_b, positions, positions, measure,
                             measure_kwargs, thresholds=thresholds, arena=arena)

    def violation_statistics(self, matrix: np.ndarray, max_triplets: int | None = None,
                             seed: int = 0, tolerance: float = 1e-12,
                             vectorized: bool = True) -> dict:
        """Triplet statistics (RV / ARVS) via the batched broadcasting path.

        Independent of ``use_kernels``: that flag selects distance kernels, which
        the triplet statistics never touch.  Pass ``vectorized=False`` to force the
        scalar reference walk.
        """
        from ..violation.metrics import violation_report

        return violation_report(matrix, max_triplets=max_triplets, seed=seed,
                                tolerance=tolerance, vectorized=vectorized)

    # --------------------------------------------------------------- internals
    def _cache_lookup_key(self, arrays, measure, measure_kwargs, kind) -> str | None:
        # Callable measures are not cached: their identity cannot be fingerprinted
        # reliably (two different lambdas share a qualname).
        if self.cache is None or not isinstance(measure, str):
            return None
        return cache_key(fingerprint_trajectories(arrays), measure, measure_kwargs, kind)

    def _plan_chunks(self, order, len_a, len_b) -> list[np.ndarray]:
        """Split the size-sorted pair order into chunks under both caps.

        A chunk closes at ``chunk_size`` pairs or as soon as adding the next
        pair would push the padded DP tensor footprint — cost plus table, both
        float64, every pair padded to the chunk's maximum lengths — past
        ``chunk_bytes``.  The estimate is ``16·count·(max_n+1)·(max_m+1)``;
        chunk membership only changes padding, never any pair's arithmetic.
        ``len_a``/``len_b`` are the per-pair trajectory lengths in the same
        (unsorted) indexing as ``order``.
        """
        if self.chunk_bytes is None:
            return [order[start:start + self.chunk_size]
                    for start in range(0, len(order), self.chunk_size)]
        sorted_n = len_a[order]
        sorted_m = len_b[order]
        chunks = []
        start = 0
        while start < len(order):
            cap = min(start + self.chunk_size, len(order))
            window_n = np.maximum.accumulate(sorted_n[start:cap])
            window_m = np.maximum.accumulate(sorted_m[start:cap])
            counts = np.arange(1, cap - start + 1)
            projected = 16 * counts * (window_n + 1) * (window_m + 1)
            over = projected > self.chunk_bytes
            # First pair over budget closes the chunk; a chunk always takes at
            # least one pair, however tight the budget.
            take = max(int(np.argmax(over)), 1) if over.any() else cap - start
            chunks.append(order[start:start + take])
            start += take
        return chunks

    def _run_serial(self, arrays_a, arrays_b, rows, cols, measure,
                    measure_kwargs, thresholds, backend) -> np.ndarray:
        """The one-pair-at-a-time reference path (and the ladder's last rung)."""
        func = _pair_function(measure, self.use_kernels, backend)
        # The per-pair kernels expose abandoning as a scalar threshold=;
        # only a measure whose *resolved* callable came from a backend that
        # declares threshold support for it is known to honour the keyword
        # — the reference fallback must never see it.
        if (thresholds is not None and isinstance(measure, str)
                and backend is not None
                and func is backend.pair_kernel(measure)
                and backend.supports_threshold(measure)):
            return np.array([
                func(arrays_a[i], arrays_b[j],
                     threshold=float(thresholds[index]), **measure_kwargs)
                for index, (i, j) in enumerate(zip(rows, cols))
            ], dtype=np.float64)
        return np.array([func(arrays_a[i], arrays_b[j], **measure_kwargs)
                         for i, j in zip(rows, cols)], dtype=np.float64)

    def _run(self, arrays_a, arrays_b, rows, cols, measure, measure_kwargs,
             thresholds=None, arena=None) -> np.ndarray:
        # Resolve the kernel backend once per run (cheap dict lookups): the
        # engine's explicit backend, else set_backend()/env/auto.  Kernel-less
        # engines never resolve — the reference loop is backend-free.
        backend = resolve_backend(self.backend) if self.use_kernels else None
        # The degradation ladder may substitute a humbler strategy than the
        # one requested; every rung is bit-identical, so this is invisible in
        # the values (the one-time RuntimeWarning and resilience.* counters
        # are the record).
        requested = self.strategy
        breaker = self._breaker if requested in _POOL_STRATEGIES else None
        effective = (breaker.effective_strategy(requested)
                     if breaker is not None else requested)
        if effective == "serial":
            return self._run_serial(arrays_a, arrays_b, rows, cols, measure,
                                    measure_kwargs, thresholds, backend)
        # Group pairs of similar size into the same chunk: the batch kernels pad every
        # pair in a chunk to the chunk's maximum lengths, so sorting bounds the wasted
        # padded work regardless of how skewed the length distribution is.
        len_a = np.fromiter((len(arrays_a[i]) for i in rows), dtype=np.int64,
                            count=len(rows))
        len_b = np.fromiter((len(arrays_b[j]) for j in cols), dtype=np.int64,
                            count=len(rows))
        order = np.argsort(len_a * len_b, kind="stable")
        plan = self._plan_chunks(order, len_a, len_b)

        def inline_chunk(positions) -> np.ndarray:
            return _chunk_values([arrays_a[rows[p]] for p in positions],
                                 [arrays_b[cols[p]] for p in positions],
                                 measure, measure_kwargs, self.use_kernels,
                                 thresholds=None if thresholds is None
                                 else thresholds[positions], backend=backend)

        if effective == "chunked" or len(plan) == 1:
            # Single-chunk work never leaves the process, whatever the strategy:
            # a pool round-trip (let alone an arena) cannot pay for itself on one
            # chunk, and small ``pairs`` refinement batches hit this constantly.
            parts = [(positions, inline_chunk(positions)) for positions in plan]
            if breaker is not None and effective != requested and len(plan) > 1:
                # A degraded in-process call counts toward the probe streak:
                # multi-chunk calls are the ones that would exercise the pool
                # again after recovery.
                breaker.record_success()
        else:
            try:
                if effective == "shared":
                    parts = self._run_shared(arrays_a, arrays_b, rows, cols,
                                             plan, measure, measure_kwargs,
                                             thresholds, backend, packed=arena)
                else:
                    parts = self._run_process(arrays_a, arrays_b, rows, cols,
                                              plan, measure, measure_kwargs,
                                              thresholds, backend)
            except RetryBudgetExceededError as error:
                # The budget drained.  Fold the deltas of the chunks that DID
                # land (their work is real and must count exactly once),
                # then either surface the failure or — with the ladder on —
                # finish the unfinished chunks in-process and step down.
                registry = obs_registry.get_registry()
                for _positions, _values, delta in error.partial:
                    registry.merge_delta(delta)
                if breaker is None:
                    raise
                breaker.record_failure(requested)
                registry.counter("resilience.fallback_chunks").add(
                    len(error.pending))
                parts = [(positions, values)
                         for positions, values, _delta in error.partial]
                parts.extend((positions, inline_chunk(positions))
                             for positions in error.pending)
                if self.last_dispatch is not None:
                    self.last_dispatch["fallback_chunks"] = len(error.pending)
            else:
                if breaker is not None:
                    breaker.record_success()
        values = np.zeros(len(rows))
        for positions, part in parts:
            values[positions] = part
        return values

    def _run_process(self, arrays_a, arrays_b, rows, cols, plan, measure,
                     measure_kwargs, thresholds,
                     backend=None) -> list[tuple[np.ndarray, np.ndarray]]:
        """Per-call pool, pickled per-chunk arrays (the pre-arena baseline)."""
        backend_name = None if backend is None else backend.name
        mode = obs_spans.obs_mode()
        fault_spec = faults.current_spec()
        chunks = [
            (positions,
             [arrays_a[rows[p]] for p in positions],
             [arrays_b[cols[p]] for p in positions],
             None if thresholds is None else thresholds[positions])
            for positions in plan
        ]
        payload = sum(a.nbytes for _, list_a, _, _ in chunks for a in list_a)
        payload += sum(b.nbytes for _, _, list_b, _ in chunks for b in list_b)
        payload += sum(taus.nbytes for _, _, _, taus in chunks if taus is not None)
        self.last_dispatch = {"strategy": "process", "num_chunks": len(chunks),
                              "payload_bytes": int(payload), "arena_bytes": 0,
                              "arena_reused": False,
                              "kernel_backend": backend_name}
        tasks = [(positions,
                  (_worker_chunk, list_a, list_b, measure, measure_kwargs,
                   self.use_kernels, taus, backend_name, mode, fault_spec))
                 for positions, list_a, list_b, taus in chunks]
        # The per-call pool is replaced (not just retried) on breakage; the
        # last surviving pool is drained in the ``finally``.
        state: dict = {"pool": None}

        def get_pool():
            if state["pool"] is None:
                state["pool"] = ProcessPoolExecutor(max_workers=self.max_workers)
            return state["pool"]

        def reset_pool():
            pool, state["pool"] = state["pool"], None
            if pool is not None:
                pool.shutdown(wait=False, cancel_futures=True)

        try:
            return self._dispatch_resilient(tasks, get_pool, reset_pool,
                                            "process")
        finally:
            if state["pool"] is not None:
                state["pool"].shutdown(wait=True, cancel_futures=True)

    def _run_shared(self, arrays_a, arrays_b, rows, cols, plan, measure,
                    measure_kwargs, thresholds, backend=None,
                    packed=None) -> list[tuple[np.ndarray, np.ndarray]]:
        """Persistent pool fed through a packed shared-memory arena.

        With ``packed`` (a pinned :class:`~repro.engine.arena_cache.CachedArena`
        covering the database side) the dispatch reuses the cached segment:
        slots resolve through the entry's identity map, arrays outside the
        arena ship pickled as ``extras`` addressed by negative slot indices,
        and nothing is packed or unlinked here — the cache owns the segment's
        lifetime and the pin keeps it valid across every chunk and across a
        ``BrokenProcessPool`` retry.

        Otherwise a per-call arena publishes every point array of this call
        once; chunks ship only ``(arena name, pair-index vectors, threshold
        slice)``, and the arena is closed *and unlinked* in a ``finally``
        block after every future has settled, so worker exceptions cannot
        leak shared memory.  A pool whose worker died (``BrokenProcessPool``)
        is discarded and the *unfinished* chunks re-dispatched on a fresh pool
        within the policy's retry budget — the arena stays valid across every
        round.  When ``multiprocessing.shared_memory`` is missing entirely,
        fall back to pickled per-chunk dispatch, still over the persistent
        pool.
        """
        from . import shared

        if not shared.shared_memory_available():
            shared.warn_shared_memory_unavailable()
            return self._dispatch_shared(plan, None, rows, cols, None, None,
                                         measure, measure_kwargs, thresholds,
                                         fallback_a=arrays_a, fallback_b=arrays_b,
                                         backend=backend)
        if packed is not None:
            extras: list = []
            extra_slots: dict[int, int] = {}

            def cached_slot_table(arrays) -> np.ndarray:
                table = np.empty(len(arrays), dtype=np.int64)
                for position, array in enumerate(arrays):
                    index = packed.slot_of(array)
                    if index is None:
                        key = id(array)
                        extra = extra_slots.get(key)
                        if extra is None:
                            extra = extra_slots[key] = len(extras)
                            extras.append(array)
                        index = -1 - extra
                    table[position] = index
                return table

            slot_a = cached_slot_table(arrays_a)
            slot_b = slot_a if arrays_b is arrays_a else cached_slot_table(arrays_b)
            obs_registry.get_registry().counter("engine.arena.reused_dispatches").add(1)
            return self._dispatch_shared(plan, packed.arena, rows, cols,
                                         slot_a, slot_b, measure, measure_kwargs,
                                         thresholds, backend=backend,
                                         extras=extras, reused=True)
        # Deduplicate by object identity so an array appearing many times (the
        # repeated query of a ``pairs`` refinement batch, or both sides of a
        # pairwise call) occupies a single arena slot.
        arena_arrays: list = []
        slots: dict[int, int] = {}

        def slot_table(arrays) -> np.ndarray:
            table = np.empty(len(arrays), dtype=np.int64)
            for position, array in enumerate(arrays):
                key = id(array)
                index = slots.get(key)
                if index is None:
                    index = slots[key] = len(arena_arrays)
                    arena_arrays.append(array)
                table[position] = index
            return table

        with span("engine.pack", strategy="shared"):
            slot_a = slot_table(arrays_a)
            slot_b = slot_a if arrays_b is arrays_a else slot_table(arrays_b)
            arena_cm = shared.TrajectoryArena(arena_arrays)
        with arena_cm as arena:
            return self._dispatch_shared(plan, arena, rows, cols, slot_a, slot_b,
                                         measure, measure_kwargs, thresholds,
                                         backend=backend)

    def _dispatch_shared(self, plan, arena, rows, cols, slot_a, slot_b, measure,
                         measure_kwargs, thresholds, fallback_a=None,
                         fallback_b=None, backend=None, extras=None,
                         reused=False) -> list[tuple[np.ndarray, np.ndarray]]:
        from . import shared

        backend_name = None if backend is None else backend.name
        mode = obs_spans.obs_mode()
        fault_spec = faults.current_spec()
        extra_list = extras if extras else None
        extras_bytes = sum(a.nbytes for a in extras) if extras else 0
        payload = 0
        tasks = []
        for positions in plan:
            taus = None if thresholds is None else thresholds[positions]
            if arena is not None:
                idx_a = slot_a[rows[positions]]
                idx_b = slot_b[cols[positions]]
                args = (shared.shared_worker_chunk, arena.name, idx_a, idx_b,
                        measure, measure_kwargs, self.use_kernels, taus,
                        backend_name, mode, extra_list, fault_spec)
                payload += idx_a.nbytes + idx_b.nbytes + extras_bytes
            else:
                list_a = [fallback_a[rows[p]] for p in positions]
                list_b = [fallback_b[cols[p]] for p in positions]
                args = (_worker_chunk, list_a, list_b, measure, measure_kwargs,
                        self.use_kernels, taus, backend_name, mode, fault_spec)
                payload += sum(a.nbytes for a in list_a) + sum(b.nbytes for b in list_b)
            payload += 0 if taus is None else taus.nbytes
            tasks.append((positions, args))
        # ``arena_bytes`` counts bytes this call *published*: a reused cached
        # arena publishes nothing new, which is exactly the saving the serving
        # benchmark measures.
        self.last_dispatch = {"strategy": "shared", "num_chunks": len(tasks),
                              "payload_bytes": int(payload),
                              "arena_bytes": (0 if arena is None or reused
                                              else arena.size),
                              "arena_reused": bool(reused),
                              "kernel_backend": backend_name}
        return self._dispatch_resilient(
            tasks,
            lambda: shared.get_shared_pool(self.max_workers),
            lambda: shared.reset_shared_pool(self.max_workers),
            "shared")

    def _dispatch_resilient(self, tasks, get_pool, reset_pool,
                            strategy: str) -> list[tuple[np.ndarray, np.ndarray]]:
        """Submit chunk tasks with deadline, retry-budget and exactly-once folds.

        ``tasks`` is a list of ``(positions, submit_args)``.  Each round
        submits only the chunks without a result yet, then waits for *every*
        submitted future to settle (no stray running workers survive this
        call, which is what lets a caller unlink a per-call arena the moment
        it returns or raises):

        * all futures succeeded → done; fold one telemetry delta per chunk.
        * a retryable failure (``BrokenProcessPool``, ``TransientFaultError``)
          → burn one round of the policy's retry budget, reset the pool if it
          broke, sleep the deterministic backoff, re-dispatch the remainder.
          Completed chunks keep their results — they are never re-run, so
          their deltas fold exactly once however many rounds the rest takes.
        * any other worker exception is a bug and propagates immediately.
        * the policy deadline elapsing raises
          :class:`~repro.resilience.DeadlineExceededError` (cancelling what
          has not started and waiting out what has).  Deadlines are never
          retried.

        Draining the budget raises :class:`~repro.resilience.
        RetryBudgetExceededError` carrying the completed chunks, so ``_run``'s
        ladder fallback finishes only the missing ones in-process.
        """
        policy = self.policy
        registry = obs_registry.get_registry()
        started = time.monotonic()
        deadline_at = (None if policy.deadline is None
                       else started + policy.deadline)
        results: dict[int, tuple] = {}
        attempt = 0
        while True:
            pending = [i for i in range(len(tasks)) if i not in results]
            futures: dict[int, object] = {}
            retry_error = None
            try:
                pool = get_pool()
                with span("engine.dispatch", strategy=strategy):
                    try:
                        for i in pending:
                            futures[i] = pool.submit(*tasks[i][1])
                    except BrokenProcessPool as error:
                        # The pool died before accepting the whole round; the
                        # futures that were accepted settle below, the round
                        # retries as usual.
                        retry_error = error
                    if futures:
                        timeout = (None if deadline_at is None else
                                   max(deadline_at - time.monotonic(), 0.0))
                        _done, not_done = wait(list(futures.values()),
                                               timeout=timeout)
                        if not_done:
                            raise DeadlineExceededError(
                                policy.deadline, time.monotonic() - started)
            except DeadlineExceededError:
                self._settle(futures.values())
                registry.counter("resilience.deadline_hits").add(1)
                if self.last_dispatch is not None:
                    self.last_dispatch["retries"] = attempt
                raise
            except BaseException:
                self._settle(futures.values())
                raise
            # Every submitted future has settled: harvest and classify.
            fatal = None
            for i, future in futures.items():
                error = future.exception()
                if error is None:
                    positions = tasks[i][0]
                    values, _cells, delta = future.result()
                    results[i] = (positions, values, delta)
                elif isinstance(error, _RETRYABLE):
                    retry_error = retry_error or error
                else:
                    fatal = fatal or error
            if fatal is not None:
                raise fatal
            if retry_error is None:
                break
            if isinstance(retry_error, BrokenProcessPool):
                reset_pool()
            attempt += 1
            registry.counter("resilience.retries").add(1)
            if attempt > policy.max_retries:
                if self.last_dispatch is not None:
                    self.last_dispatch["retries"] = attempt
                pending_positions = [tasks[i][0] for i in range(len(tasks))
                                     if i not in results]
                raise RetryBudgetExceededError(
                    policy.max_retries, pending_positions,
                    [results[i] for i in sorted(results)], cause=retry_error)
            delay = policy.backoff_delay(attempt)
            if deadline_at is not None:
                room = deadline_at - time.monotonic()
                if room <= 0:
                    registry.counter("resilience.deadline_hits").add(1)
                    if self.last_dispatch is not None:
                        self.last_dispatch["retries"] = attempt
                    raise DeadlineExceededError(
                        policy.deadline, time.monotonic() - started)
                delay = min(delay, room)
            if delay > 0:
                time.sleep(delay)
        # Success: fold one delta per chunk, exactly once, after the whole
        # dispatch resolved — ``dp_cells`` is informational and never re-added.
        if self.last_dispatch is not None:
            self.last_dispatch["retries"] = attempt
        parts = []
        for i in sorted(results):
            positions, values, delta = results[i]
            parts.append((positions, values))
            registry.merge_delta(delta)
        return parts

    @staticmethod
    def _settle(futures) -> None:
        """Cancel what has not started and wait out the rest (error paths only).

        The shared arena must outlive every running worker chunk; on the first
        failure the remaining futures are cancelled and awaited before the
        caller's ``finally`` unlinks the arena.
        """
        futures = list(futures)
        for future in futures:
            future.cancel()
        wait(futures)

    def close(self) -> None:
        """Release the persistent ``shared``-strategy pool sized for this engine.

        Idempotent and safe to skip: pools are process-wide singletons shut
        down via ``atexit`` anyway, and the next ``shared`` call simply starts
        a fresh one.
        """
        from . import shared

        shared.reset_shared_pool(self.max_workers)


def _measure_tag(measure) -> str:
    """Span-tag spelling of a measure (callables tag by name, not identity)."""
    if isinstance(measure, str):
        return measure
    return getattr(measure, "__name__", "callable")


def _point_arrays(trajectories: Sequence) -> list[np.ndarray]:
    if isinstance(trajectories, CanonicalArrays):
        return trajectories
    return [np.asarray(getattr(t, "points", t), dtype=np.float64) for t in trajectories]


_default_engine: MatrixEngine | None = None


def get_default_engine() -> MatrixEngine:
    """Process-wide engine used when callers do not pass one explicitly.

    The strategy can be pre-selected with the ``REPRO_ENGINE_STRATEGY`` environment
    variable (``serial``, ``chunked``, ``process`` or ``shared``); it defaults to
    ``chunked`` with an in-memory matrix cache.
    """
    global _default_engine
    if _default_engine is None:
        strategy = os.environ.get(_STRATEGY_ENV, "chunked")
        _default_engine = MatrixEngine(strategy=strategy, cache=MatrixCache(max_entries=32))
    return _default_engine


def set_default_engine(engine: MatrixEngine | None) -> MatrixEngine | None:
    """Replace the process-wide default engine (None resets to lazy construction)."""
    global _default_engine
    _default_engine = engine
    return engine
