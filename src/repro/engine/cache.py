"""Distance-matrix cache keyed by (dataset fingerprint, measure, kwargs).

Ground-truth matrices are by far the most expensive artefact of every experiment and
are recomputed identically across tables/figures that share a dataset.  The cache
stores them under a content-addressed key: a SHA-256 fingerprint of the trajectory
point data combined with the measure name and its keyword arguments.  Entries live in
an in-memory LRU map and, when a directory is configured, as ``.npy`` files on disk so
they survive the process.
"""

from __future__ import annotations

import hashlib
import json
from collections import OrderedDict
from pathlib import Path
from typing import Sequence

import numpy as np

__all__ = ["fingerprint_trajectories", "cache_key", "MatrixCache"]


def fingerprint_trajectories(trajectories: Sequence) -> str:
    """Content hash of a trajectory collection (order- and value-sensitive)."""
    digest = hashlib.sha256()
    digest.update(str(len(trajectories)).encode())
    for trajectory in trajectories:
        points = np.ascontiguousarray(
            np.asarray(getattr(trajectory, "points", trajectory), dtype=np.float64))
        digest.update(str(points.shape).encode())
        digest.update(points.tobytes())
    return digest.hexdigest()


def _measure_name(measure) -> str:
    if isinstance(measure, str):
        return measure.lower()
    return getattr(measure, "__qualname__", repr(measure))


def cache_key(fingerprint: str, measure, measure_kwargs: dict | None = None,
              kind: str = "pairwise") -> str:
    """Stable key for one (data, measure, kwargs, pairwise/cross) combination."""
    payload = json.dumps({
        "fingerprint": fingerprint,
        "measure": _measure_name(measure),
        "kwargs": {key: repr(value) for key, value in sorted((measure_kwargs or {}).items())},
        "kind": kind,
    }, sort_keys=True)
    return hashlib.sha256(payload.encode()).hexdigest()


class MatrixCache:
    """In-memory LRU of distance matrices with optional on-disk persistence."""

    def __init__(self, directory: str | Path | None = None, max_entries: int = 128):
        if max_entries <= 0:
            raise ValueError("max_entries must be positive")
        self.directory = Path(directory) if directory is not None else None
        if self.directory is not None:
            self.directory.mkdir(parents=True, exist_ok=True)
        self.max_entries = max_entries
        self._entries: OrderedDict[str, np.ndarray] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def _path(self, key: str) -> Path:
        return self.directory / f"{key}.npy"

    def get(self, key: str) -> np.ndarray | None:
        """Cached matrix for ``key`` (memory first, then disk), or None."""
        if key in self._entries:
            self._entries.move_to_end(key)
            self.hits += 1
            return self._entries[key].copy()
        if self.directory is not None:
            path = self._path(key)
            if path.exists():
                matrix = np.load(path)
                self._remember(key, matrix)
                self.hits += 1
                return matrix.copy()
        self.misses += 1
        return None

    def put(self, key: str, matrix: np.ndarray) -> None:
        """Store ``matrix`` under ``key`` (and persist it when a directory is set)."""
        matrix = np.asarray(matrix, dtype=np.float64)
        self._remember(key, matrix.copy())
        if self.directory is not None:
            np.save(self._path(key), matrix)

    def _remember(self, key: str, matrix: np.ndarray) -> None:
        self._entries[key] = matrix
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)

    def clear(self) -> None:
        """Drop the in-memory entries (disk files are left in place)."""
        self._entries.clear()
