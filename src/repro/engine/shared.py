"""Zero-copy shared-memory backing for the engine's ``shared`` strategy.

The ``process`` strategy pays twice for every chunk it dispatches: a fresh
``ProcessPoolExecutor`` is spun up per ``pairwise``/``cross``/``pairs`` call,
and the full point arrays of every pair are pickled to the workers — for a
pairwise matrix each trajectory is shipped once per pair it participates in,
an O(n) amplification of the actual data volume.  This module removes both
costs:

* :class:`TrajectoryArena` — all point arrays of one engine call flattened
  into a single contiguous float64 buffer published through
  :mod:`multiprocessing.shared_memory`.  A small header (an
  ``(offset, length, dim)`` table) makes every trajectory recoverable as a
  zero-copy NumPy view, so chunk dispatch ships only integer pair indices
  and per-chunk threshold slices;
* a **persistent worker pool** (:func:`get_shared_pool`) — started lazily on
  the first ``shared``-strategy call, reused across calls and engines with
  the same worker count, and shut down via ``atexit`` (or explicitly through
  :func:`shutdown_shared_pools` / ``MatrixEngine.close``);
* :func:`shared_worker_chunk` — the worker entrypoint: attach to the arena
  (cached per worker process, so a call's many chunks attach once),
  reconstruct read-only views, run the exact same batch-kernel path as the
  other strategies, and return ``(values, dp_cells, obs_delta)`` so kernel
  cell-work statistics and the rest of the telemetry registry aggregate
  across processes.

Lifecycle: the parent creates one arena per engine call, waits for every
chunk future to settle, then closes *and unlinks* the segment in a
``finally`` block — an exception in any worker can never leak shared memory.
Workers keep their most recent attachment open (closing the previous one as
soon as a new arena name arrives), which is safe on POSIX: an unlinked
segment stays mapped until the last attachment closes.  Platforms without
``multiprocessing.shared_memory`` degrade gracefully: the engine detects
:func:`shared_memory_available` and falls back to per-chunk pickling over
the same persistent pool.
"""

from __future__ import annotations

import atexit
import warnings
from concurrent.futures import ProcessPoolExecutor

import numpy as np

try:  # pragma: no cover - import succeeds on every supported platform
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover - exotic builds without _posixshmem
    _shared_memory = None

__all__ = [
    "TrajectoryArena",
    "shared_memory_available",
    "get_shared_pool",
    "reset_shared_pool",
    "shutdown_shared_pools",
    "live_arena_names",
    "shared_worker_chunk",
]

#: Arena header scalar type; offsets are in float64 *elements* into the payload.
_HEADER_DTYPE = np.int64


def shared_memory_available() -> bool:
    """Whether ``multiprocessing.shared_memory`` exists on this platform."""
    return _shared_memory is not None


# ----------------------------------------------------------------- the arena

#: Names of arenas created by this process that are not yet unlinked.  The
#: robustness suite asserts this drains back to empty even on exception paths.
_LIVE_ARENAS: set[str] = set()


class TrajectoryArena:
    """All point arrays of one engine call packed into one shared segment.

    Layout (native byte order)::

        int64             count                      number of trajectories
        int64[count, 3]   table                      (offset, length, dim) rows
        float64[total]    payload                    concatenated point data

    ``offset`` indexes float64 elements into the payload, so trajectory ``i``
    is ``payload[offset:offset + length * dim].reshape(length, dim)`` — a
    zero-copy view for whoever attaches.
    """

    def __init__(self, arrays):
        if _shared_memory is None:
            raise RuntimeError("multiprocessing.shared_memory is unavailable "
                               "on this platform")
        count = len(arrays)
        lengths = np.array([a.shape[0] for a in arrays], dtype=_HEADER_DTYPE)
        dims = np.array([a.shape[1] for a in arrays], dtype=_HEADER_DTYPE)
        sizes = lengths * dims
        offsets = np.concatenate(([0], np.cumsum(sizes[:-1]))) if count \
            else np.zeros(0, dtype=_HEADER_DTYPE)
        header_elements = 1 + 3 * count
        total = int(sizes.sum())
        self.size = 8 * (header_elements + total)
        self._shm = _shared_memory.SharedMemory(create=True, size=max(self.size, 8))
        try:
            header = np.ndarray((header_elements,), dtype=_HEADER_DTYPE,
                                buffer=self._shm.buf)
            header[0] = count
            table = header[1:].reshape(count, 3)
            table[:, 0] = offsets
            table[:, 1] = lengths
            table[:, 2] = dims
            payload = np.ndarray((total,), dtype=np.float64, buffer=self._shm.buf,
                                 offset=8 * header_elements)
            for offset, size, array in zip(offsets, sizes, arrays):
                payload[offset:offset + size] = array.reshape(-1)
            del header, table, payload  # drop buffer exports before any close()
        except BaseException:
            self._shm.close()
            self._shm.unlink()
            raise
        self.name = self._shm.name
        _LIVE_ARENAS.add(self.name)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TrajectoryArena(name={self.name!r}, size={self.size})"

    def close(self) -> None:
        """Close and unlink the segment (idempotent, exception-safe)."""
        if self._shm is None:
            return
        shm, self._shm = self._shm, None
        shm.close()
        try:
            shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already reclaimed
            pass
        _LIVE_ARENAS.discard(self.name)

    def __enter__(self) -> "TrajectoryArena":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def unpack_views(buffer) -> list[np.ndarray]:
    """Read-only zero-copy trajectory views over a packed arena buffer."""
    count = int(np.ndarray((1,), dtype=_HEADER_DTYPE, buffer=buffer)[0])
    header_elements = 1 + 3 * count
    table = np.ndarray((count, 3), dtype=_HEADER_DTYPE, buffer=buffer, offset=8)
    views = []
    for offset, length, dim in table:
        view = np.ndarray((int(length), int(dim)), dtype=np.float64, buffer=buffer,
                          offset=8 * (header_elements + int(offset)))
        view.flags.writeable = False
        views.append(view)
    return views


def live_arena_names() -> frozenset[str]:
    """Arenas created by this process that are still linked (leak detector)."""
    return frozenset(_LIVE_ARENAS)


# ------------------------------------------------------------- worker side

#: The worker's current attachment: ``{arena_name: (SharedMemory, views)}``.
#: Holds at most one entry — engine calls are serialized per arena, so a new
#: name means the previous call is over and its segment can be released.
_ATTACHED: dict[str, tuple[object, list[np.ndarray]]] = {}


def _release_attachment(name: str) -> None:
    shm, views = _ATTACHED.pop(name)
    views.clear()
    try:
        shm.close()
    except BufferError:  # pragma: no cover - a stray view still references buf
        pass


def _attach_arena(name: str) -> list[np.ndarray]:
    """Attach to ``name`` (cached) and return its trajectory views."""
    cached = _ATTACHED.get(name)
    if cached is not None:
        return cached[1]
    for stale in list(_ATTACHED):
        _release_attachment(stale)
    shm = _shared_memory.SharedMemory(name=name)
    views = unpack_views(shm.buf)
    _ATTACHED[name] = (shm, views)
    return views


def shared_worker_chunk(arena_name, idx_a, idx_b, measure, measure_kwargs,
                        use_kernels, thresholds=None, backend=None,
                        obs_mode=None):
    """Worker entrypoint: arena views → kernels → ``(values, dp_cells, obs_delta)``.

    ``idx_a``/``idx_b`` index trajectories inside the arena; after resolving
    the views this delegates to the ``process`` strategy's worker, so the
    arithmetic, the ``(values, dp_cells, obs_delta)`` telemetry contract and
    the kernel backend resolution (``backend`` is the parent's resolved
    backend name — the worker re-resolves non-strictly and warms up once per
    process) are shared with every other strategy and results are
    bit-identical.  ``obs_mode`` is the parent's observability mode at submit
    time, forwarded so long-lived pool workers track parent mode switches.
    """
    from .executor import _worker_chunk

    arrays = _attach_arena(arena_name)
    return _worker_chunk([arrays[int(i)] for i in idx_a],
                         [arrays[int(j)] for j in idx_b],
                         measure, measure_kwargs, use_kernels,
                         thresholds=thresholds, backend=backend,
                         obs_mode=obs_mode)


# ------------------------------------------------------- the persistent pool

_POOLS: dict[int, ProcessPoolExecutor] = {}
_ATEXIT_REGISTERED = False


def get_shared_pool(max_workers: int) -> ProcessPoolExecutor:
    """The persistent pool for ``max_workers`` (created lazily, reused)."""
    global _ATEXIT_REGISTERED
    pool = _POOLS.get(max_workers)
    if pool is None:
        pool = ProcessPoolExecutor(max_workers=max_workers)
        _POOLS[max_workers] = pool
        if not _ATEXIT_REGISTERED:
            atexit.register(shutdown_shared_pools)
            _ATEXIT_REGISTERED = True
    return pool


def reset_shared_pool(max_workers: int) -> None:
    """Discard the pool for ``max_workers`` (after e.g. a killed worker)."""
    pool = _POOLS.pop(max_workers, None)
    if pool is not None:
        pool.shutdown(wait=False, cancel_futures=True)


def shutdown_shared_pools() -> None:
    """Shut down every persistent pool (registered with ``atexit``)."""
    for max_workers in list(_POOLS):
        pool = _POOLS.pop(max_workers)
        pool.shutdown(wait=True, cancel_futures=True)


_FALLBACK_WARNED = False


def warn_shared_memory_unavailable() -> None:
    """One warning per process when ``shared`` degrades to pickled dispatch."""
    global _FALLBACK_WARNED
    if not _FALLBACK_WARNED:
        _FALLBACK_WARNED = True
        warnings.warn("multiprocessing.shared_memory is unavailable; the "
                      "'shared' strategy is falling back to pickled chunk "
                      "dispatch over the persistent pool", RuntimeWarning,
                      stacklevel=3)
