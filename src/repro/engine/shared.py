"""Zero-copy shared-memory backing for the engine's ``shared`` strategy.

The ``process`` strategy pays twice for every chunk it dispatches: a fresh
``ProcessPoolExecutor`` is spun up per ``pairwise``/``cross``/``pairs`` call,
and the full point arrays of every pair are pickled to the workers — for a
pairwise matrix each trajectory is shipped once per pair it participates in,
an O(n) amplification of the actual data volume.  This module removes both
costs:

* :class:`TrajectoryArena` — all point arrays of one engine call flattened
  into a single contiguous float64 buffer published through
  :mod:`multiprocessing.shared_memory`.  A small header (an
  ``(offset, length, dim)`` table) makes every trajectory recoverable as a
  zero-copy NumPy view, so chunk dispatch ships only integer pair indices
  and per-chunk threshold slices;
* a **persistent worker pool** (:func:`get_shared_pool`) — started lazily on
  the first ``shared``-strategy call, reused across calls and engines with
  the same worker count, and shut down via ``atexit`` (or explicitly through
  :func:`shutdown_shared_pools` / ``MatrixEngine.close``);
* :func:`shared_worker_chunk` — the worker entrypoint: attach to the arena
  (cached per worker process, so a call's many chunks attach once),
  reconstruct read-only views, run the exact same batch-kernel path as the
  other strategies, and return ``(values, dp_cells, obs_delta)`` so kernel
  cell-work statistics and the rest of the telemetry registry aggregate
  across processes.

Lifecycle: for a per-call arena the parent packs, waits for every chunk
future to settle, then closes *and unlinks* the segment in a ``finally``
block — an exception in any worker can never leak shared memory.  Arenas
owned by the :mod:`~repro.engine.arena_cache` instead persist across calls
(keyed by content fingerprint, with append slack for index deltas) and are
unlinked on LRU eviction / ``clear()`` / atexit.  Workers keep a small LRU of
attachments open, which is safe on POSIX: an unlinked segment stays mapped
until the last attachment closes.  Platforms without
``multiprocessing.shared_memory`` degrade gracefully: the engine detects
:func:`shared_memory_available` and falls back to per-chunk pickling over
the same persistent pool.
"""

from __future__ import annotations

import atexit
import warnings
from concurrent.futures import ProcessPoolExecutor

import numpy as np

from ..resilience import faults

try:  # pragma: no cover - import succeeds on every supported platform
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover - exotic builds without _posixshmem
    _shared_memory = None

__all__ = [
    "ArenaCapacityError",
    "TrajectoryArena",
    "shared_memory_available",
    "get_shared_pool",
    "reset_shared_pool",
    "shutdown_shared_pools",
    "live_arena_names",
    "shared_worker_chunk",
]

#: Arena header scalar type; offsets are in float64 *elements* into the payload.
_HEADER_DTYPE = np.int64


def shared_memory_available() -> bool:
    """Whether ``multiprocessing.shared_memory`` exists on this platform."""
    return _shared_memory is not None


# ----------------------------------------------------------------- the arena

#: Names of arenas created by this process that are not yet unlinked.  The
#: robustness suite asserts this drains back to empty even on exception paths.
_LIVE_ARENAS: set[str] = set()


class ArenaCapacityError(RuntimeError):
    """Raised when :meth:`TrajectoryArena.append` outgrows the reserved space."""


class TrajectoryArena:
    """Point arrays packed into one shared segment, with optional append slack.

    Layout (native byte order)::

        int64               count                    trajectories currently packed
        int64               capacity                 table rows reserved
        int64[capacity, 3]  table                    (offset, length, dim) rows
        float64[reserved]   payload                  concatenated point data

    ``offset`` indexes float64 elements into the payload, so trajectory ``i``
    is ``payload[offset:offset + length * dim].reshape(length, dim)`` — a
    zero-copy view for whoever attaches.

    ``reserve_slots``/``reserve_bytes`` over-allocate table rows and payload so
    the arena cache can :meth:`append` the delta of a mutated index instead of
    re-packing the whole database.  Appends write table rows and payload first
    and publish the new ``count`` last, so a concurrently attached reader only
    ever sees fully written trajectories.
    """

    def __init__(self, arrays, reserve_slots: int = 0, reserve_bytes: int = 0):
        if _shared_memory is None:
            raise RuntimeError("multiprocessing.shared_memory is unavailable "
                               "on this platform")
        count = len(arrays)
        lengths = np.array([a.shape[0] for a in arrays], dtype=_HEADER_DTYPE)
        dims = np.array([a.shape[1] for a in arrays], dtype=_HEADER_DTYPE)
        sizes = lengths * dims
        offsets = np.concatenate(([0], np.cumsum(sizes[:-1]))) if count \
            else np.zeros(0, dtype=_HEADER_DTYPE)
        capacity = count + max(int(reserve_slots), 0)
        total = int(sizes.sum())
        self._payload_capacity = total + (max(int(reserve_bytes), 0) + 7) // 8
        self.count = count
        self.capacity = capacity
        self._payload_used = total
        self.size = 8 * (2 + 3 * capacity + self._payload_capacity)
        self._shm = _shared_memory.SharedMemory(create=True, size=max(self.size, 16))
        try:
            header = np.ndarray((2,), dtype=_HEADER_DTYPE, buffer=self._shm.buf)
            header[0] = count
            header[1] = capacity
            table = np.ndarray((capacity, 3), dtype=_HEADER_DTYPE,
                               buffer=self._shm.buf, offset=16)
            table[:count, 0] = offsets
            table[:count, 1] = lengths
            table[:count, 2] = dims
            table[count:] = 0
            payload = np.ndarray((total,), dtype=np.float64, buffer=self._shm.buf,
                                 offset=8 * (2 + 3 * capacity))
            for offset, size, array in zip(offsets, sizes, arrays):
                payload[offset:offset + size] = array.reshape(-1)
            del header, table, payload  # drop buffer exports before any close()
        except BaseException:
            self._shm.close()
            self._shm.unlink()
            raise
        self.name = self._shm.name
        _LIVE_ARENAS.add(self.name)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"TrajectoryArena(name={self.name!r}, size={self.size}, "
                f"count={self.count}/{self.capacity})")

    def can_append(self, arrays) -> bool:
        """Whether ``arrays`` fit in the reserved table rows and payload slack."""
        if self._shm is None:
            return False
        total = sum(a.shape[0] * a.shape[1] for a in arrays)
        return (self.count + len(arrays) <= self.capacity
                and self._payload_used + total <= self._payload_capacity)

    def append(self, arrays) -> np.ndarray:
        """Pack ``arrays`` into the reserved slack; returns their slot indices.

        Table rows and payload land before the header ``count`` is bumped, so a
        reader attached mid-append never observes a half-written trajectory.
        """
        faults.fault_point("arena_append_fail")
        if self._shm is None:
            raise RuntimeError("arena is closed")
        if not self.can_append(arrays):
            raise ArenaCapacityError(
                f"appending {len(arrays)} trajectories exceeds the arena's "
                f"reserved capacity ({self.count}/{self.capacity} slots, "
                f"{self._payload_used}/{self._payload_capacity} payload elements)")
        start = self.count
        offset = self._payload_used
        table = np.ndarray((self.capacity, 3), dtype=_HEADER_DTYPE,
                           buffer=self._shm.buf, offset=16)
        payload = np.ndarray((self._payload_capacity,), dtype=np.float64,
                             buffer=self._shm.buf,
                             offset=8 * (2 + 3 * self.capacity))
        for slot, array in enumerate(arrays, start=start):
            size = array.shape[0] * array.shape[1]
            payload[offset:offset + size] = array.reshape(-1)
            table[slot] = (offset, array.shape[0], array.shape[1])
            offset += size
        header = np.ndarray((2,), dtype=_HEADER_DTYPE, buffer=self._shm.buf)
        header[0] = start + len(arrays)
        del header, table, payload  # drop buffer exports before any close()
        self.count = start + len(arrays)
        self._payload_used = offset
        return np.arange(start, self.count, dtype=np.int64)

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` already ran (the cache's double-unlink guard)."""
        return self._shm is None

    def close(self) -> None:
        """Close and unlink the segment (idempotent, exception-safe)."""
        if self._shm is None:
            return
        shm, self._shm = self._shm, None
        shm.close()
        try:
            shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already reclaimed
            pass
        _LIVE_ARENAS.discard(self.name)

    def __enter__(self) -> "TrajectoryArena":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def unpack_views(buffer) -> list[np.ndarray]:
    """Read-only zero-copy trajectory views over a packed arena buffer."""
    header = np.ndarray((2,), dtype=_HEADER_DTYPE, buffer=buffer)
    count, capacity = int(header[0]), int(header[1])
    payload_offset = 8 * (2 + 3 * capacity)
    table = np.ndarray((count, 3), dtype=_HEADER_DTYPE, buffer=buffer, offset=16)
    views = []
    for offset, length, dim in table:
        view = np.ndarray((int(length), int(dim)), dtype=np.float64, buffer=buffer,
                          offset=payload_offset + 8 * int(offset))
        view.flags.writeable = False
        views.append(view)
    return views


def live_arena_names() -> frozenset[str]:
    """Arenas created by this process that are still linked (leak detector)."""
    return frozenset(_LIVE_ARENAS)


# ------------------------------------------------------------- worker side

#: The worker's attachment cache: ``{arena_name: (SharedMemory, views)}``.
#: A small LRU — cached arenas persist across calls, so a worker serving
#: several indexes keeps each database segment mapped instead of re-attaching
#: per call; the per-call (non-cached) arenas churn through the same slots.
_ATTACHED: dict[str, tuple[object, list[np.ndarray]]] = {}

#: How many arena attachments a worker keeps mapped at once.
_ATTACH_CAPACITY = 4


def _release_attachment(name: str) -> None:
    shm, views = _ATTACHED.pop(name)
    views.clear()
    try:
        shm.close()
    except BufferError:  # pragma: no cover - a stray view still references buf
        pass


def _attach_arena(name: str, min_slots: int = 0) -> list[np.ndarray]:
    """Attach to ``name`` (cached, LRU) and return its trajectory views.

    ``min_slots`` is the highest slot index the caller is about to touch plus
    one: a cached attachment with fewer views re-reads the header — the parent
    appended to the arena since this worker attached, and append publishes
    ``count`` last, so the refreshed views are complete.
    """
    faults.fault_point("shm_attach_fail")
    cached = _ATTACHED.pop(name, None)
    if cached is not None:
        shm, views = cached
        if min_slots > len(views):
            views = unpack_views(shm.buf)
        _ATTACHED[name] = (shm, views)  # re-insert: most recently used
        return views
    while len(_ATTACHED) >= _ATTACH_CAPACITY:
        _release_attachment(next(iter(_ATTACHED)))
    shm = _shared_memory.SharedMemory(name=name)
    views = unpack_views(shm.buf)
    _ATTACHED[name] = (shm, views)
    return views


def shared_worker_chunk(arena_name, idx_a, idx_b, measure, measure_kwargs,
                        use_kernels, thresholds=None, backend=None,
                        obs_mode=None, extra_arrays=None, fault_spec=None):
    """Worker entrypoint: arena views → kernels → ``(values, dp_cells, obs_delta)``.

    ``idx_a``/``idx_b`` index trajectories inside the arena; after resolving
    the views this delegates to the ``process`` strategy's worker, so the
    arithmetic, the ``(values, dp_cells, obs_delta)`` telemetry contract and
    the kernel backend resolution (``backend`` is the parent's resolved
    backend name — the worker re-resolves non-strictly and warms up once per
    process) are shared with every other strategy and results are
    bit-identical.  ``obs_mode`` is the parent's observability mode at submit
    time, forwarded so long-lived pool workers track parent mode switches.

    ``extra_arrays`` carries the few arrays *not* packed in the arena (the
    query of a refinement batch riding a cached database arena): a negative
    slot index ``-1 - e`` resolves to ``extra_arrays[e]``.  ``fault_spec`` is
    the parent's fault-plan token, aligned *before* the arena attach so the
    ``shm_attach_fail`` injection site is live for this chunk.
    """
    from .executor import _worker_chunk

    faults.ensure_plan(fault_spec)
    idx_a = np.asarray(idx_a, dtype=np.int64)
    idx_b = np.asarray(idx_b, dtype=np.int64)
    min_slots = int(max(idx_a.max(initial=-1), idx_b.max(initial=-1))) + 1
    arrays = _attach_arena(arena_name, min_slots)

    def resolve(slot: int) -> np.ndarray:
        return arrays[slot] if slot >= 0 else extra_arrays[-1 - slot]

    return _worker_chunk([resolve(int(i)) for i in idx_a],
                         [resolve(int(j)) for j in idx_b],
                         measure, measure_kwargs, use_kernels,
                         thresholds=thresholds, backend=backend,
                         obs_mode=obs_mode, fault_spec=fault_spec)


# ------------------------------------------------------- the persistent pool

_POOLS: dict[int, ProcessPoolExecutor] = {}
_ATEXIT_REGISTERED = False


def get_shared_pool(max_workers: int) -> ProcessPoolExecutor:
    """The persistent pool for ``max_workers`` (created lazily, reused)."""
    global _ATEXIT_REGISTERED
    pool = _POOLS.get(max_workers)
    if pool is None:
        pool = ProcessPoolExecutor(max_workers=max_workers)
        _POOLS[max_workers] = pool
        if not _ATEXIT_REGISTERED:
            atexit.register(shutdown_shared_pools)
            _ATEXIT_REGISTERED = True
    return pool


def reset_shared_pool(max_workers: int) -> None:
    """Discard the pool for ``max_workers`` (after e.g. a killed worker)."""
    pool = _POOLS.pop(max_workers, None)
    if pool is not None:
        pool.shutdown(wait=False, cancel_futures=True)


def shutdown_shared_pools() -> None:
    """Shut down every persistent pool (registered with ``atexit``)."""
    for max_workers in list(_POOLS):
        pool = _POOLS.pop(max_workers)
        pool.shutdown(wait=True, cancel_futures=True)


_FALLBACK_WARNED = False


def warn_shared_memory_unavailable() -> None:
    """One warning per process when ``shared`` degrades to pickled dispatch."""
    global _FALLBACK_WARNED
    if not _FALLBACK_WARNED:
        _FALLBACK_WARNED = True
        warnings.warn("multiprocessing.shared_memory is unavailable; the "
                      "'shared' strategy is falling back to pickled chunk "
                      "dispatch over the persistent pool", RuntimeWarning,
                      stacklevel=3)
