"""Process-wide pool of content-addressed shared-memory trajectory arenas.

Under the ``shared`` strategy every multi-chunk engine call used to pack its
point arrays into a fresh :class:`~repro.engine.shared.TrajectoryArena` and
unlink it when the call returned — correct, but for query serving the arrays
are the *same database trajectories* on every refinement batch of every query.
This module generalises the :class:`~repro.engine.cache.MatrixCache` pattern
(content fingerprint → cached artefact) to shared memory:

* :class:`CachedArena` — one packed arena plus the identity map from array
  object to arena slot, so the executor resolves slots with dict lookups
  instead of re-hashing or re-packing.  Arenas are packed with slack
  (``reserve_slots``/``reserve_bytes``) so an index ``insert`` appends only
  the delta; the new content fingerprint simply becomes an alias of the same
  entry.
* :class:`ArenaCache` — an LRU over cached arenas bounded by a byte budget
  (``REPRO_ARENA_CACHE_BYTES``, default 256 MiB; ``0`` disables caching).
  Entries are reference-counted via :meth:`~ArenaCache.pin` /
  :meth:`~ArenaCache.unpin`: eviction (LRU pressure, explicit
  :meth:`~ArenaCache.evict`, :meth:`~ArenaCache.clear`) closes-and-unlinks
  unpinned entries immediately and marks pinned ones *doomed* so the last
  unpin unlinks them — a worker dying mid-query therefore never leaks a
  segment, and ``live_arena_names()`` drains at atexit.

Telemetry: ``engine.arena.hits`` / ``misses`` / ``appends`` / ``evictions``
counters and the ``engine.arena.bytes`` gauge.
"""

from __future__ import annotations

import atexit
from collections import OrderedDict

import numpy as np

from ..config import env_int
from ..obs import counter, gauge
from .cache import fingerprint_trajectories
from . import shared as _shared

__all__ = [
    "ARENA_CACHE_ENV",
    "DEFAULT_ARENA_CACHE_BYTES",
    "CachedArena",
    "ArenaCache",
    "get_arena_cache",
    "reset_arena_cache",
]

ARENA_CACHE_ENV = "REPRO_ARENA_CACHE_BYTES"

#: Default byte budget for cached arenas (a few hundred city-scale databases).
DEFAULT_ARENA_CACHE_BYTES = 256 * 1024 * 1024


def _default_max_bytes() -> int:
    return env_int(ARENA_CACHE_ENV, DEFAULT_ARENA_CACHE_BYTES)


class CachedArena:
    """One cached arena: the packed segment plus the array-identity slot map.

    ``slot_of`` keys on ``id(array)`` — safe because the entry keeps strong
    references to every packed array, so ids cannot be recycled while the
    entry lives.  :class:`~repro.search.TrajectoryIndex` keeps the same array
    objects across ``insert``/``evict``, which is what makes identity the
    right (and cheapest) join key between an index and its arena.
    """

    __slots__ = ("arena", "fingerprints", "pins", "doomed", "_slots", "_arrays")

    def __init__(self, fingerprint: str, arrays, reserve_slots: int,
                 reserve_bytes: int):
        self.arena = _shared.TrajectoryArena(arrays, reserve_slots=reserve_slots,
                                             reserve_bytes=reserve_bytes)
        self.fingerprints = {fingerprint}
        self.pins = 0
        self.doomed = False
        self._arrays = list(arrays)
        self._slots = {id(array): slot for slot, array in enumerate(self._arrays)}

    @property
    def name(self) -> str:
        return self.arena.name

    @property
    def nbytes(self) -> int:
        return self.arena.size

    def slot_of(self, array) -> int | None:
        """Arena slot of ``array`` (by object identity), or None."""
        return self._slots.get(id(array))

    def missing(self, arrays) -> list:
        """The sub-list of ``arrays`` not yet packed (deduped, order kept)."""
        seen: set[int] = set()
        out = []
        for array in arrays:
            key = id(array)
            if key not in self._slots and key not in seen:
                seen.add(key)
                out.append(array)
        return out

    def absorb(self, fingerprint: str, arrays) -> None:
        """Append ``arrays`` into the slack and alias ``fingerprint`` here."""
        if arrays:
            slots = self.arena.append(arrays)
            for slot, array in zip(slots, arrays):
                self._arrays.append(array)
                self._slots[id(array)] = int(slot)
        self.fingerprints.add(fingerprint)

    def close(self) -> None:
        # TrajectoryArena.close is itself idempotent; delegating keeps a
        # double-evicted (or evicted-then-atexit-cleared) entry harmless.
        self.arena.close()

    @property
    def closed(self) -> bool:
        return self.arena.closed


def _estimate_bytes(arrays, reserve_slots: int, reserve_bytes: int) -> int:
    """Segment size a pack of ``arrays`` with this slack would allocate."""
    total = sum(a.shape[0] * a.shape[1] for a in arrays)
    payload = total + (reserve_bytes + 7) // 8
    return 8 * (2 + 3 * (len(arrays) + reserve_slots) + payload)


class ArenaCache:
    """LRU byte-budgeted pool of :class:`CachedArena` entries.

    Not thread-safe (like the rest of the engine layer); one instance per
    process via :func:`get_arena_cache`.
    """

    def __init__(self, max_bytes: int | None = None):
        self.max_bytes = _default_max_bytes() if max_bytes is None else int(max_bytes)
        self._entries: OrderedDict[str, CachedArena] = OrderedDict()
        self._by_fingerprint: dict[str, CachedArena] = {}
        self.hits = 0
        self.misses = 0
        self.appends = 0
        self.evictions = 0

    # ----------------------------------------------------------- introspection
    def __len__(self) -> int:
        return len(self._entries)

    @property
    def enabled(self) -> bool:
        return self.max_bytes > 0 and _shared.shared_memory_available()

    @property
    def total_bytes(self) -> int:
        return sum(entry.nbytes for entry in self._entries.values())

    def stats(self) -> dict:
        return {"entries": len(self._entries), "bytes": self.total_bytes,
                "max_bytes": self.max_bytes, "hits": self.hits,
                "misses": self.misses, "appends": self.appends,
                "evictions": self.evictions}

    # ----------------------------------------------------------------- pinning
    def pin(self, arrays, fingerprint: str | None = None) -> CachedArena | None:
        """A pinned arena covering ``arrays``, or None when caching is off.

        Lookup order: exact fingerprint hit → delta-append onto an entry that
        already packs some of ``arrays`` (the incremental re-pack after an
        index mutation) → fresh pack.  The returned entry is pinned — it
        cannot be unlinked until the matching :meth:`unpin` — so it stays
        valid across a ``BrokenProcessPool`` retry and across every chunk of
        the call.  A database too large for the whole budget is not cached
        (the engine falls back to its per-call arena).
        """
        if not self.enabled:
            return None
        if fingerprint is None:
            fingerprint = fingerprint_trajectories(arrays)
        entry = self._by_fingerprint.get(fingerprint)
        if entry is not None:
            self.hits += 1
            counter("engine.arena.hits").add(1)
            self._entries.move_to_end(entry.name)
            entry.pins += 1
            return entry
        # Incremental path: an entry already holding some of these arrays (by
        # identity — i.e. an earlier generation of the same index) absorbs
        # just the delta instead of a full re-pack.
        for name in reversed(self._entries):
            candidate = self._entries[name]
            delta = candidate.missing(arrays)
            if len(delta) < len(arrays) and candidate.arena.can_append(delta):
                try:
                    candidate.absorb(fingerprint, delta)
                except _shared.ArenaCapacityError:
                    # The append failed (an injected fault, or the slack raced
                    # away).  ``append`` mutates nothing before raising, so the
                    # entry stays valid for its existing aliases; fall through
                    # to a fresh pack for this fingerprint.
                    counter("engine.arena.append_failures").add(1)
                    break
                self._by_fingerprint[fingerprint] = candidate
                self.appends += 1
                counter("engine.arena.appends").add(1)
                self._entries.move_to_end(name)
                self._publish_gauge()
                candidate.pins += 1
                return candidate
        self.misses += 1
        counter("engine.arena.misses").add(1)
        # Pack with slack proportional to the database so a follow-up insert
        # of a few percent of the fleet appends instead of re-packing.
        reserve_slots = max(len(arrays) // 4, 8)
        reserve_bytes = sum(a.nbytes for a in arrays) // 4
        if _estimate_bytes(arrays, reserve_slots, reserve_bytes) > self.max_bytes:
            return None
        entry = CachedArena(fingerprint, arrays, reserve_slots, reserve_bytes)
        self._entries[entry.name] = entry
        self._by_fingerprint[fingerprint] = entry
        entry.pins += 1
        self._evict_over_budget()
        self._publish_gauge()
        return entry

    def unpin(self, entry: CachedArena) -> None:
        """Release one pin; a doomed entry unlinks at its last unpin.

        Idempotent past zero: pins clamp at 0 (an error-path double-unpin must
        not push the count negative and resurrect-then-unlink a live entry)
        and the unlink itself is guarded by ``entry.closed``, so calling this
        after the entry already unlinked — double close, close after atexit —
        is a no-op.
        """
        entry.pins = max(entry.pins - 1, 0)
        if entry.doomed and entry.pins == 0 and not entry.closed:
            entry.close()
            self.evictions += 1
            counter("engine.arena.evictions").add(1)
            self._publish_gauge()

    # ---------------------------------------------------------------- eviction
    def evict(self, fingerprint: str) -> bool:
        """Drop the entry aliased to ``fingerprint``; True when it unlinked now.

        A pinned entry is doomed instead: it leaves the cache immediately (no
        new pins can reach it) and unlinks when its current pins drain.
        """
        entry = self._by_fingerprint.get(fingerprint)
        if entry is None:
            return False
        return self._drop(entry)

    def clear(self) -> None:
        """Evict everything (atexit hook; tests call it via reset_arena_cache)."""
        for entry in list(self._entries.values()):
            self._drop(entry)

    def _drop(self, entry: CachedArena) -> bool:
        self._entries.pop(entry.name, None)
        for fingerprint in entry.fingerprints:
            if self._by_fingerprint.get(fingerprint) is entry:
                del self._by_fingerprint[fingerprint]
        if entry.pins > 0:
            entry.doomed = True
            self._publish_gauge()
            return False
        if not entry.closed:
            entry.close()
            self.evictions += 1
            counter("engine.arena.evictions").add(1)
        self._publish_gauge()
        return True

    def _evict_over_budget(self) -> None:
        while self.total_bytes > self.max_bytes:
            victim = next((entry for entry in self._entries.values()
                           if entry.pins == 0), None)
            if victim is None:
                break  # everything live is pinned; budget is advisory until unpin
            self._drop(victim)

    def _publish_gauge(self) -> None:
        gauge("engine.arena.bytes").set(self.total_bytes)


_process_cache: ArenaCache | None = None
_ATEXIT_REGISTERED = False


def get_arena_cache() -> ArenaCache:
    """The process-wide arena cache (created lazily; atexit-drained)."""
    global _process_cache, _ATEXIT_REGISTERED
    if _process_cache is None:
        _process_cache = ArenaCache()
        if not _ATEXIT_REGISTERED:
            atexit.register(_atexit_clear)
            _ATEXIT_REGISTERED = True
    return _process_cache


def reset_arena_cache(max_bytes: int | None = None) -> ArenaCache:
    """Replace the process cache (clearing the old one); tests and tooling."""
    global _process_cache
    if _process_cache is not None:
        _process_cache.clear()
    _process_cache = ArenaCache(max_bytes)
    return _process_cache


def _atexit_clear() -> None:
    if _process_cache is not None:
        _process_cache.clear()
