"""NumPy-vectorized distance kernels (anti-diagonal wavefront DP).

The reference implementations in :mod:`repro.distances` fill their dynamic-programming
tables one cell at a time in Python.  The kernels here compute the same tables by
sweeping anti-diagonals: every cell on diagonal ``d = i + j`` depends only on cells of
diagonals ``d-1`` and ``d-2``, so a whole diagonal is one fancy-indexed NumPy update.
On top of that, the batch variants stack the cost matrices of many trajectory pairs
into one ``(batch, n, m)`` tensor and sweep all pairs simultaneously, which amortises
the per-operation NumPy overhead across the batch — this is what the engine's
``chunked`` and ``process`` strategies use.

Every kernel performs cell-for-cell the same arithmetic as its reference
implementation, so results agree to floating-point round-off (the parity suite
enforces 1e-9).  Kernels are registered in :mod:`repro.distances.base` next to the
reference functions; pairwise kernels are thin wrappers over the batch-of-one case so
the two paths cannot drift apart.

``dtw`` additionally accepts a Sakoe–Chiba ``band`` radius: cells with
``|i - j| > band`` are never opened.  The band is widened to ``|n - m|`` when the two
sequences differ in length by more than the requested radius, so the result is always
finite.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Sequence

import numpy as np

from ..distances.base import as_points, register_kernel
from ..distances.spatiotemporal import spatiotemporal_point_cost

__all__ = [
    "dtw_kernel",
    "erp_kernel",
    "edr_kernel",
    "lcss_kernel",
    "frechet_kernel",
    "dita_kernel",
    "dtw_batch",
    "erp_batch",
    "edr_batch",
    "lcss_batch",
    "frechet_batch",
    "dita_batch",
    "get_batch_kernel",
    "available_batch_kernels",
]

_BATCH_KERNELS: dict[str, callable] = {}


def _register_batch(name: str):
    def decorator(func):
        _BATCH_KERNELS[name.lower()] = func
        return func

    return decorator


def get_batch_kernel(name: str):
    """Batch kernel for ``name`` (lists of trajectories → distance vector), or None."""
    return _BATCH_KERNELS.get(name.lower())


def available_batch_kernels() -> list[str]:
    """Names of every measure with a batch kernel."""
    return sorted(_BATCH_KERNELS)


# --------------------------------------------------------------------- helpers

def _pad_points(arrays: Sequence[np.ndarray]) -> tuple[np.ndarray, np.ndarray]:
    """Stack variable-length point arrays into a zero-padded (batch, n, d) tensor.

    Padded rows are garbage by construction but provably unused: every DP below only
    reads cells ``(i, j)`` with ``i ≤ len(a)`` and ``j ≤ len(b)``, and forward DP cells
    never depend on later rows/columns.
    """
    lengths = np.array([len(a) for a in arrays], dtype=np.intp)
    width = arrays[0].shape[1]
    padded = np.zeros((len(arrays), int(lengths.max()), width))
    for index, array in enumerate(arrays):
        padded[index, : len(array)] = array
    return padded, lengths


def _euclidean_cost(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """(batch, n, m) tensor of point distances between padded point tensors.

    Computed coordinate-by-coordinate (no (batch, n, m, d) temporary) with the same
    left-to-right summation order as :func:`repro.distances.base.point_distance_matrix`,
    so the costs — and therefore every DP result built on them — match the reference
    bit for bit.
    """
    squared = None
    for axis in range(a.shape[-1]):
        delta = a[:, :, None, axis] - b[:, None, :, axis]
        delta *= delta
        if squared is None:
            squared = delta
        else:
            squared += delta
    return np.sqrt(squared, out=squared)


def _anti_diagonals(n: int, m: int):
    """Yield (i, j) index vectors covering each anti-diagonal of an (n+1, m+1) table."""
    for d in range(2, n + m + 1):
        i = np.arange(max(1, d - m), min(n, d - 1) + 1)
        yield i, d - i


@lru_cache(maxsize=512)
def _diagonal_slices(n: int, m: int) -> tuple:
    """Constant-stride slices addressing each anti-diagonal of the flattened tables.

    A cell ``(i, j = d − i)`` of the padded ``(n+1, m+1)`` table sits at flat offset
    ``d + i·m``, so an anti-diagonal — and each of its three DP predecessors — is a
    plain strided slice of the flattened array.  Slices are views: the sweep never
    materialises index arrays or gather copies.  Per diagonal the tuple holds slices
    for (current, up, left, diagonal) in the table, the matching cost-matrix cells
    (flat offset ``(d−m−1) + i·(m−1)``), and the ``i−1`` / ``j−1`` ranges used by
    ERP's gap costs.
    """
    entries = []
    for d in range(2, n + m + 1):
        lo, hi = max(1, d - m), min(n, d - 1)
        length = hi - lo + 1
        table_step = m if length > 1 else 1
        cost_step = (m - 1) if length > 1 else 1
        start = d + lo * m
        stop = d + hi * m + 1
        current = slice(start, stop, table_step)
        up = slice(start - (m + 1), stop - (m + 1), table_step)
        left = slice(start - 1, stop - 1, table_step)
        diagonal = slice(start - (m + 2), stop - (m + 2), table_step)
        cost_cells = slice((d - m - 1) + lo * (m - 1),
                           (d - m - 1) + hi * (m - 1) + 1, cost_step)
        gap_a = slice(lo - 1, hi)
        gap_b_stop = d - hi - 2
        gap_b = slice(d - lo - 1, None if gap_b_stop < 0 else gap_b_stop, -1)
        entries.append((current, up, left, diagonal, cost_cells, gap_a, gap_b))
    return tuple(entries)


def _flatten(table: np.ndarray) -> np.ndarray:
    return table.reshape(table.shape[0], -1)


def _gather(table: np.ndarray, batch: np.ndarray, rows: np.ndarray,
            cols: np.ndarray) -> np.ndarray:
    """Read one cell per batch entry from a (batch, n, m) table."""
    return table[batch, rows, cols]


def _spatial_batch(trajectories: Sequence) -> list[np.ndarray]:
    return [as_points(t) for t in trajectories]


def _spatiotemporal_batch(trajectories: Sequence, name: str) -> list[np.ndarray]:
    arrays = [as_points(t, spatial_only=False) for t in trajectories]
    for array in arrays:
        if array.shape[1] < 3:
            raise ValueError(f"{name} requires trajectories with a time column (lon, lat, t)")
    return arrays


def _check_batch(a: Sequence, b: Sequence) -> None:
    if len(a) != len(b):
        raise ValueError("batch kernels need equally long trajectory lists")
    if len(a) == 0:
        raise ValueError("batch kernels need at least one trajectory pair")


# ------------------------------------------------------------------------- DTW

def _dtw_single_banded(cost: np.ndarray, band: int) -> float:
    """Wavefront DTW restricted to the Sakoe–Chiba band ``|i - j| ≤ band``."""
    n, m = cost.shape
    band = max(int(band), abs(n - m))
    table = np.full((n + 1, m + 1), np.inf)
    table[0, 0] = 0.0
    for i, j in _anti_diagonals(n, m):
        keep = np.abs(i - j) <= band
        if not keep.any():
            continue
        i, j = i[keep], j[keep]
        best = np.minimum(table[i - 1, j], np.minimum(table[i, j - 1], table[i - 1, j - 1]))
        table[i, j] = cost[i - 1, j - 1] + best
    return float(table[n, m])


@_register_batch("dtw")
def dtw_batch(trajectories_a: Sequence, trajectories_b: Sequence,
              band: int | None = None) -> np.ndarray:
    """DTW distances for a batch of trajectory pairs."""
    _check_batch(trajectories_a, trajectories_b)
    arrays_a = _spatial_batch(trajectories_a)
    arrays_b = _spatial_batch(trajectories_b)
    if band is not None:
        # The band geometry depends on each pair's lengths, so banded DTW runs the
        # per-pair wavefront instead of the stacked sweep.
        return np.array([
            _dtw_single_banded(_euclidean_cost(a[None], b[None])[0], band)
            for a, b in zip(arrays_a, arrays_b)
        ])
    a, lengths_a = _pad_points(arrays_a)
    b, lengths_b = _pad_points(arrays_b)
    cost = _euclidean_cost(a, b)
    batch, n, m = cost.shape
    table = np.full((batch, n + 1, m + 1), np.inf)
    table[:, 0, 0] = 0.0
    flat, flat_cost = _flatten(table), _flatten(cost)
    for current, up, left, diagonal, cost_cells, _, _ in _diagonal_slices(n, m):
        best = np.minimum(flat[:, up], flat[:, left])
        np.minimum(best, flat[:, diagonal], out=best)
        best += flat_cost[:, cost_cells]
        flat[:, current] = best
    return _gather(table, np.arange(batch), lengths_a, lengths_b)


@register_kernel("dtw")
def dtw_kernel(trajectory_a, trajectory_b, band: int | None = None) -> float:
    """Vectorized (optionally banded) DTW distance between two trajectories."""
    return float(dtw_batch([trajectory_a], [trajectory_b], band=band)[0])


# ------------------------------------------------------------------------- ERP

@_register_batch("erp")
def erp_batch(trajectories_a: Sequence, trajectories_b: Sequence,
              gap=None) -> np.ndarray:
    """ERP distances for a batch of trajectory pairs."""
    _check_batch(trajectories_a, trajectories_b)
    gap_point = np.zeros(2) if gap is None else np.asarray(gap, dtype=np.float64)[:2]
    a, lengths_a = _pad_points(_spatial_batch(trajectories_a))
    b, lengths_b = _pad_points(_spatial_batch(trajectories_b))
    gap_cost_a = np.sqrt(((a - gap_point) ** 2).sum(axis=-1))
    gap_cost_b = np.sqrt(((b - gap_point) ** 2).sum(axis=-1))
    cost = _euclidean_cost(a, b)
    batch, n, m = cost.shape
    table = np.zeros((batch, n + 1, m + 1))
    table[:, 1:, 0] = np.cumsum(gap_cost_a, axis=1)
    table[:, 0, 1:] = np.cumsum(gap_cost_b, axis=1)
    flat, flat_cost = _flatten(table), _flatten(cost)
    for current, up, left, diagonal, cost_cells, gap_a, gap_b in _diagonal_slices(n, m):
        substitution = flat[:, diagonal] + flat_cost[:, cost_cells]
        delete_a = flat[:, up] + gap_cost_a[:, gap_a]
        delete_b = flat[:, left] + gap_cost_b[:, gap_b]
        np.minimum(delete_a, delete_b, out=delete_a)
        np.minimum(substitution, delete_a, out=substitution)
        flat[:, current] = substitution
    return _gather(table, np.arange(batch), lengths_a, lengths_b)


@register_kernel("erp")
def erp_kernel(trajectory_a, trajectory_b, gap=None) -> float:
    """Vectorized ERP distance with reference (gap) point ``gap``."""
    return float(erp_batch([trajectory_a], [trajectory_b], gap=gap)[0])


# ------------------------------------------------------------------- EDR, LCSS

def _match_tensor(a: np.ndarray, b: np.ndarray, epsilon: float) -> np.ndarray:
    """(batch, n, m) mask of points matching within ``epsilon`` on every coordinate."""
    match = None
    for axis in range(a.shape[-1]):
        delta = a[:, :, None, axis] - b[:, None, :, axis]
        np.abs(delta, out=delta)
        close = delta <= epsilon
        if match is None:
            match = close
        else:
            match &= close
    return match


@_register_batch("edr")
def edr_batch(trajectories_a: Sequence, trajectories_b: Sequence,
              epsilon: float = 0.25) -> np.ndarray:
    """EDR distances for a batch of trajectory pairs."""
    if epsilon <= 0:
        raise ValueError("epsilon must be positive")
    _check_batch(trajectories_a, trajectories_b)
    a, lengths_a = _pad_points(_spatial_batch(trajectories_a))
    b, lengths_b = _pad_points(_spatial_batch(trajectories_b))
    match = _match_tensor(a, b, epsilon)
    batch, n, m = match.shape
    table = np.zeros((batch, n + 1, m + 1))
    table[:, :, 0] = np.arange(n + 1)
    table[:, 0, :] = np.arange(m + 1)
    flat, flat_match = _flatten(table), _flatten(match)
    for current, up, left, diagonal, cost_cells, _, _ in _diagonal_slices(n, m):
        substitution = flat[:, diagonal] + np.where(flat_match[:, cost_cells], 0.0, 1.0)
        gap = np.minimum(flat[:, up], flat[:, left])
        gap += 1.0
        np.minimum(substitution, gap, out=substitution)
        flat[:, current] = substitution
    return _gather(table, np.arange(batch), lengths_a, lengths_b)


@register_kernel("edr")
def edr_kernel(trajectory_a, trajectory_b, epsilon: float = 0.25) -> float:
    """Vectorized EDR distance with matching threshold ``epsilon``."""
    return float(edr_batch([trajectory_a], [trajectory_b], epsilon=epsilon)[0])


@_register_batch("lcss")
def lcss_batch(trajectories_a: Sequence, trajectories_b: Sequence,
               epsilon: float = 0.25) -> np.ndarray:
    """LCSS distances (``1 − LCSS/min(n, m)``) for a batch of trajectory pairs."""
    if epsilon <= 0:
        raise ValueError("epsilon must be positive")
    _check_batch(trajectories_a, trajectories_b)
    arrays_a = _spatial_batch(trajectories_a)
    arrays_b = _spatial_batch(trajectories_b)
    a, lengths_a = _pad_points(arrays_a)
    b, lengths_b = _pad_points(arrays_b)
    match = _match_tensor(a, b, epsilon)
    batch, n, m = match.shape
    table = np.zeros((batch, n + 1, m + 1), dtype=np.int64)
    flat, flat_match = _flatten(table), _flatten(match)
    for current, up, left, diagonal, cost_cells, _, _ in _diagonal_slices(n, m):
        flat[:, current] = np.where(
            flat_match[:, cost_cells],
            flat[:, diagonal] + 1,
            np.maximum(flat[:, up], flat[:, left]),
        )
    common = _gather(table, np.arange(batch), lengths_a, lengths_b)
    shorter = np.minimum(lengths_a, lengths_b)
    return 1.0 - common / shorter


@register_kernel("lcss")
def lcss_kernel(trajectory_a, trajectory_b, epsilon: float = 0.25) -> float:
    """Vectorized LCSS distance in ``[0, 1]``."""
    return float(lcss_batch([trajectory_a], [trajectory_b], epsilon=epsilon)[0])


# --------------------------------------------------------------------- Fréchet

@_register_batch("frechet")
def frechet_batch(trajectories_a: Sequence, trajectories_b: Sequence) -> np.ndarray:
    """Discrete Fréchet distances for a batch of trajectory pairs.

    Uses the padded-table formulation: with an ``inf`` border and a single zero
    sentinel at ``(0, 0)``, the recurrence ``max(min(up, left, diag), cost)``
    reproduces the reference's explicit first-row/column cumulative maxima.
    """
    _check_batch(trajectories_a, trajectories_b)
    a, lengths_a = _pad_points(_spatial_batch(trajectories_a))
    b, lengths_b = _pad_points(_spatial_batch(trajectories_b))
    cost = _euclidean_cost(a, b)
    batch, n, m = cost.shape
    table = np.full((batch, n + 1, m + 1), np.inf)
    table[:, 0, 0] = 0.0
    flat, flat_cost = _flatten(table), _flatten(cost)
    for current, up, left, diagonal, cost_cells, _, _ in _diagonal_slices(n, m):
        reachable = np.minimum(flat[:, up], flat[:, left])
        np.minimum(reachable, flat[:, diagonal], out=reachable)
        np.maximum(reachable, flat_cost[:, cost_cells], out=reachable)
        flat[:, current] = reachable
    return _gather(table, np.arange(batch), lengths_a, lengths_b)


@register_kernel("frechet")
def frechet_kernel(trajectory_a, trajectory_b) -> float:
    """Vectorized discrete Fréchet distance."""
    return float(frechet_batch([trajectory_a], [trajectory_b])[0])


# ------------------------------------------------------------------------ DITA

@_register_batch("dita")
def dita_batch(trajectories_a: Sequence, trajectories_b: Sequence,
               lambda_spatial: float = 0.5, time_scale: float = 1.0) -> np.ndarray:
    """DITA spatio-temporal distances for a batch of trajectory pairs."""
    _check_batch(trajectories_a, trajectories_b)
    arrays_a = _spatiotemporal_batch(trajectories_a, "dita_distance")
    arrays_b = _spatiotemporal_batch(trajectories_b, "dita_distance")
    a, lengths_a = _pad_points(arrays_a)
    b, lengths_b = _pad_points(arrays_b)
    batch = len(arrays_a)
    cost = np.stack([
        spatiotemporal_point_cost(a[index], b[index], lambda_spatial, time_scale)
        for index in range(batch)
    ])
    _, n, m = cost.shape
    table = np.full((batch, n + 1, m + 1), np.inf)
    table[:, 0, 0] = 0.0
    flat, flat_cost = _flatten(table), _flatten(cost)
    for current, up, left, diagonal, cost_cells, _, _ in _diagonal_slices(n, m):
        best = np.minimum(flat[:, up], flat[:, left])
        np.minimum(best, flat[:, diagonal], out=best)
        best += flat_cost[:, cost_cells]
        flat[:, current] = best
    return _gather(table, np.arange(batch), lengths_a, lengths_b)


@register_kernel("dita")
def dita_kernel(trajectory_a, trajectory_b, lambda_spatial: float = 0.5,
                time_scale: float = 1.0) -> float:
    """Vectorized DITA spatio-temporal distance."""
    return float(dita_batch([trajectory_a], [trajectory_b],
                            lambda_spatial=lambda_spatial, time_scale=time_scale)[0])
