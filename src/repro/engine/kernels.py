"""NumPy-vectorized distance kernels (anti-diagonal wavefront DP).

The reference implementations in :mod:`repro.distances` fill their dynamic-programming
tables one cell at a time in Python.  The kernels here compute the same tables by
sweeping anti-diagonals: every cell on diagonal ``d = i + j`` depends only on cells of
diagonals ``d-1`` and ``d-2``, so a whole diagonal is one fancy-indexed NumPy update.
On top of that, the batch variants stack the cost matrices of many trajectory pairs
into one ``(batch, n, m)`` tensor and sweep all pairs simultaneously, which amortises
the per-operation NumPy overhead across the batch — this is what the engine's
``chunked`` and ``process`` strategies use.

Every kernel performs cell-for-cell the same arithmetic as its reference
implementation, so results agree to floating-point round-off (the parity suite
enforces 1e-9).  Kernels are registered in :mod:`repro.distances.base` next to the
reference functions; pairwise kernels are thin wrappers over the batch-of-one case so
the two paths cannot drift apart.

``dtw`` additionally accepts a Sakoe–Chiba ``band`` radius: cells with
``|i - j| > band`` are never opened.  The band is widened to ``|n - m|`` when the two
sequences differ in length by more than the requested radius, so the result is always
finite.

**τ-aware early abandoning.**  Every batch kernel accepts ``thresholds``, a
``(batch,)`` vector of per-pair abandon thresholds (typically the kNN heap's
running k-th distance τ).  After each anti-diagonal sweep the kernel computes an
*admissible* per-pair lower bound on the final value from the DP frontier — the
minimum over the last two diagonals for the min-plus and min-max measures, the
analogous edit-count / remaining-match bounds for EDR and LCSS — and marks pairs
whose bound *strictly* exceeds their threshold as abandoned.  Abandoned (and
finished) pairs are compacted out of the active batch so they stop consuming
cells; abandoned pairs report ``+inf``.  Because the bound is a true lower bound
and the comparison is strict, a pair is only abandoned when its exact distance
provably exceeds its threshold, so consumers that treat ``+inf`` like a pruned
candidate (``knn_search``) keep bit-identical results.  Survivors run through the
same per-diagonal arithmetic as the unthresholded sweep, so their values are
bit-identical too.  ``thresholds=None`` (or all ``+inf``) is a no-op.

The module also keeps a process-local **DP cell-work counter**
(:func:`dp_cell_count` / :func:`reset_dp_cell_count`): every kernel adds the
number of DP cells it actually computed, which is how
``benchmarks/prune_speedup.py`` measures the work early abandoning saves.  The
counter is per process — chunks dispatched to a ``process``-strategy pool count
in the workers, not the parent.  Since the telemetry layer landed the counter
lives in the :mod:`repro.obs` registry: ``engine.dp_cells`` is the total,
``engine.dp_cells.<measure>`` splits it per measure, and
``engine.abandoned.<measure>`` counts pairs the τ-sweep abandoned.  The
per-measure counters partition the total exactly, and the legacy
:func:`dp_cell_count` API reads straight through to the registry.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Sequence

import numpy as np

from ..distances.base import as_points, register_kernel
from ..distances.spatiotemporal import spatiotemporal_point_cost
from ..obs import registry as obs_registry

__all__ = [
    "dtw_kernel",
    "erp_kernel",
    "edr_kernel",
    "lcss_kernel",
    "frechet_kernel",
    "dita_kernel",
    "dtw_batch",
    "erp_batch",
    "edr_batch",
    "lcss_batch",
    "frechet_batch",
    "dita_batch",
    "get_batch_kernel",
    "available_batch_kernels",
    "dp_cell_count",
    "reset_dp_cell_count",
    "add_dp_cell_count",
]

_BATCH_KERNELS: dict[str, callable] = {}


def _register_batch(name: str):
    def decorator(func):
        _BATCH_KERNELS[name.lower()] = func
        return func

    return decorator


def get_batch_kernel(name: str):
    """Batch kernel for ``name`` (lists of trajectories → distance vector), or None."""
    return _BATCH_KERNELS.get(name.lower())


def available_batch_kernels() -> list[str]:
    """Names of every measure with a batch kernel."""
    return sorted(_BATCH_KERNELS)


# ------------------------------------------------------------ DP cell accounting

_CELLS_TOTAL = obs_registry.counter("engine.dp_cells")


@lru_cache(maxsize=None)
def _measure_cell_counter(measure: str):
    return obs_registry.counter(f"engine.dp_cells.{measure}")


@lru_cache(maxsize=None)
def _measure_abandon_counter(measure: str):
    return obs_registry.counter(f"engine.abandoned.{measure}")


def reset_dp_cell_count() -> None:
    """Zero the process-local counters of DP cell work (total, per-measure, abandons)."""
    registry = obs_registry.get_registry()
    registry.reset("engine.dp_cells")
    registry.reset("engine.abandoned")


def dp_cell_count() -> int:
    """DP cells computed by the kernels in this process since the last reset.

    Reads the ``engine.dp_cells`` registry counter — the same number the
    telemetry snapshot reports, kept as the stable benchmark-facing API.
    """
    return _CELLS_TOTAL.value


def _count_cells(cells: int, measure: str | None = None) -> None:
    _CELLS_TOTAL.add(cells)
    if measure is not None:
        _measure_cell_counter(measure).add(cells)


def _count_abandoned(pairs: int, measure: str) -> None:
    """Record ``pairs`` τ-abandoned pairs for ``measure``."""
    if pairs:
        _measure_abandon_counter(measure).add(pairs)


def add_dp_cell_count(cells: int) -> None:
    """Fold externally computed DP cells into this process's *total* counter.

    Compatibility shim from before worker telemetry deltas: the ``process``
    and ``shared`` strategies now return full registry deltas (including the
    per-measure split) which the parent merges via
    ``Registry.merge_delta``, so the engine no longer calls this.  It remains
    for external callers that account cell work measured elsewhere; such
    cells land in the total only, not in any ``engine.dp_cells.<measure>``
    counter.
    """
    _CELLS_TOTAL.add(cells)


# --------------------------------------------------------------------- helpers

def _pad_points(arrays: Sequence[np.ndarray]) -> tuple[np.ndarray, np.ndarray]:
    """Stack variable-length point arrays into a zero-padded (batch, n, d) tensor.

    Padded rows are garbage by construction but provably unused: every DP below only
    reads cells ``(i, j)`` with ``i ≤ len(a)`` and ``j ≤ len(b)``, and forward DP cells
    never depend on later rows/columns.
    """
    lengths = np.array([len(a) for a in arrays], dtype=np.intp)
    width = arrays[0].shape[1]
    padded = np.zeros((len(arrays), int(lengths.max()), width))
    for index, array in enumerate(arrays):
        padded[index, : len(array)] = array
    return padded, lengths


def _euclidean_cost(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """(batch, n, m) tensor of point distances between padded point tensors.

    Computed coordinate-by-coordinate (no (batch, n, m, d) temporary) with the same
    left-to-right summation order as :func:`repro.distances.base.point_distance_matrix`,
    so the costs — and therefore every DP result built on them — match the reference
    bit for bit.
    """
    squared = None
    for axis in range(a.shape[-1]):
        delta = a[:, :, None, axis] - b[:, None, :, axis]
        delta *= delta
        if squared is None:
            squared = delta
        else:
            squared += delta
    return np.sqrt(squared, out=squared)


def _anti_diagonals(n: int, m: int):
    """Yield (i, j) index vectors covering each anti-diagonal of an (n+1, m+1) table."""
    for d in range(2, n + m + 1):
        i = np.arange(max(1, d - m), min(n, d - 1) + 1)
        yield i, d - i


@lru_cache(maxsize=512)
def _diagonal_slices(n: int, m: int) -> tuple:
    """Constant-stride slices addressing each anti-diagonal of the flattened tables.

    A cell ``(i, j = d − i)`` of the padded ``(n+1, m+1)`` table sits at flat offset
    ``d + i·m``, so an anti-diagonal — and each of its three DP predecessors — is a
    plain strided slice of the flattened array.  Slices are views: the sweep never
    materialises index arrays or gather copies.  Per diagonal the tuple holds slices
    for (current, up, left, diagonal) in the table, the matching cost-matrix cells
    (flat offset ``(d−m−1) + i·(m−1)``), and the ``i−1`` / ``j−1`` ranges used by
    ERP's gap costs.
    """
    entries = []
    for d in range(2, n + m + 1):
        lo, hi = max(1, d - m), min(n, d - 1)
        length = hi - lo + 1
        table_step = m if length > 1 else 1
        cost_step = (m - 1) if length > 1 else 1
        start = d + lo * m
        stop = d + hi * m + 1
        current = slice(start, stop, table_step)
        up = slice(start - (m + 1), stop - (m + 1), table_step)
        left = slice(start - 1, stop - 1, table_step)
        diagonal = slice(start - (m + 2), stop - (m + 2), table_step)
        cost_cells = slice((d - m - 1) + lo * (m - 1),
                           (d - m - 1) + hi * (m - 1) + 1, cost_step)
        gap_a = slice(lo - 1, hi)
        gap_b_stop = d - hi - 2
        gap_b = slice(d - lo - 1, None if gap_b_stop < 0 else gap_b_stop, -1)
        entries.append((current, up, left, diagonal, cost_cells, gap_a, gap_b))
    return tuple(entries)


def _flatten(table: np.ndarray) -> np.ndarray:
    return table.reshape(table.shape[0], -1)


def _gather(table: np.ndarray, batch: np.ndarray, rows: np.ndarray,
            cols: np.ndarray) -> np.ndarray:
    """Read one cell per batch entry from a (batch, n, m) table."""
    return table[batch, rows, cols]


def _spatial_batch(trajectories: Sequence) -> list[np.ndarray]:
    return [as_points(t) for t in trajectories]


def _spatiotemporal_batch(trajectories: Sequence, name: str) -> list[np.ndarray]:
    arrays = [as_points(t, spatial_only=False) for t in trajectories]
    for array in arrays:
        if array.shape[1] < 3:
            raise ValueError(f"{name} requires trajectories with a time column (lon, lat, t)")
    return arrays


def _check_batch(a: Sequence, b: Sequence) -> None:
    if len(a) != len(b):
        raise ValueError("batch kernels need equally long trajectory lists")
    if len(a) == 0:
        raise ValueError("batch kernels need at least one trajectory pair")


#: Safety slack for in-kernel abandon comparisons.  The remaining-work suffix
#: sums are rounded differently than the DP recurrence, so a bound can exceed
#: the true value by a few ulps; abandoning only past ``τ + atol + rtol·|τ|``
#: keeps exactly-tied candidates (bound == τ) alive under floating point.  The
#: slack dwarfs accumulated rounding (≲ 1e-13 relative for 1e4-step sums) while
#: staying far below any meaningful distance gap.
_ABANDON_ATOL = 1e-10
_ABANDON_RTOL = 1e-12


def _abandon_cutoff(tau):
    """Threshold vector (or scalar) padded by the floating-point safety slack."""
    return tau + (_ABANDON_ATOL + _ABANDON_RTOL * np.abs(tau))


def _as_thresholds(thresholds, batch: int) -> np.ndarray | None:
    """Coerce ``thresholds`` to a ``(batch,)`` float vector (scalars broadcast)."""
    if thresholds is None:
        return None
    array = np.asarray(thresholds, dtype=np.float64)
    if array.ndim == 0:
        array = np.full(batch, float(array))
    if array.shape != (batch,):
        raise ValueError(f"thresholds must be a scalar or a ({batch},) vector, "
                         f"got shape {array.shape}")
    return array


# ------------------------------------------------- τ-aware abandoning sweep

def _suffix_sums(values: np.ndarray) -> np.ndarray:
    """(B, n) → (B, n+1) with ``out[:, i] = values[:, i:].sum(axis=1)``."""
    out = np.zeros((values.shape[0], values.shape[1] + 1))
    out[:, :-1] = np.cumsum(values[:, ::-1], axis=1)[:, ::-1]
    return out


def _suffix_max(values: np.ndarray) -> np.ndarray:
    """(B, n) → (B, n+1) with ``out[:, i] = values[:, i:].max(axis=1)`` (0 past the end)."""
    out = np.zeros((values.shape[0], values.shape[1] + 1))
    out[:, :-1] = np.maximum.accumulate(values[:, ::-1], axis=1)[:, ::-1]
    return out


def _sweep_abandoning(mode: str, data: np.ndarray, lengths_a: np.ndarray,
                      lengths_b: np.ndarray, thresholds: np.ndarray,
                      gap_cost_a: np.ndarray | None = None,
                      gap_cost_b: np.ndarray | None = None,
                      measure: str | None = None) -> np.ndarray:
    """Anti-diagonal sweep with per-pair early abandoning and batch compaction.

    ``mode`` selects the recurrence: ``"dtw"`` (min-plus over a cost tensor,
    shared by DITA), ``"frechet"`` (min-max), ``"erp"`` (min-plus with gap
    borders), ``"edr"`` / ``"lcss"`` (edit / match counting over a boolean match
    tensor).  ``data`` is the stacked ``(batch, n, m)`` cost (or match) tensor.

    After sweeping diagonal ``d`` the final cell of every unfinished pair lies
    strictly beyond the cells with ``i + j ∈ {d−1, d}``, and every monotone DP
    path must visit one of those cells (steps advance ``i + j`` by 1 or 2), so
    they form a *cut*.  For the min-plus / min-max measures the accumulated
    value is non-decreasing along a path, hence the minimum over the cut —
    restricted to each pair's real ``(≤ n_p, ≤ m_p)`` rectangle and including
    the real border cells where the table has them (ERP's cumulative gap costs,
    EDR's edit counts) — lower-bounds the final value.  EDR adds the
    still-unavoidable ``|remaining length difference|`` edits; LCSS tracks the
    admissible *upper* bound ``table + min(remaining rows, remaining cols)`` on
    the final common length, which converts to a lower bound on the distance.

    On top of the cut value, every cut cell ``(i, j)`` adds an admissible
    *remaining-work* term in the spirit of the UCR suite's cascading bounds.
    The remaining path still consumes every remaining row and every remaining
    column, so (taking the larger of the row- and column-side estimates):

    * min-plus (DTW/DITA): each remaining interior row costs at least its
      row-minimum point cost (restricted to the pair's real columns), and the
      forced final cell costs exactly ``cost[n_p−1, m_p−1]`` — a suffix sum;
    * ERP: a remaining row is matched (≥ its row-minimum cost) or gapped
      (≥ its gap cost), so each contributes the smaller of the two;
    * Fréchet: the running maximum must still absorb every remaining row's
      minimum cost — a suffix maximum;
    * EDR: remaining edits are at least the remaining length difference, the
      number of remaining rows with no ε-matchable partner, and the final-pair
      mismatch — combined with ``max``, never summed (they can share steps);
    * LCSS: the remaining common length is capped by the remaining row/column
      counts and by the number of remaining rows/columns that are ε-matchable
      at all.

    The remaining terms only apply to *alive* pairs — their cut lies strictly
    before the final cell — so a finished pair's last step is never
    double-counted.

    Pairs whose bound strictly exceeds their threshold are marked dead, as are
    pairs whose final cell was just computed (their value is recorded).  Once an
    eighth (or, for the small batches the kNN refiner sends, one) of the
    physical rows are dead, the batch is compacted so dead pairs stop consuming
    cells.  Row compaction never changes per-row arithmetic, so surviving pairs
    match the unthresholded sweep bit for bit.

    Returns the final distances with ``+inf`` for abandoned pairs.

    ``measure`` tags the telemetry counters (cells / abandons); it defaults to
    ``mode`` but differs when a measure borrows another's recurrence (DITA
    sweeps with ``mode="dtw"`` yet counts as ``"dita"``).
    """
    measure = measure or mode
    batch, n, m = data.shape
    la = lengths_a.astype(np.int64)
    lb = lengths_b.astype(np.int64)
    tau = _abandon_cutoff(thresholds)
    if mode in ("dtw", "frechet"):
        table = np.full((batch, n + 1, m + 1), np.inf)
        table[:, 0, 0] = 0.0
    elif mode == "erp":
        table = np.zeros((batch, n + 1, m + 1))
        table[:, 1:, 0] = np.cumsum(gap_cost_a, axis=1)
        table[:, 0, 1:] = np.cumsum(gap_cost_b, axis=1)
    elif mode == "edr":
        table = np.zeros((batch, n + 1, m + 1))
        table[:, :, 0] = np.arange(n + 1)
        table[:, 0, :] = np.arange(m + 1)
    elif mode == "lcss":
        # Float table: the counts are small integers, exactly representable, so
        # the final 1 − common/shorter matches the int64 path bit for bit.
        table = np.zeros((batch, n + 1, m + 1))
    else:
        raise ValueError(f"unknown sweep mode '{mode}'")
    flat = _flatten(table)
    flat_data = _flatten(data)
    out = np.full(batch, np.inf)
    positions = np.arange(batch)
    alive = np.ones(batch, dtype=bool)
    shorter = np.minimum(la, lb).astype(np.float64) if mode == "lcss" else None
    # Remaining-work suffix arrays (see the docstring): ``row_rem[:, i]`` is an
    # admissible estimate of the cost the path still pays after a cut cell in
    # table row ``i`` (column twin ``col_rem[:, j]``), indexed 0..n / 0..m.
    rows_idx = np.arange(batch)
    row_valid = np.arange(n)[None, :] < la[:, None]
    col_valid = np.arange(m)[None, :] < lb[:, None]
    if mode in ("dtw", "frechet", "erp"):
        rowmin = np.where(col_valid[:, None, :], data, np.inf).min(axis=2)
        colmin = np.where(row_valid[:, :, None], data, np.inf).min(axis=1)
        tail = data[rows_idx, la - 1, lb - 1]
    if mode == "dtw":
        # Interior rows i..la−2 each pay ≥ their row minimum; the forced final
        # cell pays exactly ``tail``.
        row_rem = _suffix_sums(
            np.where(np.arange(n)[None, :] < (la - 1)[:, None], rowmin, 0.0))
        row_rem += tail[:, None]
        col_rem = _suffix_sums(
            np.where(np.arange(m)[None, :] < (lb - 1)[:, None], colmin, 0.0))
        col_rem += tail[:, None]
    elif mode == "erp":
        row_rem = _suffix_sums(
            np.where(row_valid, np.minimum(rowmin, gap_cost_a), 0.0))
        col_rem = _suffix_sums(
            np.where(col_valid, np.minimum(colmin, gap_cost_b), 0.0))
    elif mode == "frechet":
        row_rem = _suffix_max(
            np.where(np.arange(n)[None, :] < (la - 1)[:, None], rowmin, 0.0))
        np.maximum(row_rem, tail[:, None], out=row_rem)
        col_rem = _suffix_max(
            np.where(np.arange(m)[None, :] < (lb - 1)[:, None], colmin, 0.0))
        np.maximum(col_rem, tail[:, None], out=col_rem)
    elif mode == "edr":
        matchable_rows = (data & col_valid[:, None, :]).any(axis=2)
        matchable_cols = (data & row_valid[:, :, None]).any(axis=1)
        row_rem = _suffix_sums(np.where(row_valid & ~matchable_rows, 1.0, 0.0))
        col_rem = _suffix_sums(np.where(col_valid & ~matchable_cols, 1.0, 0.0))
        tail = np.where(data[rows_idx, la - 1, lb - 1], 0.0, 1.0)
    else:  # lcss: remaining common length is capped by ε-matchable rows/columns
        matchable_rows = (data & col_valid[:, None, :]).any(axis=2)
        matchable_cols = (data & row_valid[:, :, None]).any(axis=1)
        row_rem = _suffix_sums(np.where(row_valid & matchable_rows, 1.0, 0.0))
        col_rem = _suffix_sums(np.where(col_valid & matchable_cols, 1.0, 0.0))
        tail = None
    # Pad the suffix arrays past each pair's real lengths with ±inf: a cut cell
    # outside the pair's rectangle then bounds to ±inf on its own, which lets
    # the per-diagonal statistics below skip validity masks entirely (an inf
    # never wins a min, a −inf never wins a max).
    dead_value = -np.inf if mode == "lcss" else np.inf
    row_rem[np.arange(n + 1)[None, :] > la[:, None]] = dead_value
    col_rem[np.arange(m + 1)[None, :] > lb[:, None]] = dead_value
    # Frontier statistic of diagonal 1 — its only cells are (0, 1) and (1, 0),
    # real whenever the table stores borders (always, since lengths ≥ 1).
    if mode in ("dtw", "frechet"):
        prev_stat = np.full(batch, np.inf)
    elif mode == "erp":
        prev_stat = np.minimum(
            gap_cost_b[:, 0] + np.maximum(row_rem[:, 0], col_rem[:, 1]),
            gap_cost_a[:, 0] + np.maximum(row_rem[:, 1], col_rem[:, 0]))
    elif mode == "edr":
        prev_stat = 1.0 + np.minimum(
            np.maximum.reduce([np.abs(la - lb + 1).astype(np.float64),
                               row_rem[:, 0], col_rem[:, 1], tail]),
            np.maximum.reduce([np.abs(la - lb - 1).astype(np.float64),
                               row_rem[:, 1], col_rem[:, 0], tail]))
    else:  # lcss: best common count still achievable through diagonal 1
        prev_stat = np.maximum(
            np.minimum.reduce([la.astype(np.float64), (lb - 1).astype(np.float64),
                               row_rem[:, 0], col_rem[:, 1]]),
            np.minimum.reduce([(la - 1).astype(np.float64), lb.astype(np.float64),
                               row_rem[:, 1], col_rem[:, 0]]))

    for d, (current, up, left, diagonal, cost_cells, gap_a, gap_b) in enumerate(
            _diagonal_slices(n, m), start=2):
        lo, hi = max(1, d - m), min(n, d - 1)
        i_vec = np.arange(lo, hi + 1)
        j_vec = d - i_vec
        _count_cells(flat.shape[0] * len(i_vec), measure)
        if mode == "dtw":
            best = np.minimum(flat[:, up], flat[:, left])
            np.minimum(best, flat[:, diagonal], out=best)
            best += flat_data[:, cost_cells]
            flat[:, current] = best
        elif mode == "frechet":
            reachable = np.minimum(flat[:, up], flat[:, left])
            np.minimum(reachable, flat[:, diagonal], out=reachable)
            np.maximum(reachable, flat_data[:, cost_cells], out=reachable)
            flat[:, current] = reachable
        elif mode == "erp":
            substitution = flat[:, diagonal] + flat_data[:, cost_cells]
            delete_a = flat[:, up] + gap_cost_a[:, gap_a]
            delete_b = flat[:, left] + gap_cost_b[:, gap_b]
            np.minimum(delete_a, delete_b, out=delete_a)
            np.minimum(substitution, delete_a, out=substitution)
            flat[:, current] = substitution
        elif mode == "edr":
            substitution = flat[:, diagonal] + np.where(flat_data[:, cost_cells],
                                                        0.0, 1.0)
            gap = np.minimum(flat[:, up], flat[:, left])
            gap += 1.0
            np.minimum(substitution, gap, out=substitution)
            flat[:, current] = substitution
        else:  # lcss
            flat[:, current] = np.where(
                flat_data[:, cost_cells],
                flat[:, diagonal] + 1,
                np.maximum(flat[:, up], flat[:, left]),
            )

        finishing = alive & (la + lb == d)
        if finishing.any():
            rows_idx = np.nonzero(finishing)[0]
            values = flat[rows_idx, d + la[rows_idx] * m]
            if mode == "lcss":
                values = 1.0 - values / shorter[rows_idx]
            out[positions[rows_idx]] = values
            alive[finishing] = False

        if alive.any():
            cur = flat[:, current]
            row_part = row_rem[:, i_vec]
            col_part = col_rem[:, j_vec]
            # No validity masks: cut cells past a pair's real rectangle pick up
            # ±inf from the padded suffix arrays and drop out of the reduction
            # (garbage table values stay finite or inf, never NaN).
            if mode == "lcss":
                cap = np.minimum.reduce([
                    (la[:, None] - i_vec[None, :]).astype(np.float64),
                    (lb[:, None] - j_vec[None, :]).astype(np.float64),
                    row_part, col_part])
                stat = (cur + cap).max(axis=1)
                if d <= m:
                    border = np.minimum.reduce([
                        la.astype(np.float64), (lb - d).astype(np.float64),
                        row_rem[:, 0], col_rem[:, d]])
                    np.maximum(stat, border, out=stat)
                if d <= n:
                    border = np.minimum.reduce([
                        (la - d).astype(np.float64), lb.astype(np.float64),
                        row_rem[:, d], col_rem[:, 0]])
                    np.maximum(stat, border, out=stat)
                bound = 1.0 - np.maximum(stat, prev_stat) / shorter
            elif mode == "edr":
                remaining = np.maximum.reduce([
                    np.abs((la[:, None] - i_vec[None, :])
                           - (lb[:, None] - j_vec[None, :])).astype(np.float64),
                    row_part, col_part,
                    np.broadcast_to(tail[:, None], row_part.shape)])
                stat = (cur + remaining).min(axis=1)
                if d <= m:
                    border = d + np.maximum.reduce([
                        np.abs(la - lb + d).astype(np.float64),
                        row_rem[:, 0], col_rem[:, d], tail])
                    np.minimum(stat, border, out=stat)
                if d <= n:
                    border = d + np.maximum.reduce([
                        np.abs(la - d - lb).astype(np.float64),
                        row_rem[:, d], col_rem[:, 0], tail])
                    np.minimum(stat, border, out=stat)
                bound = np.minimum(stat, prev_stat)
            elif mode == "frechet":
                stat = np.maximum(cur, np.maximum(row_part, col_part)).min(axis=1)
                bound = np.minimum(stat, prev_stat)
            else:  # dtw / erp: min-plus with additive remaining work
                stat = (cur + np.maximum(row_part, col_part)).min(axis=1)
                if mode == "erp":
                    if d <= m:
                        np.minimum(stat, flat[:, d]
                                   + np.maximum(row_rem[:, 0], col_rem[:, d]),
                                   out=stat)
                    if d <= n:
                        np.minimum(stat, flat[:, d * (m + 1)]
                                   + np.maximum(row_rem[:, d], col_rem[:, 0]),
                                   out=stat)
                bound = np.minimum(stat, prev_stat)
            prev_stat = stat
            dead = alive & (bound > tau)
            if dead.any():
                # A pair is marked dead at most once (then compacted out or
                # excluded by ``alive``), so summing here counts each
                # abandoned pair exactly once.
                _count_abandoned(int(np.count_nonzero(dead)), measure)
                alive[dead] = False

        if not alive.any():
            return out
        dead_rows = alive.size - int(np.count_nonzero(alive))
        if dead_rows and dead_rows * 8 >= alive.size:
            keep = alive
            flat = flat[keep]
            flat_data = flat_data[keep]
            la, lb = la[keep], lb[keep]
            tau = tau[keep]
            positions = positions[keep]
            prev_stat = prev_stat[keep]
            row_rem = row_rem[keep]
            col_rem = col_rem[keep]
            if tail is not None:
                tail = tail[keep]
            if gap_cost_a is not None:
                gap_cost_a = gap_cost_a[keep]
                gap_cost_b = gap_cost_b[keep]
            if shorter is not None:
                shorter = shorter[keep]
            alive = np.ones(flat.shape[0], dtype=bool)
    return out


# ------------------------------------------------------------------------- DTW

def _dtw_single_banded(cost: np.ndarray, band: int,
                       threshold: float = np.inf) -> float:
    """Wavefront DTW restricted to the Sakoe–Chiba band ``|i - j| ≤ band``.

    ``threshold`` enables τ-aware abandoning: after each diagonal, the minimum
    over the last two diagonals' in-band cells lower-bounds the final value
    (in-band cells cut every warping path), so the sweep stops — returning
    ``+inf`` — as soon as that bound strictly exceeds the threshold.
    """
    n, m = cost.shape
    band = max(int(band), abs(n - m))
    table = np.full((n + 1, m + 1), np.inf)
    table[0, 0] = 0.0
    cutoff = _abandon_cutoff(threshold)
    if np.isfinite(threshold):
        # Remaining-work suffixes, as in the batch sweep: interior rows/columns
        # each still pay their minimum cost, the forced final cell pays exactly.
        tail = float(cost[n - 1, m - 1])
        row_rem = np.full(n + 1, tail)
        if n >= 2:
            row_rem[:n - 1] += np.cumsum(cost.min(axis=1)[n - 2::-1])[::-1]
        col_rem = np.full(m + 1, tail)
        if m >= 2:
            col_rem[:m - 1] += np.cumsum(cost.min(axis=0)[m - 2::-1])[::-1]
    previous_stat = np.inf
    for i, j in _anti_diagonals(n, m):
        keep = np.abs(i - j) <= band
        if not keep.any():
            continue
        i, j = i[keep], j[keep]
        _count_cells(len(i), "dtw")
        best = np.minimum(table[i - 1, j], np.minimum(table[i, j - 1], table[i - 1, j - 1]))
        values = cost[i - 1, j - 1] + best
        table[i, j] = values
        if i[-1] == n and j[-1] == m:
            break  # final cell reached: the value is exact, no bound applies
        if np.isfinite(threshold):
            stat = float((values + np.maximum(row_rem[i], col_rem[j])).min())
            if min(stat, previous_stat) > cutoff:
                _count_abandoned(1, "dtw")
                return np.inf
            previous_stat = stat
    return float(table[n, m])


@_register_batch("dtw")
def dtw_batch(trajectories_a: Sequence, trajectories_b: Sequence,
              band: int | None = None, thresholds=None) -> np.ndarray:
    """DTW distances for a batch of trajectory pairs."""
    _check_batch(trajectories_a, trajectories_b)
    thresholds = _as_thresholds(thresholds, len(trajectories_a))
    arrays_a = _spatial_batch(trajectories_a)
    arrays_b = _spatial_batch(trajectories_b)
    if band is not None:
        # The band geometry depends on each pair's lengths, so banded DTW runs the
        # per-pair wavefront instead of the stacked sweep.
        taus = np.full(len(arrays_a), np.inf) if thresholds is None else thresholds
        return np.array([
            _dtw_single_banded(_euclidean_cost(a[None], b[None])[0], band,
                               threshold=tau)
            for a, b, tau in zip(arrays_a, arrays_b, taus)
        ])
    a, lengths_a = _pad_points(arrays_a)
    b, lengths_b = _pad_points(arrays_b)
    cost = _euclidean_cost(a, b)
    if thresholds is not None:
        return _sweep_abandoning("dtw", cost, lengths_a, lengths_b, thresholds)
    batch, n, m = cost.shape
    _count_cells(batch * n * m, "dtw")
    table = np.full((batch, n + 1, m + 1), np.inf)
    table[:, 0, 0] = 0.0
    flat, flat_cost = _flatten(table), _flatten(cost)
    for current, up, left, diagonal, cost_cells, _, _ in _diagonal_slices(n, m):
        best = np.minimum(flat[:, up], flat[:, left])
        np.minimum(best, flat[:, diagonal], out=best)
        best += flat_cost[:, cost_cells]
        flat[:, current] = best
    return _gather(table, np.arange(batch), lengths_a, lengths_b)


@register_kernel("dtw")
def dtw_kernel(trajectory_a, trajectory_b, band: int | None = None,
               threshold: float | None = None) -> float:
    """Vectorized (optionally banded) DTW distance between two trajectories."""
    thresholds = None if threshold is None else [threshold]
    return float(dtw_batch([trajectory_a], [trajectory_b], band=band,
                           thresholds=thresholds)[0])


# ------------------------------------------------------------------------- ERP

@_register_batch("erp")
def erp_batch(trajectories_a: Sequence, trajectories_b: Sequence,
              gap=None, thresholds=None) -> np.ndarray:
    """ERP distances for a batch of trajectory pairs."""
    _check_batch(trajectories_a, trajectories_b)
    thresholds = _as_thresholds(thresholds, len(trajectories_a))
    gap_point = np.zeros(2) if gap is None else np.asarray(gap, dtype=np.float64)[:2]
    a, lengths_a = _pad_points(_spatial_batch(trajectories_a))
    b, lengths_b = _pad_points(_spatial_batch(trajectories_b))
    gap_cost_a = np.sqrt(((a - gap_point) ** 2).sum(axis=-1))
    gap_cost_b = np.sqrt(((b - gap_point) ** 2).sum(axis=-1))
    cost = _euclidean_cost(a, b)
    if thresholds is not None:
        return _sweep_abandoning("erp", cost, lengths_a, lengths_b, thresholds,
                                 gap_cost_a=gap_cost_a, gap_cost_b=gap_cost_b)
    batch, n, m = cost.shape
    _count_cells(batch * n * m, "erp")
    table = np.zeros((batch, n + 1, m + 1))
    table[:, 1:, 0] = np.cumsum(gap_cost_a, axis=1)
    table[:, 0, 1:] = np.cumsum(gap_cost_b, axis=1)
    flat, flat_cost = _flatten(table), _flatten(cost)
    for current, up, left, diagonal, cost_cells, gap_a, gap_b in _diagonal_slices(n, m):
        substitution = flat[:, diagonal] + flat_cost[:, cost_cells]
        delete_a = flat[:, up] + gap_cost_a[:, gap_a]
        delete_b = flat[:, left] + gap_cost_b[:, gap_b]
        np.minimum(delete_a, delete_b, out=delete_a)
        np.minimum(substitution, delete_a, out=substitution)
        flat[:, current] = substitution
    return _gather(table, np.arange(batch), lengths_a, lengths_b)


@register_kernel("erp")
def erp_kernel(trajectory_a, trajectory_b, gap=None,
               threshold: float | None = None) -> float:
    """Vectorized ERP distance with reference (gap) point ``gap``."""
    thresholds = None if threshold is None else [threshold]
    return float(erp_batch([trajectory_a], [trajectory_b], gap=gap,
                           thresholds=thresholds)[0])


# ------------------------------------------------------------------- EDR, LCSS

def _match_tensor(a: np.ndarray, b: np.ndarray, epsilon: float) -> np.ndarray:
    """(batch, n, m) mask of points matching within ``epsilon`` on every coordinate."""
    match = None
    for axis in range(a.shape[-1]):
        delta = a[:, :, None, axis] - b[:, None, :, axis]
        np.abs(delta, out=delta)
        close = delta <= epsilon
        if match is None:
            match = close
        else:
            match &= close
    return match


@_register_batch("edr")
def edr_batch(trajectories_a: Sequence, trajectories_b: Sequence,
              epsilon: float = 0.25, thresholds=None) -> np.ndarray:
    """EDR distances for a batch of trajectory pairs."""
    if epsilon <= 0:
        raise ValueError("epsilon must be positive")
    _check_batch(trajectories_a, trajectories_b)
    thresholds = _as_thresholds(thresholds, len(trajectories_a))
    a, lengths_a = _pad_points(_spatial_batch(trajectories_a))
    b, lengths_b = _pad_points(_spatial_batch(trajectories_b))
    match = _match_tensor(a, b, epsilon)
    if thresholds is not None:
        return _sweep_abandoning("edr", match, lengths_a, lengths_b, thresholds)
    batch, n, m = match.shape
    _count_cells(batch * n * m, "edr")
    table = np.zeros((batch, n + 1, m + 1))
    table[:, :, 0] = np.arange(n + 1)
    table[:, 0, :] = np.arange(m + 1)
    flat, flat_match = _flatten(table), _flatten(match)
    for current, up, left, diagonal, cost_cells, _, _ in _diagonal_slices(n, m):
        substitution = flat[:, diagonal] + np.where(flat_match[:, cost_cells], 0.0, 1.0)
        gap = np.minimum(flat[:, up], flat[:, left])
        gap += 1.0
        np.minimum(substitution, gap, out=substitution)
        flat[:, current] = substitution
    return _gather(table, np.arange(batch), lengths_a, lengths_b)


@register_kernel("edr")
def edr_kernel(trajectory_a, trajectory_b, epsilon: float = 0.25,
               threshold: float | None = None) -> float:
    """Vectorized EDR distance with matching threshold ``epsilon``."""
    thresholds = None if threshold is None else [threshold]
    return float(edr_batch([trajectory_a], [trajectory_b], epsilon=epsilon,
                           thresholds=thresholds)[0])


@_register_batch("lcss")
def lcss_batch(trajectories_a: Sequence, trajectories_b: Sequence,
               epsilon: float = 0.25, thresholds=None) -> np.ndarray:
    """LCSS distances (``1 − LCSS/min(n, m)``) for a batch of trajectory pairs."""
    if epsilon <= 0:
        raise ValueError("epsilon must be positive")
    _check_batch(trajectories_a, trajectories_b)
    thresholds = _as_thresholds(thresholds, len(trajectories_a))
    arrays_a = _spatial_batch(trajectories_a)
    arrays_b = _spatial_batch(trajectories_b)
    a, lengths_a = _pad_points(arrays_a)
    b, lengths_b = _pad_points(arrays_b)
    match = _match_tensor(a, b, epsilon)
    if thresholds is not None:
        return _sweep_abandoning("lcss", match, lengths_a, lengths_b, thresholds)
    batch, n, m = match.shape
    _count_cells(batch * n * m, "lcss")
    table = np.zeros((batch, n + 1, m + 1), dtype=np.int64)
    flat, flat_match = _flatten(table), _flatten(match)
    for current, up, left, diagonal, cost_cells, _, _ in _diagonal_slices(n, m):
        flat[:, current] = np.where(
            flat_match[:, cost_cells],
            flat[:, diagonal] + 1,
            np.maximum(flat[:, up], flat[:, left]),
        )
    common = _gather(table, np.arange(batch), lengths_a, lengths_b)
    shorter = np.minimum(lengths_a, lengths_b)
    return 1.0 - common / shorter


@register_kernel("lcss")
def lcss_kernel(trajectory_a, trajectory_b, epsilon: float = 0.25,
                threshold: float | None = None) -> float:
    """Vectorized LCSS distance in ``[0, 1]``."""
    thresholds = None if threshold is None else [threshold]
    return float(lcss_batch([trajectory_a], [trajectory_b], epsilon=epsilon,
                            thresholds=thresholds)[0])


# --------------------------------------------------------------------- Fréchet

@_register_batch("frechet")
def frechet_batch(trajectories_a: Sequence, trajectories_b: Sequence,
                  thresholds=None) -> np.ndarray:
    """Discrete Fréchet distances for a batch of trajectory pairs.

    Uses the padded-table formulation: with an ``inf`` border and a single zero
    sentinel at ``(0, 0)``, the recurrence ``max(min(up, left, diag), cost)``
    reproduces the reference's explicit first-row/column cumulative maxima.
    """
    _check_batch(trajectories_a, trajectories_b)
    thresholds = _as_thresholds(thresholds, len(trajectories_a))
    a, lengths_a = _pad_points(_spatial_batch(trajectories_a))
    b, lengths_b = _pad_points(_spatial_batch(trajectories_b))
    cost = _euclidean_cost(a, b)
    if thresholds is not None:
        return _sweep_abandoning("frechet", cost, lengths_a, lengths_b, thresholds)
    batch, n, m = cost.shape
    _count_cells(batch * n * m, "frechet")
    table = np.full((batch, n + 1, m + 1), np.inf)
    table[:, 0, 0] = 0.0
    flat, flat_cost = _flatten(table), _flatten(cost)
    for current, up, left, diagonal, cost_cells, _, _ in _diagonal_slices(n, m):
        reachable = np.minimum(flat[:, up], flat[:, left])
        np.minimum(reachable, flat[:, diagonal], out=reachable)
        np.maximum(reachable, flat_cost[:, cost_cells], out=reachable)
        flat[:, current] = reachable
    return _gather(table, np.arange(batch), lengths_a, lengths_b)


@register_kernel("frechet")
def frechet_kernel(trajectory_a, trajectory_b,
                   threshold: float | None = None) -> float:
    """Vectorized discrete Fréchet distance."""
    thresholds = None if threshold is None else [threshold]
    return float(frechet_batch([trajectory_a], [trajectory_b],
                               thresholds=thresholds)[0])


# ------------------------------------------------------------------------ DITA

@_register_batch("dita")
def dita_batch(trajectories_a: Sequence, trajectories_b: Sequence,
               lambda_spatial: float = 0.5, time_scale: float = 1.0,
               thresholds=None) -> np.ndarray:
    """DITA spatio-temporal distances for a batch of trajectory pairs."""
    _check_batch(trajectories_a, trajectories_b)
    thresholds = _as_thresholds(thresholds, len(trajectories_a))
    arrays_a = _spatiotemporal_batch(trajectories_a, "dita_distance")
    arrays_b = _spatiotemporal_batch(trajectories_b, "dita_distance")
    a, lengths_a = _pad_points(arrays_a)
    b, lengths_b = _pad_points(arrays_b)
    batch = len(arrays_a)
    cost = np.stack([
        spatiotemporal_point_cost(a[index], b[index], lambda_spatial, time_scale)
        for index in range(batch)
    ])
    if thresholds is not None:
        # DITA shares DTW's min-plus recurrence over its blended cost tensor,
        # but its telemetry counts under its own measure name.
        return _sweep_abandoning("dtw", cost, lengths_a, lengths_b, thresholds,
                                 measure="dita")
    _, n, m = cost.shape
    _count_cells(batch * n * m, "dita")
    table = np.full((batch, n + 1, m + 1), np.inf)
    table[:, 0, 0] = 0.0
    flat, flat_cost = _flatten(table), _flatten(cost)
    for current, up, left, diagonal, cost_cells, _, _ in _diagonal_slices(n, m):
        best = np.minimum(flat[:, up], flat[:, left])
        np.minimum(best, flat[:, diagonal], out=best)
        best += flat_cost[:, cost_cells]
        flat[:, current] = best
    return _gather(table, np.arange(batch), lengths_a, lengths_b)


@register_kernel("dita")
def dita_kernel(trajectory_a, trajectory_b, lambda_spatial: float = 0.5,
                time_scale: float = 1.0, threshold: float | None = None) -> float:
    """Vectorized DITA spatio-temporal distance."""
    thresholds = None if threshold is None else [threshold]
    return float(dita_batch([trajectory_a], [trajectory_b],
                            lambda_spatial=lambda_spatial, time_scale=time_scale,
                            thresholds=thresholds)[0])
