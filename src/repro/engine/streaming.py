"""Stateful prefix-incremental similarity over live trajectory streams.

:class:`StreamingEngine` keeps, for every watched (pattern, stream, measure)
pair, the pair's **DP frontier** — the last column of the measure's dynamic-
programming table (:mod:`repro.engine.stream_kernels`).  Appending ``p``
points to a stream then extends each of its pairs by exactly ``p`` columns
(``O(n·p)`` cells) instead of recomputing the full ``O(n·m)`` table, and the
extended frontier is *bitwise identical* to a from-scratch batch-kernel call
on the whole window — the property ``tests/test_streaming_parity.py`` pins
for every measure, backend, and append/evict schedule.

**Windows and checkpoints.**  Evicting the window head invalidates a prefix
DP: the table's column 0 is anchored at the window start, so a frontier whose
anchor has been evicted cannot be patched — only replayed.  To amortise
slides, the engine maintains **checkpoint frontiers** on windowed streams:
auxiliary columns anchored at stream offsets divisible by ``K``
(``REPRO_STREAM_CHECKPOINT``, default 64; ``<= 0`` disables).  An evict whose
new head lands exactly on a checkpoint *adopts* that frontier with zero
replayed columns; an unaligned evict falls back to a full-window replay (run
lazily, on the next ``value()``), re-seeding checkpoints as it crosses
``K``-multiples.  Keeping a checkpoint live costs ``n`` extra cells per
appended column per checkpoint — ``window/K`` checkpoints ≈ one extra
frontier's work per ``K`` of window — so ``K`` trades append overhead against
slide alignment granularity (see ARCHITECTURE.md's cost model).  Append-only
streams (never evicted, not registered ``windowed=True``) pay nothing.
Banded DTW pairs skip checkpoints entirely: the effective band radius
``max(band, |n − m|)`` depends on the *final* window length, so any slide (or
an append that widens the radius) replays anyway.

**Laziness and bounds.**  ``append(..., lazy=True)`` only buffers the points;
frontiers extend when ``value()`` forces them.  ``lower_bound()`` reads an
admissible bound off the current frontier *without* extending — sound for
every future window length — which is how :class:`repro.search.monitor.
StreamMonitor` skips extension work for candidates the current kth distance
already excludes.  ``value(pair, threshold=τ)`` extends column by column and
abandons (returns ``+inf``, frontier kept at the abandon point) once the
frontier bound strictly exceeds ``τ`` plus the same fp safety slack the batch
kernels use, mirroring their abandoning contract: finite values are exact and
bitwise, ``+inf`` only when the distance provably exceeds ``τ``.

Extension loops come from the kernel-backend registry
(:meth:`~repro.engine.backends.KernelBackend.stream_kernel`): the numpy
backend runs the reference scalar loops, the numba backend the ``@njit``
twins.  Cell and abandon counts flow into the :mod:`repro.obs` registry under
``stream.*`` (``stream.dp_cells``, ``stream.dp_cells.<measure>``,
``stream.abandoned.<measure>``, ``stream.replays``, …), next to the batch
kernels' ``engine.*`` counters.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Hashable

import numpy as np

from ..config import env_int
from ..distances.base import as_points
from ..obs import registry as obs_registry
from .backends import resolve_backend
from .kernels import _abandon_cutoff
from .stream_kernels import (
    STREAM_KERNELS,
    STREAM_MEASURES,
    frontier_bound,
    frontier_value,
    initial_column,
)

__all__ = ["StreamingEngine", "CHECKPOINT_ENV", "DEFAULT_CHECKPOINT", "STREAM_MEASURES"]

CHECKPOINT_ENV = "REPRO_STREAM_CHECKPOINT"
DEFAULT_CHECKPOINT = 64

_INF = np.inf

_STREAM_CELLS = obs_registry.counter("stream.dp_cells")


@lru_cache(maxsize=None)
def _measure_cell_counter(measure: str):
    return obs_registry.counter(f"stream.dp_cells.{measure}")


@lru_cache(maxsize=None)
def _measure_abandon_counter(measure: str):
    return obs_registry.counter(f"stream.abandoned.{measure}")


def _count_stream_cells(cells: int, measure: str) -> None:
    _STREAM_CELLS.add(cells)
    _measure_cell_counter(measure).add(cells)


def _resolve_checkpoint(value) -> int:
    if value is None:
        value = env_int(CHECKPOINT_ENV, DEFAULT_CHECKPOINT)
    value = int(value)
    return value if value > 0 else 0


class _Stream:
    """One live trajectory: a growable point buffer addressed by absolute offsets.

    ``base`` is the absolute stream offset of ``data[0]``; the current window
    is offsets ``[head, total)``.  Eviction advances ``head`` without moving
    memory, compacting only once the dead prefix outgrows the live window.
    """

    __slots__ = ("data", "width", "base", "head", "total", "windowed")

    def __init__(self, width: int | None, windowed: bool):
        self.data = None if width is None else np.empty((16, width))
        self.width = width
        self.base = 0
        self.head = 0
        self.total = 0
        self.windowed = windowed

    def append(self, points: np.ndarray) -> None:
        if self.width is None:
            self.width = points.shape[1]
            self.data = np.empty((max(16, 2 * len(points)), self.width))
        elif points.shape[1] != self.width:
            raise ValueError(f"stream expects width-{self.width} points, "
                             f"got width {points.shape[1]}")
        used = self.total - self.base
        if used + len(points) > len(self.data):
            grown = np.empty((2 * (used + len(points)), self.width))
            grown[:used] = self.data[:used]
            self.data = grown
        self.data[used:used + len(points)] = points
        self.total += len(points)

    def evict(self, count: int) -> None:
        if count < 0 or self.head + count > self.total:
            raise ValueError(f"cannot evict {count} of the "
                             f"{self.total - self.head} windowed points")
        self.head += count
        dead = self.head - self.base
        if dead > 64 and dead > self.total - self.head:
            live = self.total - self.head
            self.data[:live] = self.data[dead:dead + live]
            self.base = self.head

    def slice(self, start: int, stop: int) -> np.ndarray:
        return self.data[start - self.base:stop - self.base]


class _Frontier:
    """A DP column anchored at window start ``start``, extended through ``done``."""

    __slots__ = ("start", "done", "column", "radius")

    def __init__(self, start: int, column: np.ndarray, radius: int = -1):
        self.start = start
        self.done = start
        self.column = column
        self.radius = radius


class _Pair:
    __slots__ = ("pair_id", "stream_id", "measure", "pattern", "kernel_key",
                 "extend_args", "band", "gap_cost_a", "primary", "checkpoints",
                 "spatial")

    def __init__(self, pair_id, stream_id, measure, pattern, kernel_key,
                 extend_args, band, gap_cost_a, spatial):
        self.pair_id = pair_id
        self.stream_id = stream_id
        self.measure = measure
        self.pattern = pattern
        self.kernel_key = kernel_key
        self.extend_args = extend_args
        self.band = band
        self.gap_cost_a = gap_cost_a
        self.spatial = spatial
        self.primary: _Frontier | None = None
        self.checkpoints: dict[int, _Frontier] = {}


class StreamingEngine:
    """Prefix-incremental DP over live streams; see the module docstring."""

    def __init__(self, backend=None, checkpoint_every: int | None = None):
        self._backend = resolve_backend(backend, strict=False)
        self.checkpoint_every = _resolve_checkpoint(checkpoint_every)
        self._streams: dict[Hashable, _Stream] = {}
        self._pairs: dict[Hashable, _Pair] = {}
        self._by_stream: dict[Hashable, list[Hashable]] = {}
        self._next_pair = 0
        self.replays = 0
        self.checkpoint_promotions = 0

    # ------------------------------------------------------------------ streams
    def register_stream(self, stream_id: Hashable, points=None,
                        windowed: bool = False) -> None:
        """Create stream ``stream_id``, optionally seeded with ``points``.

        ``windowed=True`` declares slide intent up front so checkpoint
        frontiers form from the first append; otherwise they start forming
        after the first ``evict`` (the first slide itself replays).
        """
        if stream_id in self._streams:
            raise KeyError(f"stream {stream_id!r} already registered")
        self._streams[stream_id] = _Stream(None, windowed)
        self._by_stream[stream_id] = []
        if points is not None and len(points):
            self.append(stream_id, points, lazy=True)

    def window(self, stream_id: Hashable) -> np.ndarray:
        """The stream's current window as an (m, width) float64 view."""
        stream = self._streams[stream_id]
        return stream.slice(stream.head, stream.total)

    def window_length(self, stream_id: Hashable) -> int:
        stream = self._streams[stream_id]
        return stream.total - stream.head

    def streams(self) -> list:
        return list(self._streams)

    # -------------------------------------------------------------------- pairs
    def watch(self, pattern, stream_id: Hashable, measure: str = "dtw",
              pair_id: Hashable | None = None, band: int | None = None,
              gap=None, epsilon: float = 0.25, lambda_spatial: float = 0.5,
              time_scale: float = 1.0) -> Hashable:
        """Track ``measure(pattern, stream)``; returns the pair id.

        The frontier over the stream's existing window is built lazily by the
        first ``value()`` call, so watching a pattern against a fleet costs
        nothing for streams that are never refined.
        """
        measure = measure.lower()
        if measure not in STREAM_MEASURES:
            raise ValueError(f"no streaming support for measure '{measure}'; "
                             f"options: {STREAM_MEASURES}")
        if stream_id not in self._streams:
            raise KeyError(f"unknown stream {stream_id!r}")
        spatial = measure != "dita"
        a = as_points(pattern, spatial_only=spatial)
        if not spatial and a.shape[1] < 3:
            raise ValueError("dita requires patterns with a time column")
        a = np.ascontiguousarray(a)
        gap_cost_a = None
        if measure == "dtw":
            kernel_key = "dtw" if band is None else "dtw_banded"
            extend_args = ()
            band = None if band is None else int(band)
        elif measure == "erp":
            kernel_key = "erp"
            gap_point = np.zeros(2) if gap is None else \
                np.asarray(gap, dtype=np.float64)[:2]
            gap_cost_a = np.sqrt(((a - gap_point) ** 2).sum(axis=-1))
            extend_args = (gap_cost_a, float(gap_point[0]), float(gap_point[1]))
        elif measure in ("edr", "lcss"):
            if epsilon <= 0:
                raise ValueError("epsilon must be positive")
            kernel_key = measure
            extend_args = (float(epsilon),)
        elif measure == "frechet":
            kernel_key = "frechet"
            extend_args = ()
        else:  # dita
            kernel_key = "dita"
            extend_args = (float(lambda_spatial), float(time_scale))
        if pair_id is None:
            pair_id = self._next_pair
            self._next_pair += 1
        if pair_id in self._pairs:
            raise KeyError(f"pair {pair_id!r} already watched")
        pair = _Pair(pair_id, stream_id, measure, a, kernel_key, extend_args,
                     band, gap_cost_a, spatial)
        self._pairs[pair_id] = pair
        self._by_stream[stream_id].append(pair_id)
        obs_registry.counter("stream.pairs").add(1)
        return pair_id

    def unwatch(self, pair_id: Hashable) -> None:
        pair = self._pairs.pop(pair_id)
        self._by_stream[pair.stream_id].remove(pair_id)

    def pairs_on(self, stream_id: Hashable) -> list:
        return list(self._by_stream[stream_id])

    # ------------------------------------------------------------------ updates
    def append(self, stream_id: Hashable, points, lazy: bool = False):
        """Append ``points`` to the stream.

        With ``lazy=True`` the points are only buffered — frontier extension
        is deferred until ``value()``/``force()`` needs it (or skipped outright
        when a caller's bound check rules the pair out).  Otherwise every pair
        on the stream extends now and the fresh values are returned as
        ``{pair_id: value}``.
        """
        points = np.asarray(points, dtype=np.float64)
        if points.ndim == 1:
            points = points[None, :]
        if points.ndim != 2 or points.shape[1] < 2:
            raise ValueError("appended points must form an (n, d>=2) array")
        stream = self._streams[stream_id]
        stream.append(points)
        obs_registry.counter("stream.appends").add(1)
        obs_registry.counter("stream.append_points").add(len(points))
        if lazy:
            return None
        return {pair_id: self.value(pair_id)
                for pair_id in self._by_stream[stream_id]}

    def evict(self, stream_id: Hashable, count: int) -> None:
        """Slide the window head forward by ``count`` points.

        A pair whose checkpoint frontier sits exactly at the new head adopts
        it (zero replayed columns); otherwise its primary frontier is dropped
        and the next ``value()`` replays the remaining window from scratch.
        Eviction marks the stream windowed, so checkpoints form from here on.
        """
        stream = self._streams[stream_id]
        stream.evict(int(count))
        stream.windowed = True
        obs_registry.counter("stream.evictions").add(1)
        head = stream.head
        for pair_id in self._by_stream[stream_id]:
            pair = self._pairs[pair_id]
            pair.checkpoints = {start: frontier
                                for start, frontier in pair.checkpoints.items()
                                if start >= head}
            if pair.primary is None or pair.primary.start < head:
                adopted = pair.checkpoints.pop(head, None)
                pair.primary = adopted
                if adopted is not None:
                    self.checkpoint_promotions += 1
                    obs_registry.counter("stream.checkpoint_promotions").add(1)

    # ------------------------------------------------------------------- values
    def pending(self, pair_id: Hashable) -> int:
        """Stream columns buffered but not yet folded into the pair's frontier."""
        pair = self._pairs[pair_id]
        stream = self._streams[pair.stream_id]
        if pair.primary is None or pair.primary.start != stream.head:
            return stream.total - stream.head
        return stream.total - pair.primary.done

    def lower_bound(self, pair_id: Hashable) -> float:
        """Admissible lower bound on ``value(pair_id)`` without extending.

        Reads the current frontier column only; valid for the window as it
        stands *and* any future append (paths must still cross this column).
        A replay-pending pair (evicted anchor, no checkpoint) has no frontier
        to read and conservatively bounds to 0.0 (LCSS: the all-match cap).
        """
        pair = self._pairs[pair_id]
        stream = self._streams[pair.stream_id]
        n = pair.pattern.shape[0]
        final_m = stream.total - stream.head
        primary = pair.primary
        if primary is None or primary.start != stream.head:
            if pair.measure == "lcss":
                return 0.0 if final_m else _INF
            return 0.0
        return frontier_bound(pair.measure, primary.column, n,
                              primary.done - primary.start, final_m)

    def value(self, pair_id: Hashable, threshold: float | None = None) -> float:
        """The pair's exact distance over the current window, forcing extension.

        With ``threshold=τ`` the extension abandons — returning ``+inf`` and
        keeping the frontier at the abandon point — as soon as the frontier
        bound strictly exceeds ``τ`` (plus the kernels' fp safety slack).  A
        finite return is always the exact, bitwise-reproducible distance.
        """
        pair = self._pairs[pair_id]
        stream = self._streams[pair.stream_id]
        n = pair.pattern.shape[0]
        target = stream.total
        m_final = target - stream.head
        primary = self._anchored_primary(pair, stream)
        if primary.done < target:
            extend = self._extend_fn(pair)
            cutoff = None if threshold is None or not np.isfinite(threshold) \
                else float(_abandon_cutoff(threshold))
            if cutoff is None:
                self._advance(pair, primary, stream, target, extend)
            else:
                while primary.done < target:
                    self._advance(pair, primary, stream, primary.done + 1, extend)
                    if primary.done < target:
                        bound = frontier_bound(pair.measure, primary.column, n,
                                               primary.done - primary.start,
                                               m_final)
                        if bound > cutoff:
                            _measure_abandon_counter(pair.measure).add(1)
                            self._seed_checkpoints(pair, stream, primary.done)
                            return _INF
            self._seed_checkpoints(pair, stream, primary.done)
        return frontier_value(pair.measure, primary.column, n, m_final)

    def force(self, stream_id: Hashable) -> dict:
        """Extend every pair on the stream; returns ``{pair_id: value}``."""
        return {pair_id: self.value(pair_id)
                for pair_id in self._by_stream[stream_id]}

    # ----------------------------------------------------------------- plumbing
    def _extend_fn(self, pair: _Pair):
        fn = self._backend.stream_kernel(pair.kernel_key)
        return fn if fn is not None else STREAM_KERNELS[pair.kernel_key]

    def _fresh_frontier(self, pair: _Pair, start: int) -> _Frontier:
        n = pair.pattern.shape[0]
        column = initial_column("dtw" if pair.kernel_key == "dtw_banded"
                                else pair.measure, n, gap_cost_a=pair.gap_cost_a)
        return _Frontier(start, column)

    def _anchored_primary(self, pair: _Pair, stream: _Stream) -> _Frontier:
        """The pair's frontier re-anchored at the current head (replaying if lost)
        and, for banded DTW, re-validated against the final-length radius."""
        primary = pair.primary
        if primary is None or primary.start != stream.head:
            primary = pair.checkpoints.pop(stream.head, None)
            if primary is not None:
                self.checkpoint_promotions += 1
                obs_registry.counter("stream.checkpoint_promotions").add(1)
            else:
                primary = self._fresh_frontier(pair, stream.head)
                if stream.total > stream.head:
                    self.replays += 1
                    obs_registry.counter("stream.replays").add(1)
                    obs_registry.counter("stream.replay_columns").add(
                        stream.total - stream.head)
            pair.primary = primary
        if pair.band is not None:
            n = pair.pattern.shape[0]
            radius = max(pair.band, abs(n - (stream.total - stream.head)))
            if primary.radius != radius:
                if primary.done > primary.start:
                    # The band geometry moved: every computed column used the
                    # old radius, so the whole window replays at the new one.
                    primary = self._fresh_frontier(pair, stream.head)
                    pair.primary = primary
                    self.replays += 1
                    obs_registry.counter("stream.replays").add(1)
                    obs_registry.counter("stream.replay_columns").add(
                        stream.total - stream.head)
                primary.radius = radius
        return primary

    def _advance(self, pair: _Pair, frontier: _Frontier, stream: _Stream,
                 target: int, extend) -> None:
        """Extend ``frontier`` through stream offset ``target`` (cells counted)."""
        if frontier.done >= target:
            return
        points = stream.slice(frontier.done, target)
        if pair.spatial and points.shape[1] > 2:
            points = points[:, :2]
        elif not pair.spatial and points.shape[1] < 3:
            raise ValueError("dita requires streams with a time column")
        points = np.ascontiguousarray(points)
        if pair.kernel_key == "dtw_banded":
            cells = extend(pair.pattern, points, frontier.column,
                           frontier.done - frontier.start, frontier.radius)
        else:
            cells = extend(pair.pattern, points, frontier.column,
                           *pair.extend_args)
        frontier.done = target
        _count_stream_cells(int(cells), pair.measure)

    def _seed_checkpoints(self, pair: _Pair, stream: _Stream, upto: int) -> None:
        """Create/extend checkpoint frontiers through ``upto`` on windowed streams."""
        interval = self.checkpoint_every
        if not interval or not stream.windowed or pair.band is not None:
            return
        extend = None
        first = ((stream.head // interval) + 1) * interval
        for start in range(first, upto + 1, interval):
            if start not in pair.checkpoints:
                pair.checkpoints[start] = self._fresh_frontier(pair, start)
                obs_registry.counter("stream.checkpoints_created").add(1)
        for frontier in pair.checkpoints.values():
            if frontier.done < upto:
                if extend is None:
                    extend = self._extend_fn(pair)
                self._advance(pair, frontier, stream, upto, extend)

    def stats(self) -> dict:
        """Engine-level tallies (the ``stream.*`` registry counters hold totals)."""
        return {
            "streams": len(self._streams),
            "pairs": len(self._pairs),
            "checkpoint_every": self.checkpoint_every,
            "checkpoints_live": sum(len(p.checkpoints)
                                    for p in self._pairs.values()),
            "replays": self.replays,
            "checkpoint_promotions": self.checkpoint_promotions,
            "backend": self._backend.name,
        }
