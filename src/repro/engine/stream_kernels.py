"""Prefix-incremental DP column extensions — the streaming reference kernels.

Every DP measure in this repo fills an ``(n+1, m+1)`` table column by column
(equivalently, anti-diagonal by anti-diagonal — the cell arithmetic is
identical).  Appending ``p`` points to the *second* trajectory of a pair only
adds ``p`` new columns, and each new column depends solely on its predecessor.
So a pair's entire DP state compresses to its **frontier**: the last computed
column, ``(n+1,)`` floats.  The functions here extend a frontier in place by
the new points' columns, costing ``O(n·p)`` cells instead of the ``O(n·m)``
full recompute — the time-axis analogue of the query-axis abandoning wins.

**Parity contract.**  Each extension performs cell-for-cell the same IEEE-754
arithmetic, in the same order, as the batch kernels in
:mod:`repro.engine.kernels`: point costs accumulate squared per-coordinate
deltas left to right before one ``sqrt``; DP cells reduce predecessors in the
reference's min/max order; LCSS counts live in exactly-representable float
integers.  A frontier extended point by point over any append schedule is
therefore *bitwise identical* to the final column of a from-scratch kernel
call on the concatenated trajectory — which is what
``tests/test_streaming_parity.py`` asserts for every measure.

The in-place update uses the classic rolling-diagonal trick::

    diag = col[0]            # table[0, j-1]
    col[0] = <border of column j>
    for i in 1..n:
        left = col[i]        # table[i, j-1], still the old column
        col[i] = f(col[i-1], left, diag, cost)   # up, left, diag
        diag = left

Each function returns the number of DP cells it computed; the caller
(:class:`repro.engine.streaming.StreamingEngine`) folds the counts into the
``stream.*`` telemetry counters.  These are the **numpy reference**
implementations (scalar loops over numpy-computed cost columns); the numba
backend ships ``@njit``-compiled twins in
:mod:`repro.engine.backends.numba_kernels` with the same signatures, selected
through :meth:`repro.engine.backends.KernelBackend.stream_kernel`.

Frontier **lower bounds** (:func:`frontier_bound`) make the τ-abandoning and
monitor-skip paths sound: every monotone alignment path of any *future*
extension still crosses the current column, and the min-plus / min-max / edit
measures are monotone along paths, so the column minimum (plus LCSS's
remaining-match cap) lower-bounds the final value at every future length.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = [
    "STREAM_MEASURES",
    "STREAM_KERNELS",
    "initial_column",
    "euclidean_cost_column",
    "st_cost_column",
    "gap_cost",
    "frontier_value",
    "frontier_bound",
]

_INF = np.inf

#: Measures with a prefix-incremental extension (banded DTW rides on "dtw").
STREAM_MEASURES = ("dtw", "erp", "edr", "lcss", "frechet", "dita")


# ----------------------------------------------------------------- column costs

def euclidean_cost_column(a: np.ndarray, point) -> list[float]:
    """Euclidean costs from every row of ``a`` to one new column point.

    Same per-axis square/accumulate/sqrt order as ``_euclidean_cost`` /
    ``_cost_matrix``, so the costs — and every DP value built on them — match
    the batch kernels bit for bit.
    """
    squared = None
    for axis in range(a.shape[1]):
        delta = a[:, axis] - point[axis]
        delta *= delta
        if squared is None:
            squared = delta
        else:
            squared += delta
    return np.sqrt(squared, out=squared).tolist()


def st_cost_column(a: np.ndarray, point, lambda_spatial: float,
                   time_scale: float) -> list[float]:
    """DITA blended spatio-temporal costs, same expression order as the reference."""
    dx = a[:, 0] - point[0]
    dy = a[:, 1] - point[1]
    spatial = np.sqrt(dx * dx + dy * dy)
    temporal = np.abs(a[:, 2] - point[2]) / time_scale
    return (lambda_spatial * spatial + (1.0 - lambda_spatial) * temporal).tolist()


def gap_cost(point, gap_point) -> float:
    """ERP gap cost of one point, matching ``np.sqrt(((p - g) ** 2).sum())``."""
    dx = float(point[0]) - float(gap_point[0])
    dy = float(point[1]) - float(gap_point[1])
    return math.sqrt(dx * dx + dy * dy)


# --------------------------------------------------------------- initial column

def initial_column(measure: str, n: int, gap_cost_a: np.ndarray | None = None,
                   ) -> np.ndarray:
    """Column 0 of the measure's ``(n+1, m+1)`` DP table (the empty-window frontier)."""
    if measure in ("dtw", "frechet", "dita"):
        column = np.full(n + 1, _INF)
        column[0] = 0.0
    elif measure == "erp":
        column = np.empty(n + 1)
        column[0] = 0.0
        column[1:] = np.cumsum(gap_cost_a)
    elif measure == "edr":
        column = np.arange(n + 1, dtype=np.float64)
    elif measure == "lcss":
        column = np.zeros(n + 1)
    else:
        raise ValueError(f"no streaming support for measure '{measure}'; "
                         f"options: {STREAM_MEASURES}")
    return column


# ----------------------------------------------------------- reference extends
#
# Scalar loops over Python floats: ``column`` round-trips through ``tolist()``
# because CPython float arithmetic on doubles is the same IEEE-754 arithmetic
# numpy performs elementwise, and list indexing is ~3x faster than ndarray
# scalar indexing in the interpreter.  ``a`` is the (n, d) pattern array,
# ``b_new`` the (p, d) appended points, ``column`` the (n+1,) frontier.

def dtw_extend(a: np.ndarray, b_new: np.ndarray, column: np.ndarray) -> int:
    n = a.shape[0]
    col = column.tolist()
    for point in b_new:
        cost = euclidean_cost_column(a, point)
        diag = col[0]
        col[0] = _INF
        for i in range(1, n + 1):
            left = col[i]
            best = col[i - 1]
            if left < best:
                best = left
            if diag < best:
                best = diag
            col[i] = best + cost[i - 1]
            diag = left
    column[:] = col
    return n * len(b_new)


def dtw_banded_extend(a: np.ndarray, b_new: np.ndarray, column: np.ndarray,
                      m_prev: int, radius: int) -> int:
    """Banded DTW columns ``m_prev+1 .. m_prev+p``; out-of-band cells stay +inf.

    ``radius`` must already be widened to ``max(band, |n - m_final|)`` — the
    final-length dependence is why the caller owns radius bookkeeping.
    """
    n = a.shape[0]
    col = column.tolist()
    cells = 0
    for offset, point in enumerate(b_new):
        j = m_prev + offset + 1
        cost = euclidean_cost_column(a, point)
        diag = col[0]
        col[0] = _INF
        lo = j - radius if j - radius > 1 else 1
        hi = j + radius if j + radius < n else n
        for i in range(1, n + 1):
            left = col[i]
            if lo <= i <= hi:
                best = col[i - 1]
                if left < best:
                    best = left
                if diag < best:
                    best = diag
                col[i] = best + cost[i - 1]
                cells += 1
            else:
                col[i] = _INF
            diag = left
    column[:] = col
    return cells


def erp_extend(a: np.ndarray, b_new: np.ndarray, column: np.ndarray,
               gap_cost_a: np.ndarray, gap_x: float, gap_y: float) -> int:
    n = a.shape[0]
    col = column.tolist()
    gaps = gap_cost_a.tolist()
    for point in b_new:
        cost = euclidean_cost_column(a, point)
        dx = float(point[0]) - gap_x
        dy = float(point[1]) - gap_y
        gap_b = math.sqrt(dx * dx + dy * dy)
        diag = col[0]
        col[0] = col[0] + gap_b
        for i in range(1, n + 1):
            left = col[i]
            value = diag + cost[i - 1]
            delete_a = col[i - 1] + gaps[i - 1]
            delete_b = left + gap_b
            if delete_b < delete_a:
                delete_a = delete_b
            if delete_a < value:
                value = delete_a
            col[i] = value
            diag = left
    column[:] = col
    return n * len(b_new)


def edr_extend(a: np.ndarray, b_new: np.ndarray, column: np.ndarray,
               epsilon: float) -> int:
    n = a.shape[0]
    col = column.tolist()
    for point in b_new:
        match = _match_column(a, point, epsilon)
        diag = col[0]
        col[0] = col[0] + 1.0
        for i in range(1, n + 1):
            left = col[i]
            value = diag + (0.0 if match[i - 1] else 1.0)
            gap = col[i - 1]
            if left < gap:
                gap = left
            gap = gap + 1.0
            if gap < value:
                value = gap
            col[i] = value
            diag = left
    column[:] = col
    return n * len(b_new)


def lcss_extend(a: np.ndarray, b_new: np.ndarray, column: np.ndarray,
                epsilon: float) -> int:
    n = a.shape[0]
    col = column.tolist()
    for point in b_new:
        match = _match_column(a, point, epsilon)
        diag = col[0]
        for i in range(1, n + 1):
            left = col[i]
            if match[i - 1]:
                col[i] = diag + 1.0
            elif col[i - 1] > left:
                col[i] = col[i - 1]
            diag = left
    column[:] = col
    return n * len(b_new)


def frechet_extend(a: np.ndarray, b_new: np.ndarray, column: np.ndarray) -> int:
    n = a.shape[0]
    col = column.tolist()
    for point in b_new:
        cost = euclidean_cost_column(a, point)
        diag = col[0]
        col[0] = _INF
        for i in range(1, n + 1):
            left = col[i]
            reachable = col[i - 1]
            if left < reachable:
                reachable = left
            if diag < reachable:
                reachable = diag
            c = cost[i - 1]
            col[i] = c if c > reachable else reachable
            diag = left
    column[:] = col
    return n * len(b_new)


def dita_extend(a: np.ndarray, b_new: np.ndarray, column: np.ndarray,
                lambda_spatial: float, time_scale: float) -> int:
    n = a.shape[0]
    col = column.tolist()
    for point in b_new:
        cost = st_cost_column(a, point, lambda_spatial, time_scale)
        diag = col[0]
        col[0] = _INF
        for i in range(1, n + 1):
            left = col[i]
            best = col[i - 1]
            if left < best:
                best = left
            if diag < best:
                best = diag
            col[i] = best + cost[i - 1]
            diag = left
    column[:] = col
    return n * len(b_new)


def _match_column(a: np.ndarray, point, epsilon: float) -> list[bool]:
    """ε-match flags of every row of ``a`` against one point (all coordinates)."""
    match = None
    for axis in range(a.shape[1]):
        close = np.abs(a[:, axis] - point[axis]) <= epsilon
        if match is None:
            match = close
        else:
            match &= close
    return match.tolist()


#: Extension functions keyed like the backend kernel tables.  ``dtw_banded``
#: is the band-restricted variant the engine selects when a pair has a band.
STREAM_KERNELS = {
    "dtw": dtw_extend,
    "dtw_banded": dtw_banded_extend,
    "erp": erp_extend,
    "edr": edr_extend,
    "lcss": lcss_extend,
    "frechet": frechet_extend,
    "dita": dita_extend,
}


# -------------------------------------------------------------- value / bounds

def frontier_value(measure: str, column: np.ndarray, n: int, m: int) -> float:
    """Distance encoded by a fully extended frontier (``m`` = window length).

    ``column[n]`` is ``table[n, m]`` for every measure; LCSS additionally
    converts its common-length count with exactly the batch kernel's
    ``1 − common/min(n, m)`` division (both operands are exact integers in
    float64, so int64 vs float division is bitwise moot).  An empty window
    reports the DP border value — ``+inf`` for DTW/Fréchet/DITA (no
    alignment exists), the all-gap cost for ERP, ``n`` deletes for EDR —
    except LCSS, where ``0/0`` is undefined and ``+inf`` is reported.
    """
    if measure == "lcss":
        if m == 0:
            return _INF
        return 1.0 - float(column[n]) / min(n, m)
    return float(column[n])


def frontier_bound(measure: str, column: np.ndarray, n: int, m: int,
                   final_m: int) -> float:
    """Admissible lower bound on the pair's distance at window length ``final_m``.

    Every monotone path through the final table crosses column ``m``, and the
    accumulated value is non-decreasing along paths for the min-plus
    (DTW/ERP/DITA), min-max (Fréchet) and edit-count (EDR) measures, so the
    minimum over the current column bounds the final value from below.  LCSS
    counts *matches* (a maximisation), so the bound caps the final common
    length by ``max(column) + remaining columns`` (and by both lengths) before
    converting to a distance.  Bounds hold for every ``final_m ≥ m`` —
    columns only ever grow the window — which is what lets the monitor skip
    extensions entirely.
    """
    if measure == "lcss":
        if final_m == 0:
            return _INF
        cap = float(column.max()) + (final_m - m)
        shorter = min(n, final_m)
        if cap > shorter:
            cap = float(shorter)
        return 1.0 - cap / shorter
    return float(column.min())
