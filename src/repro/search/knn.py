"""Exact filter-and-refine top-k search.

:func:`knn_search` answers a top-k query without materialising the full
query-to-database distance row.  Candidates are first scored with the cheap
per-measure lower bounds (:mod:`repro.search.bounds`), then refined in
ascending-bound order through the compute engine's batched kernels while a
best-so-far heap tracks the current k-th distance τ.  As soon as the next bound
exceeds τ the remaining candidates are abandoned: their true distances can only
be larger, so the pruned tail provably contains no neighbour.

Refinement is itself τ-aware: once the heap is full, every refinement batch
carries per-pair abandon thresholds (the current τ) down through
``MatrixEngine.pairs`` into the wavefront kernels, which stop a candidate's DP
sweep — reporting ``+inf`` — the moment its running in-kernel lower bound
strictly exceeds τ.  The full cascade is bound → τ-sorted batch → in-kernel
abandon.  An abandoned candidate is treated exactly like one pruned by its
bound: its true distance provably exceeds τ (and τ only shrinks), so it can
never belong to the final top-k.

The result is **identical** to ``knn_from_matrix`` on the full cross matrix,
including tie-breaking: candidates are only abandoned when their bound is
*strictly* above τ, and refined survivors are ordered by ``(distance, index)`` —
the same deterministic order ``knn_from_matrix``'s stable argsort produces.
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from ..engine.executor import CanonicalArrays
from ..obs import counter
from ..obs.spans import span
from .index import TrajectoryIndex

__all__ = ["SearchStats", "SearchResult", "knn_search", "DEFAULT_ABANDON_MEASURES",
           "COMPILED_ABANDON_MEASURES", "default_abandon_measures"]

#: Measures where in-kernel abandoning is on by default (``abandon=None``)
#: under the *interpreted* numpy backend.  The bound arithmetic costs roughly
#: one extra sweep per anti-diagonal, so it pays off where the in-kernel bound
#: is strong or cheap — the min-plus cost measures (DTW, DITA) and Fréchet's
#: min-max — and is opt-in for the edit/gap measures (ERP, EDR, LCSS), whose
#: border-heavy bounds cost more wall-clock than their weaker pruning saves on
#: typical workloads.  Cell-work always shrinks either way; this default
#: trades on latency.
DEFAULT_ABANDON_MEASURES = frozenset({"dtw", "dita", "frechet"})

#: The same default under a *compiled* backend, where the per-row bound check
#: is a handful of native instructions instead of an interpreter sweep:
#: abandoning also wins wall-clock for the edit/gap measures, so they join in.
COMPILED_ABANDON_MEASURES = DEFAULT_ABANDON_MEASURES | frozenset({"erp", "edr", "lcss"})


def default_abandon_measures(backend=None) -> frozenset:
    """Measures that abandon by default under ``backend``.

    ``backend`` is a resolved :class:`~repro.engine.backends.KernelBackend`
    (None resolves the process-wide active backend): compiled backends get
    :data:`COMPILED_ABANDON_MEASURES`, interpreted ones the conservative
    :data:`DEFAULT_ABANDON_MEASURES`.
    """
    if backend is None:
        from ..engine.backends import active_backend

        backend = active_backend()
    return (COMPILED_ABANDON_MEASURES if getattr(backend, "compiled", False)
            else DEFAULT_ABANDON_MEASURES)


@dataclass
class SearchStats:
    """Instrumentation of one (or, aggregated, many) filter-and-refine passes.

    This dataclass is a **pinned schema**: :meth:`as_dict` is the stable
    contract the query service's ``stats()`` endpoint (and the future HTTP
    ``/stats``) is built on, and ``tests/test_obs_integration.py`` asserts its
    exact key set and types.  Two fields deserve spelling out:

    * ``kernel_backend`` — the backend name the refinement engine resolved for
      the pass (``"numpy"`` / ``"numba"``; ``""`` until a pass runs).
      :meth:`merge` keeps the *first non-empty* name, so an aggregate reports
      the backend its earliest pass used rather than pretending to aggregate
      heterogeneous backends.
    * Result ordering (tie-break): neighbours are ordered by
      ``(distance, index)`` ascending — equal distances break toward the
      smaller database index, matching ``knn_from_matrix``'s stable argsort
      bit for bit.  The counts here (``num_refined`` vs ``num_pruned``) are
      defined relative to that deterministic order.
    """

    num_database: int = 0
    num_candidates: int = 0
    num_refined: int = 0
    num_pruned: int = 0
    num_abandoned: int = 0
    num_batches: int = 0
    lower_bound_seconds: float = 0.0
    refine_seconds: float = 0.0
    #: Name of the kernel backend the refinement engine resolved ("" until a
    #: pass runs; merges keep the first non-empty name).
    kernel_backend: str = ""

    @property
    def pruned_fraction(self) -> float:
        """Share of candidates never refined (0.0 when there were no candidates)."""
        if self.num_candidates == 0:
            return 0.0
        return self.num_pruned / self.num_candidates

    def merge(self, other: "SearchStats") -> None:
        """Accumulate another pass into this one (used by the query service)."""
        self.num_database += other.num_database
        self.num_candidates += other.num_candidates
        self.num_refined += other.num_refined
        self.num_pruned += other.num_pruned
        self.num_abandoned += other.num_abandoned
        self.num_batches += other.num_batches
        self.lower_bound_seconds += other.lower_bound_seconds
        self.refine_seconds += other.refine_seconds
        if not self.kernel_backend:
            self.kernel_backend = other.kernel_backend

    def as_dict(self) -> dict:
        """The pinned stats schema: these exact keys (plus the derived
        ``pruned_fraction``) and no others — extend deliberately, with the
        schema test, never ad hoc."""
        return {
            "num_database": self.num_database,
            "num_candidates": self.num_candidates,
            "num_refined": self.num_refined,
            "num_pruned": self.num_pruned,
            "num_abandoned": self.num_abandoned,
            "num_batches": self.num_batches,
            "pruned_fraction": self.pruned_fraction,
            "lower_bound_seconds": self.lower_bound_seconds,
            "refine_seconds": self.refine_seconds,
            "kernel_backend": self.kernel_backend,
        }


@dataclass
class SearchResult:
    """Top-k neighbours of one query: indices, distances and the pass statistics."""

    indices: np.ndarray
    distances: np.ndarray
    stats: SearchStats

    def __len__(self) -> int:
        return len(self.indices)


def _normalise_exclude(exclude) -> frozenset[int]:
    if exclude is None:
        return frozenset()
    if isinstance(exclude, (int, np.integer)):
        return frozenset((int(exclude),))
    if isinstance(exclude, Iterable):
        return frozenset(int(item) for item in exclude)
    raise TypeError("exclude must be None, an int or an iterable of ints")


def _auto_pin_arena(index: TrajectoryIndex, engine, batch_size: int):
    """Pin the process arena cache for ``index`` when reuse can actually help.

    Reuse only matters when refinement batches can leave the process: the
    engine must run the ``shared`` strategy with shared memory available, the
    cache must be enabled, and a batch must be able to split into multiple
    chunks (the engine short-circuits single-chunk work in-process).  Returns
    ``(cache, entry)`` — both None when any condition fails.
    """
    if getattr(engine, "strategy", None) != "shared":
        return None, None
    if batch_size <= getattr(engine, "chunk_size", batch_size):
        return None, None
    from ..engine.arena_cache import get_arena_cache

    cache = get_arena_cache()
    if not cache.enabled:
        return None, None
    entry = cache.pin(index.arrays, fingerprint=index.fingerprint)
    return (cache, entry) if entry is not None else (None, None)


def knn_search(index: TrajectoryIndex | Sequence, query, k: int, measure: str = "dtw",
               engine=None, batch_size: int = 8, exclude=None,
               abandon: bool | None = None, arena=None,
               **measure_kwargs) -> SearchResult:
    """Exact k nearest neighbours of ``query`` under a registered measure.

    Parameters
    ----------
    index:
        A prebuilt :class:`TrajectoryIndex` (reusable across queries, which
        amortises the per-trajectory summaries) or any trajectory sequence, which
        is indexed on the fly.
    query:
        Trajectory or point array; spatio-temporal measures need a time column.
    k:
        Number of neighbours; like ``knn_from_matrix`` it must not exceed the
        number of non-excluded candidates.
    engine:
        :class:`~repro.engine.MatrixEngine` used for refinement (default engine
        when omitted), so kernel selection matches matrix construction exactly.
    batch_size:
        Candidates refined per engine call.  1 maximises pruning (τ tightens
        after every distance); larger batches amortise kernel dispatch.
    exclude:
        Index / indices never returned (e.g. the query itself when it belongs to
        the database) — the counterpart of ``knn_from_matrix(exclude_self=True)``.
    abandon:
        Whether refinement batches carry the heap's τ into the kernels as
        per-pair abandon thresholds (in-kernel early abandoning).  ``None``
        defers to :func:`default_abandon_measures` for the engine's resolved
        kernel backend — a compiled backend abandons for the edit/gap measures
        too; ``False`` always computes full DP tables — the baseline of
        ``benchmarks/prune_speedup.py``.  Either way the result is identical;
        abandoning only changes how much of a losing candidate's table is built.
    arena:
        Shared-memory reuse policy for the refinement batches.  ``None``
        (default) auto-pins the process-wide
        :class:`~repro.engine.arena_cache.ArenaCache` when the engine runs the
        ``shared`` strategy and batches can actually dispatch to the pool, so
        repeated queries against the same index reuse one packed database
        segment instead of re-packing per call.  ``False`` disables reuse
        (per-call arenas, the pre-cache behaviour).  A pinned
        :class:`~repro.engine.arena_cache.CachedArena` (as the
        :class:`~repro.search.SearchService` passes per flush) is used as-is
        and not unpinned here.  Results are bit-identical either way.
    """
    if not isinstance(index, TrajectoryIndex):
        index = TrajectoryIndex(index)
    if engine is None:
        from ..engine import get_default_engine

        engine = get_default_engine()
    if k <= 0:
        raise ValueError("k must be positive")
    if batch_size <= 0:
        raise ValueError("batch_size must be positive")
    backend = engine.resolved_backend() if hasattr(engine, "resolved_backend") else None
    if abandon is None:
        abandon = (isinstance(measure, str)
                   and measure.lower() in default_abandon_measures(backend))
    excluded = _normalise_exclude(exclude)
    num_candidates = sum(1 for i in range(len(index)) if i not in excluded)
    if k > num_candidates:
        raise ValueError(f"k={k} exceeds the {num_candidates} available candidates "
                         f"({len(index)} indexed{', after exclusions' if excluded else ''})")

    # Phase spans mirror the perf_counter fields of SearchStats rather than
    # replace them: SearchStats must stay populated with REPRO_OBS=off, and a
    # disabled span measures nothing.
    start = time.perf_counter()
    with span("search.lower_bound", measure=measure):
        bounds = index.lower_bounds(query, measure, **measure_kwargs)
    lower_bound_seconds = time.perf_counter() - start
    with span("search.index_probe", measure=measure):
        order = np.argsort(bounds, kind="stable")
        if excluded:
            order = order[~np.isin(order, list(excluded))]

    query_points = np.asarray(getattr(query, "points", query), dtype=np.float64)
    owner_cache = None
    if arena is None:
        owner_cache, arena = _auto_pin_arena(index, engine, batch_size)
    elif arena is False:
        arena = None
    heap: list[tuple[float, int]] = []  # (-distance, -index): root = current worst
    refined: list[tuple[float, int]] = []
    refine_seconds = 0.0
    num_batches = 0
    num_abandoned = 0
    position = 0
    try:
        with span("search.refine", measure=measure):
            while position < len(order):
                tau = -heap[0][0] if len(heap) == k else np.inf
                batch: list[int] = []
                while (position < len(order) and len(batch) < batch_size
                       and (len(heap) < k or bounds[order[position]] <= tau)):
                    batch.append(int(order[position]))
                    position += 1
                if not batch:
                    break  # every remaining bound is strictly above τ — abandon the tail
                # With a full heap, refine under per-pair abandon thresholds: a pair
                # whose in-kernel lower bound exceeds τ comes back as +inf, which —
                # because τ only shrinks — can never displace a heap entry nor reach
                # the top-k.
                thresholds = (np.full(len(batch), tau)
                              if abandon and np.isfinite(tau) else None)
                start = time.perf_counter()
                # Both sides ride through as CanonicalArrays: the engine skips its
                # per-call asarray walk over database trajectories it has seen
                # before.  ``arena`` (when pinned) is the cached shared-memory
                # pack of those same arrays, joined by object identity.
                distances = engine.pairs(CanonicalArrays([query_points] * len(batch)),
                                         CanonicalArrays([index.arrays[i] for i in batch]),
                                         measure, thresholds=thresholds, arena=arena,
                                         **measure_kwargs)
                refine_seconds += time.perf_counter() - start
                num_batches += 1
                if thresholds is not None:
                    num_abandoned += int(np.isinf(distances).sum())
                for candidate, distance in zip(batch, distances):
                    distance = float(distance)
                    refined.append((distance, candidate))
                    item = (-distance, -candidate)
                    if len(heap) < k:
                        heapq.heappush(heap, item)
                    elif item > heap[0]:
                        heapq.heapreplace(heap, item)
    finally:
        if owner_cache is not None:
            owner_cache.unpin(arena)

    refined.sort()
    top = refined[:k]
    stats = SearchStats(
        num_database=len(index),
        num_candidates=len(order),
        num_refined=len(refined),
        num_pruned=len(order) - len(refined),
        num_abandoned=num_abandoned,
        num_batches=num_batches,
        lower_bound_seconds=lower_bound_seconds,
        refine_seconds=refine_seconds,
        kernel_backend=backend.name if backend is not None else "",
    )
    # Always-on registry counters (cheap integer adds, REPRO_OBS-independent):
    # the search-layer traffic totals every snapshot reports.
    counter("search.queries").add(1)
    counter("search.candidates").add(stats.num_candidates)
    counter("search.refined").add(stats.num_refined)
    counter("search.pruned").add(stats.num_pruned)
    counter("search.abandoned").add(stats.num_abandoned)
    counter("search.batches").add(stats.num_batches)
    return SearchResult(
        indices=np.array([candidate for _, candidate in top], dtype=np.int64),
        distances=np.array([distance for distance, _ in top]),
        stats=stats,
    )
