"""Continuous top-k monitoring over live trajectory streams.

:class:`StreamMonitor` answers the standing query *"alert me when a trajectory
inside this region resembles pattern X"* over a fleet of evolving streams.  It
composes three existing layers instead of inventing new machinery:

* a sharded :class:`~repro.search.index.TrajectoryIndex` holds the fleet's
  current windows; each :meth:`tick` folds every changed window in with **one**
  :meth:`~repro.search.index.TrajectoryIndex.update` call (one generation
  bump), and :meth:`~repro.search.index.TrajectoryIndex.range_query` re-screens
  only trajectories whose updated MBR intersects the watched region —
  untouched shards are skipped by their aggregate boxes;
* the in-region candidates pass through the registered **stacked lower
  bounds** (:mod:`repro.search.bounds`) plus each pair's frontier bound: a
  candidate whose bound already exceeds the current kth distance is skipped
  *without extending its DP frontier at all* — its appended points stay
  buffered in the :class:`~repro.engine.streaming.StreamingEngine` until some
  later tick actually needs them;
* survivors refine in ascending-bound order through
  :meth:`~repro.engine.streaming.StreamingEngine.value` with the running kth
  distance as the abandon threshold (τ-abandoning on the *time* axis), so the
  maintained top-k is exact — same filter-and-refine contract as
  :func:`~repro.search.knn_search`, ordered by ``(distance, id)``.

Top-k membership changes are returned as :class:`StreamAlert` records and
emitted through the obs JSONL exporter (``kind="stream_alert"`` events via
:func:`repro.obs.write_event`), so a ``REPRO_OBS_JSONL`` sink captures the
alert history next to spans and snapshots.  ``monitor.*`` registry counters
(ticks, alerts, refined, bound-skips) quantify how much extension work the
bounds saved.
"""

from __future__ import annotations

import heapq
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Mapping

import numpy as np

from ..data.trajectory import BoundingBox
from ..engine.streaming import StreamingEngine
from ..obs import counter, write_event
from ..resilience import ResilienceError
from .bounds import (
    StackedSummaries,
    TrajectorySummary,
    get_batch_lower_bound,
    get_lower_bound,
)
from .index import TrajectoryIndex

__all__ = ["StreamAlert", "StreamMonitor"]


@dataclass(frozen=True)
class StreamAlert:
    """One top-k membership change: a trajectory entered or exited the watch set."""

    tick: int
    trajectory_id: int
    event: str  # "enter" | "exit"
    distance: float  # entering distance, or last known distance on exit
    kth_distance: float
    measure: str


class StreamMonitor:
    """Standing region + similarity watch over a fleet of live streams.

    ``trajectories`` seeds the fleet (stream ``i`` keeps index id ``i`` for
    its whole life — windows are updated in place, never renumbered).
    ``pattern`` is the reference trajectory, ``region`` the watched
    :class:`~repro.data.trajectory.BoundingBox`, ``k`` the alert set size.
    DP frontiers are created lazily: a stream that never enters the region
    (or is always bound-skipped) never builds one.
    """

    def __init__(self, trajectories, pattern, region: BoundingBox,
                 measure: str = "dtw", k: int = 5,
                 engine: StreamingEngine | None = None,
                 emit_events: bool = True, index_kwargs: dict | None = None,
                 **measure_kwargs):
        if k <= 0:
            raise ValueError("k must be positive")
        self.region = region
        self.measure = measure.lower()
        self.k = k
        self.measure_kwargs = dict(measure_kwargs)
        self.emit_events = emit_events
        self.engine = engine if engine is not None else StreamingEngine()
        self.index = TrajectoryIndex(trajectories, **(index_kwargs or {}))
        self.pattern = pattern
        points = np.asarray(getattr(pattern, "points", pattern), dtype=np.float64)
        self._pattern_points = points
        self._query_summary = TrajectorySummary.of(points)
        for stream_id in range(len(self.index)):
            self.engine.register_stream(stream_id,
                                        points=self.index.arrays[stream_id])
        self._pair_ids: dict[int, object] = {}
        self.tick_count = 0
        self._topk: dict[int, float] = {}
        #: The transient error that made the latest tick skip its refresh
        #: (None after a clean tick) — operators poll this instead of logs.
        self.last_tick_error: Exception | None = None

    # ------------------------------------------------------------------ queries
    def topk(self) -> list[tuple[int, float]]:
        """Current watch set as ``[(trajectory_id, distance)]``, ``(d, id)``-ordered."""
        return sorted(self._topk.items(), key=lambda item: (item[1], item[0]))

    # --------------------------------------------------------------------- tick
    def tick(self, appends: Mapping[int, object] | None = None,
             evicts: Mapping[int, int] | None = None) -> list[StreamAlert]:
        """Apply one batch of stream updates and refresh the exact top-k.

        ``appends`` maps trajectory id → new points, ``evicts`` maps
        trajectory id → number of points dropped from the window head (a
        window never empties — monitored trajectories keep ≥ 1 point).
        Returns the membership alerts this tick produced, in ``(distance,
        id)`` order for entries followed by exits.

        **Skip-and-catch-up:** a transient failure in the re-screen/refine
        phase (a :class:`~repro.resilience.ResilienceError` or a broken
        worker pool) does not kill the monitor.  The stream updates are
        already applied by then — windows and index stay consistent — so the
        tick keeps the previous watch set, counts ``monitor.skipped_ticks``,
        records the error on :attr:`last_tick_error` and returns no alerts;
        the next tick recomputes from the unchanged pending buffers and
        catches up.  Genuine bugs (any other exception) still propagate.
        """
        appends = dict(appends or {})
        evicts = dict(evicts or {})
        for stream_id, points in appends.items():
            self.engine.append(stream_id, points, lazy=True)
        for stream_id, count in evicts.items():
            if count >= self.engine.window_length(stream_id):
                raise ValueError(f"evicting {count} points would empty "
                                 f"monitored stream {stream_id}")
            self.engine.evict(stream_id, count)
        changed = sorted(set(appends) | set(evicts))
        if changed:
            self.index.update(changed, [self.engine.window(stream_id)
                                        for stream_id in changed])
        self.tick_count += 1
        counter("monitor.ticks").add(1)

        try:
            candidates = self.index.range_query(self.region)
            counter("monitor.region_candidates").add(int(candidates.size))
            counter("monitor.skipped_region").add(
                sum(1 for stream_id in changed
                    if stream_id not in set(candidates.tolist())))
            new_topk = self._exact_topk(candidates)
        except (ResilienceError, BrokenProcessPool) as error:
            # Transient trouble below us: the updates are applied and nothing
            # was half-committed, so skip this tick's refresh and catch up on
            # the next one instead of taking the whole monitor down.
            counter("monitor.skipped_ticks").add(1)
            self.last_tick_error = error
            return []
        self.last_tick_error = None
        alerts = self._diff(new_topk)
        self._topk = new_topk
        return alerts

    # ----------------------------------------------------------- filter/refine
    def _pair_for(self, stream_id: int):
        pair_id = self._pair_ids.get(stream_id)
        if pair_id is None:
            pair_id = self.engine.watch(self.pattern, stream_id, self.measure,
                                        **self.measure_kwargs)
            self._pair_ids[stream_id] = pair_id
        return pair_id

    def _bounds(self, stale: list[int]) -> np.ndarray:
        """Lower bounds for the stale candidates: stacked index bounds joined
        with each existing pair's frontier bound (both admissible, so their
        pointwise max is too)."""
        bounds = np.zeros(len(stale))
        batch_bound = get_batch_lower_bound(self.measure)
        pair_bound = get_lower_bound(self.measure)
        if batch_bound is not None and stale:
            arrays = [self.index.arrays[stream_id] for stream_id in stale]
            if len({array.shape[1] for array in arrays}) == 1:
                stacked = StackedSummaries.of(
                    arrays, [self.index.summaries[s] for s in stale])
                bounds = np.asarray(batch_bound(
                    self._pattern_points, stacked, self._query_summary,
                    **self.measure_kwargs), dtype=np.float64)
            else:
                batch_bound = None
        if batch_bound is None and pair_bound is not None:
            bounds = np.array([
                pair_bound(self._pattern_points, self.index.arrays[s],
                           summary=self.index.summaries[s],
                           query_summary=self._query_summary,
                           **self.measure_kwargs)
                for s in stale])
        for position, stream_id in enumerate(stale):
            pair_id = self._pair_ids.get(stream_id)
            if pair_id is not None:
                frontier = self.engine.lower_bound(pair_id)
                if frontier > bounds[position]:
                    bounds[position] = frontier
        return bounds

    def _exact_topk(self, candidates: np.ndarray) -> dict[int, float]:
        fresh: list[tuple[int, float]] = []
        stale: list[int] = []
        for stream_id in candidates.tolist():
            pair_id = self._pair_ids.get(stream_id)
            if pair_id is not None and self.engine.pending(pair_id) == 0:
                fresh.append((stream_id, self.engine.value(pair_id)))
            else:
                stale.append(stream_id)
        heap: list[tuple[float, int]] = []  # (-distance, -id): root = worst kept
        for stream_id, distance in fresh:
            item = (-distance, -stream_id)
            if len(heap) < self.k:
                heapq.heappush(heap, item)
            elif item > heap[0]:
                heapq.heapreplace(heap, item)
        bounds = self._bounds(stale)
        refined = skipped = 0
        for position in np.argsort(bounds, kind="stable"):
            stream_id = stale[int(position)]
            tau = -heap[0][0] if len(heap) == self.k else np.inf
            if len(heap) == self.k and bounds[position] > tau:
                # Bounds ascend from here on: every remaining stale candidate
                # is provably outside the top-k; none extends its frontier.
                skipped = len(stale) - refined
                break
            pair_id = self._pair_for(stream_id)
            threshold = tau if np.isfinite(tau) else None
            distance = self.engine.value(pair_id, threshold=threshold)
            refined += 1
            if not np.isfinite(distance):
                continue  # τ-abandoned: provably outside the top-k
            item = (-distance, -stream_id)
            if len(heap) < self.k:
                heapq.heappush(heap, item)
            elif item > heap[0]:
                heapq.heapreplace(heap, item)
        counter("monitor.refined").add(refined)
        counter("monitor.skipped_bound").add(skipped)
        return {-negative_id: -negative_distance
                for negative_distance, negative_id in heap}

    # ------------------------------------------------------------------- alerts
    def _diff(self, new_topk: dict[int, float]) -> list[StreamAlert]:
        kth = max(new_topk.values()) if new_topk else np.inf
        alerts = [StreamAlert(self.tick_count, stream_id, "enter",
                              distance, kth, self.measure)
                  for stream_id, distance in sorted(new_topk.items(),
                                                    key=lambda i: (i[1], i[0]))
                  if stream_id not in self._topk]
        alerts += [StreamAlert(self.tick_count, stream_id, "exit",
                               distance, kth, self.measure)
                   for stream_id, distance in sorted(self._topk.items())
                   if stream_id not in new_topk]
        if alerts:
            counter("monitor.alerts").add(len(alerts))
            if self.emit_events:
                for alert in alerts:
                    write_event("stream_alert", {
                        "tick": alert.tick,
                        "trajectory_id": int(alert.trajectory_id),
                        "event": alert.event,
                        "distance": float(alert.distance),
                        "kth_distance": float(alert.kth_distance),
                        "measure": alert.measure,
                    })
        return alerts
