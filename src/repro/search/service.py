"""Batched query serving on top of the exact filter-and-refine path.

:class:`SearchService` is the front door a query-heavy deployment talks to.  It
owns one :class:`~repro.search.index.TrajectoryIndex` and a compute engine, and
adds the serving-side concerns the bare :func:`~repro.search.knn_search` call
does not have:

* **micro-batching** — :meth:`submit` enqueues a query and returns a
  :class:`PendingQuery` handle; the queue is flushed either when it reaches the
  service batch size (``REPRO_SEARCH_BATCH_SIZE`` environment variable, mirroring
  ``REPRO_ENGINE_STRATEGY``) or when a handle's result is demanded.  Queries in
  one flush share the engine's kernel dispatch and the result cache, which is how
  concurrent traffic amortises fixed costs;
* **result caching** — answers are cached under the same content-addressed
  scheme as the matrix cache (query fingerprint + index fingerprint + measure +
  kwargs + k), so repeated queries are served without touching the engine; a
  time-to-live (``cache_ttl=`` or the ``REPRO_SEARCH_CACHE_TTL`` environment
  variable, seconds) bounds staleness for long-lived deployments — expiry is
  enforced lazily on lookup (no background thread), with an opportunistic
  LRU-front sweep on insert so dead entries do not crowd the capacity budget;
* **statistics** — per-service totals (queries, cache hits/misses, latency,
  batch-fill and pruning ratios) consumed by ``eval.efficiency.search_latency``
  and the search micro-benchmark;
* **arena reuse** — under the ``shared`` engine strategy each flush pins the
  process-wide :class:`~repro.engine.arena_cache.ArenaCache` entry for the
  index (packing it on the first flush, appending only the delta after an
  index mutation), so refinement batches across queries and flushes dispatch
  against one persistent shared-memory segment; :meth:`SearchService.close`
  (or the context-manager form) evicts the segments the service caused, so a
  shut-down service leaves ``live_arena_names()`` empty;
* **admission control** — the pending queue is bounded
  (``max_pending=`` / ``REPRO_SEARCH_MAX_PENDING``); a submit past the bound
  raises a typed :class:`~repro.resilience.OverloadedError` instead of growing
  the queue without limit, counted as ``service.overloaded`` /
  ``resilience.overloaded``;
* **live-index mutation** — :meth:`SearchService.insert` /
  :meth:`SearchService.evict` mutate the owned sharded
  :class:`~repro.search.index.TrajectoryIndex` in place (flushing pending
  queries first), and the index generation counter invalidates the result
  cache so a post-mutation query can never be answered from a pre-mutation
  entry.

Serving statistics live in a per-service :class:`repro.obs.Registry` (so two
services never blur each other's traffic) and are mirrored into the
process-wide registry under the same ``service.*`` names for unified
snapshots.  :meth:`SearchService.stats` is the **pinned flat schema** the
future HTTP ``/stats`` endpoint will serve — its exact key set and types are
asserted by ``tests/test_obs_integration.py`` — while
:meth:`SearchService.snapshot` exposes the raw registry (counters plus full
batch-fill / flush-latency histograms).
"""

from __future__ import annotations

import time
from collections import OrderedDict
from typing import Sequence

import numpy as np

from ..config import env_float, env_int
from ..engine.cache import cache_key, fingerprint_trajectories
from ..obs.registry import Registry, get_registry
from ..resilience import OverloadedError
from .index import TrajectoryIndex
from .knn import SearchResult, SearchStats, _normalise_exclude, knn_search

__all__ = ["SearchService", "PendingQuery", "DEFAULT_BATCH_SIZE", "CACHE_TTL_ENV",
           "MAX_PENDING_ENV", "DEFAULT_MAX_PENDING"]

_BATCH_ENV = "REPRO_SEARCH_BATCH_SIZE"

#: Seconds a cached result stays servable (``<= 0`` or unset: no expiry).
CACHE_TTL_ENV = "REPRO_SEARCH_CACHE_TTL"

#: Admission-control bound on the pending queue (``<= 0`` disables).
MAX_PENDING_ENV = "REPRO_SEARCH_MAX_PENDING"

DEFAULT_BATCH_SIZE = 8

#: Default pending-queue bound.  Generous — the queue drains at every
#: ``batch_size``-th submit, so only a caller deferring flushes (or a huge
#: batch size) can approach it — but finite, so a stuck producer gets a typed
#: :class:`~repro.resilience.OverloadedError` instead of unbounded memory.
DEFAULT_MAX_PENDING = 1024


class PendingQuery:
    """Handle for a submitted query; resolving it flushes the service if needed."""

    __slots__ = ("_service", "_result", "_error")

    def __init__(self, service: "SearchService"):
        self._service = service
        self._result: SearchResult | None = None
        self._error: Exception | None = None

    @property
    def done(self) -> bool:
        return self._result is not None or self._error is not None

    def result(self) -> SearchResult:
        """The query's :class:`SearchResult`, flushing the pending batch if needed.

        A query that failed (e.g. an invalid ``k``) raises its own error here —
        at resolution time, not at :meth:`SearchService.submit` time — and never
        disturbs the other queries of its batch.
        """
        if not self.done:
            self._service.flush()
        if self._error is not None:
            raise self._error
        assert self._result is not None  # flush() resolves every pending handle
        return self._result


class SearchService:
    """Micro-batching, caching front end over exact trajectory top-k search."""

    def __init__(self, index: TrajectoryIndex | Sequence, measure: str = "dtw",
                 k: int = 10, engine=None, batch_size: int | None = None,
                 refine_batch_size: int = 8, cache_entries: int = 256,
                 cache_ttl: float | None = None,
                 abandon: bool | None = None, arena_reuse: bool | None = None,
                 max_pending: int | None = None, policy=None,
                 **measure_kwargs):
        self.index = index if isinstance(index, TrajectoryIndex) else TrajectoryIndex(index)
        self.measure = measure
        self.default_k = k
        self.abandon = abandon
        #: Shared-memory arena reuse across flushes: None auto-detects (shared
        #: strategy + multi-chunk refinement batches), False disables, True
        #: pins the process arena cache for the index on every flush.
        self.arena_reuse = arena_reuse
        if engine is None:
            if policy is not None:
                # A dedicated engine carries the service's resilience policy
                # (deadline / retry budget / ladder) without mutating the
                # process default one.
                from ..engine import MatrixEngine

                engine = MatrixEngine(policy=policy)
            else:
                from ..engine import get_default_engine

                engine = get_default_engine()
        elif policy is not None:
            raise ValueError("pass either engine= (carrying its own policy) "
                             "or policy=, not both")
        self.engine = engine
        if batch_size is None:
            batch_size = env_int(_BATCH_ENV, DEFAULT_BATCH_SIZE)
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        self.batch_size = batch_size
        self.refine_batch_size = refine_batch_size
        self.measure_kwargs = dict(measure_kwargs)
        if cache_entries < 0:
            raise ValueError("cache_entries must be non-negative")
        self._cache_entries = cache_entries
        if cache_ttl is None:
            cache_ttl = env_float(CACHE_TTL_ENV)
        # Admission control: submits past this bound are turned away with a
        # typed OverloadedError instead of growing the queue without limit.
        # None reads REPRO_SEARCH_MAX_PENDING; <= 0 disables the bound.
        if max_pending is None:
            max_pending = env_int(MAX_PENDING_ENV, DEFAULT_MAX_PENDING)
        self.max_pending = max_pending if max_pending and max_pending > 0 else None
        #: Result time-to-live in seconds; None or <= 0 disables expiry.
        #: Enforced lazily at lookup (plus an opportunistic LRU-front sweep on
        #: insert) — no background thread, so an idle service holds expired
        #: entries but can never *serve* one.
        self.cache_ttl = cache_ttl if cache_ttl is not None and cache_ttl > 0 \
            else None
        self._clock = time.monotonic  # swappable in tests
        self._cache: OrderedDict[str, tuple[SearchResult, float]] = OrderedDict()
        self._pending: list[tuple[str, object, int, object, PendingQuery]] = []
        self._totals = SearchStats()
        self._index_generation = self.index.generation
        # Every index fingerprint this service ever pinned an arena for;
        # close() evicts them all so shutdown leaves live_arena_names() clean.
        self._pinned_fingerprints: set[str] = set()
        self._closed = False
        #: Per-service telemetry scope; every ``service.*`` instrument is also
        #: mirrored into the process-wide registry for unified snapshots.
        self.registry = Registry()

    def __repr__(self) -> str:
        return (f"SearchService(size={len(self.index)}, measure={self.measure!r}, "
                f"batch_size={self.batch_size}, served={self.queries_served})")

    # ------------------------------------------------------------- telemetry
    def _count(self, name: str, amount: int = 1) -> None:
        self.registry.counter(name).add(amount)
        get_registry().counter(name).add(amount)

    def _observe(self, name: str, value: float) -> None:
        self.registry.histogram(name).observe(value)
        get_registry().histogram(name).observe(value)

    @property
    def queries_served(self) -> int:
        """Queries resolved (cache hits included; failed queries excluded)."""
        return self.registry.counter("service.queries").value

    @property
    def cache_hits(self) -> int:
        """Queries answered straight from the content-addressed result cache."""
        return self.registry.counter("service.cache_hits").value

    @property
    def cache_misses(self) -> int:
        """Queries that had to run the filter-and-refine path."""
        return self.registry.counter("service.cache_misses").value

    @property
    def batches_flushed(self) -> int:
        """Micro-batch flushes (size-triggered and on-demand alike)."""
        return self.registry.counter("service.flushes").value

    @property
    def total_latency_seconds(self) -> float:
        """Wall-clock spent inside :meth:`flush` (the flush-histogram sum)."""
        return self.registry.histogram("service.flush_seconds").total

    # ------------------------------------------------------------------ serving
    def submit(self, query, k: int | None = None, exclude=None) -> PendingQuery:
        """Enqueue a query; the batch flushes at ``batch_size`` or on demand.

        Raises :class:`~repro.resilience.OverloadedError` when the pending
        queue is already at ``max_pending`` — admission control turns work
        away at the door instead of queueing without bound.  The rejected
        query is never enqueued; queries already pending are unaffected.
        """
        if self.max_pending is not None and len(self._pending) >= self.max_pending:
            self._count("service.overloaded")
            get_registry().counter("resilience.overloaded").add(1)
            raise OverloadedError(len(self._pending), self.max_pending)
        k = self.default_k if k is None else k
        handle = PendingQuery(self)
        # Canonicalize the query once here: the cache key, the lower-bound pass
        # and every refinement batch all reuse the same float64 point array.
        query = np.asarray(getattr(query, "points", query), dtype=np.float64)
        key = self._result_key(query, k, exclude)
        self._pending.append((key, query, k, exclude, handle))
        if len(self._pending) >= self.batch_size:
            self.flush()
        return handle

    def search(self, query, k: int | None = None, exclude=None) -> SearchResult:
        """Answer one query immediately (submit + flush)."""
        return self.submit(query, k=k, exclude=exclude).result()

    def search_many(self, queries: Sequence, k: int | None = None,
                    exclude_self: bool = False) -> list[SearchResult]:
        """Answer a query list through the micro-batcher, preserving order.

        With ``exclude_self`` query ``i`` excludes database index ``i`` — the
        convention for queries drawn from the database itself.
        """
        handles = [self.submit(query, k=k, exclude=index if exclude_self else None)
                   for index, query in enumerate(queries)]
        return [handle.result() for handle in handles]

    def flush(self) -> int:
        """Resolve every pending query; returns how many were processed."""
        pending, self._pending = self._pending, []
        if not pending:
            return 0
        self._sync_index_generation()
        start = time.perf_counter()
        self._observe("service.batch_fill", len(pending))
        # One arena pin covers the whole flush: every cache-missing query of
        # the batch refines against the same packed database segment.
        arena_cache, arena = self._pin_arena()
        try:
            for key, query, k, exclude, handle in pending:
                cached = self._cache_get(key)
                if cached is not None:
                    self._count("service.cache_hits")
                    handle._result = cached
                else:
                    self._count("service.cache_misses")
                    try:
                        result = knn_search(self.index, query, k, measure=self.measure,
                                            engine=self.engine,
                                            batch_size=self.refine_batch_size,
                                            exclude=exclude, abandon=self.abandon,
                                            arena=arena if arena is not None else False,
                                            **self.measure_kwargs)
                    except Exception as error:  # a bad query must not orphan its batch
                        handle._error = error
                        continue
                    self._totals.merge(result.stats)
                    self._cache_put(key, result)
                    handle._result = result
                self._count("service.queries")
        finally:
            if arena_cache is not None:
                arena_cache.unpin(arena)
        self._count("service.flushes")
        self._observe("service.flush_seconds", time.perf_counter() - start)
        return len(pending)

    # ------------------------------------------------------------ index mutation
    def _sync_index_generation(self) -> None:
        """Drop cached results when the index mutated underneath the service.

        Result keys embed the index fingerprint, so stale entries could never
        be *served* — but they could never be hit again either, so clearing
        them keeps the LRU from carrying dead weight and makes the
        invalidation observable (``service.index_invalidations``).
        """
        generation = self.index.generation
        if generation != self._index_generation:
            self._index_generation = generation
            self._cache.clear()
            self._count("service.index_invalidations")

    def insert(self, trajectories) -> np.ndarray:
        """Insert into the owned index (flushing pending queries first).

        Pending queries resolve against the pre-mutation database — the
        answer they were submitted against — and the result cache is
        invalidated for the new generation.  Returns the new trajectory ids.
        """
        if self._pending:
            self.flush()
        ids = self.index.insert(trajectories)
        self._sync_index_generation()
        return ids

    def evict(self, ids) -> int:
        """Evict ids from the owned index (flushing pending queries first)."""
        if self._pending:
            self.flush()
        removed = self.index.evict(ids)
        self._sync_index_generation()
        return removed

    # ------------------------------------------------------------ arena lifetime
    def _pin_arena(self):
        """Pin the process arena cache for this flush — ``(cache, entry)`` or Nones."""
        if self.arena_reuse is False or self._closed:
            return None, None
        engine = self.engine
        if getattr(engine, "strategy", None) != "shared":
            return None, None
        if self.arena_reuse is None and \
                self.refine_batch_size <= getattr(engine, "chunk_size", 0):
            # Refinement batches would never split into multiple chunks, so
            # dispatch stays in-process and packing an arena buys nothing.
            return None, None
        from ..engine.arena_cache import get_arena_cache

        cache = get_arena_cache()
        if not cache.enabled:
            return None, None
        fingerprint = self.index.fingerprint
        entry = cache.pin(self.index.arrays, fingerprint=fingerprint)
        if entry is None:
            return None, None
        self._pinned_fingerprints.add(fingerprint)
        return cache, entry

    def close(self) -> None:
        """Flush pending work and evict this service's cached arenas.

        After ``close()`` the service still answers queries (without arena
        reuse), but every shared-memory segment it caused to be cached is
        evicted — pinned entries are doomed and unlink at their last unpin —
        so a shut-down service leaks nothing (``live_arena_names()`` drains).

        Idempotent — a double close, or a close racing the atexit cache drain,
        is a no-op — and exception-safe: arena eviction runs even when the
        final flush raises, so an error on the way down cannot leak segments.
        """
        try:
            if self._pending:
                self.flush()
        finally:
            self._closed = True
            if self._pinned_fingerprints:
                from ..engine.arena_cache import get_arena_cache

                cache = get_arena_cache()
                for fingerprint in self._pinned_fingerprints:
                    cache.evict(fingerprint)
                self._pinned_fingerprints.clear()

    def __enter__(self) -> "SearchService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -------------------------------------------------------------------- cache
    def _result_key(self, points: np.ndarray, k: int, exclude) -> str:
        # ``submit`` already canonicalized the query to a float64 point array.
        fingerprint = fingerprint_trajectories([points]) + self.index.fingerprint
        # Canonicalize the exclusion set: ``repr`` of a large numpy array
        # truncates ("...") and would collide two different exclusion sets.
        # Invalid exclude values keep a repr-based key — knn_search raises for
        # them at flush time and errors are never cached, so a collision
        # between two invalid excludes is harmless.
        try:
            excluded = tuple(sorted(_normalise_exclude(exclude)))
        except TypeError:
            excluded = repr(exclude)
        return cache_key(fingerprint, self.measure, self.measure_kwargs,
                         kind=f"knn:{k}:{excluded!r}")

    def _expired(self, stored_at: float) -> bool:
        return (self.cache_ttl is not None
                and self._clock() - stored_at > self.cache_ttl)

    def _cache_get(self, key: str) -> SearchResult | None:
        entry = self._cache.get(key)
        if entry is None:
            return None
        result, stored_at = entry
        if self._expired(stored_at):
            del self._cache[key]
            self._count("service.cache_expired")
            return None
        self._cache.move_to_end(key)
        return SearchResult(result.indices.copy(), result.distances.copy(),
                            result.stats)

    def _cache_put(self, key: str, result: SearchResult) -> None:
        if self._cache_entries == 0:
            return
        self._cache[key] = (result, self._clock())
        self._cache.move_to_end(key)
        # Opportunistic sweep: expired entries at the LRU front would only be
        # reaped on their own (unlikely) lookup, so drop them here before they
        # crowd live entries out of the capacity budget.
        while self._cache and self._expired(next(iter(self._cache.values()))[1]):
            self._cache.popitem(last=False)
            self._count("service.cache_expired")
        while len(self._cache) > self._cache_entries:
            self._cache.popitem(last=False)

    # -------------------------------------------------------------------- stats
    def stats(self) -> dict:
        """Serving totals: traffic, latency and aggregated pruning statistics.

        This flat dict is a **pinned schema** (see ``tests/test_obs_integration.py``):
        the service-level keys below plus exactly ``SearchStats.as_dict()``.
        ``batch_fill`` summarises the micro-batch occupancy histogram
        (count/sum/min/max/mean over flushes).  ``kernel_backend`` and the
        result tie-break semantics are documented on :class:`SearchStats`.
        """
        served = max(self.queries_served, 1)
        report = {
            "database_size": len(self.index),
            "measure": self.measure,
            "batch_size": self.batch_size,
            "queries_served": self.queries_served,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "batches_flushed": self.batches_flushed,
            "batch_fill": self.registry.histogram("service.batch_fill").summary(),
            "total_latency_seconds": self.total_latency_seconds,
            "mean_latency_seconds": self.total_latency_seconds / served,
        }
        report.update(self._totals.as_dict())
        return report

    def snapshot(self) -> dict:
        """This service's raw telemetry registry snapshot (counters + histograms)."""
        return self.registry.snapshot()
