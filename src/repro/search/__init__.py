"""``repro.search`` — the top-k query-serving subsystem.

Layered on the engine and data layers, this package turns the repo's offline
distance matrices into an online search path:

* :mod:`repro.search.bounds` — cheap per-measure lower bounds (LB_Keogh-style
  envelopes, MBR/endpoint separation, length-difference and reference-point
  bounds) behind a ``register_lower_bound`` registry;
* :mod:`repro.search.index` — :class:`TrajectoryIndex`, an inverted cell index
  (grid or quadtree) plus per-trajectory summaries;
* :mod:`repro.search.knn` — :func:`knn_search`, exact filter-and-refine top-k
  guaranteed identical to ``knn_from_matrix`` on the full matrix;
* :mod:`repro.search.embedding` — brute-force and IVF-style approximate search
  over trained embeddings, with recall measurement;
* :mod:`repro.search.service` — :class:`SearchService`, the micro-batching,
  caching query front end;
* :mod:`repro.search.monitor` — :class:`StreamMonitor`, continuous exact
  top-k over live streams (region screen → stacked bounds → incremental DP
  frontier refinement), emitting :class:`StreamAlert` membership changes.
"""

from .bounds import (
    TrajectorySummary,
    StackedSummaries,
    register_lower_bound,
    get_lower_bound,
    available_lower_bounds,
    lower_bound,
    register_batch_lower_bound,
    get_batch_lower_bound,
    available_batch_lower_bounds,
)
from .index import TrajectoryIndex
from .knn import (COMPILED_ABANDON_MEASURES, DEFAULT_ABANDON_MEASURES, SearchStats,
                  SearchResult, default_abandon_measures, knn_search)
from .embedding import embedding_topk, IVFEmbeddingIndex, recall_at_k
from .monitor import StreamAlert, StreamMonitor
from .service import SearchService, PendingQuery, DEFAULT_BATCH_SIZE, CACHE_TTL_ENV

__all__ = [
    "TrajectorySummary", "StackedSummaries", "register_lower_bound",
    "get_lower_bound", "available_lower_bounds", "lower_bound",
    "register_batch_lower_bound", "get_batch_lower_bound",
    "available_batch_lower_bounds",
    "TrajectoryIndex",
    "COMPILED_ABANDON_MEASURES", "DEFAULT_ABANDON_MEASURES", "SearchStats",
    "SearchResult", "default_abandon_measures", "knn_search",
    "embedding_topk", "IVFEmbeddingIndex", "recall_at_k",
    "StreamAlert", "StreamMonitor",
    "SearchService", "PendingQuery", "DEFAULT_BATCH_SIZE", "CACHE_TTL_ENV",
]
