"""Sharded spatial candidate index over a mutable trajectory database.

:class:`TrajectoryIndex` is the database half of the search subsystem: it holds
the point arrays, one :class:`~repro.search.bounds.TrajectorySummary` per
trajectory (MBR, endpoints, length, coordinate sums — everything the lower
bounds consume), and an inverted cell index built on the existing spatial
structures in ``repro.data`` (a regular :class:`~repro.data.Grid` by default,
or a :class:`~repro.data.QuadTree` whose leaves adapt to the point density).

The index is **sharded**: trajectories are assigned to shards by the coarse
grid cell of their MBR centroid (over the initial bounding box, which is
frozen so shard keys stay stable — ``Grid.cell_of`` clamps outsiders to edge
cells).  Each shard lazily owns its slice of the derived structures — stacked
summary envelopes, inverted cells, per-member MBR arrays, a content
fingerprint — and the query methods (:meth:`lower_bounds`,
:meth:`cell_candidates`, :meth:`range_query`) fan out across shards and merge,
producing exactly the values the previous monolithic index produced.

Sharding is what makes the index **mutable**: :meth:`insert` and :meth:`evict`
touch only the affected shards' lazy structures instead of rebuilding the
world, and bump a :attr:`generation` counter that downstream caches (the
service result cache, the shared-memory arena cache) key on.  The content
:attr:`fingerprint` is assembled from memoized *per-trajectory* digests, so a
mutation re-hashes only the delta and the fingerprint is identical however the
same content was reached (build fresh, or build + insert/evict).

The inverted index answers *which trajectories touch the same cells as this
query* — a cheap spatial-overlap signal used to rank candidates and to answer
region queries.  It is deliberately **not** part of the exact-search pruning
chain: cell overlap can miss true neighbours, so :func:`repro.search.knn_search`
keeps every trajectory as a candidate and relies on the sound lower bounds
instead.
"""

from __future__ import annotations

import hashlib
from typing import Sequence

import numpy as np

from ..data.grid import Grid
from ..data.quadtree import QuadTree
from ..data.trajectory import BoundingBox
from ..engine.executor import CanonicalArrays
from ..obs import counter
from ..obs.spans import span
from .bounds import (
    StackedSummaries,
    TrajectorySummary,
    get_batch_lower_bound,
    get_lower_bound,
)

__all__ = ["TrajectoryIndex"]


class _Shard:
    """One spatial shard: member ids plus lazily built per-shard structures.

    ``members`` holds *global* dense trajectory ids in insertion order; every
    lazy structure below is keyed by the member's local position, so an
    eviction elsewhere in the index only relabels ``members`` and the lazies
    stay valid.  ``None`` marks "not built yet"; ``_stacked`` additionally
    uses ``False`` for "not stackable" (shards mixing 2-D and 3-D members
    fall back to the per-candidate loop).
    """

    __slots__ = ("members", "_stacked", "_cells", "_fingerprint",
                 "_mins", "_maxs", "_agg_mins", "_agg_maxs")

    def __init__(self, members: np.ndarray):
        self.members = members
        self.invalidate()

    def invalidate(self) -> None:
        self._stacked: StackedSummaries | bool | None = None
        self._cells: dict[int, np.ndarray] | None = None
        self._fingerprint: str | None = None
        self._mins: np.ndarray | None = None
        self._maxs: np.ndarray | None = None
        self._agg_mins: np.ndarray | None = None
        self._agg_maxs: np.ndarray | None = None


def _as_point_array(trajectory) -> np.ndarray:
    points = np.asarray(getattr(trajectory, "points", trajectory), dtype=np.float64)
    if points.ndim != 2 or points.shape[0] == 0 or points.shape[1] < 2:
        raise ValueError("every trajectory must be a non-empty (n, d>=2) array")
    return np.ascontiguousarray(points)


class TrajectoryIndex:
    """Sharded inverted cell index plus per-trajectory summaries, mutable in place."""

    def __init__(self, trajectories: Sequence, spatial_index: str = "grid",
                 num_columns: int = 16, num_rows: int = 16,
                 max_points: int = 32, max_depth: int = 6, margin: float = 1e-6,
                 shard_columns: int = 2, shard_rows: int = 2):
        arrays = [_as_point_array(t) for t in trajectories]
        if not arrays:
            raise ValueError("an index needs at least one trajectory")
        # Tagged as already-canonical so every ``engine.pairs`` refinement
        # batch over this database skips re-converting the same trajectories —
        # and so the arena cache can join arrays to arena slots by identity.
        self.arrays = CanonicalArrays(arrays)
        self.summaries = [TrajectorySummary.of(points) for points in arrays]
        self.bounding_box = self._global_box(margin)

        if spatial_index not in ("grid", "quadtree"):
            raise ValueError(f"unknown spatial index '{spatial_index}'; "
                             f"options: ('grid', 'quadtree')")
        self._spatial_index = spatial_index
        self._grid_shape = (num_columns, num_rows)
        self._quadtree_shape = (max_points, max_depth)
        # The cell structures are built lazily on first cell_candidates() call:
        # the exact-search path never consumes them, so indexes constructed just
        # for knn_search/SearchService skip the O(total points) tokenisation.
        self._grid: Grid | None = None
        self._quadtree: QuadTree | None = None

        #: Bumped by every insert()/evict(); result caches and the arena cache
        #: key their invalidation on it.
        self.generation = 0
        # Per-trajectory content digests, memoized so a mutation only hashes
        # the delta; the global/per-shard fingerprints fold these 32-byte
        # digests, which makes them construction-path independent.
        self._digests: list[bytes | None] = [None] * len(arrays)
        self._fingerprint: str | None = None
        self._fingerprint_generation = -1

        if shard_columns <= 0 or shard_rows <= 0:
            raise ValueError("shard_columns and shard_rows must be positive")
        # Frozen coarse grid over the *initial* bounding box: shard keys must
        # stay stable under mutation, and cell_of clamps out-of-box centroids
        # to edge cells, so later inserts always land somewhere.
        self._shard_grid = Grid(self.bounding_box, shard_columns, shard_rows)
        buckets: dict[int, list[int]] = {}
        for trajectory_id, summary in enumerate(self.summaries):
            buckets.setdefault(self._shard_key(summary), []).append(trajectory_id)
        self._shards: dict[int, _Shard] = {
            key: _Shard(np.asarray(ids, dtype=np.int64))
            for key, ids in buckets.items()}

    # -------------------------------------------------------------- introspection
    def __len__(self) -> int:
        return len(self.arrays)

    def __repr__(self) -> str:
        return (f"TrajectoryIndex(size={len(self)}, "
                f"spatial_index={self._spatial_index!r}, "
                f"shards={len(self._shards)}, generation={self.generation})")

    @property
    def num_shards(self) -> int:
        return len(self._shards)

    @property
    def grid(self) -> Grid | None:
        """The cell grid (built on demand; None under the quadtree backend)."""
        if self._spatial_index == "grid" and self._grid is None:
            self._grid = Grid(self.bounding_box, *self._grid_shape)
        return self._grid

    @property
    def quadtree(self) -> QuadTree | None:
        """The quadtree (built on demand; None under the grid backend)."""
        if self._spatial_index == "quadtree" and self._quadtree is None:
            max_points, max_depth = self._quadtree_shape
            tree = QuadTree(self.bounding_box, max_points=max_points,
                            max_depth=max_depth)
            for points in self.arrays:
                for lon, lat in points[:, :2]:
                    tree.insert(lon, lat)
            self._quadtree = tree
        return self._quadtree

    @property
    def fingerprint(self) -> str:
        """Content hash of the indexed trajectories, memoized per generation.

        Folded from the per-trajectory digests, so it is identical for the
        same content whether that content was indexed fresh or reached through
        ``insert``/``evict`` — and a post-mutation index can never be mistaken
        for its pre-mutation self by any fingerprint-keyed cache.
        """
        if self._fingerprint is None or self._fingerprint_generation != self.generation:
            digest = hashlib.sha256(b"trajectory-index:")
            digest.update(str(len(self.arrays)).encode())
            for item in self._trajectory_digests():
                digest.update(item)
            self._fingerprint = digest.hexdigest()
            self._fingerprint_generation = self.generation
        return self._fingerprint

    def summary(self, trajectory_id: int) -> TrajectorySummary:
        return self.summaries[trajectory_id]

    def shard_stats(self) -> list[dict]:
        """Per-shard introspection: shard cell key, size and content fingerprint."""
        return [{"key": key, "size": int(len(shard.members)),
                 "fingerprint": self._shard_fingerprint(shard)}
                for key, shard in self._shards.items()]

    # ------------------------------------------------------------------ internals
    def _global_box(self, margin: float) -> BoundingBox:
        mins = np.min([s.mins[:2] for s in self.summaries], axis=0)
        maxs = np.max([s.maxs[:2] for s in self.summaries], axis=0)
        return BoundingBox(float(mins[0]), float(mins[1]),
                           float(maxs[0]), float(maxs[1])).expanded(margin)

    def _shard_key(self, summary: TrajectorySummary) -> int:
        lon = (float(summary.mins[0]) + float(summary.maxs[0])) / 2.0
        lat = (float(summary.mins[1]) + float(summary.maxs[1])) / 2.0
        return self._shard_grid.token_of(lon, lat)

    def _trajectory_digests(self) -> list[bytes]:
        for trajectory_id, cached in enumerate(self._digests):
            if cached is None:
                points = self.arrays[trajectory_id]
                item = hashlib.sha256(str(points.shape).encode())
                item.update(points.tobytes())
                self._digests[trajectory_id] = item.digest()
        return self._digests  # type: ignore[return-value]

    def _shard_fingerprint(self, shard: _Shard) -> str:
        if shard._fingerprint is None:
            digests = self._trajectory_digests()
            item = hashlib.sha256(b"shard:")
            for member in shard.members:
                item.update(digests[member])
            shard._fingerprint = item.hexdigest()
        return shard._fingerprint

    def _tokens(self, points: np.ndarray) -> list[int]:
        if self._spatial_index == "grid":
            return [self.grid.token_of(lon, lat) for lon, lat in points[:, :2]]
        return [self.quadtree.leaf_for(lon, lat).node_id for lon, lat in points[:, :2]]

    def _shard_cells(self, shard: _Shard) -> dict[int, np.ndarray]:
        """The shard's inverted cell index: cell token → local member positions."""
        if shard._cells is None:
            cells: dict[int, list[int]] = {}
            for local, member in enumerate(shard.members):
                for cell in set(self._tokens(self.arrays[member])):
                    cells.setdefault(cell, []).append(local)
            shard._cells = {cell: np.asarray(locals_, dtype=np.int64)
                            for cell, locals_ in cells.items()}
        return shard._cells

    def _shard_boxes(self, shard: _Shard) -> tuple[np.ndarray, np.ndarray]:
        """Stacked per-member 2-D MBRs (and the shard's aggregate box)."""
        if shard._mins is None:
            shard._mins = np.stack([self.summaries[m].mins[:2]
                                    for m in shard.members])
            shard._maxs = np.stack([self.summaries[m].maxs[:2]
                                    for m in shard.members])
            shard._agg_mins = shard._mins.min(axis=0)
            shard._agg_maxs = shard._maxs.max(axis=0)
        return shard._mins, shard._maxs

    def _shard_stacked(self, shard: _Shard) -> StackedSummaries | None:
        if shard._stacked is None:
            arrays = [self.arrays[m] for m in shard.members]
            widths = {array.shape[1] for array in arrays}
            shard._stacked = (StackedSummaries.of(arrays,
                                                  [self.summaries[m]
                                                   for m in shard.members])
                              if len(widths) == 1 else False)
        return shard._stacked if shard._stacked is not False else None

    def _touch(self) -> None:
        """Record a mutation: bump the generation, drop structure-global lazies."""
        self.generation += 1
        self._fingerprint = None
        counter("index.mutations").add(1)
        if self._spatial_index == "quadtree":
            # Quadtree leaf ids depend on the whole point distribution, so a
            # mutation invalidates the tokeniser — and with it every shard's
            # inverted cells, not just the affected shards'.
            self._quadtree = None
            for shard in self._shards.values():
                shard._cells = None

    # ------------------------------------------------------------------ mutation
    def insert(self, trajectories: Sequence) -> np.ndarray:
        """Append ``trajectories``; returns their new ids (dense, contiguous).

        Only the shards the new trajectories land in have their lazy
        structures invalidated; every other shard's stacked summaries,
        inverted cells and fingerprint survive untouched.  The shard grid is
        frozen at construction, so ids, the bounding box and the spatial
        tokenisers of *existing* members never change (out-of-box inserts
        clamp to edge shards/cells).
        """
        new_arrays = [_as_point_array(t) for t in trajectories]
        if not new_arrays:
            return np.zeros(0, dtype=np.int64)
        with span("index.insert", count=str(len(new_arrays))):
            start = len(self.arrays)
            touched: dict[int, list[int]] = {}
            for offset, points in enumerate(new_arrays):
                summary = TrajectorySummary.of(points)
                self.arrays.append(points)
                self.summaries.append(summary)
                self._digests.append(None)
                touched.setdefault(self._shard_key(summary), []).append(start + offset)
            for key, ids in touched.items():
                shard = self._shards.get(key)
                if shard is None:
                    self._shards[key] = _Shard(np.asarray(ids, dtype=np.int64))
                else:
                    shard.members = np.concatenate(
                        [shard.members, np.asarray(ids, dtype=np.int64)])
                    shard.invalidate()
            self._touch()
            counter("index.inserted").add(len(new_arrays))
        return np.arange(start, len(self.arrays), dtype=np.int64)

    def update(self, ids, trajectories) -> None:
        """Replace the contents of existing trajectories in place.

        Semantically an evict+insert — summaries, digests and the affected
        shards' lazy structures are rebuilt from the new points — but ids stay
        stable (no dense renumbering) and the whole batch costs **one**
        generation bump, so downstream caches invalidate once per maintenance
        tick instead of twice per trajectory.  This is the per-append
        maintenance path live streams use (:class:`repro.search.monitor.
        StreamMonitor` calls it with every tick's changed windows).  A
        trajectory whose new MBR centroid lands in a different shard migrates
        (appended to the destination's member table), exactly where a fresh
        build of the same content would place it.
        """
        ids = np.atleast_1d(np.asarray(ids, dtype=np.int64))
        new_arrays = [_as_point_array(t) for t in trajectories]
        if len(ids) != len(new_arrays):
            raise ValueError(f"update got {len(ids)} ids for "
                             f"{len(new_arrays)} trajectories")
        if len(ids) == 0:
            return
        if len(np.unique(ids)) != len(ids):
            raise ValueError("update ids must be unique")
        if ids.min() < 0 or ids.max() >= len(self.arrays):
            raise IndexError(f"update ids out of range for index of size {len(self)}")
        with span("index.update", count=str(len(ids))):
            moves: list[tuple[int, int, int]] = []  # (id, old shard, new shard)
            touched: set[int] = set()
            for trajectory_id, points in zip(ids, new_arrays):
                trajectory_id = int(trajectory_id)
                old_key = self._shard_key(self.summaries[trajectory_id])
                summary = TrajectorySummary.of(points)
                new_key = self._shard_key(summary)
                self.arrays[trajectory_id] = points
                self.summaries[trajectory_id] = summary
                self._digests[trajectory_id] = None
                touched.add(old_key)
                if new_key != old_key:
                    moves.append((trajectory_id, old_key, new_key))
                    touched.add(new_key)
            for trajectory_id, old_key, new_key in moves:
                source = self._shards[old_key]
                source.members = source.members[source.members != trajectory_id]
                if source.members.size == 0:
                    del self._shards[old_key]
                    touched.discard(old_key)
                destination = self._shards.get(new_key)
                if destination is None:
                    self._shards[new_key] = _Shard(
                        np.asarray([trajectory_id], dtype=np.int64))
                else:
                    destination.members = np.concatenate(
                        [destination.members,
                         np.asarray([trajectory_id], dtype=np.int64)])
            for key in touched:
                self._shards[key].invalidate()
            self._touch()
            counter("index.updated").add(len(ids))

    def evict(self, ids) -> int:
        """Remove trajectories by id; survivors are renumbered densely.

        Ids above an evicted one shift down (dense renumbering keeps every
        query path allocation-free), but *within* every untouched shard the
        member order — and therefore every local-position-keyed lazy
        structure — is unchanged: unaffected shards only relabel their member
        ids.  Returns the number of trajectories removed.
        """
        ids = np.unique(np.atleast_1d(np.asarray(ids, dtype=np.int64)))
        if ids.size == 0:
            return 0
        if ids.size and (ids[0] < 0 or ids[-1] >= len(self.arrays)):
            raise IndexError(f"evict ids out of range for index of size {len(self)}")
        if ids.size >= len(self.arrays):
            raise ValueError("an index needs at least one trajectory; "
                             "cannot evict every member")
        with span("index.evict", count=str(int(ids.size))):
            keep = np.ones(len(self.arrays), dtype=bool)
            keep[ids] = False
            remap = np.cumsum(keep) - 1  # old id -> new id (valid where keep)
            self.arrays = CanonicalArrays(
                array for array, kept in zip(self.arrays, keep) if kept)
            self.summaries = [s for s, kept in zip(self.summaries, keep) if kept]
            self._digests = [d for d, kept in zip(self._digests, keep) if kept]
            for key, shard in list(self._shards.items()):
                kept_mask = keep[shard.members]
                if kept_mask.all():
                    shard.members = remap[shard.members]
                    continue
                survivors = shard.members[kept_mask]
                if survivors.size == 0:
                    del self._shards[key]
                    continue
                shard.members = remap[survivors]
                shard.invalidate()
            self._touch()
            counter("index.evicted").add(int(ids.size))
        return int(ids.size)

    # ---------------------------------------------------------------- candidates
    def cell_candidates(self, query, include_all: bool = False) -> np.ndarray:
        """Trajectory ids ranked by how many cells they share with ``query``.

        Ids sharing more cells come first (ties broken by ascending id).  With
        ``include_all`` the non-overlapping remainder is appended in id order, so
        the result is a full refinement order rather than a spatial filter.

        Every shard contributes the posting lists of the query's cells (global
        ids via its member table); one ``np.bincount`` over the concatenation
        replaces the per-cell Python accumulation of the monolithic index and
        produces the same overlap counts.
        """
        points = np.asarray(getattr(query, "points", query), dtype=np.float64)
        query_cells = set(self._tokens(points))
        postings = []
        for shard in self._shards.values():
            cells = self._shard_cells(shard)
            for cell in query_cells:
                local = cells.get(cell)
                if local is not None:
                    postings.append(shard.members[local])
        counter("index.cell_postings").add(len(postings))
        if postings:
            overlap = np.bincount(np.concatenate(postings), minlength=len(self))
        else:
            overlap = np.zeros(len(self), dtype=np.int64)
        order = np.argsort(-overlap, kind="stable")
        if include_all:
            return order
        return order[overlap[order] > 0]

    def range_query(self, box: BoundingBox) -> np.ndarray:
        """Ids of trajectories whose MBR intersects ``box`` (ascending order).

        Fans out across shards — a shard whose aggregate box misses ``box`` is
        skipped without touching its members — and tests each probed shard's
        stacked min/max arrays in one vectorised pass.
        """
        hits = []
        probed = skipped = 0
        for shard in self._shards.values():
            mins, maxs = self._shard_boxes(shard)
            if (shard._agg_mins[0] > box.max_lon or shard._agg_maxs[0] < box.min_lon
                    or shard._agg_mins[1] > box.max_lat
                    or shard._agg_maxs[1] < box.min_lat):
                skipped += 1
                continue
            probed += 1
            mask = ((mins[:, 0] <= box.max_lon) & (maxs[:, 0] >= box.min_lon)
                    & (mins[:, 1] <= box.max_lat) & (maxs[:, 1] >= box.min_lat))
            if mask.any():
                hits.append(shard.members[mask])
        counter("index.range_shards_probed").add(probed)
        counter("index.range_shards_skipped").add(skipped)
        if not hits:
            return np.zeros(0, dtype=np.int64)
        return np.sort(np.concatenate(hits))

    def lower_bounds(self, query, measure: str, **measure_kwargs) -> np.ndarray:
        """Registered lower bound of ``measure`` from ``query`` to every trajectory.

        Fans out across shards: measures with a registered *batch* bound score
        each shard's candidates in one vectorised pass over that shard's
        stacked piecewise boxes, scattered back through the member table; the
        remaining cases (banded DTW windows, shards mixing column counts,
        measures with only a per-pair bound) walk the per-candidate loop.
        Both paths produce the same values as the monolithic index did —
        stacking pads with duplicated final boxes, which never change a
        min-over-pieces, so per-shard stacking is value-identical.  Measures
        without a registered bound yield all-zero bounds, which keeps
        filter-and-refine exact (it simply refines everything).
        """
        bound = get_lower_bound(measure)
        if bound is None:
            return np.zeros(len(self))
        points = np.asarray(getattr(query, "points", query), dtype=np.float64)
        query_summary = TrajectorySummary.of(points)
        batch_bound = get_batch_lower_bound(measure)
        values = np.empty(len(self))
        for shard in self._shards.values():
            got = None
            if batch_bound is not None:
                stacked = self._shard_stacked(shard)
                if stacked is not None:
                    got = batch_bound(points, stacked, query_summary,
                                      **measure_kwargs)
            if got is not None:
                values[shard.members] = got
                continue
            for member in shard.members:
                values[member] = bound(points, self.arrays[member],
                                       summary=self.summaries[member],
                                       query_summary=query_summary,
                                       **measure_kwargs)
        return values
