"""Spatial candidate index over a trajectory database.

:class:`TrajectoryIndex` is the database half of the search subsystem: it holds the
point arrays, one :class:`~repro.search.bounds.TrajectorySummary` per trajectory
(MBR, endpoints, length, coordinate sums — everything the lower bounds consume),
and an inverted cell index built on the existing spatial structures in
``repro.data`` (a regular :class:`~repro.data.Grid` by default, or a
:class:`~repro.data.QuadTree` whose leaves adapt to the point density).

The inverted index answers *which trajectories touch the same cells as this
query* — a cheap spatial-overlap signal used to rank candidates and to answer
region queries.  It is deliberately **not** part of the exact-search pruning
chain: cell overlap can miss true neighbours, so :func:`repro.search.knn_search`
keeps every trajectory as a candidate and relies on the sound lower bounds
instead.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..data.grid import Grid
from ..data.quadtree import QuadTree
from ..data.trajectory import BoundingBox
from ..engine.cache import fingerprint_trajectories
from ..engine.executor import CanonicalArrays
from .bounds import (
    StackedSummaries,
    TrajectorySummary,
    get_batch_lower_bound,
    get_lower_bound,
)

__all__ = ["TrajectoryIndex"]


class TrajectoryIndex:
    """Inverted cell index plus per-trajectory summaries for candidate generation."""

    def __init__(self, trajectories: Sequence, spatial_index: str = "grid",
                 num_columns: int = 16, num_rows: int = 16,
                 max_points: int = 32, max_depth: int = 6, margin: float = 1e-6):
        arrays = [np.asarray(getattr(t, "points", t), dtype=np.float64)
                  for t in trajectories]
        if not arrays:
            raise ValueError("an index needs at least one trajectory")
        for points in arrays:
            if points.ndim != 2 or points.shape[0] == 0 or points.shape[1] < 2:
                raise ValueError("every trajectory must be a non-empty (n, d>=2) array")
        # Tagged as already-canonical so every ``engine.pairs`` refinement
        # batch over this database skips re-converting the same trajectories.
        self.arrays = CanonicalArrays(arrays)
        self.summaries = [TrajectorySummary.of(points) for points in arrays]
        self.bounding_box = self._global_box(margin)

        if spatial_index not in ("grid", "quadtree"):
            raise ValueError(f"unknown spatial index '{spatial_index}'; "
                             f"options: ('grid', 'quadtree')")
        self._spatial_index = spatial_index
        self._grid_shape = (num_columns, num_rows)
        self._quadtree_shape = (max_points, max_depth)
        # The cell structures are built lazily on first cell_candidates() call:
        # the exact-search path never consumes them, so indexes constructed just
        # for knn_search/SearchService skip the O(total points) tokenisation.
        self._grid: Grid | None = None
        self._quadtree: QuadTree | None = None
        self._cells: dict[int, list[int]] | None = None
        self._trajectory_cells: list[frozenset[int]] | None = None
        self._fingerprint: str | None = None
        # Stacked summary form for the vectorised lower-bound pass; built on the
        # first lower_bounds() call.  False marks "not stackable" (databases
        # mixing 2-D and 3-D trajectories fall back to the per-candidate loop).
        self._stacked: StackedSummaries | bool | None = None

    # -------------------------------------------------------------- introspection
    def __len__(self) -> int:
        return len(self.arrays)

    def __repr__(self) -> str:
        return (f"TrajectoryIndex(size={len(self)}, "
                f"spatial_index={self._spatial_index!r})")

    @property
    def grid(self) -> Grid | None:
        """The cell grid (built on demand; None under the quadtree backend)."""
        if self._spatial_index == "grid" and self._grid is None:
            self._grid = Grid(self.bounding_box, *self._grid_shape)
        return self._grid

    @property
    def quadtree(self) -> QuadTree | None:
        """The quadtree (built on demand; None under the grid backend)."""
        if self._spatial_index == "quadtree" and self._quadtree is None:
            max_points, max_depth = self._quadtree_shape
            tree = QuadTree(self.bounding_box, max_points=max_points,
                            max_depth=max_depth)
            for points in self.arrays:
                for lon, lat in points[:, :2]:
                    tree.insert(lon, lat)
            self._quadtree = tree
        return self._quadtree

    @property
    def fingerprint(self) -> str:
        """Content hash of the indexed trajectories (cache keys, computed lazily)."""
        if self._fingerprint is None:
            self._fingerprint = fingerprint_trajectories(self.arrays)
        return self._fingerprint

    def summary(self, trajectory_id: int) -> TrajectorySummary:
        return self.summaries[trajectory_id]

    # ------------------------------------------------------------------ internals
    def _global_box(self, margin: float) -> BoundingBox:
        mins = np.min([s.mins[:2] for s in self.summaries], axis=0)
        maxs = np.max([s.maxs[:2] for s in self.summaries], axis=0)
        return BoundingBox(float(mins[0]), float(mins[1]),
                           float(maxs[0]), float(maxs[1])).expanded(margin)

    def _tokens(self, points: np.ndarray) -> list[int]:
        if self._spatial_index == "grid":
            return [self.grid.token_of(lon, lat) for lon, lat in points[:, :2]]
        return [self.quadtree.leaf_for(lon, lat).node_id for lon, lat in points[:, :2]]

    def _inverted_cells(self) -> dict[int, list[int]]:
        if self._cells is None:
            self._trajectory_cells = [frozenset(self._tokens(points))
                                      for points in self.arrays]
            self._cells = {}
            for trajectory_id, cells in enumerate(self._trajectory_cells):
                for cell in cells:
                    self._cells.setdefault(cell, []).append(trajectory_id)
        return self._cells

    # ---------------------------------------------------------------- candidates
    def cell_candidates(self, query, include_all: bool = False) -> np.ndarray:
        """Trajectory ids ranked by how many cells they share with ``query``.

        Ids sharing more cells come first (ties broken by ascending id).  With
        ``include_all`` the non-overlapping remainder is appended in id order, so
        the result is a full refinement order rather than a spatial filter.
        """
        points = np.asarray(getattr(query, "points", query), dtype=np.float64)
        query_cells = set(self._tokens(points))
        inverted = self._inverted_cells()
        overlap = np.zeros(len(self), dtype=np.int64)
        for cell in query_cells:
            for trajectory_id in inverted.get(cell, ()):
                overlap[trajectory_id] += 1
        order = np.argsort(-overlap, kind="stable")
        if include_all:
            return order
        return order[overlap[order] > 0]

    def range_query(self, box: BoundingBox) -> np.ndarray:
        """Ids of trajectories whose MBR intersects ``box`` (ascending order)."""
        hits = [
            trajectory_id for trajectory_id, s in enumerate(self.summaries)
            if (s.mins[0] <= box.max_lon and s.maxs[0] >= box.min_lon
                and s.mins[1] <= box.max_lat and s.maxs[1] >= box.min_lat)
        ]
        return np.asarray(hits, dtype=np.int64)

    def _stacked_summaries(self) -> StackedSummaries | None:
        """Stacked summary form shared by every vectorised lower-bound pass."""
        if self._stacked is None:
            widths = {array.shape[1] for array in self.arrays}
            self._stacked = (StackedSummaries.of(self.arrays, self.summaries)
                             if len(widths) == 1 else False)
        return self._stacked if self._stacked is not False else None

    def lower_bounds(self, query, measure: str, **measure_kwargs) -> np.ndarray:
        """Registered lower bound of ``measure`` from ``query`` to every trajectory.

        Measures with a registered *batch* bound score all candidates in one
        vectorised pass over the stacked piecewise boxes; the remaining cases
        (banded DTW windows, databases mixing column counts, measures with only
        a per-pair bound) walk the per-candidate loop.  Both paths produce the
        same values.  Measures without a registered bound yield all-zero bounds,
        which keeps filter-and-refine exact (it simply refines everything).
        """
        bound = get_lower_bound(measure)
        if bound is None:
            return np.zeros(len(self))
        points = np.asarray(getattr(query, "points", query), dtype=np.float64)
        query_summary = TrajectorySummary.of(points)
        batch_bound = get_batch_lower_bound(measure)
        if batch_bound is not None:
            stacked = self._stacked_summaries()
            if stacked is not None:
                values = batch_bound(points, stacked, query_summary, **measure_kwargs)
                if values is not None:
                    return values
        values = np.empty(len(self))
        for trajectory_id, (candidate, s) in enumerate(zip(self.arrays, self.summaries)):
            values[trajectory_id] = bound(points, candidate, summary=s,
                                          query_summary=query_summary, **measure_kwargs)
        return values
