"""Approximate top-k search over trained model embeddings.

Once an encoder is trained, online retrieval works in embedding space: a query
vector against a matrix of database vectors.  Two paths are provided:

* :func:`embedding_topk` — exact brute force.  One Gram-matrix multiplication
  (the same kernel ``eval.retrieval`` uses) followed by a stable top-k, so its
  tie-breaking matches ``knn_from_matrix``.
* :class:`IVFEmbeddingIndex` — an IVF-style coarse quantizer: a tiny Lloyd's
  k-means partitions the database into inverted lists, and a query only scans the
  ``nprobe`` lists whose centroids are nearest.  Approximate by construction;
  :func:`recall_at_k` measures how much of the exact answer survives.
"""

from __future__ import annotations

import numpy as np

from ..eval.retrieval import euclidean_distance_matrix

__all__ = ["embedding_topk", "IVFEmbeddingIndex", "recall_at_k"]


def embedding_topk(queries: np.ndarray, database: np.ndarray, k: int
                   ) -> tuple[np.ndarray, np.ndarray]:
    """Exact top-k by brute-force matmul: ``(indices, distances)``, row per query."""
    queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
    database = np.asarray(database, dtype=np.float64)
    if k <= 0:
        raise ValueError("k must be positive")
    if k > len(database):
        raise ValueError(f"k={k} exceeds the {len(database)} database vectors")
    matrix = euclidean_distance_matrix(queries, database)
    order = np.argsort(matrix, axis=1, kind="stable")[:, :k]
    return order, np.take_along_axis(matrix, order, axis=1)


class IVFEmbeddingIndex:
    """Inverted-file index over embedding vectors with a k-means coarse quantizer."""

    def __init__(self, database: np.ndarray, num_lists: int = 8, iterations: int = 10,
                 seed: int = 0):
        database = np.asarray(database, dtype=np.float64)
        if database.ndim != 2 or len(database) == 0:
            raise ValueError("database must be a non-empty (n, d) array")
        if num_lists <= 0:
            raise ValueError("num_lists must be positive")
        self.database = database
        self.num_lists = min(num_lists, len(database))
        self.centroids = self._fit_centroids(iterations, seed)
        assignments = euclidean_distance_matrix(database, self.centroids).argmin(axis=1)
        self.lists = [np.flatnonzero(assignments == list_id)
                      for list_id in range(self.num_lists)]

    def _fit_centroids(self, iterations: int, seed: int) -> np.ndarray:
        rng = np.random.default_rng(seed)
        chosen = rng.choice(len(self.database), size=self.num_lists, replace=False)
        centroids = self.database[np.sort(chosen)].copy()
        for _ in range(iterations):
            assignments = euclidean_distance_matrix(self.database, centroids).argmin(axis=1)
            for list_id in range(self.num_lists):
                members = self.database[assignments == list_id]
                if len(members):  # empty clusters keep their previous centroid
                    centroids[list_id] = members.mean(axis=0)
        return centroids

    def search(self, queries: np.ndarray, k: int, nprobe: int = 2
               ) -> tuple[np.ndarray, np.ndarray]:
        """Approximate top-k scanning the ``nprobe`` nearest inverted lists.

        Lists are probed in ascending centroid distance; probing extends past
        ``nprobe`` only when the gathered candidates cannot yet fill ``k``
        results, so every row always contains ``k`` valid indices.
        """
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        if k <= 0:
            raise ValueError("k must be positive")
        if k > len(self.database):
            raise ValueError(f"k={k} exceeds the {len(self.database)} database vectors")
        if nprobe <= 0:
            raise ValueError("nprobe must be positive")
        probe_order = np.argsort(euclidean_distance_matrix(queries, self.centroids),
                                 axis=1, kind="stable")
        indices = np.empty((len(queries), k), dtype=np.int64)
        distances = np.empty((len(queries), k))
        for row, order in enumerate(probe_order):
            candidates: list[np.ndarray] = []
            gathered = 0
            for probed, list_id in enumerate(order):
                if probed >= nprobe and gathered >= k:
                    break
                candidates.append(self.lists[list_id])
                gathered += len(self.lists[list_id])
            pool = np.sort(np.concatenate(candidates))
            pool_distances = euclidean_distance_matrix(queries[row:row + 1],
                                                       self.database[pool])[0]
            top = np.argsort(pool_distances, kind="stable")[:k]
            indices[row] = pool[top]
            distances[row] = pool_distances[top]
        return indices, distances


def recall_at_k(approximate_indices: np.ndarray, exact_indices: np.ndarray) -> float:
    """Mean fraction of the exact top-k recovered by the approximate top-k."""
    approximate_indices = np.atleast_2d(approximate_indices)
    exact_indices = np.atleast_2d(exact_indices)
    if approximate_indices.shape != exact_indices.shape:
        raise ValueError("approximate and exact index arrays must have the same shape")
    hits = sum(len(set(approx.tolist()) & set(exact.tolist()))
               for approx, exact in zip(approximate_indices, exact_indices))
    return hits / exact_indices.size
