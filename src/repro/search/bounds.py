"""Cheap per-measure lower bounds for filter-and-refine search.

Exact top-k search refuses to compute the full O(n·m) dynamic program for every
candidate.  Instead, each measure registers a *lower bound*: a function that is
provably ≤ the true distance and costs O(n + m) to evaluate.  Candidates whose
bound already exceeds the best-so-far k-th distance can be discarded without ever
running the measure — the classic filter-and-refine recipe (LB_Keogh for DTW,
length-difference bounds for edit distances, MBR separation for point-set
measures).

Bounds are registered by measure name with :func:`register_lower_bound`, which
mirrors ``repro.distances.base.register_distance``.  Every bound shares one
signature::

    bound(query, candidate, summary=None, query_summary=None,
          **measure_kwargs) -> float

where ``summary``/``query_summary`` are optional precomputed
:class:`TrajectorySummary` objects (indexes keep one per trajectory so repeated
queries never rescan candidates for their boxes, endpoints or coordinate sums).

A summary does not store a single MBR but a short chain of *piecewise* boxes
(up to :data:`DEFAULT_SEGMENTS`, consecutive pieces overlapping by one point so
polyline segments never escape them).  Trajectories are elongated, so one box
around a whole route is mostly empty space; a handful of boxes hugging the route
tightens every bound below at O(n · segments) evaluation cost.

Soundness (bound ≤ true distance for the same kwargs) is property-tested in
``tests/test_search_bounds.py``; every argument below leans on two facts: the
distance from a point to a box bounds its distance to everything inside the box
(boxes are convex), and alignment-based measures must touch every row — and pair
both endpoints — at least once.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..distances.base import as_points

__all__ = [
    "DEFAULT_SEGMENTS",
    "TrajectorySummary",
    "StackedSummaries",
    "register_lower_bound",
    "get_lower_bound",
    "available_lower_bounds",
    "lower_bound",
    "register_batch_lower_bound",
    "get_batch_lower_bound",
    "available_batch_lower_bounds",
]

LowerBoundFunction = Callable[..., float]

_LOWER_BOUNDS: dict[str, LowerBoundFunction] = {}

#: Piecewise boxes kept per trajectory summary.  More pieces → tighter bounds but
#: linearly more bound arithmetic; 8 prunes well while staying far below the cost
#: of any O(n·m) refinement.
DEFAULT_SEGMENTS = 8


@dataclass(frozen=True)
class TrajectorySummary:
    """O(segments)-size trajectory metadata consumed by the lower bounds.

    ``mins``/``maxs`` span all stored columns (the MBR plus, for timestamped
    trajectories, the time range); ``segment_starts``/``segment_ends`` delimit the
    piecewise boxes ``seg_mins``/``seg_maxs`` (inclusive point ranges, consecutive
    pieces sharing one point); ``point_sum`` is the per-column coordinate sum used
    by the ERP reference-point bound.
    """

    length: int
    mins: np.ndarray
    maxs: np.ndarray
    first: np.ndarray
    last: np.ndarray
    point_sum: np.ndarray
    segment_starts: np.ndarray
    segment_ends: np.ndarray
    seg_mins: np.ndarray
    seg_maxs: np.ndarray

    @staticmethod
    def of(trajectory, segments: int = DEFAULT_SEGMENTS) -> "TrajectorySummary":
        points = np.asarray(getattr(trajectory, "points", trajectory), dtype=np.float64)
        if points.ndim != 2 or points.shape[0] == 0:
            raise ValueError("a trajectory must be a non-empty (n, d) array of points")
        length = len(points)
        pieces = np.array_split(np.arange(length), min(max(segments, 1), length))
        starts = np.array([piece[0] for piece in pieces], dtype=np.int64)
        # Extend every piece through the next piece's first point so the polyline
        # segment bridging two pieces stays inside the earlier piece's box.
        ends = np.append(starts[1:], length - 1)
        seg_mins = np.stack([points[s:e + 1].min(axis=0) for s, e in zip(starts, ends)])
        seg_maxs = np.stack([points[s:e + 1].max(axis=0) for s, e in zip(starts, ends)])
        return TrajectorySummary(
            length=length,
            mins=points.min(axis=0),
            maxs=points.max(axis=0),
            first=points[0].copy(),
            last=points[-1].copy(),
            point_sum=points.sum(axis=0),
            segment_starts=starts,
            segment_ends=ends,
            seg_mins=seg_mins,
            seg_maxs=seg_maxs,
        )

    @property
    def has_time(self) -> bool:
        return self.mins.shape[0] >= 3


@dataclass(frozen=True)
class StackedSummaries:
    """Column-stacked form of many :class:`TrajectorySummary` objects.

    Indexes stack their summaries once so a *batch* lower bound can score every
    candidate in a handful of array passes instead of a Python loop: the
    piecewise boxes of all candidates are padded to a common piece count (by
    repeating each trajectory's final box — a duplicate box never changes a
    min-over-pieces), endpoints and coordinate sums become ``(C, d)`` arrays,
    and all candidate points are concatenated with ``offsets`` delimiting each
    trajectory for ``ufunc.reduceat`` per-candidate reductions.
    ``seg_starts``/``seg_ends`` keep each piece's inclusive point range (padded
    the same way) so window-restricted bounds — banded DTW's sliding envelope —
    can intersect pieces with per-row windows without unstacking.
    """

    lengths: np.ndarray
    firsts: np.ndarray
    lasts: np.ndarray
    point_sums: np.ndarray
    seg_mins: np.ndarray
    seg_maxs: np.ndarray
    seg_starts: np.ndarray
    seg_ends: np.ndarray
    points: np.ndarray
    offsets: np.ndarray

    @staticmethod
    def of(arrays, summaries=None) -> "StackedSummaries":
        arrays = [np.asarray(getattr(item, "points", item), dtype=np.float64)
                  for item in arrays]
        if not arrays:
            raise ValueError("StackedSummaries needs at least one trajectory")
        widths = {array.shape[1] for array in arrays}
        if len(widths) != 1:
            raise ValueError("all trajectories must share the same column count "
                             f"to stack their summaries; saw widths {sorted(widths)}")
        if summaries is None:
            summaries = [TrajectorySummary.of(array) for array in arrays]
        pieces = max(len(summary.segment_starts) for summary in summaries)
        width = widths.pop()
        count = len(arrays)
        seg_mins = np.empty((count, pieces, width))
        seg_maxs = np.empty((count, pieces, width))
        seg_starts = np.empty((count, pieces), dtype=np.int64)
        seg_ends = np.empty((count, pieces), dtype=np.int64)
        for row, summary in enumerate(summaries):
            own = len(summary.segment_starts)
            seg_mins[row, :own] = summary.seg_mins
            seg_maxs[row, :own] = summary.seg_maxs
            seg_mins[row, own:] = summary.seg_mins[-1]
            seg_maxs[row, own:] = summary.seg_maxs[-1]
            seg_starts[row, :own] = summary.segment_starts
            seg_ends[row, :own] = summary.segment_ends
            seg_starts[row, own:] = summary.segment_starts[-1]
            seg_ends[row, own:] = summary.segment_ends[-1]
        lengths = np.array([summary.length for summary in summaries], dtype=np.int64)
        offsets = np.concatenate([[0], np.cumsum(lengths)])
        return StackedSummaries(
            lengths=lengths,
            firsts=np.stack([summary.first for summary in summaries]),
            lasts=np.stack([summary.last for summary in summaries]),
            point_sums=np.stack([summary.point_sum for summary in summaries]),
            seg_mins=seg_mins,
            seg_maxs=seg_maxs,
            seg_starts=seg_starts,
            seg_ends=seg_ends,
            points=np.concatenate(arrays, axis=0),
            offsets=offsets,
        )

    def __len__(self) -> int:
        return len(self.lengths)

    @property
    def has_time(self) -> bool:
        return self.points.shape[1] >= 3


# ---------------------------------------------------------------------- registry
def register_lower_bound(name: str):
    """Decorator registering a lower bound for the measure ``name``."""

    def decorator(func: LowerBoundFunction) -> LowerBoundFunction:
        key = name.lower()
        if key in _LOWER_BOUNDS:
            raise KeyError(f"lower bound for '{name}' already registered")
        _LOWER_BOUNDS[key] = func
        return func

    return decorator


def get_lower_bound(name: str) -> LowerBoundFunction | None:
    """Lower bound registered for ``name``, or None when the measure has none."""
    return _LOWER_BOUNDS.get(name.lower())


def available_lower_bounds() -> list[str]:
    """Names of every measure with a registered lower bound."""
    return sorted(_LOWER_BOUNDS)


def lower_bound(name: str, query, candidate, summary: TrajectorySummary | None = None,
                query_summary: TrajectorySummary | None = None, **measure_kwargs) -> float:
    """Bound for ``name`` applied to one pair (0.0 when no bound is registered)."""
    func = get_lower_bound(name)
    if func is None:
        return 0.0
    return func(query, candidate, summary=summary, query_summary=query_summary,
                **measure_kwargs)


# ----------------------------------------------------------------------- helpers
def _summary_of(trajectory, summary: TrajectorySummary | None) -> TrajectorySummary:
    return summary if summary is not None else TrajectorySummary.of(trajectory)


def _box_gap_matrix(points: np.ndarray, seg_mins: np.ndarray,
                    seg_maxs: np.ndarray) -> np.ndarray:
    """(n, segments) Euclidean distances from every point to every piece box."""
    delta = np.maximum(np.maximum(seg_mins[None, :, :] - points[:, None, :],
                                  points[:, None, :] - seg_maxs[None, :, :]), 0.0)
    return np.sqrt((delta ** 2).sum(axis=-1))


def _point_gaps(points: np.ndarray, summary: TrajectorySummary) -> np.ndarray:
    """Per-point lower bound on the distance to the summarised point set/polyline.

    Every candidate point (and, because pieces overlap by one point, every
    polyline segment) lies inside some piece box, so the minimum over piece boxes
    bounds both the point-to-point-set and point-to-polyline distances.
    """
    return _box_gap_matrix(points, summary.seg_mins[:, :2],
                           summary.seg_maxs[:, :2]).min(axis=1)


def _chebyshev_gaps(points: np.ndarray, summary: TrajectorySummary) -> np.ndarray:
    """Per-point Chebyshev (max-coordinate) distance to the nearest piece box."""
    delta = np.maximum(np.maximum(summary.seg_mins[None, :, :2] - points[:, None, :],
                                  points[:, None, :] - summary.seg_maxs[None, :, :2]), 0.0)
    return delta.max(axis=-1).min(axis=1)


def _alignment_row_bound(interior_gaps: np.ndarray, first_cost: float,
                         last_cost: float) -> float:
    """Σ of per-row alignment lower bounds with exact first/last cells.

    Every warping path visits the pair (0, 0) first and (n−1, m−1) last — those
    are distinct path cells whenever the path has more than one cell — while each
    interior row contributes at least its cheapest reachable cell.  Adding the
    exact endpoint costs to the interior row minima is therefore still a lower
    bound, and a much tighter one than taking their maximum.

    ``interior_gaps`` must cover rows ``1 .. n−2`` only (empty when n ≤ 2).
    """
    return first_cost + float(interior_gaps.sum()) + last_cost


# --------------------------------------------------------- alignment (sum) bounds
@register_lower_bound("dtw")
def lb_dtw(query, candidate, band: int | None = None,
           summary: TrajectorySummary | None = None,
           query_summary: TrajectorySummary | None = None) -> float:
    """LB_Keogh-style piecewise-envelope bound for (optionally banded) DTW.

    Every interior query point is matched to at least one candidate point on the
    optimal path and the path's first/last cells are exactly (0, 0)/(n−1, m−1),
    so DTW ≥ d(a₀, b₀) + Σᵢ minⱼ d(aᵢ, bⱼ) + d(a₋₁, b₋₁) with the sum over
    interior rows, each row min bounded by the nearest reachable piece box;
    unbanded, the symmetric candidate-side sum applies too.  Banded, row ``i``
    may only couple with columns ``|i − j| ≤ r`` where ``r = max(band, |n − m|)``
    — exactly ``dtw_distance``'s widened Sakoe–Chiba radius — so only pieces
    intersecting that window count, the sliding-envelope of LB_Keogh.
    """
    a = as_points(query)
    s = _summary_of(candidate, summary)
    n, m = len(a), s.length
    first_cost = float(np.linalg.norm(a[0] - s.first[:2]))
    if n == 1 and m == 1:
        return first_cost
    last_cost = float(np.linalg.norm(a[-1] - s.last[:2]))
    if band is None:
        qs = _summary_of(a, query_summary)
        b = np.asarray(getattr(candidate, "points", candidate), dtype=np.float64)[:, :2]
        row_sum = _alignment_row_bound(_point_gaps(a[1:-1], s) if n > 2 else np.zeros(0),
                                       first_cost, last_cost)
        col_sum = _alignment_row_bound(_point_gaps(b[1:-1], qs) if m > 2 else np.zeros(0),
                                       first_cost, last_cost)
        return max(row_sum, col_sum)
    radius = max(int(band), abs(n - m))
    gap_matrix = _box_gap_matrix(a, s.seg_mins[:, :2], s.seg_maxs[:, :2])
    rows = np.arange(n)
    window_low = np.maximum(rows - radius, 0)
    window_high = np.minimum(rows + radius, m - 1)
    first_piece = np.searchsorted(s.segment_ends, window_low, side="left")
    last_piece = np.searchsorted(s.segment_starts, window_high, side="right") - 1
    interior = np.array([gap_matrix[i, first_piece[i]:last_piece[i] + 1].min()
                         for i in range(1, n - 1)])
    return _alignment_row_bound(interior, first_cost, last_cost)


@register_lower_bound("erp")
def lb_erp(query, candidate, gap=None, summary: TrajectorySummary | None = None,
           query_summary: TrajectorySummary | None = None) -> float:
    """Chen & Ng's reference-point bound, lifted to the plane.

    With uᵢ = aᵢ − g and vⱼ = bⱼ − g, any ERP alignment costs Σ‖uᵢ − vⱼ‖ over
    matches plus Σ‖uᵢ‖ and Σ‖vⱼ‖ over gaps, which by the triangle inequality is
    at least ‖Σuᵢ − Σvⱼ‖ — computable from the stored coordinate sums alone.
    """
    a = as_points(query)
    s = _summary_of(candidate, summary)
    gap_point = np.zeros(2) if gap is None else np.asarray(gap, dtype=np.float64)[:2]
    sum_a = a.sum(axis=0) - len(a) * gap_point
    sum_b = s.point_sum[:2] - s.length * gap_point
    return float(np.linalg.norm(sum_a - sum_b))


# ------------------------------------------------------------- edit-count bounds
@register_lower_bound("edr")
def lb_edr(query, candidate, epsilon: float = 0.25,
           summary: TrajectorySummary | None = None,
           query_summary: TrajectorySummary | None = None) -> float:
    """Length-difference and unmatchable-point bounds for EDR.

    The deletion/insertion counts of any alignment differ by exactly |n − m|, and
    every point farther than ``epsilon`` (Chebyshev) from all of the other
    trajectory's piece boxes can never satisfy EDR's match predicate, so it costs
    one edit.
    """
    a = as_points(query)
    b = as_points(candidate)
    s = _summary_of(b, summary)
    qs = _summary_of(a, query_summary)
    unmatchable_a = int((_chebyshev_gaps(a, s) > epsilon).sum())
    unmatchable_b = int((_chebyshev_gaps(b, qs) > epsilon).sum())
    return float(max(abs(len(a) - s.length), unmatchable_a, unmatchable_b))


@register_lower_bound("lcss")
def lb_lcss(query, candidate, epsilon: float = 0.25,
            summary: TrajectorySummary | None = None,
            query_summary: TrajectorySummary | None = None) -> float:
    """Matchable-point bound for the LCSS distance 1 − LCSS/min(n, m).

    A common subsequence only contains points within ``epsilon`` (Chebyshev) of
    some piece box of the other trajectory, capping LCSS by the matchable counts
    of each side.
    """
    a = as_points(query)
    b = as_points(candidate)
    s = _summary_of(b, summary)
    qs = _summary_of(a, query_summary)
    n, m = len(a), s.length
    matchable_a = int((_chebyshev_gaps(a, s) <= epsilon).sum())
    matchable_b = int((_chebyshev_gaps(b, qs) <= epsilon).sum())
    best_common = min(matchable_a, matchable_b, n, m)
    return max(0.0, 1.0 - best_common / min(n, m))


# --------------------------------------------------------------- point-set bounds
@register_lower_bound("hausdorff")
def lb_hausdorff(query, candidate, summary: TrajectorySummary | None = None,
                 query_summary: TrajectorySummary | None = None) -> float:
    """Piece-box bound: H(A, B) ≥ maxᵢ d(aᵢ, pieces(B)) and symmetrically for B."""
    a = as_points(query)
    b = as_points(candidate)
    s = _summary_of(b, summary)
    qs = _summary_of(a, query_summary)
    return max(float(_point_gaps(a, s).max()), float(_point_gaps(b, qs).max()))


@register_lower_bound("frechet")
def lb_frechet(query, candidate, summary: TrajectorySummary | None = None,
               query_summary: TrajectorySummary | None = None) -> float:
    """Endpoint and piece-box bounds for the discrete Fréchet distance.

    Every coupling pairs the first points with each other and the last points with
    each other, and matches every point of one curve to some point of the other;
    the coupling maximum dominates each of those pair distances.
    """
    a = as_points(query)
    b = as_points(candidate)
    s = _summary_of(b, summary)
    qs = _summary_of(a, query_summary)
    first = float(np.linalg.norm(a[0] - s.first[:2]))
    last = float(np.linalg.norm(a[-1] - s.last[:2]))
    return max(first, last, float(_point_gaps(a, s).max()),
               float(_point_gaps(b, qs).max()))


@register_lower_bound("sspd")
def lb_sspd(query, candidate, summary: TrajectorySummary | None = None,
            query_summary: TrajectorySummary | None = None) -> float:
    """Piece-box bound for SSPD.

    Point-to-polyline distances dominate point-to-nearest-piece-box distances
    because every polyline segment lies inside a piece box (pieces overlap by one
    point, and boxes are convex).
    """
    a = as_points(query)
    b = as_points(candidate)
    s = _summary_of(b, summary)
    qs = _summary_of(a, query_summary)
    return 0.5 * (float(_point_gaps(a, s).mean()) + float(_point_gaps(b, qs).mean()))


# ---------------------------------------------------------- spatio-temporal bounds
def _st_gaps(points: np.ndarray, summary: TrajectorySummary,
             lambda_spatial: float, time_scale: float) -> np.ndarray:
    """Per-point lower bounds on the blended spatio-temporal cost to the pieces.

    For the piece containing the best-matching candidate point, the blended cost
    is at least λ·(spatial gap to its box) + (1 − λ)·(time gap to its range), so
    the minimum of that expression over pieces bounds minⱼ cost(i, j).
    """
    spatial = _box_gap_matrix(points[:, :2], summary.seg_mins[:, :2],
                              summary.seg_maxs[:, :2])
    temporal = np.maximum(
        np.maximum(summary.seg_mins[None, :, 2] - points[:, None, 2],
                   points[:, None, 2] - summary.seg_maxs[None, :, 2]), 0.0) / time_scale
    return (lambda_spatial * spatial + (1.0 - lambda_spatial) * temporal).min(axis=1)


def _require_temporal(points: np.ndarray, summary: TrajectorySummary, name: str) -> None:
    if points.shape[1] < 3 or not summary.has_time:
        raise ValueError(f"{name} requires trajectories with a time column (lon, lat, t)")


@register_lower_bound("tp")
def lb_tp(query, candidate, lambda_spatial: float = 0.5, time_scale: float = 1.0,
          summary: TrajectorySummary | None = None,
          query_summary: TrajectorySummary | None = None) -> float:
    """Piece-box bound on TP's symmetric mean closest-pair blend."""
    a = as_points(query, spatial_only=False)
    b = np.asarray(getattr(candidate, "points", candidate), dtype=np.float64)
    s = _summary_of(b, summary)
    qs = _summary_of(a, query_summary)
    _require_temporal(a, s, "lb_tp")
    forward = float(_st_gaps(a, s, lambda_spatial, time_scale).mean())
    backward = float(_st_gaps(b, qs, lambda_spatial, time_scale).mean())
    return 0.5 * (forward + backward)


@register_lower_bound("dita")
def lb_dita(query, candidate, lambda_spatial: float = 0.5, time_scale: float = 1.0,
            summary: TrajectorySummary | None = None,
            query_summary: TrajectorySummary | None = None) -> float:
    """DTW-style row/endpoint bounds over the blended spatio-temporal cost."""
    a = as_points(query, spatial_only=False)
    b = np.asarray(getattr(candidate, "points", candidate), dtype=np.float64)
    s = _summary_of(b, summary)
    qs = _summary_of(a, query_summary)
    _require_temporal(a, s, "lb_dita")

    def pair_cost(p: np.ndarray, q: np.ndarray) -> float:
        spatial = float(np.linalg.norm(p[:2] - q[:2]))
        temporal = abs(p[2] - q[2]) / time_scale
        return lambda_spatial * spatial + (1.0 - lambda_spatial) * temporal

    first_cost = pair_cost(a[0], s.first)
    if len(a) == 1 and s.length == 1:
        return first_cost
    last_cost = pair_cost(a[-1], s.last)
    row_interior = _st_gaps(a[1:-1], s, lambda_spatial, time_scale) \
        if len(a) > 2 else np.zeros(0)
    col_interior = _st_gaps(b[1:-1], qs, lambda_spatial, time_scale) \
        if len(b) > 2 else np.zeros(0)
    return max(_alignment_row_bound(row_interior, first_cost, last_cost),
               _alignment_row_bound(col_interior, first_cost, last_cost))


# ------------------------------------------------------------------ batch bounds
# One-pass vectorised twins of the per-pair bounds above.  A batch bound scores a
# query against EVERY candidate of a StackedSummaries in a few array passes:
# query points are broadcast against the stacked candidate boxes, candidate
# points are evaluated against the query's boxes in one concatenated pass and
# reduced per candidate with ufunc.reduceat.  Each function mirrors its per-pair
# twin line for line (tests/test_search_bounds.py pins them together to 1e-9);
# returning None signals "these kwargs need the per-pair fallback" (banded DTW).

_BATCH_LOWER_BOUNDS: dict[str, Callable] = {}

#: Soft cap on broadcast temporaries (elements per chunk) in the stacked passes.
_BATCH_CHUNK_ELEMENTS = 2_000_000


def register_batch_lower_bound(name: str):
    """Decorator registering the batch twin of the lower bound for ``name``."""

    def decorator(func: Callable) -> Callable:
        key = name.lower()
        if key in _BATCH_LOWER_BOUNDS:
            raise KeyError(f"batch lower bound for '{name}' already registered")
        _BATCH_LOWER_BOUNDS[key] = func
        return func

    return decorator


def get_batch_lower_bound(name: str) -> Callable | None:
    """Batch lower bound registered for ``name`` (None when only per-pair exists)."""
    return _BATCH_LOWER_BOUNDS.get(name.lower())


def available_batch_lower_bounds() -> list[str]:
    """Names of every measure with a registered batch lower bound."""
    return sorted(_BATCH_LOWER_BOUNDS)


def _stacked_gaps(points: np.ndarray, seg_mins: np.ndarray, seg_maxs: np.ndarray,
                  chebyshev: bool = False) -> np.ndarray:
    """(n, C) per-point distances to every candidate's nearest piece box.

    ``points`` is (n, 2) and the boxes (C, S, 2); the broadcast temporary is
    (n, block, S, 2), chunked over candidates to stay within the element cap.
    """
    if len(points) == 0:
        return np.zeros((0, len(seg_mins)))
    count = len(seg_mins)
    pieces = seg_mins.shape[1]
    block = max(1, _BATCH_CHUNK_ELEMENTS // max(len(points) * pieces, 1))
    out = np.empty((len(points), count))
    for start in range(0, count, block):
        stop = min(start + block, count)
        delta = np.maximum(
            np.maximum(seg_mins[None, start:stop] - points[:, None, None, :],
                       points[:, None, None, :] - seg_maxs[None, start:stop]), 0.0)
        if chebyshev:
            out[:, start:stop] = delta.max(axis=-1).min(axis=-1)
        else:
            out[:, start:stop] = np.sqrt((delta ** 2).sum(axis=-1)).min(axis=-1)
    return out


def _concat_point_gaps(points: np.ndarray, summary: TrajectorySummary,
                       chebyshev: bool = False) -> np.ndarray:
    """Per-point gap to the query's piece boxes for ALL candidate points at once.

    The concatenated-candidate counterpart of :func:`_point_gaps` /
    :func:`_chebyshev_gaps`: one (N, S_q) pass over every candidate point,
    chunked over rows.
    """
    seg_mins = summary.seg_mins[:, :2]
    seg_maxs = summary.seg_maxs[:, :2]
    block = max(1, _BATCH_CHUNK_ELEMENTS // max(len(seg_mins), 1))
    out = np.empty(len(points))
    for start in range(0, len(points), block):
        stop = min(start + block, len(points))
        chunk = points[start:stop]
        delta = np.maximum(np.maximum(seg_mins[None] - chunk[:, None, :],
                                      chunk[:, None, :] - seg_maxs[None]), 0.0)
        if chebyshev:
            out[start:stop] = delta.max(axis=-1).min(axis=-1)
        else:
            out[start:stop] = np.sqrt((delta ** 2).sum(axis=-1)).min(axis=-1)
    return out


def _per_candidate_sum(values: np.ndarray, offsets: np.ndarray) -> np.ndarray:
    return np.add.reduceat(values, offsets[:-1])


def _per_candidate_max(values: np.ndarray, offsets: np.ndarray) -> np.ndarray:
    return np.maximum.reduceat(values, offsets[:-1])


def _interior_sums(values: np.ndarray, offsets: np.ndarray,
                   lengths: np.ndarray) -> np.ndarray:
    """Per-candidate sum of ``values`` over interior rows (1 .. m−2) only.

    Endpoint entries are zeroed before the segmented sum, matching the scalar
    bounds' slicing (``b[1:-1]``); candidates shorter than three points have no
    interior and contribute zero.
    """
    interior = values.copy()
    interior[offsets[:-1]] = 0.0
    interior[offsets[1:] - 1] = 0.0
    sums = np.add.reduceat(interior, offsets[:-1])
    return np.where(lengths > 2, sums, 0.0)


def _batch_lb_dtw_banded(a: np.ndarray, stacked: StackedSummaries,
                         band: int) -> np.ndarray:
    """Windowed batch twin of banded :func:`lb_dtw` over the stacked envelopes.

    Mirrors the scalar sliding-envelope bound: query row ``i`` may only couple
    with candidate columns ``|i − j| ≤ r_c`` (``r_c = max(band, |n − m_c|)``),
    so only pieces intersecting that window — ``seg_end ≥ window_low`` and
    ``seg_start ≤ window_high``, exactly the scalar ``searchsorted`` range —
    contribute to each row's minimum.  Padded duplicate pieces repeat the last
    real piece's box *and* range, so they never change the windowed minimum.
    """
    n = len(a)
    first = np.linalg.norm(stacked.firsts[:, :2] - a[0], axis=-1)
    last = np.linalg.norm(stacked.lasts[:, :2] - a[-1], axis=-1)
    count = len(stacked)
    interior = np.zeros(count)
    if n > 2:
        rows = np.arange(1, n - 1)
        radius = np.maximum(int(band), np.abs(n - stacked.lengths))
        pieces = stacked.seg_mins.shape[1]
        block = max(1, _BATCH_CHUNK_ELEMENTS // max((n - 2) * pieces, 1))
        inner = a[1:-1]
        for start in range(0, count, block):
            stop = min(start + block, count)
            delta = np.maximum(
                np.maximum(stacked.seg_mins[None, start:stop, :, :2]
                           - inner[:, None, None, :],
                           inner[:, None, None, :]
                           - stacked.seg_maxs[None, start:stop, :, :2]), 0.0)
            gaps = np.sqrt((delta ** 2).sum(axis=-1))  # (n-2, block, S)
            window_low = np.maximum(rows[:, None] - radius[None, start:stop], 0)
            window_high = np.minimum(rows[:, None] + radius[None, start:stop],
                                     stacked.lengths[None, start:stop] - 1)
            allowed = ((stacked.seg_ends[None, start:stop, :]
                        >= window_low[:, :, None])
                       & (stacked.seg_starts[None, start:stop, :]
                          <= window_high[:, :, None]))
            interior[start:stop] = np.where(allowed, gaps, np.inf) \
                .min(axis=-1).sum(axis=0)
    values = first + interior + last
    if n == 1:
        values = np.where(stacked.lengths == 1, first, values)
    return values


@register_batch_lower_bound("dtw")
def batch_lb_dtw(query, stacked: StackedSummaries,
                 query_summary: TrajectorySummary, band: int | None = None
                 ) -> np.ndarray | None:
    """Batch twin of :func:`lb_dtw` (banded via the windowed stacked envelopes)."""
    if band is not None:
        return _batch_lb_dtw_banded(as_points(query), stacked, band)
    a = as_points(query)
    n = len(a)
    first = np.linalg.norm(stacked.firsts[:, :2] - a[0], axis=-1)
    last = np.linalg.norm(stacked.lasts[:, :2] - a[-1], axis=-1)
    row_interior = _stacked_gaps(a[1:-1], stacked.seg_mins[..., :2],
                                 stacked.seg_maxs[..., :2]).sum(axis=0) \
        if n > 2 else np.zeros(len(stacked))
    row_sum = first + row_interior + last
    gaps = _concat_point_gaps(stacked.points[:, :2], query_summary)
    col_interior = _interior_sums(gaps, stacked.offsets, stacked.lengths)
    col_sum = first + col_interior + last
    values = np.maximum(row_sum, col_sum)
    if n == 1:
        values = np.where(stacked.lengths == 1, first, values)
    return values


@register_batch_lower_bound("erp")
def batch_lb_erp(query, stacked: StackedSummaries,
                 query_summary: TrajectorySummary, gap=None) -> np.ndarray:
    """Batch twin of :func:`lb_erp` over the stacked coordinate sums."""
    a = as_points(query)
    gap_point = np.zeros(2) if gap is None else np.asarray(gap, dtype=np.float64)[:2]
    sum_a = a.sum(axis=0) - len(a) * gap_point
    sums_b = stacked.point_sums[:, :2] - stacked.lengths[:, None] * gap_point
    return np.linalg.norm(sums_b - sum_a, axis=-1)


@register_batch_lower_bound("edr")
def batch_lb_edr(query, stacked: StackedSummaries,
                 query_summary: TrajectorySummary, epsilon: float = 0.25) -> np.ndarray:
    """Batch twin of :func:`lb_edr`: length gaps and unmatchable-point counts."""
    a = as_points(query)
    cheb = _stacked_gaps(a, stacked.seg_mins[..., :2], stacked.seg_maxs[..., :2],
                         chebyshev=True)
    unmatchable_a = (cheb > epsilon).sum(axis=0)
    gaps = _concat_point_gaps(stacked.points[:, :2], query_summary, chebyshev=True)
    unmatchable_b = _per_candidate_sum((gaps > epsilon).astype(np.float64),
                                       stacked.offsets)
    return np.maximum(np.abs(len(a) - stacked.lengths).astype(np.float64),
                      np.maximum(unmatchable_a, unmatchable_b))


@register_batch_lower_bound("lcss")
def batch_lb_lcss(query, stacked: StackedSummaries,
                  query_summary: TrajectorySummary, epsilon: float = 0.25) -> np.ndarray:
    """Batch twin of :func:`lb_lcss`: matchable-point caps on the common length."""
    a = as_points(query)
    n = len(a)
    cheb = _stacked_gaps(a, stacked.seg_mins[..., :2], stacked.seg_maxs[..., :2],
                         chebyshev=True)
    matchable_a = (cheb <= epsilon).sum(axis=0)
    gaps = _concat_point_gaps(stacked.points[:, :2], query_summary, chebyshev=True)
    matchable_b = _per_candidate_sum((gaps <= epsilon).astype(np.float64),
                                     stacked.offsets)
    best_common = np.minimum(np.minimum(matchable_a, matchable_b),
                             np.minimum(n, stacked.lengths))
    return np.maximum(0.0, 1.0 - best_common / np.minimum(n, stacked.lengths))


@register_batch_lower_bound("hausdorff")
def batch_lb_hausdorff(query, stacked: StackedSummaries,
                       query_summary: TrajectorySummary) -> np.ndarray:
    """Batch twin of :func:`lb_hausdorff`: symmetric max piece-box gaps."""
    a = as_points(query)
    forward = _stacked_gaps(a, stacked.seg_mins[..., :2],
                            stacked.seg_maxs[..., :2]).max(axis=0)
    gaps = _concat_point_gaps(stacked.points[:, :2], query_summary)
    backward = _per_candidate_max(gaps, stacked.offsets)
    return np.maximum(forward, backward)


@register_batch_lower_bound("frechet")
def batch_lb_frechet(query, stacked: StackedSummaries,
                     query_summary: TrajectorySummary) -> np.ndarray:
    """Batch twin of :func:`lb_frechet`: endpoint pairs plus piece-box gaps."""
    a = as_points(query)
    first = np.linalg.norm(stacked.firsts[:, :2] - a[0], axis=-1)
    last = np.linalg.norm(stacked.lasts[:, :2] - a[-1], axis=-1)
    forward = _stacked_gaps(a, stacked.seg_mins[..., :2],
                            stacked.seg_maxs[..., :2]).max(axis=0)
    gaps = _concat_point_gaps(stacked.points[:, :2], query_summary)
    backward = _per_candidate_max(gaps, stacked.offsets)
    return np.maximum(np.maximum(first, last), np.maximum(forward, backward))


@register_batch_lower_bound("sspd")
def batch_lb_sspd(query, stacked: StackedSummaries,
                  query_summary: TrajectorySummary) -> np.ndarray:
    """Batch twin of :func:`lb_sspd`: symmetric mean piece-box gaps."""
    a = as_points(query)
    forward = _stacked_gaps(a, stacked.seg_mins[..., :2],
                            stacked.seg_maxs[..., :2]).mean(axis=0)
    gaps = _concat_point_gaps(stacked.points[:, :2], query_summary)
    backward = _per_candidate_sum(gaps, stacked.offsets) / stacked.lengths
    return 0.5 * (forward + backward)


def _stacked_st_gaps(points: np.ndarray, seg_mins: np.ndarray, seg_maxs: np.ndarray,
                     lambda_spatial: float, time_scale: float) -> np.ndarray:
    """(n, C) blended spatio-temporal gaps to every candidate's best piece box."""
    if len(points) == 0:
        return np.zeros((0, len(seg_mins)))
    count = len(seg_mins)
    pieces = seg_mins.shape[1]
    block = max(1, _BATCH_CHUNK_ELEMENTS // max(len(points) * pieces, 1))
    out = np.empty((len(points), count))
    for start in range(0, count, block):
        stop = min(start + block, count)
        mins = seg_mins[None, start:stop]
        maxs = seg_maxs[None, start:stop]
        spatial_delta = np.maximum(
            np.maximum(mins[..., :2] - points[:, None, None, :2],
                       points[:, None, None, :2] - maxs[..., :2]), 0.0)
        spatial = np.sqrt((spatial_delta ** 2).sum(axis=-1))
        temporal = np.maximum(
            np.maximum(mins[..., 2] - points[:, None, None, 2],
                       points[:, None, None, 2] - maxs[..., 2]), 0.0) / time_scale
        blended = lambda_spatial * spatial + (1.0 - lambda_spatial) * temporal
        out[:, start:stop] = blended.min(axis=-1)
    return out


def _concat_st_gaps(points: np.ndarray, summary: TrajectorySummary,
                    lambda_spatial: float, time_scale: float) -> np.ndarray:
    """Blended spatio-temporal gap to the query's boxes for all candidate points."""
    seg_mins = summary.seg_mins
    seg_maxs = summary.seg_maxs
    block = max(1, _BATCH_CHUNK_ELEMENTS // max(len(seg_mins), 1))
    out = np.empty(len(points))
    for start in range(0, len(points), block):
        stop = min(start + block, len(points))
        chunk = points[start:stop]
        spatial_delta = np.maximum(
            np.maximum(seg_mins[None, :, :2] - chunk[:, None, :2],
                       chunk[:, None, :2] - seg_maxs[None, :, :2]), 0.0)
        spatial = np.sqrt((spatial_delta ** 2).sum(axis=-1))
        temporal = np.maximum(
            np.maximum(seg_mins[None, :, 2] - chunk[:, None, 2],
                       chunk[:, None, 2] - seg_maxs[None, :, 2]), 0.0) / time_scale
        out[start:stop] = (lambda_spatial * spatial
                           + (1.0 - lambda_spatial) * temporal).min(axis=-1)
    return out


def _require_temporal_stacked(points: np.ndarray, stacked: StackedSummaries,
                              name: str) -> None:
    if points.shape[1] < 3 or not stacked.has_time:
        raise ValueError(f"{name} requires trajectories with a time column (lon, lat, t)")


@register_batch_lower_bound("tp")
def batch_lb_tp(query, stacked: StackedSummaries,
                query_summary: TrajectorySummary, lambda_spatial: float = 0.5,
                time_scale: float = 1.0) -> np.ndarray:
    """Batch twin of :func:`lb_tp`: symmetric mean blended piece-box gaps."""
    a = as_points(query, spatial_only=False)
    _require_temporal_stacked(a, stacked, "lb_tp")
    forward = _stacked_st_gaps(a, stacked.seg_mins, stacked.seg_maxs,
                               lambda_spatial, time_scale).mean(axis=0)
    gaps = _concat_st_gaps(stacked.points, query_summary, lambda_spatial, time_scale)
    backward = _per_candidate_sum(gaps, stacked.offsets) / stacked.lengths
    return 0.5 * (forward + backward)


@register_batch_lower_bound("dita")
def batch_lb_dita(query, stacked: StackedSummaries,
                  query_summary: TrajectorySummary, lambda_spatial: float = 0.5,
                  time_scale: float = 1.0) -> np.ndarray:
    """Batch twin of :func:`lb_dita`: blended row/endpoint alignment bounds."""
    a = as_points(query, spatial_only=False)
    _require_temporal_stacked(a, stacked, "lb_dita")
    n = len(a)

    def pair_costs(point: np.ndarray, others: np.ndarray) -> np.ndarray:
        spatial = np.linalg.norm(others[:, :2] - point[:2], axis=-1)
        temporal = np.abs(others[:, 2] - point[2]) / time_scale
        return lambda_spatial * spatial + (1.0 - lambda_spatial) * temporal

    first = pair_costs(a[0], stacked.firsts)
    last = pair_costs(a[-1], stacked.lasts)
    row_interior = _stacked_st_gaps(a[1:-1], stacked.seg_mins, stacked.seg_maxs,
                                    lambda_spatial, time_scale).sum(axis=0) \
        if n > 2 else np.zeros(len(stacked))
    gaps = _concat_st_gaps(stacked.points, query_summary, lambda_spatial, time_scale)
    col_interior = _interior_sums(gaps, stacked.offsets, stacked.lengths)
    values = np.maximum(first + row_interior + last, first + col_interior + last)
    if n == 1:
        values = np.where(stacked.lengths == 1, first, values)
    return values
