"""Pair and triplet sampling strategies for similarity training.

Following Neutraj's seed-guided sampling, each training epoch supervises, for every
anchor trajectory, its ``num_nearest`` most similar trajectories (where approximation
errors hurt retrieval most) plus ``num_random`` random ones (to keep the global scale
calibrated).
"""

from __future__ import annotations

import numpy as np

__all__ = ["PairSampler", "sample_triplets"]


class PairSampler:
    """Samples (anchor, other) index pairs guided by the ground-truth matrix.

    With ``lengths`` (one sequence length per trajectory) and
    ``length_buckets > 1``, each epoch's pairs are grouped into quantile buckets
    of the pair's *max* sequence length, so consecutive training batches hold
    similarly long trajectories and the padded ``(B, T)`` tensors waste less
    work on skewed datasets.  Bucketing happens after the shuffle with a stable
    sort, so pairs stay shuffled within a bucket and the emission order is
    deterministic under a fixed seed; the multiset of pairs is unchanged.
    """

    def __init__(self, target_matrix: np.ndarray, num_nearest: int = 5,
                 num_random: int = 5, seed: int = 0, lengths=None,
                 length_buckets: int = 0):
        target_matrix = np.asarray(target_matrix, dtype=np.float64)
        if target_matrix.ndim != 2 or target_matrix.shape[0] != target_matrix.shape[1]:
            raise ValueError("target_matrix must be square")
        if num_nearest < 0 or num_random < 0 or num_nearest + num_random == 0:
            raise ValueError("need at least one of num_nearest/num_random positive")
        self.target_matrix = target_matrix
        self.num_nearest = num_nearest
        self.num_random = num_random
        if lengths is not None:
            lengths = np.asarray(lengths, dtype=np.int64)
            if lengths.shape != (len(target_matrix),):
                raise ValueError(f"lengths must hold one entry per trajectory "
                                 f"({len(target_matrix)}), got shape {lengths.shape}")
        self.lengths = lengths
        self.length_buckets = int(length_buckets)
        if self.length_buckets > 1 and self.lengths is None:
            raise ValueError("length_buckets needs the per-trajectory lengths")
        self._rng = np.random.default_rng(seed)
        self._nearest = self._precompute_nearest()

    def _precompute_nearest(self) -> np.ndarray:
        masked = self.target_matrix.copy()
        np.fill_diagonal(masked, np.inf)
        order = np.argsort(masked, axis=1, kind="stable")
        return order[:, :max(self.num_nearest, 1)]

    def epoch_pairs(self, shuffle: bool = True) -> np.ndarray:
        """One epoch worth of pairs: nearest + random others for every anchor.

        Returns a ``(num_pairs, 2)`` int64 index array — the batched trainer
        slices and gathers it directly, and row iteration (``for i, j in
        pairs``) still works for per-pair consumers.  With length bucketing
        enabled, the shuffled pairs are then stably grouped by length bucket.
        """
        n = len(self.target_matrix)
        pairs: list[tuple[int, int]] = []
        for anchor in range(n):
            for neighbor in self._nearest[anchor][:self.num_nearest]:
                pairs.append((anchor, int(neighbor)))
            if self.num_random:
                candidates = self._rng.choice(n, size=self.num_random, replace=True)
                for other in candidates:
                    if other != anchor:
                        pairs.append((anchor, int(other)))
        index_pairs = np.asarray(pairs, dtype=np.int64).reshape(len(pairs), 2)
        if shuffle:
            self._rng.shuffle(index_pairs, axis=0)
        if self.length_buckets > 1 and len(index_pairs):
            index_pairs = index_pairs[self._bucket_order(index_pairs)]
        return index_pairs

    def _bucket_order(self, index_pairs: np.ndarray) -> np.ndarray:
        """Stable ordering grouping pairs into quantile buckets of max length.

        Quantile edges adapt the buckets to the epoch's actual length
        distribution; the stable sort keys only on the bucket id, so the
        within-bucket order (and with it the shuffle) is preserved.
        """
        pair_lengths = np.maximum(self.lengths[index_pairs[:, 0]],
                                  self.lengths[index_pairs[:, 1]])
        quantiles = np.linspace(0.0, 1.0, self.length_buckets + 1)[1:-1]
        edges = np.quantile(pair_lengths, quantiles)
        buckets = np.searchsorted(edges, pair_lengths, side="right")
        return np.argsort(buckets, kind="stable")

    def targets_of(self, pairs: np.ndarray) -> np.ndarray:
        """Ground-truth distances of a ``(batch, 2)`` index-pair array."""
        pairs = np.asarray(pairs, dtype=np.int64)
        return self.target_matrix[pairs[:, 0], pairs[:, 1]]

    def target_of(self, pair: tuple[int, int]) -> float:
        """Ground-truth distance of a sampled pair."""
        i, j = pair
        return float(self.target_matrix[i, j])


def sample_triplets(target_matrix: np.ndarray, num_triplets: int, seed: int = 0,
                    positive_quantile: float = 0.25) -> list[tuple[int, int, int]]:
    """Sample (anchor, positive, negative) triplets for margin-based training.

    Positives are drawn from the anchor's closest ``positive_quantile`` fraction of
    the database, negatives from the rest.
    """
    matrix = np.asarray(target_matrix, dtype=np.float64)
    n = len(matrix)
    if n < 3:
        raise ValueError("need at least three trajectories")
    rng = np.random.default_rng(seed)
    masked = matrix.copy()
    np.fill_diagonal(masked, np.inf)
    order = np.argsort(masked, axis=1, kind="stable")
    cutoff = max(int(positive_quantile * (n - 1)), 1)
    triplets = []
    for _ in range(num_triplets):
        anchor = int(rng.integers(n))
        positive = int(order[anchor, rng.integers(cutoff)])
        negative = int(order[anchor, rng.integers(cutoff, n - 1)])
        triplets.append((anchor, positive, negative))
    return triplets
