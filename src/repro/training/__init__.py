"""``repro.training`` — pair sampling, training loop and training callbacks."""

from .sampling import PairSampler, sample_triplets
from .callbacks import TrainingHistory, EarlyStopping
from .trainer import SimilarityTrainer, default_train_batched

__all__ = ["PairSampler", "sample_triplets", "TrainingHistory", "EarlyStopping",
           "SimilarityTrainer", "default_train_batched"]
