"""Training loop for trajectory similarity models, with or without the LH-plugin.

The trainer owns a base encoder and (optionally) an :class:`~repro.core.LHPlugin`.
For every sampled trajectory pair it computes the model's pair distance — plain
Euclidean for the original pipeline, the plugin's fused/Lorentz distance when the
plugin is attached — and regresses it onto the (normalised) ground-truth distance.
This mirrors the paper's setup where the plugin is trained jointly with, but without
modifying, the base model.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..core import LHPlugin
from ..data import Normalizer, TrajectoryDataset
from ..nn import (
    Adam,
    Tensor,
    clip_grad_norm,
    euclidean_distance,
    mse_loss,
    relative_distance_loss,
    stack,
    weighted_rank_loss,
)
from .callbacks import EarlyStopping, TrainingHistory
from .sampling import PairSampler

__all__ = ["SimilarityTrainer"]

_LOSSES: dict[str, Callable] = {
    "mse": mse_loss,
    "relative": relative_distance_loss,
    "weighted_rank": weighted_rank_loss,
}


class SimilarityTrainer:
    """Fits an encoder (and optional plugin) to a ground-truth distance matrix.

    Parameters
    ----------
    encoder:
        Any :class:`~repro.models.TrajectoryEncoder`.
    plugin:
        Optional :class:`~repro.core.LHPlugin`; when present its distance replaces the
        Euclidean embedding distance during training and evaluation.
    learning_rate, batch_size, num_nearest, num_random, loss, clip_norm, seed:
        Optimisation hyper-parameters; ``num_nearest`` / ``num_random`` control the
        per-anchor pair sampling.
    """

    def __init__(self, encoder, plugin: LHPlugin | None = None, learning_rate: float = 5e-3,
                 batch_size: int = 16, num_nearest: int = 5, num_random: int = 5,
                 loss: str = "mse", clip_norm: float = 5.0, seed: int = 0):
        if loss not in _LOSSES:
            raise ValueError(f"unknown loss '{loss}'; options: {sorted(_LOSSES)}")
        self.encoder = encoder
        self.plugin = plugin
        self.batch_size = max(batch_size, 1)
        self.num_nearest = num_nearest
        self.num_random = num_random
        self.loss_name = loss
        self.loss_fn = _LOSSES[loss]
        self.clip_norm = clip_norm
        self.seed = seed
        parameters = list(encoder.parameters())
        if plugin is not None:
            parameters.extend(plugin.parameters())
        self.optimizer = Adam(parameters, lr=learning_rate) if parameters else None
        self.history = TrainingHistory()

    # ------------------------------------------------------------------ helpers
    def _point_sequences(self, dataset: TrajectoryDataset) -> list[np.ndarray] | None:
        """Normalised point sequences for the fusion encoder (None if not needed)."""
        if self.plugin is None or self.plugin.fusion is None:
            return None
        normalizer = Normalizer.fit(dataset)
        wants_time = self.plugin.config.point_features == 3 and dataset.has_time
        sequences = []
        for trajectory in dataset:
            points = trajectory.points if wants_time else trajectory.coordinates
            sequences.append(normalizer.transform_points(points))
        return sequences

    def _batch_predictions(self, batch: list[tuple[int, int]], prepared: list,
                           point_sequences: list | None) -> list[Tensor]:
        """Pair distances for one batch, encoding each distinct trajectory only once.

        Anchors appear in many pairs of a batch; caching their embedding (and fusion
        factors) in the shared autograd graph keeps gradients identical while cutting
        the number of encoder forward passes roughly in half.
        """
        unique_indices = sorted({index for pair in batch for index in pair})
        embeddings = {index: self.encoder.encode(prepared[index]) for index in unique_indices}
        factors = None
        if self.plugin is not None and self.plugin.fusion is not None:
            factors = {index: self.plugin.fusion.factors(point_sequences[index])
                       for index in unique_indices}
        predictions = []
        for i, j in batch:
            if self.plugin is None:
                predictions.append(euclidean_distance(embeddings[i], embeddings[j]))
            else:
                predictions.append(self.plugin.pair_distance_from(
                    embeddings[i], embeddings[j],
                    factors[i] if factors is not None else None,
                    factors[j] if factors is not None else None))
        return predictions

    # ---------------------------------------------------------------------- fit
    def fit(self, dataset: TrajectoryDataset, target_matrix: np.ndarray, epochs: int = 5,
            eval_fn: Callable[[], dict] | None = None, early_stopping: EarlyStopping | None = None,
            verbose: bool = False) -> TrainingHistory:
        """Train for ``epochs`` epochs against ``target_matrix``.

        ``eval_fn`` (no arguments, returns a metrics dict) is invoked after every
        epoch and recorded in the history — used by the robustness and scalability
        experiments to trace accuracy curves.
        """
        if self.optimizer is None:
            raise RuntimeError("the model has no trainable parameters")
        target_matrix = np.asarray(target_matrix, dtype=np.float64)
        if len(target_matrix) != len(dataset):
            raise ValueError("target matrix size must match the dataset")
        prepared = self.encoder.prepare_dataset(dataset)
        point_sequences = self._point_sequences(dataset)
        sampler = PairSampler(target_matrix, self.num_nearest, self.num_random, seed=self.seed)

        for epoch in range(1, epochs + 1):
            pairs = sampler.epoch_pairs()
            epoch_loss = 0.0
            num_batches = 0
            for start in range(0, len(pairs), self.batch_size):
                batch = pairs[start:start + self.batch_size]
                predictions = self._batch_predictions(batch, prepared, point_sequences)
                targets = [target_matrix[i, j] for i, j in batch]
                predicted = stack([p.reshape(1) for p in predictions], axis=0).reshape(len(batch))
                loss = self.loss_fn(predicted, Tensor(np.array(targets)))
                self.optimizer.zero_grad()
                loss.backward()
                if self.clip_norm:
                    clip_grad_norm(self.optimizer.parameters, self.clip_norm)
                self.optimizer.step()
                epoch_loss += float(loss.data)
                num_batches += 1
            mean_loss = epoch_loss / max(num_batches, 1)
            metrics = eval_fn() if eval_fn is not None else None
            self.history.record(epoch, mean_loss, metrics)
            if verbose:
                print(f"epoch {epoch}: loss={mean_loss:.4f}"
                      + (f" metrics={metrics}" if metrics else ""))
            if early_stopping is not None and early_stopping.update(mean_loss):
                break
        return self.history

    # --------------------------------------------------------------- inference
    def embed(self, dataset: TrajectoryDataset) -> np.ndarray:
        """Euclidean embeddings of a dataset using the (trained) base encoder."""
        return self.encoder.embed_dataset(dataset)

    def model_distance_matrix(self, dataset: TrajectoryDataset,
                              embeddings: np.ndarray | None = None) -> np.ndarray:
        """All-pairs model distances for a dataset (plugin-aware).

        Without the plugin this is the Euclidean distance between embeddings; with the
        plugin it is the fused (or pure Lorentz) distance, computed with the fast
        NumPy path.
        """
        embeddings = embeddings if embeddings is not None else self.embed(dataset)
        if self.plugin is None:
            difference = embeddings[:, None, :] - embeddings[None, :, :]
            return np.sqrt((difference ** 2).sum(axis=-1))
        point_sequences = self._point_sequences(dataset)
        database = self.plugin.embed_database(embeddings, point_sequences)
        return self.plugin.distance_matrix(database)
