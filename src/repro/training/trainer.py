"""Training loop for trajectory similarity models, with or without the LH-plugin.

The trainer owns a base encoder and (optionally) an :class:`~repro.core.LHPlugin`.
For every sampled trajectory pair it computes the model's pair distance — plain
Euclidean for the original pipeline, the plugin's fused/Lorentz distance when the
plugin is attached — and regresses it onto the (normalised) ground-truth distance.
This mirrors the paper's setup where the plugin is trained jointly with, but without
modifying, the base model.

Two step implementations share the arithmetic:

* the **batched** path (default) pads the distinct trajectories of a step into one
  mask-aware batch, encodes each exactly once through ``encode_batch``, gathers the
  embedding rows per pair and computes all pair distances in one sweep;
* the **per-sample** path encodes trajectories one by one — it is the parity
  reference the batched path is pinned against (``tests/test_batch_parity.py``)
  and the baseline of ``benchmarks/train_speedup.py``.

``REPRO_TRAIN_BATCHED=0`` flips the process-wide default to the per-sample path
without touching code, mirroring ``REPRO_ENGINE_STRATEGY``.
"""

from __future__ import annotations

import os
import time
from typing import Callable

import numpy as np

from ..core import LHPlugin
from ..data import Normalizer, TrajectoryDataset
from ..obs import histogram, obs_enabled
from ..nn import (
    Adam,
    Tensor,
    clip_grad_norm,
    euclidean_distance,
    mse_loss,
    relative_distance_loss,
    stack,
    weighted_rank_loss,
)
from .callbacks import EarlyStopping, TrainingHistory
from .sampling import PairSampler

__all__ = ["SimilarityTrainer", "default_train_batched"]

_LOSSES: dict[str, Callable] = {
    "mse": mse_loss,
    "relative": relative_distance_loss,
    "weighted_rank": weighted_rank_loss,
}

_FALSE_VALUES = {"0", "false", "no", "off"}


def default_train_batched() -> bool:
    """Process-wide default for batched training (env ``REPRO_TRAIN_BATCHED``)."""
    value = os.environ.get("REPRO_TRAIN_BATCHED", "1")
    return value.strip().lower() not in _FALSE_VALUES


class SimilarityTrainer:
    """Fits an encoder (and optional plugin) to a ground-truth distance matrix.

    Parameters
    ----------
    encoder:
        Any :class:`~repro.models.TrajectoryEncoder`.
    plugin:
        Optional :class:`~repro.core.LHPlugin`; when present its distance replaces the
        Euclidean embedding distance during training and evaluation.
    learning_rate, batch_size, num_nearest, num_random, loss, clip_norm, seed:
        Optimisation hyper-parameters; ``num_nearest`` / ``num_random`` control the
        per-anchor pair sampling.
    batched:
        Whether optimisation steps run through the mask-aware batched forward
        (``encode_batch`` + batched plugin distances) or the per-sample parity
        path.  ``None`` defers to :func:`default_train_batched`.
    length_buckets:
        With a value > 1, each epoch's pairs are grouped into that many
        quantile buckets of max sequence length (see
        :class:`~repro.training.sampling.PairSampler`), so padded batch tensors
        waste less work on skewed datasets.  0 (default) keeps the plain
        shuffled order; the multiset of sampled pairs is identical either way.
    """

    def __init__(self, encoder, plugin: LHPlugin | None = None, learning_rate: float = 5e-3,
                 batch_size: int = 16, num_nearest: int = 5, num_random: int = 5,
                 loss: str = "mse", clip_norm: float = 5.0, seed: int = 0,
                 batched: bool | None = None, length_buckets: int = 0):
        if loss not in _LOSSES:
            raise ValueError(f"unknown loss '{loss}'; options: {sorted(_LOSSES)}")
        self.encoder = encoder
        self.plugin = plugin
        self.batch_size = max(batch_size, 1)
        self.num_nearest = num_nearest
        self.num_random = num_random
        self.length_buckets = int(length_buckets)
        self.loss_name = loss
        self.loss_fn = _LOSSES[loss]
        self.clip_norm = clip_norm
        self.seed = seed
        self.batched = default_train_batched() if batched is None else bool(batched)
        parameters = list(encoder.parameters())
        if plugin is not None:
            parameters.extend(plugin.parameters())
        self.optimizer = Adam(parameters, lr=learning_rate) if parameters else None
        self.history = TrainingHistory()

    # ------------------------------------------------------------------ helpers
    def _point_sequences(self, dataset: TrajectoryDataset) -> list[np.ndarray] | None:
        """Normalised point sequences for the fusion encoder (None if not needed)."""
        if self.plugin is None or self.plugin.fusion is None:
            return None
        normalizer = Normalizer.fit(dataset)
        wants_time = self.plugin.config.point_features == 3 and dataset.has_time
        sequences = []
        for trajectory in dataset:
            points = trajectory.points if wants_time else trajectory.coordinates
            sequences.append(normalizer.transform_points(points))
        return sequences

    def _batch_predictions(self, batch, prepared: list,
                           point_sequences: list | None) -> list[Tensor]:
        """Per-sample pair distances for one batch (the batched path's reference).

        Anchors appear in many pairs of a batch; caching their embedding (and fusion
        factors) in the shared autograd graph keeps gradients identical while cutting
        the number of encoder forward passes roughly in half.
        """
        unique_indices = sorted({int(index) for pair in batch for index in pair})
        embeddings = {index: self.encoder.encode(prepared[index]) for index in unique_indices}
        factors = None
        if self.plugin is not None and self.plugin.fusion is not None:
            factors = {index: self.plugin.fusion.factors(point_sequences[index])
                       for index in unique_indices}
        predictions = []
        for i, j in batch:
            i, j = int(i), int(j)
            if self.plugin is None:
                predictions.append(euclidean_distance(embeddings[i], embeddings[j]))
            else:
                predictions.append(self.plugin.pair_distance_from(
                    embeddings[i], embeddings[j],
                    factors[i] if factors is not None else None,
                    factors[j] if factors is not None else None))
        return predictions

    def _batched_predictions(self, batch: np.ndarray, prepared: list,
                             point_sequences: list | None) -> Tensor:
        """Pair distances for one batch through the mask-aware batched forward.

        Each distinct trajectory of the batch is encoded exactly once (one padded
        ``encode_batch`` call), its embedding row gathered into the per-pair blocks,
        and all pair distances computed in a single batched sweep — the same
        arithmetic as :meth:`_batch_predictions`, minus the Python loop.
        """
        batch = np.asarray(batch, dtype=np.int64)
        unique, inverse = np.unique(batch, return_inverse=True)
        inverse = inverse.reshape(batch.shape)
        embeddings = self.encoder.encode_batch([prepared[int(index)] for index in unique])
        embeddings_a = embeddings[inverse[:, 0]]
        embeddings_b = embeddings[inverse[:, 1]]
        if self.plugin is None:
            return euclidean_distance(embeddings_a, embeddings_b, axis=-1)
        factors_a = factors_b = None
        if self.plugin.fusion is not None:
            v_lo, v_eu = self.plugin.fusion.factors_batch(
                [point_sequences[int(index)] for index in unique])
            factors_a = (v_lo[inverse[:, 0]], v_eu[inverse[:, 0]])
            factors_b = (v_lo[inverse[:, 1]], v_eu[inverse[:, 1]])
        return self.plugin.pair_distances_from(embeddings_a, embeddings_b,
                                               factors_a, factors_b)

    # ---------------------------------------------------------------------- fit
    def fit(self, dataset: TrajectoryDataset, target_matrix: np.ndarray, epochs: int = 5,
            eval_fn: Callable[[], dict] | None = None, early_stopping: EarlyStopping | None = None,
            verbose: bool = False) -> TrainingHistory:
        """Train for ``epochs`` epochs against ``target_matrix``.

        ``eval_fn`` (no arguments, returns a metrics dict) is invoked after every
        epoch and recorded in the history — used by the robustness and scalability
        experiments to trace accuracy curves.
        """
        if self.optimizer is None:
            raise RuntimeError("the model has no trainable parameters")
        target_matrix = np.asarray(target_matrix, dtype=np.float64)
        if target_matrix.ndim != 2 or target_matrix.shape[0] != target_matrix.shape[1]:
            raise ValueError(
                f"target_matrix must be a square 2-D distance matrix, got shape "
                f"{target_matrix.shape}")
        if len(target_matrix) != len(dataset):
            raise ValueError(
                f"target_matrix is {len(target_matrix)}x{len(target_matrix)} but the "
                f"dataset holds {len(dataset)} trajectories; pass the matrix computed "
                f"over exactly this dataset")
        prepared = self.encoder.prepare_dataset(dataset)
        point_sequences = self._point_sequences(dataset)
        lengths = None
        if self.length_buckets > 1:
            lengths = [len(np.asarray(getattr(t, "points", t))) for t in dataset]
        sampler = PairSampler(target_matrix, self.num_nearest, self.num_random,
                              seed=self.seed, lengths=lengths,
                              length_buckets=self.length_buckets)

        # Epoch phase timings are gated on REPRO_OBS: when off, the loop pays
        # one boolean check per segment and no clock reads.
        observing = obs_enabled()
        for epoch in range(1, epochs + 1):
            epoch_start = time.perf_counter() if observing else 0.0
            encode_seconds = loss_seconds = step_seconds = 0.0
            pairs = sampler.epoch_pairs()
            epoch_loss = 0.0
            num_batches = 0
            mark = 0.0
            for start in range(0, len(pairs), self.batch_size):
                batch = pairs[start:start + self.batch_size]
                if observing:
                    mark = time.perf_counter()
                if self.batched:
                    predicted = self._batched_predictions(batch, prepared, point_sequences)
                else:
                    predictions = self._batch_predictions(batch, prepared, point_sequences)
                    predicted = stack([p.reshape(1) for p in predictions],
                                      axis=0).reshape(len(batch))
                if observing:
                    now = time.perf_counter()
                    encode_seconds += now - mark
                    mark = now
                loss = self.loss_fn(predicted, Tensor(sampler.targets_of(batch)))
                if observing:
                    now = time.perf_counter()
                    loss_seconds += now - mark
                    mark = now
                self.optimizer.zero_grad()
                loss.backward()
                if self.clip_norm:
                    clip_grad_norm(self.optimizer.parameters, self.clip_norm)
                self.optimizer.step()
                if observing:
                    # The "step" segment covers the whole backward-and-update
                    # half: zero_grad, backward, clipping and the Adam step.
                    step_seconds += time.perf_counter() - mark
                epoch_loss += float(loss.data)
                num_batches += 1
            mean_loss = epoch_loss / max(num_batches, 1)
            metrics = eval_fn() if eval_fn is not None else None
            if observing:
                epoch_seconds = time.perf_counter() - epoch_start
                histogram("train.epoch_seconds").observe(epoch_seconds)
                histogram("train.encode_seconds").observe(encode_seconds)
                histogram("train.loss_seconds").observe(loss_seconds)
                histogram("train.step_seconds").observe(step_seconds)
                metrics = dict(metrics or {})
                metrics.update(epoch_seconds=epoch_seconds,
                               encode_seconds=encode_seconds,
                               loss_seconds=loss_seconds,
                               step_seconds=step_seconds)
            self.history.record(epoch, mean_loss, metrics)
            if verbose:
                print(f"epoch {epoch}: loss={mean_loss:.4f}"
                      + (f" metrics={metrics}" if metrics else ""))
            if early_stopping is not None and early_stopping.update(mean_loss):
                break
        return self.history

    # --------------------------------------------------------------- inference
    def embed(self, dataset: TrajectoryDataset) -> np.ndarray:
        """Euclidean embeddings of a dataset using the (trained) base encoder."""
        return self.encoder.embed_dataset(dataset)

    def model_distance_matrix(self, dataset: TrajectoryDataset,
                              embeddings: np.ndarray | None = None) -> np.ndarray:
        """All-pairs model distances for a dataset (plugin-aware).

        Without the plugin this is the Euclidean distance between embeddings; with the
        plugin it is the fused (or pure Lorentz) distance, computed with the fast
        NumPy path.
        """
        embeddings = embeddings if embeddings is not None else self.embed(dataset)
        if self.plugin is None:
            difference = embeddings[:, None, :] - embeddings[None, :, :]
            return np.sqrt((difference ** 2).sum(axis=-1))
        point_sequences = self._point_sequences(dataset)
        database = self.plugin.embed_database(embeddings, point_sequences)
        return self.plugin.distance_matrix(database)
