"""Training history tracking and early stopping."""

from __future__ import annotations

from ..obs import obs_enabled, write_event

__all__ = ["TrainingHistory", "EarlyStopping"]


class TrainingHistory:
    """Per-epoch record of the training loss and any evaluation metrics.

    With observability on (``REPRO_OBS``) and a JSONL sink configured
    (``REPRO_OBS_JSONL``), every recorded epoch is also streamed as a
    ``"training_epoch"`` event through the shared telemetry exporter, so a
    long run's loss curve is tailable while it trains.
    """

    def __init__(self):
        self.epochs: list[int] = []
        self.losses: list[float] = []
        self.metrics: list[dict] = []

    def record(self, epoch: int, loss: float, metrics: dict | None = None) -> None:
        """Append one epoch's loss (and optional evaluation metrics)."""
        self.epochs.append(epoch)
        self.losses.append(float(loss))
        self.metrics.append(dict(metrics) if metrics else {})
        if obs_enabled():
            write_event("training_epoch", {"epoch": int(epoch),
                                           "loss": float(loss),
                                           "metrics": self.metrics[-1]})

    def metric_curve(self, name: str) -> list[float]:
        """The per-epoch values of one recorded metric (missing epochs are skipped)."""
        return [m[name] for m in self.metrics if name in m]

    @property
    def best_loss(self) -> float:
        return min(self.losses) if self.losses else float("inf")

    def __len__(self) -> int:
        return len(self.epochs)

    def as_dict(self) -> dict:
        """Serialisable summary of the run."""
        return {"epochs": list(self.epochs), "losses": list(self.losses),
                "metrics": [dict(m) for m in self.metrics]}


class EarlyStopping:
    """Stop training when the loss has not improved for ``patience`` epochs."""

    def __init__(self, patience: int = 5, min_delta: float = 1e-5):
        if patience <= 0:
            raise ValueError("patience must be positive")
        self.patience = patience
        self.min_delta = min_delta
        self.best = float("inf")
        self.stale_epochs = 0

    def update(self, loss: float) -> bool:
        """Record one epoch's loss; returns True when training should stop."""
        if loss < self.best - self.min_delta:
            self.best = loss
            self.stale_epochs = 0
        else:
            self.stale_epochs += 1
        return self.stale_epochs >= self.patience
