"""Lightweight span API: nested, tagged durations gated by ``REPRO_OBS``.

A span brackets one operation::

    with span("engine.pairs", measure="dtw", backend="numba"):
        ...

Names follow the ``layer.operation`` convention (``engine.pairs``,
``search.refine``, ``train.epoch``).  Tags qualify a span without exploding
the namespace; a finished span records its elapsed seconds into a registry
histogram keyed ``name{tag=value,...}`` (tags sorted, so the key is stable
regardless of call-site keyword order).

Three modes, selected by the ``REPRO_OBS`` environment variable (or
:func:`set_obs_mode` for tests):

* ``off`` (default) — :func:`span` returns a module-level no-op singleton
  whose ``__enter__``/``__exit__`` do nothing.  The only cost is one
  integer comparison and a constant return: no allocation, no clock read.
* ``on`` — spans time themselves with ``perf_counter`` and feed the
  ``name{tags}`` duration histogram.
* ``trace`` — additionally emits one JSONL event per finished span (kind
  ``"span"``, with name, tags, duration and nesting depth) through
  :mod:`repro.obs.export`, for offline flame-style inspection.

Nesting depth is tracked per-thread; spans on different threads never see
each other's depth.  Mode is captured once per process at import (workers
inherit it via the ``obs_mode`` argument threaded through the engine's pool
dispatch, not via env re-reads).
"""

from __future__ import annotations

import os
import threading
import time

from .registry import histogram

__all__ = [
    "OBS_ENV",
    "OBS_OFF",
    "OBS_ON",
    "OBS_TRACE",
    "MODE_NAMES",
    "obs_mode",
    "obs_mode_name",
    "obs_enabled",
    "set_obs_mode",
    "span",
    "Span",
]

OBS_ENV = "REPRO_OBS"

OBS_OFF = 0
OBS_ON = 1
OBS_TRACE = 2

MODE_NAMES = {OBS_OFF: "off", OBS_ON: "on", OBS_TRACE: "trace"}

_MODE_ALIASES = {
    "off": OBS_OFF, "0": OBS_OFF, "false": OBS_OFF, "no": OBS_OFF, "": OBS_OFF,
    "on": OBS_ON, "1": OBS_ON, "true": OBS_ON, "yes": OBS_ON,
    "trace": OBS_TRACE, "2": OBS_TRACE,
}


def _mode_from_env() -> int:
    raw = os.environ.get(OBS_ENV, "").strip().lower()
    return _MODE_ALIASES.get(raw, OBS_OFF)


_mode = _mode_from_env()

_local = threading.local()


def obs_mode() -> int:
    """Current mode as an int (``OBS_OFF`` / ``OBS_ON`` / ``OBS_TRACE``)."""
    return _mode


def obs_mode_name() -> str:
    """Current mode as its ``REPRO_OBS`` spelling (``off``/``on``/``trace``)."""
    return MODE_NAMES[_mode]


def obs_enabled() -> bool:
    """True when spans and timing instrumentation are recording."""
    return _mode != OBS_OFF


def set_obs_mode(mode: int | str | None) -> int:
    """Set the process-wide mode; ``None`` re-reads ``REPRO_OBS``.

    Accepts the int constants or any ``REPRO_OBS`` spelling.  Returns the
    mode that took effect.  This is how tests and pool workers (which may
    have been forked before the parent decided) get switched without
    touching the environment.
    """
    global _mode
    if mode is None:
        _mode = _mode_from_env()
    elif isinstance(mode, str):
        try:
            _mode = _MODE_ALIASES[mode.strip().lower()]
        except KeyError:
            raise ValueError(f"unknown obs mode {mode!r}; expected one of "
                             f"{sorted(set(MODE_NAMES.values()))}") from None
    else:
        if mode not in MODE_NAMES:
            raise ValueError(f"unknown obs mode {mode!r}")
        _mode = mode
    return _mode


def _depth() -> int:
    return getattr(_local, "depth", 0)


def span_key(name: str, tags: dict) -> str:
    """Histogram key for a span: ``name{k=v,...}`` with sorted tags."""
    if not tags:
        return name
    inner = ",".join(f"{key}={tags[key]}" for key in sorted(tags))
    return f"{name}{{{inner}}}"


class Span:
    """A live span; created by :func:`span` when observability is on."""

    __slots__ = ("name", "tags", "_start", "elapsed")

    def __init__(self, name: str, tags: dict):
        self.name = name
        self.tags = tags
        self._start = 0.0
        self.elapsed = 0.0

    def __enter__(self) -> "Span":
        _local.depth = _depth() + 1
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.elapsed = time.perf_counter() - self._start
        depth = _depth()
        _local.depth = depth - 1
        histogram(span_key(self.name, self.tags)).observe(self.elapsed)
        if _mode >= OBS_TRACE:
            from . import export
            export.write_event("span", {
                "name": self.name,
                "tags": self.tags,
                "seconds": self.elapsed,
                "depth": depth,
            })


class _NullSpan:
    """Shared do-nothing span handed out while ``REPRO_OBS=off``."""

    __slots__ = ()

    elapsed = 0.0

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


_NULL_SPAN = _NullSpan()


def span(name: str, **tags):
    """Context manager timing ``name`` with ``tags`` — no-op when disabled."""
    if _mode == OBS_OFF:
        return _NULL_SPAN
    return Span(name, tags)
