"""Telemetry exporters: JSONL streaming, snapshot dicts, human report.

Three ways out of the registry:

* :func:`export_snapshot` — the registry snapshot as a plain dict (and,
  when a JSONL sink is configured, appended as a ``"snapshot"`` event).
  Benchmark harnesses embed this in their results JSON.
* JSONL streaming — ``REPRO_OBS_JSONL=path`` (or :func:`set_jsonl_path`)
  makes :func:`write_event` append one JSON object per line: span events in
  trace mode, per-epoch training records, and final snapshots all share the
  sink.  Every line carries ``ts`` (unix seconds) and ``kind``; the schema
  per kind is validated by ``benchmarks/check_obs_schema.py``.
* :func:`format_report` — a human-readable table of every counter, gauge
  and histogram for terminal inspection.

Writes are append-mode and guarded by a module lock, so concurrent threads
interleave whole lines.  Pool workers do not stream (their registries come
back to the parent as deltas); only the parent process writes the sink.
"""

from __future__ import annotations

import json
import os
import threading
import time

from .registry import get_registry

__all__ = [
    "JSONL_ENV",
    "jsonl_path",
    "set_jsonl_path",
    "write_event",
    "export_snapshot",
    "format_report",
]

JSONL_ENV = "REPRO_OBS_JSONL"

_lock = threading.Lock()
_path: str | None = None
_path_from_env = False


def jsonl_path() -> str | None:
    """Active JSONL sink path, if any (explicit set wins over the env)."""
    global _path, _path_from_env
    with _lock:
        if _path is None or _path_from_env:
            env = os.environ.get(JSONL_ENV, "").strip()
            _path = env or None
            _path_from_env = True
        return _path


def set_jsonl_path(path: str | None) -> None:
    """Point the JSONL sink at ``path`` (``None`` re-reads ``REPRO_OBS_JSONL``)."""
    global _path, _path_from_env
    with _lock:
        if path is None:
            env = os.environ.get(JSONL_ENV, "").strip()
            _path = env or None
            _path_from_env = True
        else:
            _path = str(path)
            _path_from_env = False


def write_event(kind: str, payload: dict) -> bool:
    """Append one ``{"ts", "kind", **payload}`` line to the JSONL sink.

    Returns True if a line was written, False when no sink is configured
    (the no-sink case is the cheap common path: one lock + one env-cached
    check).  ``payload`` must be JSON-serializable.
    """
    path = jsonl_path()
    if not path:
        return False
    line = json.dumps({"ts": time.time(), "kind": kind, **payload},
                      default=str)
    with _lock:
        with open(path, "a", encoding="utf-8") as sink:
            sink.write(line + "\n")
    return True


def export_snapshot(registry=None, **extra) -> dict:
    """Snapshot ``registry`` (default: process registry), streaming it too.

    ``extra`` keys are merged into the snapshot dict (benchmarks use this
    to stamp provenance like backend and workload size).  When a JSONL sink
    is active the snapshot is also appended as a ``"snapshot"`` event.
    """
    registry = registry if registry is not None else get_registry()
    snap = registry.snapshot()
    if extra:
        snap.update(extra)
    write_event("snapshot", {"snapshot": snap})
    return snap


def _format_seconds(value: float) -> str:
    if value >= 1.0:
        return f"{value:.3f}s"
    if value >= 1e-3:
        return f"{value * 1e3:.3f}ms"
    return f"{value * 1e6:.1f}us"


def format_report(registry=None) -> str:
    """Human-readable dump of every instrument, one per line."""
    registry = registry if registry is not None else get_registry()
    snap = registry.snapshot()
    lines = ["== telemetry report =="]
    counters = snap.get("counters", {})
    if counters:
        lines.append("-- counters --")
        width = max(len(name) for name in counters)
        for name, value in counters.items():
            lines.append(f"  {name:<{width}}  {value}")
    gauges = snap.get("gauges", {})
    if gauges:
        lines.append("-- gauges --")
        width = max(len(name) for name in gauges)
        for name, value in gauges.items():
            lines.append(f"  {name:<{width}}  {value:g}")
    histograms = snap.get("histograms", {})
    if histograms:
        lines.append("-- histograms --")
        width = max(len(name) for name in histograms)
        for name, state in histograms.items():
            count = state["count"]
            if not count:
                lines.append(f"  {name:<{width}}  count=0")
                continue
            mean = state["sum"] / count
            lines.append(
                f"  {name:<{width}}  count={count}"
                f" sum={_format_seconds(state['sum'])}"
                f" mean={_format_seconds(mean)}"
                f" min={_format_seconds(state['min'])}"
                f" max={_format_seconds(state['max'])}")
    return "\n".join(lines)
