"""Unified telemetry for the repro stack.

One process-wide :class:`~repro.obs.registry.Registry` of counters, gauges
and mergeable log-bucket histograms; a :func:`~repro.obs.spans.span` context
manager for nested, tagged durations (free when ``REPRO_OBS=off``); and
exporters (snapshot dict, JSONL streaming via ``REPRO_OBS_JSONL``, a human
report).  See ARCHITECTURE.md § Observability for the naming convention and
the worker-delta aggregation contract.
"""

from .registry import (
    BUCKET_BOUNDS,
    NUM_BUCKETS,
    bucket_index,
    Counter,
    Gauge,
    Histogram,
    Registry,
    get_registry,
    counter,
    gauge,
    histogram,
    snapshot,
    reset_metrics,
)
from .spans import (
    OBS_ENV,
    OBS_OFF,
    OBS_ON,
    OBS_TRACE,
    obs_mode,
    obs_mode_name,
    obs_enabled,
    set_obs_mode,
    span,
    Span,
)
from .export import (
    JSONL_ENV,
    jsonl_path,
    set_jsonl_path,
    write_event,
    export_snapshot,
    format_report,
)

__all__ = [
    # registry
    "BUCKET_BOUNDS", "NUM_BUCKETS", "bucket_index",
    "Counter", "Gauge", "Histogram", "Registry",
    "get_registry", "counter", "gauge", "histogram",
    "snapshot", "reset_metrics",
    # spans
    "OBS_ENV", "OBS_OFF", "OBS_ON", "OBS_TRACE",
    "obs_mode", "obs_mode_name", "obs_enabled", "set_obs_mode",
    "span", "Span",
    # export
    "JSONL_ENV", "jsonl_path", "set_jsonl_path",
    "write_event", "export_snapshot", "format_report",
]
