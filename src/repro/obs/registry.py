"""Process-wide telemetry registry: counters, gauges and log-bucket histograms.

The registry is the single substrate every layer's instrumentation lands in:
the engine's DP cell-work counters, the search layer's phase histograms, the
service's cache hit/miss traffic and the trainer's per-epoch timings all live
here under dotted ``layer.operation`` names.  Three instrument kinds:

* :class:`Counter` — a monotonically increasing integer (``add``), reset only
  explicitly.  Counters are **always on**: incrementing one costs a dict-free
  lock acquisition, cheap enough for the per-diagonal cell accounting of the
  DP kernels, so work statistics stay exact whatever ``REPRO_OBS`` says.
* :class:`Gauge` — a last-write-wins float (``set``) for point-in-time values
  (pool sizes, cache occupancy).
* :class:`Histogram` — fixed **log-scale buckets** (powers of two from 2⁻³⁰ to
  2¹⁰, one underflow-inclusive first bucket and one overflow bucket), plus
  exact count/sum/min/max.  The bucket boundaries are a module constant, so
  histograms from different processes are always mergeable and bucket merging
  is elementwise integer addition — associative and commutative, which the
  worker-delta aggregation below relies on.

**Worker aggregation.**  The ``process``/``shared`` engine strategies run
kernels in pool workers whose registries the parent cannot see.  A worker
takes a :meth:`Registry.checkpoint` before a chunk, computes, and returns
:meth:`Registry.delta_since` — a plain-dict, picklable delta of every counter
increment and histogram bucket added by the chunk.  The parent folds deltas
with :meth:`Registry.merge_delta` after the whole dispatch settles (so a
``BrokenProcessPool`` retry can never double-count).  Counter deltas are exact;
a delta histogram's min/max are the worker's running min/max (a superset of
the delta window), which only ever widens the parent's min/max to values that
genuinely occurred in that worker.

Everything is guarded by one registry-wide reentrant lock: coarse, but the
instruments are touched per-diagonal / per-chunk / per-query, never per-cell,
so contention is irrelevant next to the work being measured.
"""

from __future__ import annotations

import math
import threading

__all__ = [
    "BUCKET_BOUNDS",
    "NUM_BUCKETS",
    "bucket_index",
    "Counter",
    "Gauge",
    "Histogram",
    "Registry",
    "get_registry",
    "counter",
    "gauge",
    "histogram",
    "snapshot",
    "reset_metrics",
]

#: Smallest / largest power-of-two bucket boundary exponents.  2⁻³⁰ ≈ 0.93 ns
#: and 2¹⁰ = 1024 bracket every duration (seconds) and count this codebase
#: observes; everything past either end lands in the first / overflow bucket.
_BUCKET_LOW = -30
_BUCKET_HIGH = 10

#: Upper bucket boundaries (``value <= bound``), shared by every histogram so
#: any two histograms merge bucket-for-bucket.
BUCKET_BOUNDS: tuple[float, ...] = tuple(
    2.0 ** exponent for exponent in range(_BUCKET_LOW, _BUCKET_HIGH + 1))

#: Bucket count: one per boundary plus the overflow bucket.
NUM_BUCKETS = len(BUCKET_BOUNDS) + 1


def bucket_index(value: float) -> int:
    """Index of the log-scale bucket ``value`` falls into.

    Bucket ``i < len(BUCKET_BOUNDS)`` covers ``value <= BUCKET_BOUNDS[i]``
    (the first bucket absorbs zero and negatives); the last bucket is
    overflow.  Computed via ``math.frexp`` instead of a bisect: a value in
    ``(2^(e-1), 2^e]`` has frexp exponent ``e`` unless it is exactly
    ``2^(e-1)`` (mantissa 0.5), which belongs to the lower bucket.
    """
    if value <= BUCKET_BOUNDS[0]:
        return 0
    if value > BUCKET_BOUNDS[-1]:
        return NUM_BUCKETS - 1
    mantissa, exponent = math.frexp(value)
    if mantissa == 0.5:
        exponent -= 1
    return exponent - _BUCKET_LOW


class Counter:
    """Monotonic integer counter (thread-safe through the registry lock)."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str, lock: threading.RLock):
        self.name = name
        self._value = 0
        self._lock = lock

    def add(self, amount: int = 1) -> None:
        with self._lock:
            self._value += int(amount)

    @property
    def value(self) -> int:
        return self._value

    def reset(self) -> None:
        with self._lock:
            self._value = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.name!r}, value={self._value})"


class Gauge:
    """Last-write-wins float gauge."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str, lock: threading.RLock):
        self.name = name
        self._value = 0.0
        self._lock = lock

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    @property
    def value(self) -> float:
        return self._value

    def reset(self) -> None:
        with self._lock:
            self._value = 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Gauge({self.name!r}, value={self._value})"


class Histogram:
    """Fixed log-bucket histogram with exact count/sum/min/max.

    All histograms share :data:`BUCKET_BOUNDS`, so two histograms (or a
    histogram and a serialized delta) merge by adding bucket counts
    elementwise — an associative, commutative fold.
    """

    __slots__ = ("name", "_lock", "count", "total", "minimum", "maximum",
                 "buckets")

    def __init__(self, name: str, lock: threading.RLock):
        self.name = name
        self._lock = lock
        self.count = 0
        self.total = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf
        self.buckets = [0] * NUM_BUCKETS

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self.count += 1
            self.total += value
            if value < self.minimum:
                self.minimum = value
            if value > self.maximum:
                self.maximum = value
            self.buckets[bucket_index(value)] += 1

    def state(self) -> dict:
        """Serializable full state (the mergeable representation)."""
        with self._lock:
            return {
                "count": self.count,
                "sum": self.total,
                "min": self.minimum if self.count else None,
                "max": self.maximum if self.count else None,
                "buckets": list(self.buckets),
            }

    def merge_state(self, state: dict) -> None:
        """Fold a :meth:`state` / delta dict into this histogram."""
        if not state or not state.get("count"):
            return
        with self._lock:
            self.count += int(state["count"])
            self.total += float(state["sum"])
            if state.get("min") is not None and state["min"] < self.minimum:
                self.minimum = float(state["min"])
            if state.get("max") is not None and state["max"] > self.maximum:
                self.maximum = float(state["max"])
            for index, added in enumerate(state["buckets"]):
                if added:
                    self.buckets[index] += int(added)

    def summary(self) -> dict:
        """Human-scale digest: count, sum, min/mean/max (None when empty)."""
        with self._lock:
            if not self.count:
                return {"count": 0, "sum": 0.0, "min": None, "max": None,
                        "mean": None}
            return {
                "count": self.count,
                "sum": self.total,
                "min": self.minimum,
                "max": self.maximum,
                "mean": self.total / self.count,
            }

    def reset(self) -> None:
        with self._lock:
            self.count = 0
            self.total = 0.0
            self.minimum = math.inf
            self.maximum = -math.inf
            self.buckets = [0] * NUM_BUCKETS

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Histogram({self.name!r}, count={self.count})"


class Registry:
    """Named instruments behind one lock, with snapshot/delta/merge plumbing.

    The module-level default registry (:func:`get_registry`) is what the hot
    paths use; subsystems that want isolated scopes (``SearchService``) hold
    their own instance and mirror into the default one.
    """

    def __init__(self):
        self._lock = threading.RLock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # ------------------------------------------------------------ instruments
    def counter(self, name: str) -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            with self._lock:
                instrument = self._counters.get(name)
                if instrument is None:
                    instrument = self._counters[name] = Counter(name, self._lock)
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self._gauges.get(name)
        if instrument is None:
            with self._lock:
                instrument = self._gauges.get(name)
                if instrument is None:
                    instrument = self._gauges[name] = Gauge(name, self._lock)
        return instrument

    def histogram(self, name: str) -> Histogram:
        instrument = self._histograms.get(name)
        if instrument is None:
            with self._lock:
                instrument = self._histograms.get(name)
                if instrument is None:
                    instrument = self._histograms[name] = Histogram(name,
                                                                    self._lock)
        return instrument

    # --------------------------------------------------------------- export
    def snapshot(self) -> dict:
        """JSON-serializable snapshot of every instrument.

        Zero-valued counters and empty histograms are included — a name's
        presence documents that the code path registered it.
        """
        with self._lock:
            return {
                "counters": {name: c.value for name, c in
                             sorted(self._counters.items())},
                "gauges": {name: g.value for name, g in
                           sorted(self._gauges.items())},
                "histograms": {name: h.state() for name, h in
                               sorted(self._histograms.items())},
            }

    # ---------------------------------------------------------- worker deltas
    def checkpoint(self) -> dict:
        """Cheap mark of current instrument values, for :meth:`delta_since`."""
        with self._lock:
            return {
                "counters": {name: c.value for name, c in
                             self._counters.items()},
                "histograms": {name: (h.count, h.total, list(h.buckets))
                               for name, h in self._histograms.items()},
            }

    def delta_since(self, checkpoint: dict) -> dict:
        """Picklable delta of everything recorded since ``checkpoint``.

        Counter deltas are exact differences.  Histogram deltas subtract
        count/sum/buckets; their min/max are the *running* min/max (see the
        module docstring for why that stays sound under merging).  Gauges are
        point-in-time and shipped as-is.
        """
        base_counters = checkpoint.get("counters", {})
        base_histograms = checkpoint.get("histograms", {})
        with self._lock:
            counters = {}
            for name, instrument in self._counters.items():
                delta = instrument.value - base_counters.get(name, 0)
                if delta:
                    counters[name] = delta
            histograms = {}
            for name, instrument in self._histograms.items():
                base_count, base_sum, base_buckets = base_histograms.get(
                    name, (0, 0.0, None))
                added = instrument.count - base_count
                if not added:
                    continue
                if base_buckets is None:
                    buckets = list(instrument.buckets)
                else:
                    buckets = [current - before for current, before in
                               zip(instrument.buckets, base_buckets)]
                histograms[name] = {
                    "count": added,
                    "sum": instrument.total - base_sum,
                    "min": instrument.minimum,
                    "max": instrument.maximum,
                    "buckets": buckets,
                }
            gauges = {name: g.value for name, g in self._gauges.items()}
            return {"counters": counters, "histograms": histograms,
                    "gauges": gauges}

    def merge_delta(self, delta: dict | None) -> None:
        """Fold a :meth:`delta_since` dict (e.g. from a pool worker) in."""
        if not delta:
            return
        for name, amount in delta.get("counters", {}).items():
            self.counter(name).add(amount)
        for name, state in delta.get("histograms", {}).items():
            self.histogram(name).merge_state(state)
        for name, value in delta.get("gauges", {}).items():
            self.gauge(name).set(value)

    # ----------------------------------------------------------------- reset
    def reset(self, prefix: str | None = None) -> None:
        """Zero every instrument, or only those whose name starts with ``prefix``."""
        with self._lock:
            for family in (self._counters, self._gauges, self._histograms):
                for name, instrument in family.items():
                    if prefix is None or name.startswith(prefix):
                        instrument.reset()


_DEFAULT = Registry()


def get_registry() -> Registry:
    """The process-wide default registry every hot path records into."""
    return _DEFAULT


def counter(name: str) -> Counter:
    """Get-or-create a counter on the default registry."""
    return _DEFAULT.counter(name)


def gauge(name: str) -> Gauge:
    """Get-or-create a gauge on the default registry."""
    return _DEFAULT.gauge(name)


def histogram(name: str) -> Histogram:
    """Get-or-create a histogram on the default registry."""
    return _DEFAULT.histogram(name)


def snapshot() -> dict:
    """Snapshot of the default registry."""
    return _DEFAULT.snapshot()


def reset_metrics(prefix: str | None = None) -> None:
    """Reset the default registry (optionally only a dotted-name prefix)."""
    _DEFAULT.reset(prefix)
