"""``repro.resilience`` — fault injection, retry policy and degradation.

The serving stack's failure-handling subsystem, three pieces sharing one
design rule: **resilience changes when and where work runs, never what it
computes** — a query that completes is bit-identical to the serial no-fault
reference, whatever crashed along the way.

* :mod:`repro.resilience.faults` — deterministic, seeded fault injection
  behind the ``REPRO_FAULTS`` environment variable.  Off by default with a
  near-zero-overhead guard; the chaos suite and ``benchmarks/chaos_smoke.py``
  drive the whole stack through reproducible crash/slowdown/attach-failure
  schedules.
* :mod:`repro.resilience.policy` — :class:`ResiliencePolicy`: per-dispatch
  deadlines, a bounded retry budget (only unfinished chunks re-run; telemetry
  deltas fold exactly once) and exponential backoff with deterministic
  jitter.
* :mod:`repro.resilience.breaker` — :class:`DegradationLadder`: after
  repeated pool failures the engine steps shared → process → chunked →
  serial with a one-time ``RuntimeWarning``, then probes its way back up
  once calls run clean.

Typed errors (:class:`DeadlineExceededError`, :class:`OverloadedError`,
:class:`RetryBudgetExceededError`, :class:`TransientFaultError`) are the
contract between this layer and the HTTP front end the roadmap plans: every
handleable failure has a type, nothing is string-matched.

Telemetry: ``resilience.retries``, ``resilience.deadline_hits``,
``resilience.breaker_trips``, ``resilience.degradations``,
``resilience.recoveries``, ``resilience.fallback_chunks``,
``resilience.overloaded`` and ``resilience.faults_injected`` (plus per-kind
``resilience.faults.*``) in the process-wide registry.
"""

from .errors import (
    DeadlineExceededError,
    OverloadedError,
    ResilienceError,
    RetryBudgetExceededError,
    TransientFaultError,
)
from .faults import (
    FAULT_KINDS,
    FAULTS_ENV,
    FaultPlan,
    FaultRule,
    clear_fault_plan,
    current_spec,
    ensure_plan,
    fault_point,
    faults_active,
    install_fault_plan,
)
from .policy import (
    DEADLINE_ENV,
    DEFAULT_MAX_RETRIES,
    RETRIES_ENV,
    ResiliencePolicy,
)
from .breaker import LADDER, DegradationLadder

__all__ = [
    "ResilienceError", "TransientFaultError", "DeadlineExceededError",
    "RetryBudgetExceededError", "OverloadedError",
    "FAULTS_ENV", "FAULT_KINDS", "FaultPlan", "FaultRule",
    "fault_point", "faults_active", "current_spec",
    "install_fault_plan", "clear_fault_plan", "ensure_plan",
    "DEADLINE_ENV", "RETRIES_ENV", "DEFAULT_MAX_RETRIES", "ResiliencePolicy",
    "LADDER", "DegradationLadder",
]
