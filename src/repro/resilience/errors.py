"""Typed failure vocabulary of the resilience layer.

Every error the serving stack can *handle* (as opposed to propagate as a bug)
gets its own type, so callers branch on ``except SomeError`` instead of
string-matching messages:

* :class:`TransientFaultError` — a worker-side failure that is worth retrying
  on a fresh attempt (an injected shared-memory attach failure, a poisoned
  attachment cache).  The engine's dispatch loop treats it — together with
  ``BrokenProcessPool`` — as retryable within the policy's budget.
* :class:`DeadlineExceededError` — a dispatch blew through its
  :class:`~repro.resilience.ResiliencePolicy` deadline.  Deadlines are a hard
  contract: the error propagates (the service maps it onto the one query that
  asked), it is never silently retried.
* :class:`RetryBudgetExceededError` — the retry budget drained without the
  dispatch completing.  Carries the per-chunk partial results so the
  degradation ladder can finish the remaining work in-process instead of
  recomputing everything.
* :class:`OverloadedError` — admission control turned a request away at the
  door (the :class:`~repro.search.SearchService` pending queue is full).
"""

from __future__ import annotations

__all__ = [
    "ResilienceError",
    "TransientFaultError",
    "DeadlineExceededError",
    "RetryBudgetExceededError",
    "OverloadedError",
]


class ResilienceError(RuntimeError):
    """Base class for every typed failure the resilience layer raises."""


class TransientFaultError(ResilienceError):
    """A worker-side failure that a retry on a fresh attempt may fix.

    ``kind`` names the failure site (e.g. ``"shm_attach_fail"``); injected
    faults raise this directly, and real code may wrap genuinely transient
    conditions in it to opt into the engine's retry budget.
    """

    def __init__(self, kind: str, message: str | None = None):
        super().__init__(message or f"transient fault: {kind}")
        self.kind = kind


class DeadlineExceededError(ResilienceError):
    """A pool dispatch did not finish inside its policy deadline."""

    def __init__(self, deadline: float, elapsed: float):
        super().__init__(f"dispatch exceeded its {deadline:.3f}s deadline "
                         f"(elapsed {elapsed:.3f}s)")
        self.deadline = deadline
        self.elapsed = elapsed


class RetryBudgetExceededError(ResilienceError):
    """The dispatch retry budget drained before every chunk completed.

    ``partial`` maps task index → the completed ``(positions, values, delta)``
    triple; ``pending`` lists the task indices that never finished.  The
    degradation ladder uses both to finish the call in-process without
    recomputing (or double-counting) the chunks that did land.
    """

    def __init__(self, retries: int, pending: list, partial: dict,
                 cause: BaseException | None = None):
        super().__init__(f"dispatch failed after {retries} retr"
                         f"{'y' if retries == 1 else 'ies'}; "
                         f"{len(pending)} chunk(s) unfinished")
        self.retries = retries
        self.pending = pending
        self.partial = partial
        self.cause = cause


class OverloadedError(ResilienceError):
    """Admission control rejected a request (bounded pending queue is full)."""

    def __init__(self, pending: int, limit: int):
        super().__init__(f"service overloaded: {pending} queries pending "
                         f"(limit {limit})")
        self.pending = pending
        self.limit = limit
