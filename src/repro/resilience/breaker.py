"""The graceful strategy-degradation ladder (a circuit breaker over rungs).

The engine's execution strategies already form a ladder of decreasing
ambition and increasing self-sufficiency::

    shared  →  process  →  chunked  →  serial
    (persistent pool,      (per-call     (in-process      (in-process
     shared memory)         pool)         batch kernels)   reference loop)

Every rung computes **bit-identical values** (pinned by the parity suite), so
stepping down trades only throughput, never correctness — which is what makes
automatic degradation safe.  :class:`DegradationLadder` tracks consecutive
failed dispatches per engine: after ``breaker_threshold`` failures it steps
one rung down (emitting a single :class:`RuntimeWarning` on the first
degradation and counting ``resilience.degradations``), and after
``probe_interval`` consecutive successes at a degraded rung it steps one rung
back up — the next call *is* the probe, and if the pool is still sick the
failure path simply steps back down (``resilience.breaker_trips`` counts
every threshold crossing).

The ladder only ever engages for pool-bound work: single-chunk calls and the
in-process strategies cannot trip it, and an engine whose policy sets
``degrade=False`` never constructs one.
"""

from __future__ import annotations

import warnings

from ..obs import counter

__all__ = ["LADDER", "DegradationLadder"]

#: Rung order, most to least ambitious.
LADDER = ("shared", "process", "chunked", "serial")


class DegradationLadder:
    """Per-engine breaker state: current offset below the requested strategy."""

    def __init__(self, breaker_threshold: int = 1, probe_interval: int = 4):
        self.breaker_threshold = int(breaker_threshold)
        self.probe_interval = int(probe_interval)
        #: How many rungs below the requested strategy the engine runs at.
        self.offset = 0
        self._consecutive_failures = 0
        self._success_streak = 0
        self._warned = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"DegradationLadder(offset={self.offset}, "
                f"failures={self._consecutive_failures}, "
                f"streak={self._success_streak})")

    @property
    def degraded(self) -> bool:
        return self.offset > 0

    def effective_strategy(self, requested: str) -> str:
        """The rung the next call should run at, given the requested strategy."""
        if self.offset == 0 or requested not in LADDER:
            return requested
        start = LADDER.index(requested)
        return LADDER[min(start + self.offset, len(LADDER) - 1)]

    def record_failure(self, requested: str) -> str:
        """A dispatch at the current rung burned its retry budget.

        Steps down when the failure streak crosses the threshold and returns
        the (possibly new) effective strategy for the *rest of this call* —
        the caller finishes the work in-process either way; the rung change
        governs where the next call starts.
        """
        self._success_streak = 0
        self._consecutive_failures += 1
        if self._consecutive_failures >= self.breaker_threshold:
            self._consecutive_failures = 0
            counter("resilience.breaker_trips").add(1)
            start = LADDER.index(requested) if requested in LADDER else 0
            if start + self.offset < len(LADDER) - 1:
                self.offset += 1
                counter("resilience.degradations").add(1)
                effective = self.effective_strategy(requested)
                if not self._warned:
                    self._warned = True
                    warnings.warn(
                        f"engine pool dispatch keeps failing; degrading "
                        f"strategy {requested!r} -> {effective!r} (the ladder "
                        f"probes back up after {self.probe_interval} clean "
                        f"calls; results stay bit-identical)",
                        RuntimeWarning, stacklevel=4)
        return self.effective_strategy(requested)

    def record_success(self) -> None:
        """A pool-eligible call completed without burning its retry budget.

        At a degraded rung, ``probe_interval`` consecutive successes step one
        rung back up — the next call probes the healthier strategy.
        """
        self._consecutive_failures = 0
        if self.offset == 0:
            return
        self._success_streak += 1
        if self._success_streak >= self.probe_interval:
            self._success_streak = 0
            self.offset -= 1
            counter("resilience.recoveries").add(1)

    def reset(self) -> None:
        """Forget all breaker state (tests and explicit operator resets)."""
        self.offset = 0
        self._consecutive_failures = 0
        self._success_streak = 0
        self._warned = False
