"""Deadlines, bounded retries and deterministic backoff for pool dispatch.

A :class:`ResiliencePolicy` travels with a :class:`~repro.engine.MatrixEngine`
(and, through it, with every :class:`~repro.search.SearchService` flush) and
bounds how long and how often the engine fights a failing worker pool:

* ``deadline`` — wall-clock seconds one dispatch may take end to end,
  enforced through future timeouts; blowing it raises
  :class:`~repro.resilience.DeadlineExceededError` (never retried — a
  deadline is a promise to the caller, not a hint).
* ``max_retries`` — how many *rounds* of re-dispatch a single call may spend
  recovering from retryable failures (``BrokenProcessPool``, injected or real
  :class:`~repro.resilience.TransientFaultError`).  Each round retries only
  the chunks that never completed; finished chunks keep their results and
  their telemetry deltas are folded exactly once.
* exponential backoff with **deterministic jitter** — retry ``n`` sleeps
  ``backoff_base * backoff_factor**(n-1)`` (capped at ``backoff_max``),
  stretched by up to ``jitter`` of itself using a hash of ``(seed, n)``
  instead of a clock or global RNG, so a chaos run replays bit-identically.

Environment knobs (explicit constructor arguments win):

* ``REPRO_ENGINE_DEADLINE`` — seconds, ``<= 0`` or unset disables;
* ``REPRO_ENGINE_RETRIES`` — non-negative integer retry budget (default 2).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..config import env_float, env_int

__all__ = ["DEADLINE_ENV", "RETRIES_ENV", "DEFAULT_MAX_RETRIES",
           "ResiliencePolicy"]

DEADLINE_ENV = "REPRO_ENGINE_DEADLINE"
RETRIES_ENV = "REPRO_ENGINE_RETRIES"

#: Retry rounds one dispatch may spend before the ladder (or the caller)
#: takes over.  The pre-resilience engine hard-coded a single whole-dispatch
#: retry; two rounds of *unfinished-chunk* retries strictly dominate it.
DEFAULT_MAX_RETRIES = 2


@dataclass(frozen=True)
class ResiliencePolicy:
    """How one engine call behaves under failure.  Frozen: share freely."""

    #: Wall-clock seconds one dispatch may take (None: no deadline).
    deadline: float | None = None
    #: Retry rounds per dispatch for retryable failures.
    max_retries: int = DEFAULT_MAX_RETRIES
    #: Seconds slept before the first retry round.
    backoff_base: float = 0.05
    #: Multiplier applied per additional round.
    backoff_factor: float = 2.0
    #: Ceiling on any single backoff sleep.
    backoff_max: float = 1.0
    #: Fraction of the delay added as deterministic jitter (0 disables).
    jitter: float = 0.25
    #: Seed for the jitter hash — same seed, same sleeps, same chaos replay.
    seed: int = 0
    #: Whether the engine may step down the strategy ladder after repeated
    #: pool failures (shared → process → chunked → serial).
    degrade: bool = True
    #: Consecutive failed dispatches at a rung before stepping down.  One
    #: failed dispatch already burned the whole retry budget, so 1 is right
    #: for serving; raise it to tolerate sporadic hard failures.
    breaker_threshold: int = 1
    #: Successful pool-eligible calls at a degraded rung before probing one
    #: rung back up.
    probe_interval: int = 4

    def __post_init__(self):
        if self.deadline is not None and self.deadline <= 0:
            object.__setattr__(self, "deadline", None)
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.breaker_threshold < 1:
            raise ValueError("breaker_threshold must be >= 1")
        if self.probe_interval < 1:
            raise ValueError("probe_interval must be >= 1")

    @classmethod
    def from_env(cls, **overrides) -> "ResiliencePolicy":
        """Policy from ``REPRO_ENGINE_DEADLINE`` / ``REPRO_ENGINE_RETRIES``;
        keyword overrides beat the environment."""
        policy = cls(deadline=env_float(DEADLINE_ENV),
                     max_retries=env_int(RETRIES_ENV, DEFAULT_MAX_RETRIES,
                                         minimum=0))
        return replace(policy, **overrides) if overrides else policy

    def backoff_delay(self, attempt: int) -> float:
        """Sleep before retry round ``attempt`` (1-based), jitter included.

        Deterministic by construction: the jitter fraction is a fixed integer
        hash of ``(seed, attempt)`` — no RNG, no clock — so a replay with the
        same policy sleeps the same schedule.
        """
        if attempt < 1 or self.backoff_base <= 0:
            return 0.0
        delay = min(self.backoff_base * self.backoff_factor ** (attempt - 1),
                    self.backoff_max)
        if self.jitter > 0:
            unit = ((self.seed * 1000003 + attempt * 10007) % 997) / 997.0
            delay *= 1.0 + self.jitter * unit
        return min(delay, self.backoff_max * (1.0 + self.jitter))
