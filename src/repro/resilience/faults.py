"""Deterministic fault injection for the serving stack.

A :class:`FaultPlan` is a seeded schedule of failures parsed from the
``REPRO_FAULTS`` environment variable (or installed programmatically by the
chaos suite).  The grammar is a semicolon-joined list of rules::

    REPRO_FAULTS="worker_crash@call=3;slow_worker@p=0.1,delay=0.05;shm_attach_fail@call=7"
    REPRO_FAULTS="seed=42;worker_crash@p=0.02"

Each rule is ``kind@option[,option...]``; options are ``key=value`` pairs:

* ``call=N`` — fire on exactly the N-th invocation (1-based) of that kind's
  injection site in the current process.  Repeat the rule to fire on several
  calls (``worker_crash@call=3;worker_crash@call=7``).
* ``p=X`` — fire with probability ``X`` per invocation, drawn from a
  per-kind ``random.Random`` seeded by ``(seed, kind)`` — the decision
  sequence is fully reproducible given the seed.
* ``delay=S`` — for ``slow_worker``: seconds to sleep when the rule fires
  (default 0.05).

The bare rule ``seed=N`` sets the plan seed (default 0).

Fault kinds and where their hooks live:

=================== ==========================================================
``worker_crash``    pool worker entrypoint (``engine.executor._worker_chunk``)
                    — ``os._exit``, indistinguishable from a SIGKILL'd worker
``slow_worker``     same entrypoint — sleeps ``delay`` seconds before working
``shm_attach_fail`` worker arena attach (``engine.shared._attach_arena``) —
                    raises :class:`~repro.resilience.TransientFaultError`
``arena_append_fail`` ``TrajectoryArena.append`` — raises
                    :class:`~repro.engine.ArenaCapacityError` at entry, before
                    any mutation, exercising the cache's fresh-pack fallback
=================== ==========================================================

**Overhead contract.**  Injection is off by default and the disabled hook is
one module-global load and one ``is None`` comparison — the same budget as a
disabled obs span, pinned by the overhead guard in ``tests/test_resilience.py``.

**Determinism across processes.**  ``call=`` counters and ``p=`` RNG streams
are per-process: a forked pool worker inherits the parent's plan *state* at
fork time and then advances its own copy, so a schedule is reproducible given
the pool layout.  The engine additionally threads the active ``(spec, seed)``
through every chunk dispatch (like ``obs_mode``), so workers forked before the
plan was installed — or spawned fresh after a pool reset — align via
:func:`ensure_plan` before touching any injection site.
"""

from __future__ import annotations

import os
import random
import time
import warnings

from ..obs import counter
from .errors import TransientFaultError

__all__ = [
    "FAULTS_ENV",
    "FAULT_KINDS",
    "DEFAULT_SLOW_DELAY",
    "FaultRule",
    "FaultPlan",
    "fault_point",
    "faults_active",
    "current_spec",
    "install_fault_plan",
    "clear_fault_plan",
    "ensure_plan",
]

FAULTS_ENV = "REPRO_FAULTS"

#: Injection sites the engine exposes; parsing rejects anything else so a
#: typo'd kind fails loudly instead of silently never firing.
FAULT_KINDS = ("worker_crash", "slow_worker", "shm_attach_fail",
               "arena_append_fail")

#: Sleep applied by a firing ``slow_worker`` rule without an explicit delay.
DEFAULT_SLOW_DELAY = 0.05


class FaultRule:
    """One parsed rule: a kind plus its trigger (``call=`` or ``p=``)."""

    __slots__ = ("kind", "call", "probability", "delay")

    def __init__(self, kind: str, call: int | None = None,
                 probability: float | None = None, delay: float | None = None):
        self.kind = kind
        self.call = call
        self.probability = probability
        self.delay = delay

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        trigger = f"call={self.call}" if self.call is not None \
            else f"p={self.probability}"
        return f"FaultRule({self.kind}@{trigger})"


def _parse_error(spec: str, detail: str) -> ValueError:
    return ValueError(f"invalid {FAULTS_ENV} spec {spec!r}: {detail}")


class FaultPlan:
    """A seeded, deterministic schedule of injected faults.

    State (per-kind invocation counters and RNG streams) lives on the plan,
    so installing a fresh plan resets the schedule and two plans never
    interfere.  ``fired`` counts injections per kind in *this* process — the
    chaos suite reads it directly; cross-process totals flow through the
    ``resilience.faults_injected`` registry counter where the worker survives
    to report (a crashed worker takes its delta with it, by design).
    """

    def __init__(self, rules: list[FaultRule], seed: int = 0,
                 spec: str | None = None):
        self.rules = list(rules)
        self.seed = int(seed)
        self.spec = spec if spec is not None else self._format()
        self._calls: dict[str, int] = {}
        self._fired: dict[str, int] = {}
        self._rngs: dict[str, random.Random] = {}
        self._by_kind: dict[str, list[FaultRule]] = {}
        for rule in self.rules:
            self._by_kind.setdefault(rule.kind, []).append(rule)

    def _format(self) -> str:
        parts = [f"seed={self.seed}"] if self.seed else []
        for rule in self.rules:
            options = []
            if rule.call is not None:
                options.append(f"call={rule.call}")
            if rule.probability is not None:
                options.append(f"p={rule.probability}")
            if rule.delay is not None:
                options.append(f"delay={rule.delay}")
            parts.append(f"{rule.kind}@{','.join(options)}")
        return ";".join(parts)

    # ------------------------------------------------------------------ parse
    @classmethod
    def parse(cls, spec: str, seed: int | None = None) -> "FaultPlan":
        """Parse the ``REPRO_FAULTS`` grammar; raises ``ValueError`` with the
        offending fragment on anything malformed."""
        rules: list[FaultRule] = []
        plan_seed = 0 if seed is None else int(seed)
        for part in spec.split(";"):
            part = part.strip()
            if not part:
                continue
            if "@" not in part:
                key, _, value = part.partition("=")
                if key.strip() != "seed" or not value.strip():
                    raise _parse_error(spec, f"expected 'kind@option,...' or "
                                             f"'seed=N', got {part!r}")
                try:
                    plan_seed = int(value)
                except ValueError:
                    raise _parse_error(spec, f"seed must be an integer, "
                                             f"got {value!r}") from None
                continue
            kind, _, options = part.partition("@")
            kind = kind.strip()
            if kind not in FAULT_KINDS:
                raise _parse_error(spec, f"unknown fault kind {kind!r}; "
                                         f"options: {FAULT_KINDS}")
            call = probability = delay = None
            for option in options.split(","):
                key, _, value = option.partition("=")
                key, value = key.strip(), value.strip()
                if not value:
                    raise _parse_error(spec, f"option {option!r} of {kind!r} "
                                             f"must be key=value")
                if key == "call":
                    try:
                        call = int(value)
                    except ValueError:
                        raise _parse_error(spec, f"call= must be an integer, "
                                                 f"got {value!r}") from None
                    if call < 1:
                        raise _parse_error(spec, f"call= must be >= 1, "
                                                 f"got {value!r}")
                elif key == "p":
                    try:
                        probability = float(value)
                    except ValueError:
                        raise _parse_error(spec, f"p= must be a number, "
                                                 f"got {value!r}") from None
                    if not 0.0 <= probability <= 1.0:
                        raise _parse_error(spec, f"p= must be in [0, 1], "
                                                 f"got {value!r}")
                elif key == "delay":
                    try:
                        delay = float(value)
                    except ValueError:
                        raise _parse_error(spec, f"delay= must be a number, "
                                                 f"got {value!r}") from None
                    if delay < 0:
                        raise _parse_error(spec, f"delay= must be >= 0, "
                                                 f"got {value!r}")
                else:
                    raise _parse_error(spec, f"unknown option {key!r} for "
                                             f"{kind!r} (call=/p=/delay=)")
            if call is None and probability is None:
                raise _parse_error(spec, f"rule for {kind!r} needs a trigger "
                                         f"(call=N or p=X)")
            rules.append(FaultRule(kind, call=call, probability=probability,
                                   delay=delay))
        if seed is not None:
            plan_seed = int(seed)
        return cls(rules, seed=plan_seed, spec=spec)

    # ------------------------------------------------------------- evaluation
    def _rng(self, kind: str) -> random.Random:
        rng = self._rngs.get(kind)
        if rng is None:
            rng = self._rngs[kind] = random.Random(f"{self.seed}:{kind}")
        return rng

    def fired(self, kind: str | None = None) -> int:
        """Injections so far in this process (one kind, or the total)."""
        if kind is not None:
            return self._fired.get(kind, 0)
        return sum(self._fired.values())

    def evaluate(self, kind: str) -> FaultRule | None:
        """Advance ``kind``'s invocation counter and return a firing rule.

        ``call=`` rules compare against the new counter value; ``p=`` rules
        draw from the kind's seeded stream *only when present*, so plans
        without probabilistic rules stay RNG-free (and bit-reproducible
        regardless of invocation interleaving).
        """
        rules = self._by_kind.get(kind)
        if not rules:
            return None
        count = self._calls.get(kind, 0) + 1
        self._calls[kind] = count
        for rule in rules:
            if rule.call is not None and rule.call == count:
                return rule
            if rule.probability is not None and \
                    self._rng(kind).random() < rule.probability:
                return rule
        return None

    def trigger(self, kind: str) -> None:
        """Evaluate ``kind`` and carry out the firing rule's effect, if any."""
        rule = self.evaluate(kind)
        if rule is None:
            return
        self._fired[kind] = self._fired.get(kind, 0) + 1
        counter("resilience.faults_injected").add(1)
        counter(f"resilience.faults.{kind}").add(1)
        if kind == "worker_crash":
            # Exit without cleanup, exactly like a SIGKILL'd worker: the pool
            # notices the dead process and marks itself broken.
            os._exit(13)
        elif kind == "slow_worker":
            time.sleep(DEFAULT_SLOW_DELAY if rule.delay is None else rule.delay)
        elif kind == "shm_attach_fail":
            raise TransientFaultError(
                "shm_attach_fail", "injected shared-memory attach failure")
        elif kind == "arena_append_fail":
            from ..engine.shared import ArenaCapacityError

            raise ArenaCapacityError("injected arena append failure")


# ------------------------------------------------------------- process state

def _plan_from_env() -> FaultPlan | None:
    spec = os.environ.get(FAULTS_ENV, "").strip()
    if not spec:
        return None
    try:
        return FaultPlan.parse(spec)
    except ValueError as error:
        # A malformed spec in the environment must not brick the whole stack
        # at import time; warn once and run fault-free.
        warnings.warn(f"ignoring malformed {FAULTS_ENV}: {error}",
                      RuntimeWarning, stacklevel=3)
        return None


#: The installed plan, or None.  ``fault_point`` reads this once per call;
#: None is the off-by-default fast path.
_PLAN: FaultPlan | None = _plan_from_env()


def fault_point(kind: str) -> None:
    """Injection hook: a no-op (one load + one ``is None`` test) without a plan."""
    plan = _PLAN
    if plan is None:
        return
    plan.trigger(kind)


def faults_active() -> bool:
    """Whether a fault plan is currently installed in this process."""
    return _PLAN is not None


def current_spec() -> tuple[str, int] | None:
    """The installed plan as a picklable ``(spec, seed)`` token (None: no plan).

    This is what the engine threads through pool dispatch so worker processes
    align their plans with the parent's — the fault-injection counterpart of
    the ``obs_mode`` argument.
    """
    plan = _PLAN
    if plan is None:
        return None
    return (plan.spec, plan.seed)


def install_fault_plan(plan: FaultPlan | str | None,
                       seed: int | None = None) -> FaultPlan | None:
    """Install ``plan`` (a :class:`FaultPlan`, a spec string, or None to clear).

    Returns the installed plan.  Installing resets all schedule state — call
    counters restart at zero.
    """
    global _PLAN
    if isinstance(plan, str):
        plan = FaultPlan.parse(plan, seed=seed)
    _PLAN = plan
    return plan


def clear_fault_plan() -> None:
    """Remove any installed plan (the injection hooks return to no-ops)."""
    install_fault_plan(None)


def ensure_plan(token: tuple[str, int] | None) -> None:
    """Align this process's plan with a :func:`current_spec` token.

    Called at worker entry: a worker forked before the parent installed (or
    cleared) a plan re-aligns here.  A token matching the installed plan is a
    no-op, so a worker's schedule state survives across the many chunks of a
    call — only an actual spec/seed *change* resets counters.
    """
    global _PLAN
    if token is None:
        if _PLAN is not None:
            _PLAN = None
        return
    spec, seed = token
    if _PLAN is not None and _PLAN.spec == spec and _PLAN.seed == seed:
        return
    _PLAN = FaultPlan.parse(spec, seed=seed)
