"""Shared experiment pipeline: generate data → ground truth → train → evaluate.

Every table/figure harness composes the same few steps with different parameters, so
they are factored out here.  All experiments are deterministic given their seeds and
run at reduced scale (tens of trajectories, a few epochs) so that the full benchmark
suite completes on a laptop-class CPU; the *relative* behaviour of the plugin versus
the original models is what the reproduction targets.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core import LHPlugin, LHPluginConfig
from ..data import TrajectoryDataset, generate_dataset
from ..distances import normalize_matrix, pairwise_distance_matrix
from ..engine import MatrixEngine, get_default_engine
from ..eval import evaluate_retrieval
from ..models import get_model
from ..training import SimilarityTrainer, default_train_batched

__all__ = ["ExperimentSettings", "VARIANTS", "prepare_experiment", "make_plugin",
           "train_variant", "evaluate_model"]

#: The ablation variants of Table VI; "original" means no plugin at all.
VARIANTS = ("original", "lh-vanilla", "lh-cosh", "fusion-dist")

#: Measures that need a timestamp column.
_SPATIOTEMPORAL_MEASURES = {"tp", "dita"}

#: Extra keyword arguments per measure (EDR's matching threshold is in normalised
#: coordinate units because experiments normalise trajectories to the unit square).
_MEASURE_KWARGS = {"edr": {"epsilon": 0.25}}


@dataclass
class ExperimentSettings:
    """Scale and reproducibility knobs shared by all experiments."""

    preset: str = "chengdu"
    dataset_size: int = 40
    measure: str = "dtw"
    model: str = "neutraj"
    embedding_dim: int = 16
    hidden_dim: int = 24
    epochs: int = 3
    learning_rate: float = 5e-3
    batch_size: int = 16
    num_nearest: int = 5
    num_random: int = 5
    seed: int = 0
    hr_ks: tuple[int, ...] = (5, 10, 50)
    ndcg_ks: tuple[int, ...] = (10, 50)
    plugin: LHPluginConfig = field(default_factory=LHPluginConfig)
    #: Execution strategy for ground-truth matrix construction (``serial``,
    #: ``chunked``, ``process`` or the zero-copy ``shared`` pool); None uses
    #: the process-wide default engine (``chunked`` with an in-memory cache).
    engine_strategy: str | None = None
    #: Worker-pool size for the ``process``/``shared`` strategies; None defers
    #: to ``REPRO_ENGINE_MAX_WORKERS`` / the engine default.
    engine_max_workers: int | None = None
    #: Kernel backend for ground-truth matrix construction (``numpy``,
    #: ``numba`` or ``auto``); None defers to the process-wide resolution
    #: (``set_backend`` / ``REPRO_KERNEL_BACKEND`` / auto).
    kernel_backend: str | None = None
    use_vectorized_kernels: bool = True
    #: Whether training steps run through the mask-aware batched forward
    #: (``encode_batch`` + batched plugin distances).  Defaults to on; the
    #: environment variable ``REPRO_TRAIN_BATCHED=0`` restores the per-sample
    #: reference path process-wide.
    batched_training: bool = field(default_factory=default_train_batched)

    def measure_kwargs(self) -> dict:
        return dict(_MEASURE_KWARGS.get(self.measure, {}))

    def needs_time(self) -> bool:
        return self.measure in _SPATIOTEMPORAL_MEASURES or self.model in ("st2vec", "tedj")

    def make_engine(self) -> MatrixEngine:
        """Engine instance implied by the settings (default engine when unset)."""
        if (self.engine_strategy is None and self.engine_max_workers is None
                and self.kernel_backend is None and self.use_vectorized_kernels):
            return get_default_engine()
        # Share the default engine's cache so explicitly choosing a strategy does
        # not silently forfeit cache hits — except when kernels are disabled, where
        # a kernel-computed cache entry would defeat the point of the reference
        # run, and when a backend is pinned, where a cache entry computed by a
        # different backend could mask (1e-12-scale) cross-backend differences.
        cache = (get_default_engine().cache
                 if self.use_vectorized_kernels and self.kernel_backend is None
                 else None)
        return MatrixEngine(strategy=self.engine_strategy or "chunked",
                            use_kernels=self.use_vectorized_kernels, cache=cache,
                            max_workers=self.engine_max_workers,
                            backend=self.kernel_backend)


def prepare_experiment(settings: ExperimentSettings,
                       engine: MatrixEngine | None = None
                       ) -> tuple[TrajectoryDataset, np.ndarray]:
    """Generate the dataset and its normalised ground-truth distance matrix."""
    with_time = True if settings.needs_time() else None
    dataset = generate_dataset(settings.preset, size=settings.dataset_size,
                               seed=settings.seed, with_time=with_time)
    spatial_only = settings.measure not in _SPATIOTEMPORAL_MEASURES
    trajectories = dataset.point_arrays(spatial_only=spatial_only)
    matrix = pairwise_distance_matrix(trajectories, settings.measure,
                                      engine=engine or settings.make_engine(),
                                      **settings.measure_kwargs())
    return dataset, normalize_matrix(matrix, method="mean")


def make_plugin(settings: ExperimentSettings, variant: str) -> LHPlugin | None:
    """Instantiate the plugin matching an ablation variant (None for "original")."""
    if variant == "original":
        return None
    if variant not in VARIANTS:
        raise KeyError(f"unknown variant '{variant}'; options: {VARIANTS}")
    point_features = 3 if settings.needs_time() else 2
    config = LHPluginConfig.ablation_variant(
        variant,
        beta=settings.plugin.beta,
        compression=settings.plugin.compression,
        factor_dim=settings.plugin.factor_dim,
        fusion_hidden=settings.plugin.fusion_hidden,
        fusion_encoder=settings.plugin.fusion_encoder,
        point_features=point_features,
        seed=settings.seed,
    )
    return LHPlugin(config)


def train_variant(settings: ExperimentSettings, dataset: TrajectoryDataset,
                  target_matrix: np.ndarray, variant: str,
                  eval_every_epoch: bool = False) -> dict:
    """Train one (model, variant) configuration and evaluate retrieval quality.

    Returns a dict with the metrics, the per-epoch history and the trainer (so
    callers can reuse the trained model, e.g. for RVS analysis or efficiency probes).
    """
    encoder_cls = get_model(settings.model)
    encoder = encoder_cls.build(dataset, embedding_dim=settings.embedding_dim,
                                hidden_dim=settings.hidden_dim, seed=settings.seed)
    plugin = make_plugin(settings, variant)
    trainer = SimilarityTrainer(encoder, plugin=plugin, learning_rate=settings.learning_rate,
                                batch_size=settings.batch_size, num_nearest=settings.num_nearest,
                                num_random=settings.num_random, seed=settings.seed,
                                batched=settings.batched_training)

    eval_fn = None
    if eval_every_epoch:
        def eval_fn() -> dict:
            predicted = trainer.model_distance_matrix(dataset)
            return evaluate_retrieval(predicted, target_matrix,
                                      hr_ks=settings.hr_ks, ndcg_ks=settings.ndcg_ks)

    history = trainer.fit(dataset, target_matrix, epochs=settings.epochs, eval_fn=eval_fn)
    predicted = trainer.model_distance_matrix(dataset)
    metrics = evaluate_retrieval(predicted, target_matrix,
                                 hr_ks=settings.hr_ks, ndcg_ks=settings.ndcg_ks)
    return {
        "variant": variant,
        "metrics": metrics,
        "history": history,
        "trainer": trainer,
        "predicted_matrix": predicted,
    }


def evaluate_model(trainer: SimilarityTrainer, dataset: TrajectoryDataset,
                   target_matrix: np.ndarray, settings: ExperimentSettings) -> dict:
    """Re-evaluate an already trained model (used by scalability/robustness sweeps)."""
    predicted = trainer.model_distance_matrix(dataset)
    return evaluate_retrieval(predicted, target_matrix,
                              hr_ks=settings.hr_ks, ndcg_ks=settings.ndcg_ks)
