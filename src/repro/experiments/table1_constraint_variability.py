"""Table I — triangle-constraint variability of DTW / SSPD / EDR across datasets.

For every city preset the harness generates a trajectory sample, computes the
pairwise distance matrix under each measure and reports the Ratio of Violation (RV)
and the Average Relative Violation (ARVS).  Expected shape versus the paper: every
non-metric measure shows a non-negligible RV (tens of percent for DTW on the taxi
presets), the OSM-like preset violates least, and the sparse/noisy presets (T-Drive,
Geolife analogues) violate most.
"""

from __future__ import annotations

from ..data import generate_dataset
from ..distances import normalize_matrix
from ..engine import MatrixEngine, get_default_engine
from .reporting import format_float, format_percent, format_table

__all__ = ["run", "format_result"]

DEFAULT_PRESETS = ("chengdu", "porto", "xian", "tdrive", "osm", "geolife")
DEFAULT_MEASURES = ("dtw", "sspd", "edr")
_MEASURE_KWARGS = {"edr": {"epsilon": 0.25}}


def run(presets=DEFAULT_PRESETS, measures=DEFAULT_MEASURES, dataset_size: int = 40,
        max_triplets: int = 4000, seed: int = 0,
        engine: MatrixEngine | None = None) -> dict:
    """Compute RV / ARVS for every (preset, measure) combination."""
    engine = engine or get_default_engine()
    results: dict[str, dict[str, dict]] = {}
    for preset in presets:
        dataset = generate_dataset(preset, size=dataset_size, seed=seed)
        trajectories = dataset.point_arrays(spatial_only=True)
        results[preset] = {}
        for measure in measures:
            matrix = engine.pairwise(trajectories, measure,
                                     **_MEASURE_KWARGS.get(measure, {}))
            matrix = normalize_matrix(matrix, method="mean")
            results[preset][measure] = engine.violation_statistics(
                matrix, max_triplets=max_triplets, seed=seed)
    return {
        "presets": list(presets),
        "measures": list(measures),
        "dataset_size": dataset_size,
        "results": results,
    }


def format_result(result: dict) -> str:
    """Render the Table I analogue."""
    headers = ["measure", "statistic", *result["presets"]]
    rows = []
    for measure in result["measures"]:
        rv_row = [measure.upper(), "RV"]
        arvs_row = ["", "ARVS"]
        for preset in result["presets"]:
            report = result["results"][preset][measure]
            rv_row.append(format_percent(report["ratio_of_violation"], 1))
            arvs_row.append(format_float(report["average_relative_violation"], 3))
        rows.append(rv_row)
        rows.append(arvs_row)
    return format_table(headers, rows,
                        title="Table I: constraint variability on synthetic datasets")
