"""Figure 7 — robustness: per-epoch accuracy curves, original vs LH-plugin.

Both variants are trained with per-epoch retrieval evaluation enabled; the harness
reports the HR@10 curve and its fluctuation (standard deviation of epoch-to-epoch
changes).  Expected shape: the plugin's curve is smoother (smaller fluctuation) and
ends at or above the original's accuracy.
"""

from __future__ import annotations

import numpy as np

from .reporting import format_float, format_table
from .runner import ExperimentSettings, prepare_experiment, train_variant

__all__ = ["run", "format_result"]


def _fluctuation(curve: list[float]) -> float:
    if len(curve) < 2:
        return 0.0
    return float(np.std(np.diff(curve)))


def run(settings: ExperimentSettings | None = None, metric: str = "hr@10") -> dict:
    """Train both variants with per-epoch evaluation and extract the accuracy curves."""
    settings = settings or ExperimentSettings(epochs=5)
    dataset, truth = prepare_experiment(settings)
    curves = {}
    for variant in ("original", "fusion-dist"):
        outcome = train_variant(settings, dataset, truth, variant, eval_every_epoch=True)
        curve = outcome["history"].metric_curve(metric)
        curves[variant] = {
            "curve": [float(value) for value in curve],
            "final": float(curve[-1]) if curve else 0.0,
            "fluctuation": _fluctuation(curve),
            "losses": list(outcome["history"].losses),
        }
    return {"settings": settings, "metric": metric, "curves": curves}


def format_result(result: dict) -> str:
    """Render the Figure 7 analogue: per-epoch accuracy plus a fluctuation summary."""
    metric = result["metric"]
    original = result["curves"]["original"]
    plugin = result["curves"]["fusion-dist"]
    num_epochs = max(len(original["curve"]), len(plugin["curve"]))
    headers = ["epoch", f"original {metric}", f"LH-plugin {metric}"]
    rows = []
    for epoch in range(num_epochs):
        rows.append([
            epoch + 1,
            format_float(original["curve"][epoch], 4) if epoch < len(original["curve"]) else "-",
            format_float(plugin["curve"][epoch], 4) if epoch < len(plugin["curve"]) else "-",
        ])
    rows.append(["fluctuation", format_float(original["fluctuation"], 4),
                 format_float(plugin["fluctuation"], 4)])
    return format_table(headers, rows, title="Figure 7: training-curve robustness")
