"""Figure 8 — hyper-parameter study of the curvature β and the compression exponent c.

The full LH-plugin is trained with each candidate value of one hyper-parameter while
the other is held at the paper's default (β = 1, c = 4).  Expected shape: accuracy is
relatively flat with a mild optimum near the defaults, matching the paper's choice of
β = 1 and c = 4.
"""

from __future__ import annotations

from dataclasses import replace

from .reporting import format_float, format_table
from .runner import ExperimentSettings, prepare_experiment, train_variant

__all__ = ["run", "format_result"]

DEFAULT_BETAS = (0.25, 0.5, 1.0, 2.0, 4.0)
DEFAULT_COMPRESSIONS = (1.0, 2.0, 4.0, 8.0)


def run(settings: ExperimentSettings | None = None, betas=DEFAULT_BETAS,
        compressions=DEFAULT_COMPRESSIONS, metric: str = "hr@10") -> dict:
    """Sweep β (with c fixed) and c (with β fixed) for the full plugin."""
    settings = settings or ExperimentSettings()
    dataset, truth = prepare_experiment(settings)

    beta_rows = []
    for beta in betas:
        sweep_settings = replace(settings, plugin=settings.plugin.with_updates(beta=beta))
        outcome = train_variant(sweep_settings, dataset, truth, "fusion-dist")
        beta_rows.append({"beta": beta, "metrics": outcome["metrics"]})

    compression_rows = []
    for compression in compressions:
        sweep_settings = replace(settings,
                                 plugin=settings.plugin.with_updates(compression=compression))
        outcome = train_variant(sweep_settings, dataset, truth, "fusion-dist")
        compression_rows.append({"c": compression, "metrics": outcome["metrics"]})

    return {
        "settings": settings,
        "metric": metric,
        "beta_sweep": beta_rows,
        "compression_sweep": compression_rows,
    }


def format_result(result: dict) -> str:
    """Render the Figure 8 analogue as two sweep tables."""
    metric = result["metric"]
    available = result["beta_sweep"][0]["metrics"]
    if metric not in available:
        metric = next(iter(available))
    beta_table = format_table(
        ["beta", metric],
        [[row["beta"], format_float(row["metrics"][metric], 4)] for row in result["beta_sweep"]],
        title="Figure 8a: curvature beta sweep (c fixed)",
    )
    compression_table = format_table(
        ["c", metric],
        [[row["c"], format_float(row["metrics"][metric], 4)]
         for row in result["compression_sweep"]],
        title="Figure 8b: compression exponent c sweep (beta fixed)",
    )
    return beta_table + "\n\n" + compression_table
