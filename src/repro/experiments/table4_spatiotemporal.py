"""Table IV — spatio-temporal models (ST2Vec, Tedj) with and without the LH-plugin.

Ground truths are the spatio-temporal measures TP, DITA and discrete Fréchet on a
timestamped synthetic preset.  Expected shape: the plugin improves both models on all
three measures, with ST2Vec (the stronger base model) gaining the larger margins.
"""

from __future__ import annotations

from dataclasses import replace

from .reporting import format_percent, format_table, percent_increase
from .runner import ExperimentSettings, prepare_experiment, train_variant

__all__ = ["run", "format_result"]

DEFAULT_MODELS = ("st2vec", "tedj")
DEFAULT_MEASURES = ("tp", "dita", "frechet")
METRIC_KEYS = ("hr@5", "hr@10", "hr@50", "ndcg@50")


def run(settings: ExperimentSettings | None = None, models=DEFAULT_MODELS,
        measures=DEFAULT_MEASURES) -> dict:
    """Train original vs LH-plugin for the spatio-temporal models and measures."""
    settings = settings or ExperimentSettings(preset="tdrive")
    results: dict = {}
    for model in models:
        results[model] = {}
        for measure in measures:
            cell_settings = replace(settings, model=model, measure=measure)
            dataset, truth = prepare_experiment(cell_settings)
            original = train_variant(cell_settings, dataset, truth, "original")
            plugin = train_variant(cell_settings, dataset, truth, "fusion-dist")
            results[model][measure] = {
                "original": original["metrics"],
                "lh-plugin": plugin["metrics"],
            }
    return {
        "settings": settings,
        "models": list(models),
        "measures": list(measures),
        "results": results,
    }


def format_result(result: dict) -> str:
    """Render the Table IV analogue."""
    first_cell = result["results"][result["models"][0]][result["measures"][0]]
    metric_keys = [key for key in METRIC_KEYS if key in first_cell["original"]]
    metric_keys = metric_keys or list(first_cell["original"])
    headers = ["model", "measure", "variant", *metric_keys]
    rows = []
    for model in result["models"]:
        for measure in result["measures"]:
            cell = result["results"][model][measure]
            original = cell["original"]
            plugin = cell["lh-plugin"]
            rows.append([model, measure, "original",
                         *[f"{original[key]:.4f}" for key in metric_keys]])
            rows.append(["", "", "LH-plugin",
                         *[f"{plugin[key]:.4f}" for key in metric_keys]])
            rows.append(["", "", "%increase",
                         *[format_percent(percent_increase(original[key], plugin[key]))
                           for key in metric_keys]])
    return format_table(headers, rows,
                        title="Table IV: spatio-temporal models, original vs LH-plugin")
