"""Table V — retrieval latency and memory overhead of the LH-plugin.

The experiment pre-embeds databases of increasing size and measures the online
top-k retrieval latency and database memory with and without the plugin.  Expected
shape versus the paper: the plugin's extra latency shrinks (relatively) as the
database grows — well under a percent at the largest size — and the memory overhead
stays in the single-digit percent range.

Database sizes are scaled down (the paper uses 10k/100k/1m) so the benchmark runs in
seconds; the relative overhead, which is the claim under test, is size-stable.
"""

from __future__ import annotations

import numpy as np

from ..core import LHPlugin, LHPluginConfig
from ..eval import retrieval_latency
from .reporting import format_percent, format_table

__all__ = ["run", "format_result"]

DEFAULT_SIZES = (1000, 5000, 20000)


def run(database_sizes=DEFAULT_SIZES, num_queries: int = 20, embedding_dim: int = 128,
        factor_dim: int = 4, k: int = 10, repeats: int = 3, seed: int = 0) -> dict:
    """Measure retrieval latency/memory for each database size, original vs plugin.

    Embeddings and factor vectors are synthesised directly (the base encoder is
    irrelevant here: the paper's measurement also starts from pre-embedded databases).
    """
    rng = np.random.default_rng(seed)
    plugin = LHPlugin(LHPluginConfig(factor_dim=factor_dim))
    rows = []
    for size in database_sizes:
        database_embeddings = rng.normal(size=(size, embedding_dim))
        query_embeddings = rng.normal(size=(num_queries, embedding_dim))
        # Factor vectors are what the fusion encoder would have produced offline; a
        # short random positive sequence per trajectory keeps the probe self-contained.
        database_sequences = [rng.random((8, 2)) for _ in range(size)]
        query_sequences = [rng.random((8, 2)) for _ in range(num_queries)]

        baseline = retrieval_latency(query_embeddings, database_embeddings, k=k,
                                     repeats=repeats)
        plugged = retrieval_latency(query_embeddings, database_embeddings, k=k,
                                    plugin=plugin, query_sequences=query_sequences,
                                    database_sequences=database_sequences,
                                    repeats=repeats)
        rows.append({
            "database_size": size,
            "original": baseline,
            "lh-plugin": plugged,
            "latency_increase": (plugged["latency_seconds"] - baseline["latency_seconds"])
            / baseline["latency_seconds"],
            "memory_increase": (plugged["memory_bytes"] - baseline["memory_bytes"])
            / baseline["memory_bytes"],
        })
    return {"rows": rows, "k": k, "num_queries": num_queries}


def format_result(result: dict) -> str:
    """Render the Table V analogue."""
    headers = ["database size", "original (s / MB)", "LH-plugin (s / MB)",
               "%latency increase", "%memory increase"]
    rows = []
    for row in result["rows"]:
        original = row["original"]
        plugged = row["lh-plugin"]
        rows.append([
            row["database_size"],
            f"{original['latency_seconds']:.4f}s / {original['memory_bytes'] / 1e6:.2f}MB",
            f"{plugged['latency_seconds']:.4f}s / {plugged['memory_bytes'] / 1e6:.2f}MB",
            format_percent(row["latency_increase"]),
            format_percent(row["memory_increase"]),
        ])
    return format_table(headers, rows,
                        title="Table V: retrieval consumption, original vs LH-plugin")
