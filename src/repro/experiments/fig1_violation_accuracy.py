"""Figure 1 — embedding accuracy versus degree of triangle-inequality violation.

Queries are bucketed by how strongly their neighbourhood violates the triangle
inequality (per-trajectory violation score); HR@10 is reported per bucket for the
original Euclidean pipeline and for the LH-plugin.  Expected shape: the original
model's accuracy degrades as the violation degree grows, while the plugin's curve is
flatter and higher in the high-violation buckets.
"""

from __future__ import annotations

import numpy as np

from ..eval import per_query_hit_rate
from ..violation import per_trajectory_violation_score
from .reporting import format_float, format_table
from .runner import ExperimentSettings, prepare_experiment, train_variant

__all__ = ["run", "format_result"]


def run(settings: ExperimentSettings | None = None, num_buckets: int = 3,
        k: int = 10, max_triplets: int = 4000) -> dict:
    """Train original and plugin variants and stratify HR@k by violation degree."""
    settings = settings or ExperimentSettings()
    dataset, truth = prepare_experiment(settings)
    scores = per_trajectory_violation_score(truth, max_triplets=max_triplets,
                                            seed=settings.seed)
    order = np.argsort(scores, kind="stable")
    buckets = np.array_split(order, num_buckets)

    results = {}
    for variant in ("original", "fusion-dist"):
        outcome = train_variant(settings, dataset, truth, variant)
        per_query = per_query_hit_rate(outcome["predicted_matrix"], truth,
                                       k=min(k, len(dataset) - 1))
        results[variant] = {
            "bucket_hit_rates": [float(per_query[bucket].mean()) for bucket in buckets],
            "overall": float(per_query.mean()),
        }

    return {
        "settings": settings,
        "k": k,
        "bucket_violation_scores": [float(scores[bucket].mean()) for bucket in buckets],
        "bucket_sizes": [len(bucket) for bucket in buckets],
        "results": results,
    }


def format_result(result: dict) -> str:
    """Render the Figure 1 analogue as a table of per-bucket hit rates."""
    headers = ["violation bucket", "mean violation score", "original HR", "LH-plugin HR"]
    rows = []
    original = result["results"]["original"]["bucket_hit_rates"]
    plugin = result["results"]["fusion-dist"]["bucket_hit_rates"]
    for index, score in enumerate(result["bucket_violation_scores"]):
        rows.append([
            f"bucket {index + 1} (low→high)",
            format_float(score, 4),
            format_float(original[index], 3),
            format_float(plugin[index], 3),
        ])
    rows.append([
        "overall", "-",
        format_float(result["results"]["original"]["overall"], 3),
        format_float(result["results"]["fusion-dist"]["overall"], 3),
    ])
    return format_table(headers, rows,
                        title=f"Figure 1: HR@{result['k']} vs triangle-violation degree")
