"""Plain-text reporting helpers shared by the experiment harnesses.

Every experiment returns plain dictionaries/lists; these helpers render them as the
ASCII tables the benchmark targets print, so a run of ``pytest benchmarks/`` shows
the same rows/series the paper reports.
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["format_table", "format_float", "format_percent", "percent_increase"]


def format_float(value: float, digits: int = 4) -> str:
    """Fixed-precision float formatting tolerant of None."""
    if value is None:
        return "-"
    return f"{value:.{digits}f}"


def format_percent(value: float, digits: int = 2) -> str:
    """Render a fraction as a percentage string."""
    if value is None:
        return "-"
    return f"{100.0 * value:.{digits}f}%"


def percent_increase(baseline: float, improved: float) -> float:
    """Relative improvement of ``improved`` over ``baseline`` (0 when baseline is 0)."""
    if baseline == 0:
        return 0.0
    return (improved - baseline) / abs(baseline)


def format_table(headers: Sequence[str], rows: Sequence[Sequence], title: str | None = None
                 ) -> str:
    """Render a list of rows as an aligned ASCII table."""
    rendered_rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def render_line(cells):
        return " | ".join(cell.ljust(width) for cell, width in zip(cells, widths))

    lines = []
    if title:
        lines.append(title)
    lines.append(render_line(headers))
    lines.append("-+-".join("-" * width for width in widths))
    lines.extend(render_line(row) for row in rendered_rows)
    return "\n".join(lines)
