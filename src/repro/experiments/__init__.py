"""``repro.experiments`` — one harness per table and figure of the paper.

============  ==========================================================
Experiment    Module
============  ==========================================================
Figure 1      :mod:`repro.experiments.fig1_violation_accuracy`
Table I       :mod:`repro.experiments.table1_constraint_variability`
Table III     :mod:`repro.experiments.table3_accuracy`
Table IV      :mod:`repro.experiments.table4_spatiotemporal`
Figure 5      :mod:`repro.experiments.fig5_rvs_distribution`
Table V       :mod:`repro.experiments.table5_efficiency`
Figure 6      :mod:`repro.experiments.fig6_scalability`
Figure 7      :mod:`repro.experiments.fig7_robustness`
Table VI      :mod:`repro.experiments.table6_ablation`
Figure 8      :mod:`repro.experiments.fig8_hyperparams`
============  ==========================================================

Every module exposes ``run(...) -> dict`` and ``format_result(result) -> str``; the
corresponding benchmark in ``benchmarks/`` calls ``run`` once and prints the table.
"""

from .runner import ExperimentSettings, VARIANTS, prepare_experiment, make_plugin, train_variant
from .reporting import format_table, format_float, format_percent, percent_increase
from . import (
    fig1_violation_accuracy,
    table1_constraint_variability,
    table3_accuracy,
    table4_spatiotemporal,
    fig5_rvs_distribution,
    table5_efficiency,
    fig6_scalability,
    fig7_robustness,
    table6_ablation,
    fig8_hyperparams,
)

__all__ = [
    "ExperimentSettings", "VARIANTS", "prepare_experiment", "make_plugin", "train_variant",
    "format_table", "format_float", "format_percent", "percent_increase",
    "fig1_violation_accuracy", "table1_constraint_variability", "table3_accuracy",
    "table4_spatiotemporal", "fig5_rvs_distribution", "table5_efficiency",
    "fig6_scalability", "fig7_robustness", "table6_ablation", "fig8_hyperparams",
]
