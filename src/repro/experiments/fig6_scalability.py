"""Figure 6 — scalability: accuracy versus training-data fraction.

Models are trained on 20%–100% of the trajectory database and evaluated on the full
database.  Expected shape: accuracy rises with the training fraction for both the
original model and the plugin variant, and the plugin curve sits above the original
at every fraction.

The harness additionally probes the *online* scalability axis: top-k latency and
lower-bound pruning through the filter-and-refine search subsystem over the same
database, reported alongside the accuracy table.
"""

from __future__ import annotations

import numpy as np

from ..eval import evaluate_retrieval, search_latency
from .reporting import format_float, format_table
from .runner import ExperimentSettings, make_plugin, prepare_experiment
from ..models import get_model
from ..training import SimilarityTrainer

__all__ = ["run", "format_result"]

DEFAULT_FRACTIONS = (0.2, 0.4, 0.6, 0.8, 1.0)

#: Queries timed by the search-latency probe (drawn from the database itself).
PROBE_QUERIES = 5


def _search_probe(settings: ExperimentSettings, dataset) -> dict:
    """Exact top-k latency/pruning over the experiment database.

    The probe runs under the settings' engine, so ``engine_strategy="shared"``
    (plus ``engine_max_workers``) exercises the zero-copy parallel refinement
    path end to end; the serving engine configuration is recorded alongside
    the latency numbers.
    """
    from .runner import _SPATIOTEMPORAL_MEASURES

    spatial_only = settings.measure not in _SPATIOTEMPORAL_MEASURES
    trajectories = dataset.point_arrays(spatial_only=spatial_only)
    num_queries = min(PROBE_QUERIES, len(trajectories))
    k = min(5, len(trajectories) - 1)
    engine = settings.make_engine()
    probe = dict(search_latency(trajectories, trajectories[:num_queries], k=k,
                                measure=settings.measure, repeats=1,
                                engine=engine, exclude_self=True,
                                **settings.measure_kwargs()))
    probe["engine_strategy"] = engine.strategy
    probe["engine_max_workers"] = engine.max_workers
    # Serving fast-path provenance: under the shared strategy, repeats reuse
    # the content-addressed arena pool — record its state with the latency so
    # the scalability table says whether packing costs were amortised.
    from ..engine.arena_cache import get_arena_cache

    probe["arena_cache"] = get_arena_cache().stats()
    return probe


def run(settings: ExperimentSettings | None = None, fractions=DEFAULT_FRACTIONS) -> dict:
    """Train on increasing fractions of the database and evaluate on all of it."""
    settings = settings or ExperimentSettings()
    dataset, truth = prepare_experiment(settings)
    results: dict[str, list[dict]] = {"original": [], "fusion-dist": []}

    for fraction in fractions:
        train_count = max(int(round(fraction * len(dataset))), 4)
        train_indices = list(range(train_count))
        train_dataset = dataset.subset(train_indices)
        train_truth = truth[np.ix_(train_indices, train_indices)]
        for variant in results:
            encoder_cls = get_model(settings.model)
            encoder = encoder_cls.build(dataset, embedding_dim=settings.embedding_dim,
                                        hidden_dim=settings.hidden_dim, seed=settings.seed)
            plugin = make_plugin(settings, variant)
            trainer = SimilarityTrainer(encoder, plugin=plugin,
                                        learning_rate=settings.learning_rate,
                                        batch_size=settings.batch_size,
                                        num_nearest=settings.num_nearest,
                                        num_random=settings.num_random, seed=settings.seed)
            trainer.fit(train_dataset, train_truth, epochs=settings.epochs)
            predicted = trainer.model_distance_matrix(dataset)
            metrics = evaluate_retrieval(predicted, truth, hr_ks=settings.hr_ks,
                                         ndcg_ks=settings.ndcg_ks)
            results[variant].append({"fraction": fraction, "train_size": train_count,
                                     "metrics": metrics})
    return {"settings": settings, "fractions": list(fractions), "results": results,
            "search_probe": _search_probe(settings, dataset)}


def format_result(result: dict, metric: str = "hr@10") -> str:
    """Render the Figure 6 analogue: one metric as a function of the training fraction."""
    available = result["results"]["original"][0]["metrics"]
    if metric not in available:
        metric = next(iter(available))
    headers = ["training fraction", "train size", f"original {metric}", f"LH-plugin {metric}"]
    rows = []
    for index, fraction in enumerate(result["fractions"]):
        original = result["results"]["original"][index]
        plugin = result["results"]["fusion-dist"][index]
        rows.append([
            f"{int(fraction * 100)}%",
            original["train_size"],
            format_float(original["metrics"][metric], 4),
            format_float(plugin["metrics"][metric], 4),
        ])
    table = format_table(headers, rows, title="Figure 6: scalability with training-data size")
    probe = result.get("search_probe")
    if probe:
        table += (f"\nsearch probe ({probe['measure']}, k={probe['k']}, "
                  f"{probe['num_queries']} queries over {probe['database_size']}): "
                  f"{probe['latency_per_query_seconds'] * 1e3:.2f} ms/query, "
                  f"{probe['pruned_fraction'] * 100:.0f}% of candidates pruned "
                  f"by lower bounds")
    return table
