"""Figure 5 — RVS distribution: ground truth vs Euclidean vs Fusion distance.

Triplets that violate the triangle inequality under the ground-truth measure are
collected; for each, the Relative Violation Scale (RVS) is computed on (a) the ground
truth, (b) the original model's Euclidean embedding distances and (c) the LH-plugin's
fusion distances.  Expected shape: the ground-truth RVS mass is on the positive
half-axis, the Euclidean RVS mass is almost entirely negative (the embedding cannot
violate the inequality), and the fusion RVS shifts toward the positive half-axis,
approaching the ground truth.
"""

from __future__ import annotations

import numpy as np

from ..violation import relative_violation_scale, sample_violating_triplets
from .reporting import format_float, format_table
from .runner import ExperimentSettings, prepare_experiment, train_variant

__all__ = ["run", "format_result"]


def _rvs_values(matrix: np.ndarray, triplets) -> np.ndarray:
    return np.array([relative_violation_scale(matrix, *triplet) for triplet in triplets])


def run(settings: ExperimentSettings | None = None, max_triplets: int = 4000,
        max_violating: int = 400, num_bins: int = 20) -> dict:
    """Collect RVS distributions for ground truth, Euclidean and fusion distances."""
    settings = settings or ExperimentSettings()
    dataset, truth = prepare_experiment(settings)
    triplets = sample_violating_triplets(truth, max_triplets=max_triplets,
                                         limit=max_violating, seed=settings.seed)
    if not triplets:
        raise RuntimeError("no violating triplets found; increase the dataset size")

    original = train_variant(settings, dataset, truth, "original")
    plugin = train_variant(settings, dataset, truth, "fusion-dist")

    distributions = {
        "ground_truth": _rvs_values(truth, triplets),
        "euclidean": _rvs_values(original["predicted_matrix"], triplets),
        "fusion": _rvs_values(plugin["predicted_matrix"], triplets),
    }
    all_values = np.concatenate(list(distributions.values()))
    bin_edges = np.linspace(all_values.min(), all_values.max(), num_bins + 1)
    histograms = {name: np.histogram(values, bins=bin_edges)[0].tolist()
                  for name, values in distributions.items()}
    summary = {name: {
        "mean_rvs": float(values.mean()),
        "fraction_positive": float((values > 0).mean()),
    } for name, values in distributions.items()}

    return {
        "settings": settings,
        "num_triplets": len(triplets),
        "bin_edges": bin_edges.tolist(),
        "histograms": histograms,
        "summary": summary,
    }


def format_result(result: dict) -> str:
    """Render the Figure 5 analogue as distribution summary statistics."""
    headers = ["distance", "mean RVS", "fraction RVS > 0"]
    rows = []
    for name in ("ground_truth", "euclidean", "fusion"):
        summary = result["summary"][name]
        rows.append([name, format_float(summary["mean_rvs"], 4),
                     format_float(summary["fraction_positive"], 3)])
    title = (f"Figure 5: RVS distribution over {result['num_triplets']} violating triplets "
             "(ground truth vs Euclidean vs Fusion)")
    return format_table(headers, rows, title=title)
