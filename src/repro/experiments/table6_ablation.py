"""Table VI — incremental ablation: original → lh-vanilla → lh-cosh → fusion-dist.

For one base model and each similarity measure, the four variants are trained with
identical data and seeds.  Expected shape: accuracy is (mostly) monotone along the
chain — the Lorentz distance helps, the cosh projection helps more, and the dynamic
fusion distance is best.
"""

from __future__ import annotations

from dataclasses import replace

from .reporting import format_float, format_table
from .runner import ExperimentSettings, VARIANTS, prepare_experiment, train_variant

__all__ = ["run", "format_result"]

DEFAULT_MEASURES = ("dtw", "sspd", "edr")
METRIC_KEYS = ("hr@5", "hr@10", "hr@50")


def run(settings: ExperimentSettings | None = None, measures=DEFAULT_MEASURES,
        variants=VARIANTS) -> dict:
    """Train every ablation variant for each measure."""
    settings = settings or ExperimentSettings()
    results: dict = {}
    for measure in measures:
        cell_settings = replace(settings, measure=measure)
        dataset, truth = prepare_experiment(cell_settings)
        results[measure] = {}
        for variant in variants:
            outcome = train_variant(cell_settings, dataset, truth, variant)
            results[measure][variant] = outcome["metrics"]
    return {
        "settings": settings,
        "measures": list(measures),
        "variants": list(variants),
        "results": results,
    }


def format_result(result: dict) -> str:
    """Render the Table VI analogue."""
    first_cell = result["results"][result["measures"][0]][result["variants"][0]]
    metric_keys = [key for key in METRIC_KEYS if key in first_cell] or list(first_cell)
    headers = ["measure", "metric", *result["variants"]]
    rows = []
    for measure in result["measures"]:
        for metric in metric_keys:
            row = [measure.upper(), metric]
            for variant in result["variants"]:
                row.append(format_float(result["results"][measure][variant][metric], 4))
            rows.append(row)
    return format_table(headers, rows,
                        title=f"Table VI: ablation of the LH-plugin ({result['settings'].model})")
