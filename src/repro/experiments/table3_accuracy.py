"""Table III — retrieval accuracy of spatial models with and without the LH-plugin.

For every (dataset preset, base model, similarity measure) the harness trains the
original Euclidean pipeline and the full LH-plugin variant and reports HR@5/10/50 and
NDCG@10/50 plus the relative improvement.  Expected shape versus the paper: the
plugin improves accuracy on almost every cell, with the largest relative gains on
DTW (the most violation-prone measure).
"""

from __future__ import annotations

from dataclasses import replace

from .reporting import format_percent, format_table, percent_increase
from .runner import ExperimentSettings, prepare_experiment, train_variant

__all__ = ["run", "format_result"]

DEFAULT_MODELS = ("neutraj", "trajgat", "traj2simvec")
DEFAULT_MEASURES = ("dtw", "sspd", "edr")
DEFAULT_PRESETS = ("chengdu",)
METRIC_KEYS = ("hr@5", "hr@10", "hr@50", "ndcg@10", "ndcg@50")


def run(settings: ExperimentSettings | None = None, models=DEFAULT_MODELS,
        measures=DEFAULT_MEASURES, presets=DEFAULT_PRESETS) -> dict:
    """Train original vs LH-plugin for every (preset, model, measure) cell."""
    settings = settings or ExperimentSettings()
    results: dict = {}
    for preset in presets:
        results[preset] = {}
        for model in models:
            results[preset][model] = {}
            for measure in measures:
                cell_settings = replace(settings, preset=preset, model=model, measure=measure)
                dataset, truth = prepare_experiment(cell_settings)
                original = train_variant(cell_settings, dataset, truth, "original")
                plugin = train_variant(cell_settings, dataset, truth, "fusion-dist")
                results[preset][model][measure] = {
                    "original": original["metrics"],
                    "lh-plugin": plugin["metrics"],
                }
    return {
        "settings": settings,
        "presets": list(presets),
        "models": list(models),
        "measures": list(measures),
        "results": results,
    }


def format_result(result: dict) -> str:
    """Render the Table III analogue (one block of rows per preset/model/measure)."""
    first_cell = result["results"][result["presets"][0]][result["models"][0]][result["measures"][0]]
    metric_keys = [key for key in METRIC_KEYS if key in first_cell["original"]]
    metric_keys = metric_keys or list(first_cell["original"])
    headers = ["dataset", "model", "measure", "variant", *metric_keys]
    rows = []
    for preset in result["presets"]:
        for model in result["models"]:
            for measure in result["measures"]:
                cell = result["results"][preset][model][measure]
                original = cell["original"]
                plugin = cell["lh-plugin"]
                rows.append([preset, model, measure.upper(), "original",
                             *[f"{original[key]:.4f}" for key in metric_keys]])
                rows.append(["", "", "", "LH-plugin",
                             *[f"{plugin[key]:.4f}" for key in metric_keys]])
                rows.append(["", "", "", "%increase",
                             *[format_percent(percent_increase(original[key], plugin[key]))
                               for key in metric_keys]])
    return format_table(headers, rows,
                        title="Table III: accuracy of spatial models, original vs LH-plugin")
