"""Centralized parsing of ``REPRO_*`` environment knobs.

Every layer of the stack is configured through environment variables
(``REPRO_ENGINE_CHUNK_BYTES``, ``REPRO_SEARCH_CACHE_TTL``, ...).  Before this
module each call site ran its own ``int(os.environ[...])`` — a malformed value
surfaced as a bare ``ValueError: invalid literal for int()`` traceback at
first use, with nothing naming the variable that caused it.  The helpers here
parse once with error messages that always name the offending variable and
the expected shape, raising :class:`EnvError` (a ``ValueError`` subclass, so
existing ``pytest.raises(ValueError)`` pins and caller ``except`` clauses
keep working).

Conventions shared by every knob:

* an unset or empty/whitespace variable means "use the default";
* ``minimum=`` bounds are inclusive and produce a clear out-of-range message
  (knobs whose docs say "``<= 0`` disables" simply do not pass a minimum and
  interpret the sign themselves);
* nothing is cached — knobs are read at each construction site, so tests can
  monkeypatch the environment freely.
"""

from __future__ import annotations

import os

__all__ = ["EnvError", "env_raw", "env_int", "env_float", "env_flag"]


class EnvError(ValueError):
    """A ``REPRO_*`` environment variable holds a value that cannot be parsed.

    Subclasses :class:`ValueError` so callers (and tests) that predate the
    centralized parser keep catching what they always caught; the message
    always names the variable.
    """


def env_raw(name: str) -> str | None:
    """The stripped value of ``name``, or None when unset/blank."""
    value = os.environ.get(name)
    if value is None:
        return None
    value = value.strip()
    return value if value else None


def _out_of_range(name: str, raw: str, minimum) -> EnvError:
    return EnvError(f"{name} must be at least {minimum}, got {raw!r}")


def env_int(name: str, default: int | None = None, *,
            minimum: int | None = None) -> int | None:
    """``name`` parsed as an integer (``default`` when unset/blank).

    ``minimum`` is inclusive; a value below it raises :class:`EnvError`, as
    does anything ``int()`` cannot parse.
    """
    raw = env_raw(name)
    if raw is None:
        return default
    try:
        parsed = int(raw)
    except ValueError:
        raise EnvError(f"{name} must be an integer"
                       f"{f' >= {minimum}' if minimum is not None else ''}, "
                       f"got {raw!r}") from None
    if minimum is not None and parsed < minimum:
        raise _out_of_range(name, raw, minimum)
    return parsed


def env_float(name: str, default: float | None = None, *,
              minimum: float | None = None) -> float | None:
    """``name`` parsed as a float (``default`` when unset/blank).

    Rejects NaN outright — no knob in this codebase has a meaningful NaN
    setting, and NaN would slip through any ``minimum`` comparison.
    """
    raw = env_raw(name)
    if raw is None:
        return default
    try:
        parsed = float(raw)
    except ValueError:
        raise EnvError(f"{name} must be a number"
                       f"{f' >= {minimum}' if minimum is not None else ''}, "
                       f"got {raw!r}") from None
    if parsed != parsed:  # NaN
        raise EnvError(f"{name} must be a number, got {raw!r}")
    if minimum is not None and parsed < minimum:
        raise _out_of_range(name, raw, minimum)
    return parsed


_FLAG_VALUES = {
    "1": True, "true": True, "yes": True, "on": True,
    "0": False, "false": False, "no": False, "off": False,
}


def env_flag(name: str, default: bool = False) -> bool:
    """``name`` parsed as a boolean flag (``1/true/yes/on`` vs ``0/false/no/off``)."""
    raw = env_raw(name)
    if raw is None:
        return default
    try:
        return _FLAG_VALUES[raw.lower()]
    except KeyError:
        raise EnvError(f"{name} must be a boolean flag "
                       f"(one of {sorted(_FLAG_VALUES)}), got {raw!r}") from None
