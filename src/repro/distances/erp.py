"""Edit distance with Real Penalty (ERP), Chen & Ng (VLDB 2004).

ERP aligns two sequences like an edit distance but charges real-valued penalties:
a gap is charged the distance to a fixed reference point ``g`` (the origin by
default), a substitution is charged the inter-point distance.  Unlike DTW/EDR, ERP is
a true metric, which makes it a useful control in triangle-violation experiments.
"""

from __future__ import annotations

import numpy as np

from .base import as_points, point_distance_matrix, register_distance

__all__ = ["erp_distance"]


@register_distance("erp", is_metric=True)
def erp_distance(trajectory_a, trajectory_b, gap=None) -> float:
    """ERP distance with reference (gap) point ``gap`` (defaults to the origin)."""
    a = as_points(trajectory_a)
    b = as_points(trajectory_b)
    gap_point = np.zeros(2) if gap is None else np.asarray(gap, dtype=np.float64)[:2]

    gap_cost_a = np.sqrt(((a - gap_point) ** 2).sum(axis=1))
    gap_cost_b = np.sqrt(((b - gap_point) ** 2).sum(axis=1))
    cost = point_distance_matrix(a, b)

    n, m = len(a), len(b)
    table = np.zeros((n + 1, m + 1))
    table[1:, 0] = np.cumsum(gap_cost_a)
    table[0, 1:] = np.cumsum(gap_cost_b)
    for i in range(1, n + 1):
        previous = table[i - 1]
        current = table[i]
        for j in range(1, m + 1):
            current[j] = min(
                previous[j - 1] + cost[i - 1, j - 1],
                previous[j] + gap_cost_a[i - 1],
                current[j - 1] + gap_cost_b[j - 1],
            )
    return float(table[n, m])
