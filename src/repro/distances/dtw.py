"""Dynamic Time Warping (DTW) trajectory distance.

DTW aligns the two point sequences with a monotone warping path and sums the point
distances along the optimal alignment (Formula 1 of the paper).  It does not satisfy
the triangle inequality, which is the central premise of the LH-plugin.
"""

from __future__ import annotations

import numpy as np

from .base import as_points, point_distance_matrix, register_distance

__all__ = ["dtw_distance", "dtw_distance_with_path"]


def _dtw_table(cost: np.ndarray) -> np.ndarray:
    """Fill the DTW dynamic-programming table for a point-cost matrix."""
    n, m = cost.shape
    table = np.full((n + 1, m + 1), np.inf)
    table[0, 0] = 0.0
    for i in range(1, n + 1):
        row_cost = cost[i - 1]
        previous = table[i - 1]
        current = table[i]
        for j in range(1, m + 1):
            best = min(previous[j], current[j - 1], previous[j - 1])
            current[j] = row_cost[j - 1] + best
    return table


@register_distance("dtw", is_metric=False)
def dtw_distance(trajectory_a, trajectory_b, band: int | None = None) -> float:
    """DTW distance between two trajectories (sum-of-costs formulation).

    ``band`` restricts the warping path to the Sakoe–Chiba band ``|i − j| ≤ band``
    (widened to ``|n − m|`` when the lengths differ by more), matching the
    vectorized kernel's banded mode so both implementations accept the same
    keyword arguments.
    """
    a = as_points(trajectory_a)
    b = as_points(trajectory_b)
    cost = point_distance_matrix(a, b)
    n, m = cost.shape
    if band is None:
        return float(_dtw_table(cost)[n, m])
    radius = max(int(band), abs(n - m))
    table = np.full((n + 1, m + 1), np.inf)
    table[0, 0] = 0.0
    for i in range(1, n + 1):
        row_cost = cost[i - 1]
        previous = table[i - 1]
        current = table[i]
        for j in range(max(1, i - radius), min(m, i + radius) + 1):
            best = min(previous[j], current[j - 1], previous[j - 1])
            current[j] = row_cost[j - 1] + best
    return float(table[n, m])


def dtw_distance_with_path(trajectory_a, trajectory_b) -> tuple[float, list[tuple[int, int]]]:
    """DTW distance together with the optimal warping path (for diagnostics)."""
    a = as_points(trajectory_a)
    b = as_points(trajectory_b)
    cost = point_distance_matrix(a, b)
    table = _dtw_table(cost)
    i, j = len(a), len(b)
    path = [(i - 1, j - 1)]
    while (i, j) != (1, 1):
        moves = [
            (table[i - 1, j - 1], i - 1, j - 1),
            (table[i - 1, j], i - 1, j),
            (table[i, j - 1], i, j - 1),
        ]
        _, i, j = min(moves, key=lambda item: item[0])
        path.append((i - 1, j - 1))
    path.reverse()
    return float(table[len(a), len(b)]), path
