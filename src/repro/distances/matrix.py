"""Pairwise ground-truth distance matrices and nearest-neighbour extraction.

Similarity-learning experiments need the full matrix of trajectory distances for the
training set (to supervise the encoder) and for query/database splits (to define the
retrieval ground truth).  These helpers compute such matrices for any registered
distance measure and derive k-nearest-neighbour lists from them.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from .base import get_distance

__all__ = [
    "pairwise_distance_matrix",
    "cross_distance_matrix",
    "knn_from_matrix",
    "normalize_matrix",
]


def _resolve(measure) -> Callable:
    if callable(measure):
        return measure
    return get_distance(measure)


def pairwise_distance_matrix(trajectories: Sequence, measure="dtw",
                             **measure_kwargs) -> np.ndarray:
    """Symmetric matrix of distances between every pair of ``trajectories``."""
    distance = _resolve(measure)
    n = len(trajectories)
    matrix = np.zeros((n, n))
    for i in range(n):
        for j in range(i + 1, n):
            value = distance(trajectories[i], trajectories[j], **measure_kwargs)
            matrix[i, j] = value
            matrix[j, i] = value
    return matrix


def cross_distance_matrix(queries: Sequence, database: Sequence, measure="dtw",
                          **measure_kwargs) -> np.ndarray:
    """Matrix of distances from every query to every database trajectory."""
    distance = _resolve(measure)
    matrix = np.zeros((len(queries), len(database)))
    for i, query in enumerate(queries):
        for j, candidate in enumerate(database):
            matrix[i, j] = distance(query, candidate, **measure_kwargs)
    return matrix


def knn_from_matrix(matrix: np.ndarray, k: int, exclude_self: bool = False) -> np.ndarray:
    """Indices of the ``k`` nearest columns for every row of a distance matrix.

    Parameters
    ----------
    matrix:
        (n_queries, n_database) distance matrix.
    k:
        Number of neighbours to return per row.
    exclude_self:
        If True the diagonal entry (same index) is removed from each row's candidates,
        which is the convention when queries are drawn from the database itself.
    """
    matrix = np.asarray(matrix, dtype=np.float64)
    if k <= 0:
        raise ValueError("k must be positive")
    working = matrix.copy()
    if exclude_self:
        limit = min(working.shape)
        working[np.arange(limit), np.arange(limit)] = np.inf
    order = np.argsort(working, axis=1, kind="stable")
    return order[:, :k]


def normalize_matrix(matrix: np.ndarray, method: str = "mean") -> np.ndarray:
    """Scale a distance matrix so the learning targets are well conditioned.

    ``"mean"`` divides by the mean off-diagonal distance, ``"max"`` by the maximum,
    and ``"none"`` returns a copy unchanged.
    """
    matrix = np.asarray(matrix, dtype=np.float64)
    if method == "none":
        return matrix.copy()
    off_diagonal = matrix[~np.eye(matrix.shape[0], M=matrix.shape[1], dtype=bool)] \
        if matrix.shape[0] == matrix.shape[1] else matrix.ravel()
    if method == "mean":
        scale = off_diagonal.mean()
    elif method == "max":
        scale = off_diagonal.max()
    else:
        raise ValueError(f"unknown normalisation method '{method}'")
    if scale <= 0:
        return matrix.copy()
    return matrix / scale
