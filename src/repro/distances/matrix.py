"""Pairwise ground-truth distance matrices and nearest-neighbour extraction.

Similarity-learning experiments need the full matrix of trajectory distances for the
training set (to supervise the encoder) and for query/database splits (to define the
retrieval ground truth).  These helpers compute such matrices for any registered
distance measure and derive k-nearest-neighbour lists from them.

Matrix construction is delegated to the compute engine (:mod:`repro.engine`): the
functions here are thin wrappers that keep the historical signatures while routing
through the process-wide default engine, or through an explicit ``engine`` argument
when the caller wants a specific execution strategy or cache.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = [
    "pairwise_distance_matrix",
    "cross_distance_matrix",
    "knn_from_matrix",
    "normalize_matrix",
]


def _resolve_engine(engine):
    if engine is not None:
        return engine
    # Imported lazily: repro.engine depends on repro.distances.base, so a module-level
    # import here would cycle during package initialisation.
    from ..engine import get_default_engine

    return get_default_engine()


def pairwise_distance_matrix(trajectories: Sequence, measure="dtw", engine=None,
                             **measure_kwargs) -> np.ndarray:
    """Symmetric matrix of distances between every pair of ``trajectories``."""
    return _resolve_engine(engine).pairwise(trajectories, measure, **measure_kwargs)


def cross_distance_matrix(queries: Sequence, database: Sequence, measure="dtw",
                          engine=None, **measure_kwargs) -> np.ndarray:
    """Matrix of distances from every query to every database trajectory."""
    return _resolve_engine(engine).cross(queries, database, measure, **measure_kwargs)


def knn_from_matrix(matrix: np.ndarray, k: int, exclude_self: bool = False) -> np.ndarray:
    """Indices of the ``k`` nearest columns for every row of a distance matrix.

    Tie-breaking is deterministic: equal distances are ordered by ascending column
    index (the sort is a stable argsort).  ``repro.search.knn_search`` guarantees
    the identical ``(distance, index)`` order, so exact-search parity tests compare
    index arrays directly without tolerance games.

    Parameters
    ----------
    matrix:
        (n_queries, n_database) distance matrix.
    k:
        Number of neighbours to return per row.  Must not exceed the number of
        available candidates (columns, minus one when ``exclude_self`` removes the
        diagonal) — silently returning fewer columns used to corrupt downstream
        HR@k denominators on small matrices.
    exclude_self:
        If True the diagonal entry (same index) is removed from each row's candidates,
        which is the convention when queries are drawn from the database itself.
    """
    matrix = np.asarray(matrix, dtype=np.float64)
    if k <= 0:
        raise ValueError("k must be positive")
    candidates = matrix.shape[1] - (1 if exclude_self else 0)
    if k > candidates:
        raise ValueError(
            f"k={k} exceeds the {candidates} available candidates "
            f"({matrix.shape[1]} columns{', diagonal excluded' if exclude_self else ''})"
        )
    working = matrix.copy()
    if exclude_self:
        limit = min(working.shape)
        working[np.arange(limit), np.arange(limit)] = np.inf
    # kind="stable" is load-bearing: it pins the tie order documented above.
    order = np.argsort(working, axis=1, kind="stable")
    return order[:, :k]


def normalize_matrix(matrix: np.ndarray, method: str = "mean") -> np.ndarray:
    """Scale a distance matrix so the learning targets are well conditioned.

    ``"mean"`` divides by the mean off-diagonal distance, ``"max"`` by the maximum,
    and ``"none"`` returns a copy unchanged.
    """
    matrix = np.asarray(matrix, dtype=np.float64)
    if method == "none":
        return matrix.copy()
    off_diagonal = matrix[~np.eye(matrix.shape[0], M=matrix.shape[1], dtype=bool)] \
        if matrix.shape[0] == matrix.shape[1] else matrix.ravel()
    if method == "mean":
        scale = off_diagonal.mean()
    elif method == "max":
        scale = off_diagonal.max()
    else:
        raise ValueError(f"unknown normalisation method '{method}'")
    if scale <= 0:
        return matrix.copy()
    return matrix / scale
