"""Discrete Fréchet distance (Eiter & Mannila, 1994).

The discrete Fréchet distance is the minimum, over all monotone couplings of the two
point sequences, of the maximum point distance in the coupling ("dog-leash" distance
on the sampled points).  It is a metric and appears in the paper's spatio-temporal
evaluation (Table IV) as "discrete Fréchet".
"""

from __future__ import annotations

import numpy as np

from .base import as_points, point_distance_matrix, register_distance

__all__ = ["discrete_frechet_distance"]


@register_distance("frechet", is_metric=True)
def discrete_frechet_distance(trajectory_a, trajectory_b) -> float:
    """Discrete Fréchet distance between two trajectories."""
    a = as_points(trajectory_a)
    b = as_points(trajectory_b)
    cost = point_distance_matrix(a, b)
    n, m = cost.shape
    table = np.full((n, m), np.inf)
    table[0, 0] = cost[0, 0]
    for j in range(1, m):
        table[0, j] = max(table[0, j - 1], cost[0, j])
    for i in range(1, n):
        table[i, 0] = max(table[i - 1, 0], cost[i, 0])
        previous = table[i - 1]
        current = table[i]
        row_cost = cost[i]
        for j in range(1, m):
            reachable = min(previous[j], previous[j - 1], current[j - 1])
            current[j] = max(reachable, row_cost[j])
    return float(table[n - 1, m - 1])
