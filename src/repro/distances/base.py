"""Shared utilities and the distance-function registry.

Every trajectory distance in this package accepts two trajectories given as
``(n, 2)`` (or ``(n, 3)`` for spatio-temporal measures) NumPy arrays of
``(lon, lat[, t])`` rows and returns a non-negative float.  Functions are
registered by name so experiments can be parameterised with strings
(``"dtw"``, ``"sspd"``, ...), matching how the paper tabulates results per
similarity measure.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

__all__ = [
    "as_points",
    "point_distance_matrix",
    "register_distance",
    "get_distance",
    "available_distances",
    "register_kernel",
    "get_kernel",
    "available_kernels",
    "METRIC_PROPERTIES",
]

DistanceFunction = Callable[[np.ndarray, np.ndarray], float]

_REGISTRY: dict[str, DistanceFunction] = {}

#: Vectorized (wavefront / broadcast) kernels living alongside the reference
#: implementations.  A kernel shares the reference function's signature and must
#: be numerically interchangeable with it (the engine parity suite enforces a
#: 1e-9 agreement); the compute engine prefers a kernel when one is registered.
#: Kernels may additionally accept an optional ``threshold`` keyword (their
#: batch twins a ``thresholds`` vector): a per-pair abandon threshold, under
#: which the kernel may return ``+inf`` instead of the exact value — but only
#: when the exact value provably exceeds the threshold.  A finite return is
#: always the exact distance.
_KERNEL_REGISTRY: dict[str, DistanceFunction] = {}

#: Which registered measures are true metrics (satisfy the triangle inequality).
#: DTW, SSPD and EDR famously do not; Hausdorff and discrete Fréchet do.
METRIC_PROPERTIES: dict[str, bool] = {}


def as_points(trajectory, spatial_only: bool = True) -> np.ndarray:
    """Coerce a trajectory to a 2-D float array of points.

    Parameters
    ----------
    trajectory:
        Sequence of points or an object exposing ``.points``.
    spatial_only:
        If True, only the first two columns (lon, lat) are returned.
    """
    points = getattr(trajectory, "points", trajectory)
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2 or points.shape[0] == 0:
        raise ValueError("a trajectory must be a non-empty (n, d) array of points")
    if points.shape[1] < 2:
        raise ValueError("trajectory points need at least lon and lat columns")
    if spatial_only:
        return points[:, :2]
    return points


def point_distance_matrix(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Dense matrix of Euclidean distances between every point of ``a`` and ``b``."""
    diff = a[:, None, :] - b[None, :, :]
    return np.sqrt((diff ** 2).sum(axis=-1))


def register_distance(name: str, is_metric: bool = False):
    """Decorator registering a distance function under ``name``."""

    def decorator(func: DistanceFunction) -> DistanceFunction:
        key = name.lower()
        if key in _REGISTRY:
            raise KeyError(f"distance '{name}' already registered")
        _REGISTRY[key] = func
        METRIC_PROPERTIES[key] = is_metric
        return func

    return decorator


def get_distance(name: str) -> DistanceFunction:
    """Look up a registered distance function by name (case-insensitive)."""
    key = name.lower()
    if key not in _REGISTRY:
        raise KeyError(f"unknown distance '{name}'; available: {sorted(_REGISTRY)}")
    return _REGISTRY[key]


def available_distances() -> list[str]:
    """Names of every registered distance function."""
    return sorted(_REGISTRY)


def register_kernel(name: str):
    """Decorator registering a vectorized kernel for the measure ``name``.

    The measure itself does not need to be registered yet (kernel modules may be
    imported before the reference implementations), but the names must agree for
    the engine to pair them up.
    """

    def decorator(func: DistanceFunction) -> DistanceFunction:
        key = name.lower()
        if key in _KERNEL_REGISTRY:
            raise KeyError(f"kernel for '{name}' already registered")
        _KERNEL_REGISTRY[key] = func
        return func

    return decorator


def get_kernel(name: str) -> DistanceFunction | None:
    """Vectorized kernel for ``name``, or None when only the reference exists."""
    return _KERNEL_REGISTRY.get(name.lower())


def available_kernels() -> list[str]:
    """Names of every measure that has a vectorized kernel."""
    return sorted(_KERNEL_REGISTRY)
