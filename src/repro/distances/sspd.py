"""Symmetrised Segment-Path Distance (SSPD).

Besse et al. (2015) define SSPD as the mean, over the points of one trajectory, of the
distance from each point to the other trajectory's polyline (point-to-segment
distance), symmetrised by averaging both directions.  SSPD is shape-based (no point
alignment) and does not satisfy the triangle inequality.
"""

from __future__ import annotations

import numpy as np

from .base import as_points, register_distance

__all__ = ["sspd_distance", "point_to_trajectory_distance"]


def _point_to_segments(point: np.ndarray, starts: np.ndarray, ends: np.ndarray) -> float:
    """Minimum distance from ``point`` to any of the segments ``starts[i]→ends[i]``."""
    segment = ends - starts
    length_sq = (segment ** 2).sum(axis=1)
    # Degenerate (zero-length) segments collapse to their start point.
    safe_length = np.where(length_sq > 0.0, length_sq, 1.0)
    t = ((point - starts) * segment).sum(axis=1) / safe_length
    t = np.clip(t, 0.0, 1.0)
    projection = starts + t[:, None] * segment
    projection = np.where(length_sq[:, None] > 0.0, projection, starts)
    distances = np.sqrt(((point - projection) ** 2).sum(axis=1))
    return float(distances.min())


def point_to_trajectory_distance(point, trajectory) -> float:
    """Distance from a single point to the polyline of ``trajectory``."""
    points = as_points(trajectory)
    point = np.asarray(point, dtype=np.float64)[:2]
    if len(points) == 1:
        return float(np.sqrt(((point - points[0]) ** 2).sum()))
    return _point_to_segments(point, points[:-1], points[1:])


def _one_sided_spd(a: np.ndarray, b: np.ndarray) -> float:
    """Mean distance of every point of ``a`` to the polyline of ``b``."""
    if len(b) == 1:
        return float(np.sqrt(((a - b[0]) ** 2).sum(axis=1)).mean())
    starts, ends = b[:-1], b[1:]
    return float(np.mean([_point_to_segments(p, starts, ends) for p in a]))


@register_distance("sspd", is_metric=False)
def sspd_distance(trajectory_a, trajectory_b) -> float:
    """Symmetrised segment-path distance between two trajectories."""
    a = as_points(trajectory_a)
    b = as_points(trajectory_b)
    return 0.5 * (_one_sided_spd(a, b) + _one_sided_spd(b, a))
