"""Longest Common Sub-Sequence (LCSS) based trajectory distance.

Two points match when both coordinate differences are below ``epsilon``.  The LCSS
similarity is the length of the longest common subsequence; the derived distance is
``1 − LCSS / min(n, m)``, which lies in ``[0, 1]`` and is robust to outliers but not a
metric.
"""

from __future__ import annotations

import numpy as np

from .base import as_points, register_distance

__all__ = ["lcss_similarity", "lcss_distance"]


def lcss_similarity(trajectory_a, trajectory_b, epsilon: float = 0.25) -> int:
    """Length of the longest common subsequence under the ``epsilon`` matching rule."""
    if epsilon <= 0:
        raise ValueError("epsilon must be positive")
    a = as_points(trajectory_a)
    b = as_points(trajectory_b)
    match = (np.abs(a[:, None, :] - b[None, :, :]) <= epsilon).all(axis=-1)
    n, m = len(a), len(b)
    table = np.zeros((n + 1, m + 1), dtype=np.int64)
    for i in range(1, n + 1):
        previous = table[i - 1]
        current = table[i]
        row_match = match[i - 1]
        for j in range(1, m + 1):
            if row_match[j - 1]:
                current[j] = previous[j - 1] + 1
            else:
                current[j] = max(previous[j], current[j - 1])
    return int(table[n, m])


@register_distance("lcss", is_metric=False)
def lcss_distance(trajectory_a, trajectory_b, epsilon: float = 0.25) -> float:
    """LCSS distance ``1 − LCSS/min(n, m)`` in ``[0, 1]``."""
    a = as_points(trajectory_a)
    b = as_points(trajectory_b)
    common = lcss_similarity(a, b, epsilon=epsilon)
    return 1.0 - common / min(len(a), len(b))
