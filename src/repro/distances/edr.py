"""Edit Distance on Real sequences (EDR), Chen et al. (SIGMOD 2005).

EDR counts the minimum number of edit operations (insert, delete, substitute) needed
to transform one point sequence into the other, where two points "match" (cost 0)
when both coordinates are within ``epsilon``.  EDR tolerates noise but violates the
triangle inequality.
"""

from __future__ import annotations

import numpy as np

from .base import as_points, register_distance

__all__ = ["edr_distance", "edr_distance_normalized"]


def _edr_table(a: np.ndarray, b: np.ndarray, epsilon: float) -> np.ndarray:
    n, m = len(a), len(b)
    match = (np.abs(a[:, None, :] - b[None, :, :]) <= epsilon).all(axis=-1)
    table = np.zeros((n + 1, m + 1))
    table[:, 0] = np.arange(n + 1)
    table[0, :] = np.arange(m + 1)
    for i in range(1, n + 1):
        previous = table[i - 1]
        current = table[i]
        row_match = match[i - 1]
        for j in range(1, m + 1):
            substitution = previous[j - 1] + (0.0 if row_match[j - 1] else 1.0)
            current[j] = min(substitution, previous[j] + 1.0, current[j - 1] + 1.0)
    return table


@register_distance("edr", is_metric=False)
def edr_distance(trajectory_a, trajectory_b, epsilon: float = 0.25) -> float:
    """EDR distance with matching threshold ``epsilon`` (in coordinate units)."""
    if epsilon <= 0:
        raise ValueError("epsilon must be positive")
    a = as_points(trajectory_a)
    b = as_points(trajectory_b)
    return float(_edr_table(a, b, epsilon)[len(a), len(b)])


def edr_distance_normalized(trajectory_a, trajectory_b, epsilon: float = 0.25) -> float:
    """EDR divided by the longer sequence length, in ``[0, 1]``."""
    a = as_points(trajectory_a)
    b = as_points(trajectory_b)
    return float(_edr_table(a, b, epsilon)[len(a), len(b)]) / max(len(a), len(b))
