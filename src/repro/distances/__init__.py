"""``repro.distances`` — trajectory similarity / distance measures.

Spatial measures: DTW, SSPD, EDR, ERP, LCSS, Hausdorff, discrete Fréchet.
Spatio-temporal measures: TP, DITA.
Helpers: pairwise/cross distance matrices, k-NN ground truth, registry lookup.
"""

from .base import (
    as_points,
    point_distance_matrix,
    register_distance,
    get_distance,
    available_distances,
    register_kernel,
    get_kernel,
    available_kernels,
    METRIC_PROPERTIES,
)
from .dtw import dtw_distance, dtw_distance_with_path
from .sspd import sspd_distance, point_to_trajectory_distance
from .edr import edr_distance, edr_distance_normalized
from .erp import erp_distance
from .lcss import lcss_distance, lcss_similarity
from .hausdorff import hausdorff_distance, directed_hausdorff_distance
from .frechet import discrete_frechet_distance
from .spatiotemporal import tp_distance, dita_distance, spatiotemporal_point_cost
from .matrix import (
    pairwise_distance_matrix,
    cross_distance_matrix,
    knn_from_matrix,
    normalize_matrix,
)

__all__ = [
    "as_points", "point_distance_matrix", "register_distance", "get_distance",
    "available_distances", "register_kernel", "get_kernel", "available_kernels",
    "METRIC_PROPERTIES",
    "dtw_distance", "dtw_distance_with_path",
    "sspd_distance", "point_to_trajectory_distance",
    "edr_distance", "edr_distance_normalized",
    "erp_distance",
    "lcss_distance", "lcss_similarity",
    "hausdorff_distance", "directed_hausdorff_distance",
    "discrete_frechet_distance",
    "tp_distance", "dita_distance", "spatiotemporal_point_cost",
    "pairwise_distance_matrix", "cross_distance_matrix", "knn_from_matrix",
    "normalize_matrix",
]
