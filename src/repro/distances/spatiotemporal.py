"""Spatio-temporal trajectory distances: TP and DITA.

The paper's Table IV evaluates ST2Vec and Tedj against three spatio-temporal ground
truths: TP, DITA and the discrete Fréchet distance.  TP and DITA are re-implemented
here in their point-based (free-space) forms:

* **TP** — a temporally-constrained closest-pair distance: each point of one
  trajectory is matched to the other trajectory's nearest point, and the spatial and
  temporal gaps of the match are blended with weight ``lambda_spatial``.  This is the
  formulation used by the ST2Vec evaluation (Shang et al.'s "TP" measure adapted from
  road networks to free space).
* **DITA** — a pivot-aligned warping distance: the sequences are aligned with a
  DTW-style monotone coupling over combined spatio-temporal point costs, following the
  DITA system's local-alignment semantics.

Neither measure satisfies the triangle inequality, which is why they appear in the
paper's spatio-temporal violation analysis.
"""

from __future__ import annotations

import numpy as np

from .base import as_points, register_distance

__all__ = ["tp_distance", "dita_distance", "spatiotemporal_point_cost"]


def _require_time(points: np.ndarray, name: str) -> None:
    if points.shape[1] < 3:
        raise ValueError(f"{name} requires trajectories with a time column (lon, lat, t)")


def spatiotemporal_point_cost(a: np.ndarray, b: np.ndarray,
                              lambda_spatial: float = 0.5,
                              time_scale: float = 1.0) -> np.ndarray:
    """Blend of spatial and temporal point distances between two point arrays."""
    spatial = np.sqrt(((a[:, None, :2] - b[None, :, :2]) ** 2).sum(axis=-1))
    temporal = np.abs(a[:, None, 2] - b[None, :, 2]) / time_scale
    return lambda_spatial * spatial + (1.0 - lambda_spatial) * temporal


@register_distance("tp", is_metric=False)
def tp_distance(trajectory_a, trajectory_b, lambda_spatial: float = 0.5,
                time_scale: float = 1.0) -> float:
    """TP spatio-temporal distance (symmetric mean closest-pair blend)."""
    if not 0.0 <= lambda_spatial <= 1.0:
        raise ValueError("lambda_spatial must lie in [0, 1]")
    a = as_points(trajectory_a, spatial_only=False)
    b = as_points(trajectory_b, spatial_only=False)
    _require_time(a, "tp_distance")
    _require_time(b, "tp_distance")
    cost = spatiotemporal_point_cost(a, b, lambda_spatial, time_scale)
    forward = cost.min(axis=1).mean()
    backward = cost.min(axis=0).mean()
    return float(0.5 * (forward + backward))


@register_distance("dita", is_metric=False)
def dita_distance(trajectory_a, trajectory_b, lambda_spatial: float = 0.5,
                  time_scale: float = 1.0) -> float:
    """DITA spatio-temporal distance (monotone pivot alignment, DTW-style)."""
    a = as_points(trajectory_a, spatial_only=False)
    b = as_points(trajectory_b, spatial_only=False)
    _require_time(a, "dita_distance")
    _require_time(b, "dita_distance")
    cost = spatiotemporal_point_cost(a, b, lambda_spatial, time_scale)
    n, m = cost.shape
    table = np.full((n + 1, m + 1), np.inf)
    table[0, 0] = 0.0
    for i in range(1, n + 1):
        previous = table[i - 1]
        current = table[i]
        row_cost = cost[i - 1]
        for j in range(1, m + 1):
            current[j] = row_cost[j - 1] + min(previous[j], current[j - 1], previous[j - 1])
    return float(table[n, m])
