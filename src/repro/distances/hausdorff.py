"""Hausdorff distance between trajectories (point-set formulation).

The (symmetric) Hausdorff distance is the largest of the two directed distances
``max_a min_b d(a, b)`` and ``max_b min_a d(b, a)``.  It is a true metric on point
sets, so it serves as a non-violating control in the triangle-inequality analysis.
"""

from __future__ import annotations

import numpy as np

from .base import as_points, point_distance_matrix, register_distance

__all__ = ["hausdorff_distance", "directed_hausdorff_distance"]


def directed_hausdorff_distance(trajectory_a, trajectory_b) -> float:
    """Directed Hausdorff distance from ``trajectory_a`` to ``trajectory_b``."""
    a = as_points(trajectory_a)
    b = as_points(trajectory_b)
    cost = point_distance_matrix(a, b)
    return float(cost.min(axis=1).max())


@register_distance("hausdorff", is_metric=True)
def hausdorff_distance(trajectory_a, trajectory_b) -> float:
    """Symmetric Hausdorff distance."""
    a = as_points(trajectory_a)
    b = as_points(trajectory_b)
    cost = point_distance_matrix(a, b)
    return float(max(cost.min(axis=1).max(), cost.min(axis=0).max()))
