"""The trajectory-encoder interface and a registry of the paper's base models.

Every base model maps a trajectory to a Euclidean embedding.  The LH-plugin is
model-agnostic, so the only contract an encoder must satisfy is:

* ``prepare(trajectory)`` — convert a :class:`~repro.data.Trajectory` into the
  model-specific input (grid features, graph, token sequence, ...).  Preparation is
  NumPy-only and cacheable.
* ``encode(prepared)`` — differentiable forward pass returning a 1-D embedding
  ``Tensor`` of size ``embedding_dim``.

Models also expose a ``build`` classmethod that performs any dataset-level
preprocessing they need (fitting a grid, a quadtree, a spatio-temporal grid).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..data import Normalizer, Trajectory, TrajectoryDataset
from ..nn import Module, Tensor, no_grad

__all__ = ["TrajectoryEncoder", "register_model", "get_model", "available_models"]

_MODEL_REGISTRY: dict[str, Callable] = {}


class TrajectoryEncoder(Module):
    """Base class for trajectory embedding models."""

    def __init__(self, embedding_dim: int):
        super().__init__()
        if embedding_dim <= 0:
            raise ValueError("embedding_dim must be positive")
        self.embedding_dim = embedding_dim

    # ------------------------------------------------------------------ contract
    def prepare(self, trajectory: Trajectory):
        """Model-specific preprocessing of one trajectory (NumPy only)."""
        raise NotImplementedError

    def encode(self, prepared) -> Tensor:
        """Differentiable embedding of one prepared trajectory."""
        raise NotImplementedError

    def forward(self, prepared) -> Tensor:
        return self.encode(prepared)

    # ----------------------------------------------------------------- utilities
    def prepare_dataset(self, dataset: TrajectoryDataset) -> list:
        """Prepare every trajectory of a dataset."""
        return [self.prepare(trajectory) for trajectory in dataset]

    def embed_dataset(self, dataset: TrajectoryDataset, prepared: list | None = None
                      ) -> np.ndarray:
        """Embeddings for a whole dataset, computed without autograd overhead."""
        prepared = prepared if prepared is not None else self.prepare_dataset(dataset)
        embeddings = []
        with no_grad():
            for item in prepared:
                embeddings.append(self.encode(item).data.copy())
        return np.array(embeddings)

    @classmethod
    def build(cls, dataset: TrajectoryDataset, embedding_dim: int = 16,
              seed: int = 0, **kwargs) -> "TrajectoryEncoder":
        """Construct an encoder with any dataset-level preprocessing it needs."""
        raise NotImplementedError

    @staticmethod
    def fit_normalizer(dataset: TrajectoryDataset) -> Normalizer:
        """Convenience used by models that consume normalised coordinates."""
        return Normalizer.fit(dataset)


def register_model(name: str):
    """Decorator registering an encoder class under a model name."""

    def decorator(cls):
        key = name.lower()
        if key in _MODEL_REGISTRY:
            raise KeyError(f"model '{name}' already registered")
        _MODEL_REGISTRY[key] = cls
        return cls

    return decorator


def get_model(name: str):
    """Look up an encoder class by registered name."""
    key = name.lower()
    if key not in _MODEL_REGISTRY:
        raise KeyError(f"unknown model '{name}'; available: {sorted(_MODEL_REGISTRY)}")
    return _MODEL_REGISTRY[key]


def available_models() -> list[str]:
    """Names of all registered encoder models."""
    return sorted(_MODEL_REGISTRY)
