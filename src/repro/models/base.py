"""The trajectory-encoder interface and a registry of the paper's base models.

Every base model maps a trajectory to a Euclidean embedding.  The LH-plugin is
model-agnostic, so the only contract an encoder must satisfy is:

* ``prepare(trajectory)`` — convert a :class:`~repro.data.Trajectory` into the
  model-specific input (grid features, graph, token sequence, ...).  Preparation is
  NumPy-only and cacheable.
* ``encode(prepared)`` — differentiable forward pass returning a 1-D embedding
  ``Tensor`` of size ``embedding_dim``.
* ``encode_batch(prepared_list)`` — differentiable forward pass over a ragged
  batch, returning a ``(B, embedding_dim)`` tensor.  Every concrete encoder
  implements a padded, mask-aware batch path; ``encode`` stays the per-sample
  parity reference, and the two must agree row-for-row within 1e-9 (pinned by
  ``tests/test_batch_parity.py``).

Models also expose a ``build`` classmethod that performs any dataset-level
preprocessing they need (fitting a grid, a quadtree, a spatio-temporal grid).
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from ..data import Normalizer, Trajectory, TrajectoryDataset
from ..nn import Module, Tensor, no_grad, stack

__all__ = ["TrajectoryEncoder", "register_model", "get_model", "available_models"]

_MODEL_REGISTRY: dict[str, Callable] = {}


class TrajectoryEncoder(Module):
    """Base class for trajectory embedding models."""

    def __init__(self, embedding_dim: int):
        super().__init__()
        if embedding_dim <= 0:
            raise ValueError("embedding_dim must be positive")
        self.embedding_dim = embedding_dim

    # ------------------------------------------------------------------ contract
    def prepare(self, trajectory: Trajectory):
        """Model-specific preprocessing of one trajectory (NumPy only)."""
        raise NotImplementedError

    def encode(self, prepared) -> Tensor:
        """Differentiable embedding of one prepared trajectory."""
        raise NotImplementedError

    def encode_batch(self, prepared_list: Sequence) -> Tensor:
        """Differentiable ``(B, embedding_dim)`` embeddings of a ragged batch.

        The base implementation stacks per-sample :meth:`encode` calls so any
        encoder is batchable; concrete models override it with a padded,
        mask-aware forward pass that encodes the whole batch in one sweep.
        """
        if not prepared_list:
            raise ValueError("encode_batch needs at least one prepared trajectory")
        return stack([self.encode(prepared) for prepared in prepared_list], axis=0)

    def forward(self, prepared) -> Tensor:
        return self.encode(prepared)

    # ----------------------------------------------------------------- utilities
    def prepare_dataset(self, dataset: TrajectoryDataset) -> list:
        """Prepare every trajectory of a dataset."""
        return [self.prepare(trajectory) for trajectory in dataset]

    def prepare_batch(self, trajectories) -> list:
        """Prepare a batch of trajectories (the ``encode_batch`` counterpart)."""
        return [self.prepare(trajectory) for trajectory in trajectories]

    def embed_dataset(self, dataset: TrajectoryDataset, prepared: list | None = None,
                      batch_size: int = 64) -> np.ndarray:
        """Embeddings for a whole dataset, computed without autograd overhead.

        Routes through :meth:`encode_batch` in chunks of ``batch_size`` so the
        all-pairs embedding step of evaluation shares the batched forward path.
        """
        prepared = prepared if prepared is not None else self.prepare_dataset(dataset)
        if not prepared:
            return np.zeros((0, self.embedding_dim))
        batch_size = max(int(batch_size), 1)
        blocks = []
        with no_grad():
            for start in range(0, len(prepared), batch_size):
                block = self.encode_batch(prepared[start:start + batch_size])
                blocks.append(block.data.copy())
        return np.concatenate(blocks, axis=0)

    @classmethod
    def build(cls, dataset: TrajectoryDataset, embedding_dim: int = 16,
              seed: int = 0, **kwargs) -> "TrajectoryEncoder":
        """Construct an encoder with any dataset-level preprocessing it needs."""
        raise NotImplementedError

    @staticmethod
    def fit_normalizer(dataset: TrajectoryDataset) -> Normalizer:
        """Convenience used by models that consume normalised coordinates."""
        return Normalizer.fit(dataset)


def register_model(name: str):
    """Decorator registering an encoder class under a model name."""

    def decorator(cls):
        key = name.lower()
        if key in _MODEL_REGISTRY:
            raise KeyError(f"model '{name}' already registered")
        _MODEL_REGISTRY[key] = cls
        return cls

    return decorator


def get_model(name: str):
    """Look up an encoder class by registered name."""
    key = name.lower()
    if key not in _MODEL_REGISTRY:
        raise KeyError(f"unknown model '{name}'; available: {sorted(_MODEL_REGISTRY)}")
    return _MODEL_REGISTRY[key]


def available_models() -> list[str]:
    """Names of all registered encoder models."""
    return sorted(_MODEL_REGISTRY)
