"""TrajGAT-style encoder: quadtree graph attention (Yao et al., KDD 2022).

TrajGAT targets long trajectories: it builds a quadtree over the space, turns each
trajectory into a graph whose nodes are the trajectory points plus the quadtree cells
they traverse, and encodes the graph with graph attention layers.  This re-
implementation keeps that structure at reduced scale: a shared dataset quadtree,
per-trajectory point+cell graphs, two GAT layers and mean pooling.
"""

from __future__ import annotations

import numpy as np

from ..data import Normalizer, QuadTree, Trajectory, TrajectoryDataset, trajectory_graph
from ..nn import GraphAttentionLayer, Linear, Tensor, masked_mean, pad_sequences
from .base import TrajectoryEncoder, register_model

__all__ = ["TrajGATEncoder"]


@register_model("trajgat")
class TrajGATEncoder(TrajectoryEncoder):
    """Quadtree graph-attention encoder in the style of TrajGAT."""

    def __init__(self, quadtree: QuadTree, normalizer: Normalizer,
                 embedding_dim: int = 16, hidden_dim: int = 32, seed: int = 0):
        super().__init__(embedding_dim)
        rng = np.random.default_rng(seed)
        self.quadtree = quadtree
        self.normalizer = normalizer
        self.input_dim = 3  # normalised lon, lat, node-depth flag
        self.attention1 = GraphAttentionLayer(self.input_dim, hidden_dim, rng=rng)
        self.attention2 = GraphAttentionLayer(hidden_dim, hidden_dim, rng=rng)
        self.projection = Linear(hidden_dim, embedding_dim, rng=rng)

    @classmethod
    def build(cls, dataset: TrajectoryDataset, embedding_dim: int = 16, seed: int = 0,
              hidden_dim: int = 32, max_points_per_cell: int = 24, max_depth: int = 5,
              **kwargs) -> "TrajGATEncoder":
        quadtree = QuadTree.for_dataset(dataset, max_points=max_points_per_cell,
                                        max_depth=max_depth)
        return cls(quadtree, Normalizer.fit(dataset), embedding_dim=embedding_dim,
                   hidden_dim=hidden_dim, seed=seed)

    def prepare(self, trajectory: Trajectory) -> tuple[np.ndarray, np.ndarray]:
        features, adjacency = trajectory_graph(trajectory, self.quadtree)
        # Normalise the spatial part of the node features; the depth flag stays as-is.
        spatial = self.normalizer.transform_points(features[:, :2])
        normalised = np.column_stack([spatial, features[:, 2]])
        return normalised, adjacency

    def encode(self, prepared: tuple[np.ndarray, np.ndarray]) -> Tensor:
        features, adjacency = prepared
        hidden = self.attention1(Tensor(features), adjacency)
        hidden = self.attention2(hidden, adjacency)
        pooled = hidden.mean(axis=0)
        return self.projection(pooled)

    def encode_batch(self, prepared_list) -> Tensor:
        """Batched graph attention over node-padded graphs.

        Graphs are padded to the largest node count of the batch with all-False
        adjacency rows; absent edges attend with exactly zero weight, and the
        mean pooling is masked to the real nodes of every graph.
        """
        if not prepared_list:
            raise ValueError("encode_batch needs at least one prepared trajectory")
        features, mask = pad_sequences([prepared[0] for prepared in prepared_list])
        batch, num_nodes = mask.shape
        adjacency = np.zeros((batch, num_nodes, num_nodes), dtype=bool)
        for row, (_, graph_adjacency) in enumerate(prepared_list):
            size = graph_adjacency.shape[0]
            adjacency[row, :size, :size] = graph_adjacency
        hidden = self.attention1(Tensor(features), adjacency)
        hidden = self.attention2(hidden, adjacency)
        pooled = masked_mean(hidden, mask)
        return self.projection(pooled)
