"""Traj2SimVec-style encoder: LSTM with sub-trajectory supervision (Zhang et al., IJCAI 2020).

Traj2SimVec's distinguishing idea is auxiliary supervision on *sub-trajectories*: the
model is encouraged to embed prefixes of a trajectory consistently with the distances
of the corresponding sub-trajectories.  This re-implementation encodes the normalised
point sequence with an LSTM, exposes prefix embeddings at a few split points, and the
trainer can add the auxiliary sub-trajectory loss when it is enabled.
"""

from __future__ import annotations

import numpy as np

from ..data import Normalizer, Trajectory, TrajectoryDataset
from ..nn import LSTM, Linear, Tensor, pad_sequences
from .base import TrajectoryEncoder, register_model

__all__ = ["Traj2SimVecEncoder"]


@register_model("traj2simvec")
class Traj2SimVecEncoder(TrajectoryEncoder):
    """LSTM encoder with prefix (sub-trajectory) embeddings."""

    def __init__(self, normalizer: Normalizer, embedding_dim: int = 16,
                 hidden_dim: int = 32, num_splits: int = 3, seed: int = 0):
        super().__init__(embedding_dim)
        rng = np.random.default_rng(seed)
        self.normalizer = normalizer
        self.num_splits = max(num_splits, 1)
        self.recurrent = LSTM(2, hidden_dim, rng=rng)
        self.projection = Linear(hidden_dim, embedding_dim, rng=rng)

    @classmethod
    def build(cls, dataset: TrajectoryDataset, embedding_dim: int = 16, seed: int = 0,
              hidden_dim: int = 32, num_splits: int = 3, **kwargs) -> "Traj2SimVecEncoder":
        return cls(Normalizer.fit(dataset), embedding_dim=embedding_dim,
                   hidden_dim=hidden_dim, num_splits=num_splits, seed=seed)

    def prepare(self, trajectory: Trajectory) -> np.ndarray:
        return self.normalizer.transform_points(trajectory.coordinates)

    def encode(self, prepared: np.ndarray) -> Tensor:
        _, (hidden, _) = self.recurrent(Tensor(prepared), return_sequence=False)
        return self.projection(hidden)

    def encode_batch(self, prepared_list) -> Tensor:
        """One masked LSTM sweep over the padded batch of point sequences."""
        if not prepared_list:
            raise ValueError("encode_batch needs at least one prepared trajectory")
        padded, mask = pad_sequences(prepared_list)
        _, (hidden, _) = self.recurrent(Tensor(padded), return_sequence=False, mask=mask)
        return self.projection(hidden)

    def _prefix_position(self, length: int, split: int) -> int:
        return max(int(round(length * split / (self.num_splits + 1))) - 1, 0)

    def encode_with_prefixes(self, prepared: np.ndarray) -> tuple[Tensor, list[Tensor]]:
        """Full embedding plus embeddings of ``num_splits`` prefixes.

        Prefix split points are evenly spaced; the prefixes reuse the same recurrent
        weights, mirroring how Traj2SimVec supervises sub-trajectory consistency.
        """
        outputs, (hidden, _) = self.recurrent(Tensor(prepared))
        full = self.projection(hidden)
        length = outputs.shape[0]
        prefixes = []
        for split in range(1, self.num_splits + 1):
            prefixes.append(self.projection(outputs[self._prefix_position(length, split)]))
        return full, prefixes

    def encode_batch_with_prefixes(self, prepared_list) -> tuple[Tensor, list[Tensor]]:
        """Batched counterpart of :meth:`encode_with_prefixes`.

        Returns the full ``(B, embedding_dim)`` embeddings plus one ``(B,
        embedding_dim)`` tensor per split, gathered from each sample's own
        prefix positions in the masked per-step states (so sample ``i``'s rows
        match its per-sample prefixes regardless of padding).
        """
        if not prepared_list:
            raise ValueError("encode_batch needs at least one prepared trajectory")
        padded, mask = pad_sequences(prepared_list)
        outputs, (hidden, _) = self.recurrent(Tensor(padded), mask=mask)
        full = self.projection(hidden)
        rows = np.arange(len(prepared_list))
        prefixes = []
        for split in range(1, self.num_splits + 1):
            positions = np.array([self._prefix_position(len(prepared), split)
                                  for prepared in prepared_list], dtype=np.intp)
            prefixes.append(self.projection(outputs[rows, positions]))
        return full, prefixes

    def prefix_lengths(self, prepared: np.ndarray) -> list[int]:
        """Number of points of each prefix produced by :meth:`encode_with_prefixes`."""
        length = len(prepared)
        return [self._prefix_position(length, split) + 1
                for split in range(1, self.num_splits + 1)]
