"""ST2Vec-style encoder: spatio-temporal co-attention (Fang et al., KDD 2022).

ST2Vec encodes the spatial and temporal components of a trajectory with separate
recurrent streams and fuses them with a co-attention module before producing the
final embedding.  This re-implementation keeps that two-stream + co-attention shape
on top of the NumPy substrate.
"""

from __future__ import annotations

import numpy as np

from ..data import Normalizer, Trajectory, TrajectoryDataset
from ..nn import LSTM, CoAttention, Linear, Tensor, concat, masked_mean, pad_sequences
from .base import TrajectoryEncoder, register_model

__all__ = ["ST2VecEncoder"]


@register_model("st2vec")
class ST2VecEncoder(TrajectoryEncoder):
    """Two-stream spatio-temporal encoder with co-attention fusion."""

    def __init__(self, normalizer: Normalizer, embedding_dim: int = 16,
                 hidden_dim: int = 24, seed: int = 0):
        super().__init__(embedding_dim)
        rng = np.random.default_rng(seed)
        self.normalizer = normalizer
        self.spatial_stream = LSTM(2, hidden_dim, rng=rng)
        self.temporal_stream = LSTM(2, hidden_dim, rng=rng)
        self.co_attention = CoAttention(hidden_dim, rng=rng)
        self.projection = Linear(2 * hidden_dim, embedding_dim, rng=rng)

    @classmethod
    def build(cls, dataset: TrajectoryDataset, embedding_dim: int = 16, seed: int = 0,
              hidden_dim: int = 24, **kwargs) -> "ST2VecEncoder":
        if not dataset.has_time:
            raise ValueError("ST2Vec requires a spatio-temporal dataset (lon, lat, t)")
        return cls(Normalizer.fit(dataset), embedding_dim=embedding_dim,
                   hidden_dim=hidden_dim, seed=seed)

    def prepare(self, trajectory: Trajectory) -> tuple[np.ndarray, np.ndarray]:
        if not trajectory.has_time:
            raise ValueError("ST2Vec requires timestamped trajectories")
        points = self.normalizer.transform_points(trajectory.points)
        spatial = points[:, :2]
        times = points[:, 2]
        # Temporal stream sees (normalised time, normalised time delta).
        deltas = np.concatenate([[0.0], np.diff(times)])
        temporal = np.column_stack([times, deltas])
        return spatial, temporal

    def encode(self, prepared: tuple[np.ndarray, np.ndarray]) -> Tensor:
        spatial, temporal = prepared
        spatial_states, _ = self.spatial_stream(Tensor(spatial))
        temporal_states, _ = self.temporal_stream(Tensor(temporal))
        fused_spatial, fused_temporal = self.co_attention(spatial_states, temporal_states)
        pooled = concat([fused_spatial.mean(axis=0), fused_temporal.mean(axis=0)], axis=-1)
        return self.projection(pooled)

    def encode_batch(self, prepared_list) -> Tensor:
        """Masked two-stream LSTM + masked co-attention over the padded batch.

        Both streams of one trajectory share a length, so a single mask drives
        the recurrences, the attention bias and the mean pooling.
        """
        if not prepared_list:
            raise ValueError("encode_batch needs at least one prepared trajectory")
        spatial, mask = pad_sequences([prepared[0] for prepared in prepared_list])
        temporal, _ = pad_sequences([prepared[1] for prepared in prepared_list])
        spatial_states, _ = self.spatial_stream(Tensor(spatial), mask=mask)
        temporal_states, _ = self.temporal_stream(Tensor(temporal), mask=mask)
        fused_spatial, fused_temporal = self.co_attention(
            spatial_states, temporal_states, mask_a=mask, mask_b=mask)
        pooled = concat([masked_mean(fused_spatial, mask),
                         masked_mean(fused_temporal, mask)], axis=-1)
        return self.projection(pooled)
