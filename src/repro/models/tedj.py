"""Tedj-style encoder: 3-D spatio-temporal grid sequences (Tedjopurnomo et al., TIST 2021).

Tedj ("similar trajectory search with spatio-temporal deep representation learning")
discretises space *and* time into a 3-D grid and encodes the resulting token sequence,
which makes it robust to GPS sampling-rate fluctuation and point offsets.  This
re-implementation tokenises trajectories with :class:`~repro.data.SpatioTemporalGrid`,
embeds the tokens and runs a GRU over them.
"""

from __future__ import annotations

import numpy as np

from ..data import SpatioTemporalGrid, Trajectory, TrajectoryDataset
from ..nn import GRU, Embedding, Linear, Tensor, concat, pad_sequences, pad_token_sequences
from .base import TrajectoryEncoder, register_model

__all__ = ["TedjEncoder"]


@register_model("tedj")
class TedjEncoder(TrajectoryEncoder):
    """Spatio-temporal grid-token GRU encoder in the style of Tedj."""

    def __init__(self, st_grid: SpatioTemporalGrid, embedding_dim: int = 16,
                 token_dim: int = 12, hidden_dim: int = 24, seed: int = 0):
        super().__init__(embedding_dim)
        rng = np.random.default_rng(seed)
        self.st_grid = st_grid
        self.token_embedding = Embedding(st_grid.num_cells, token_dim, rng=rng)
        self.recurrent = GRU(token_dim + 3, hidden_dim, rng=rng)
        self.projection = Linear(hidden_dim, embedding_dim, rng=rng)

    @classmethod
    def build(cls, dataset: TrajectoryDataset, embedding_dim: int = 16, seed: int = 0,
              token_dim: int = 12, hidden_dim: int = 24, grid_size: int = 12,
              num_time_bins: int = 12, **kwargs) -> "TedjEncoder":
        if not dataset.has_time:
            raise ValueError("Tedj requires a spatio-temporal dataset (lon, lat, t)")
        st_grid = SpatioTemporalGrid.for_dataset(dataset, grid_size, grid_size, num_time_bins)
        return cls(st_grid, embedding_dim=embedding_dim, token_dim=token_dim,
                   hidden_dim=hidden_dim, seed=seed)

    def prepare(self, trajectory: Trajectory) -> tuple[np.ndarray, np.ndarray]:
        if not trajectory.has_time:
            raise ValueError("Tedj requires timestamped trajectories")
        tokens = self.st_grid.tokenize(trajectory)
        continuous = self.st_grid.features(trajectory)[:, :3]  # norm lon, lat, time
        return tokens, continuous

    def encode(self, prepared: tuple[np.ndarray, np.ndarray]) -> Tensor:
        tokens, continuous = prepared
        token_vectors = self.token_embedding(tokens)
        sequence = concat([token_vectors, Tensor(continuous)], axis=-1)
        _, hidden = self.recurrent(sequence, return_sequence=False)
        return self.projection(hidden)

    def encode_batch(self, prepared_list) -> Tensor:
        """Padded token lookup + masked GRU over the whole batch.

        Padding uses token id 0 — a valid vocabulary row — but the mask zeroes
        the gradient of every padded step, so the row-0 embedding only learns
        from genuine occurrences.
        """
        if not prepared_list:
            raise ValueError("encode_batch needs at least one prepared trajectory")
        tokens, mask = pad_token_sequences([prepared[0] for prepared in prepared_list])
        continuous, _ = pad_sequences([prepared[1] for prepared in prepared_list])
        token_vectors = self.token_embedding(tokens)
        sequence = concat([token_vectors, Tensor(continuous)], axis=-1)
        _, hidden = self.recurrent(sequence, return_sequence=False, mask=mask)
        return self.projection(hidden)
