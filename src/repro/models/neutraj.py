"""Neutraj-style encoder: grid-aware recurrent embedding (Yao et al., ICDE 2019).

Neutraj feeds each trajectory point's coordinates together with its grid cell into a
recurrent network and uses a spatial-attention memory over neighbouring cells.  This
reduced-scale re-implementation keeps the characteristic ingredients:

* grid-cell preprocessing (coordinates + normalised cell indices per point),
* neighbour smoothing — each point's features are averaged with the centres of the
  neighbouring cells, a stand-in for the original's spatial memory table,
* a GRU encoder whose final hidden state is projected to the embedding.
"""

from __future__ import annotations

import numpy as np

from ..data import Grid, Trajectory, TrajectoryDataset
from ..nn import GRU, Linear, Tensor, pad_sequences
from .base import TrajectoryEncoder, register_model

__all__ = ["NeutrajEncoder"]


@register_model("neutraj")
class NeutrajEncoder(TrajectoryEncoder):
    """Grid-cell GRU encoder in the style of Neutraj."""

    def __init__(self, grid: Grid, embedding_dim: int = 16, hidden_dim: int = 32,
                 neighbor_radius: int = 1, seed: int = 0):
        super().__init__(embedding_dim)
        rng = np.random.default_rng(seed)
        self.grid = grid
        self.neighbor_radius = neighbor_radius
        self.input_dim = 6  # lon, lat, cell-x, cell-y, neighbour-smoothed lon/lat
        self.recurrent = GRU(self.input_dim, hidden_dim, rng=rng)
        self.projection = Linear(hidden_dim, embedding_dim, rng=rng)

    @classmethod
    def build(cls, dataset: TrajectoryDataset, embedding_dim: int = 16, seed: int = 0,
              hidden_dim: int = 32, grid_size: int = 24, neighbor_radius: int = 1,
              **kwargs) -> "NeutrajEncoder":
        grid = Grid.for_dataset(dataset, grid_size, grid_size)
        return cls(grid, embedding_dim=embedding_dim, hidden_dim=hidden_dim,
                   neighbor_radius=neighbor_radius, seed=seed)

    def prepare(self, trajectory: Trajectory) -> np.ndarray:
        base = self.grid.features(trajectory)  # (n, 4): norm lon/lat + norm cell col/row
        coords = trajectory.coordinates
        smoothed = np.zeros((len(coords), 2))
        box = self.grid.bounding_box
        for index, (lon, lat) in enumerate(coords):
            column, row = self.grid.cell_of(lon, lat)
            cells = [(column, row)] + self.grid.neighbors_of(column, row, self.neighbor_radius)
            centers = np.array([self.grid.cell_center(c, r) for c, r in cells])
            mean_center = centers.mean(axis=0)
            smoothed[index, 0] = (mean_center[0] - box.min_lon) / max(box.width, 1e-12)
            smoothed[index, 1] = (mean_center[1] - box.min_lat) / max(box.height, 1e-12)
        return np.hstack([base, smoothed])

    def encode(self, prepared: np.ndarray) -> Tensor:
        _, hidden = self.recurrent(Tensor(prepared), return_sequence=False)
        return self.projection(hidden)

    def encode_batch(self, prepared_list) -> Tensor:
        """One masked GRU sweep over the padded batch of feature sequences."""
        if not prepared_list:
            raise ValueError("encode_batch needs at least one prepared trajectory")
        padded, mask = pad_sequences(prepared_list)
        _, hidden = self.recurrent(Tensor(padded), return_sequence=False, mask=mask)
        return self.projection(hidden)
