"""``repro.models`` — reduced-scale re-implementations of the paper's base encoders.

Models: Neutraj (grid GRU), TrajGAT (quadtree graph attention), Traj2SimVec (LSTM +
sub-trajectory prefixes), ST2Vec (spatio-temporal co-attention), Tedj (3-D grid
tokens) plus a fast mean-pool MLP control.  All are Euclidean encoders the LH-plugin
can be attached to unchanged.
"""

from .base import TrajectoryEncoder, register_model, get_model, available_models
from .mlp import MeanPoolEncoder
from .neutraj import NeutrajEncoder
from .trajgat import TrajGATEncoder
from .traj2simvec import Traj2SimVecEncoder
from .st2vec import ST2VecEncoder
from .tedj import TedjEncoder

__all__ = [
    "TrajectoryEncoder", "register_model", "get_model", "available_models",
    "MeanPoolEncoder", "NeutrajEncoder", "TrajGATEncoder", "Traj2SimVecEncoder",
    "ST2VecEncoder", "TedjEncoder",
]
