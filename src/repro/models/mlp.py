"""Mean-pooling MLP encoder — a fast, architecture-free baseline.

Not part of the paper's model zoo, but useful as a cheap control in tests and as the
quickstart example's default: it mean-pools simple per-point statistics and projects
them through an MLP.  It exercises the whole plugin/training/retrieval pipeline at a
fraction of the recurrent models' cost.
"""

from __future__ import annotations

import numpy as np

from ..data import Normalizer, Trajectory, TrajectoryDataset
from ..nn import MLP, Tensor
from .base import TrajectoryEncoder, register_model

__all__ = ["MeanPoolEncoder"]


@register_model("meanpool")
class MeanPoolEncoder(TrajectoryEncoder):
    """Embeds a trajectory from pooled point statistics through an MLP.

    The prepared representation is a fixed-size feature vector: the mean, standard
    deviation, first and last of the normalised coordinates, plus the normalised
    point count — enough to distinguish routes while staying O(n) to compute.
    """

    def __init__(self, normalizer: Normalizer, embedding_dim: int = 16,
                 hidden_dim: int = 32, seed: int = 0):
        super().__init__(embedding_dim)
        rng = np.random.default_rng(seed)
        self.normalizer = normalizer
        self.feature_dim = 9
        self.network = MLP(self.feature_dim, hidden_dim, embedding_dim, rng=rng)

    @classmethod
    def build(cls, dataset: TrajectoryDataset, embedding_dim: int = 16, seed: int = 0,
              hidden_dim: int = 32, **kwargs) -> "MeanPoolEncoder":
        return cls(Normalizer.fit(dataset), embedding_dim=embedding_dim,
                   hidden_dim=hidden_dim, seed=seed)

    def prepare(self, trajectory: Trajectory) -> np.ndarray:
        coords = self.normalizer.transform_points(trajectory.coordinates)
        features = np.concatenate([
            coords.mean(axis=0),
            coords.std(axis=0),
            coords[0],
            coords[-1],
            [min(len(coords), 200) / 200.0],
        ])
        return features

    def encode(self, prepared: np.ndarray) -> Tensor:
        return self.network(Tensor(prepared))

    def encode_batch(self, prepared_list) -> Tensor:
        """Batched forward: the fixed-size features stack without padding."""
        if not prepared_list:
            raise ValueError("encode_batch needs at least one prepared trajectory")
        return self.network(Tensor(np.stack(prepared_list, axis=0)))
