"""Lorentz (hyperboloid) geometry: inner product, hyperbolic space and Lorentz distance.

The paper works in the hyperboloid model ``H(β) = {a ∈ R^{n+1} : ⟨a, a⟩_L = −β,
a₀ ≥ √β}`` where ``⟨a, b⟩_L = −a₀b₀ + Σᵢ aᵢbᵢ`` is the Lorentz inner product, and
defines the **Lorentz distance** ``d_Lo(a, b) = |⟨a, b⟩_L| − β`` (Definition 3).

Two properties make this distance the core of the LH-plugin:

* it is non-negative and zero only at ``a = b`` (Lemma 4), so it behaves like a
  distance for nearest-neighbour retrieval;
* it is **not** constrained by the triangle inequality (Lemma 5), so embeddings can
  faithfully represent trajectory measures (DTW, SSPD, EDR, ...) that violate it.

Both NumPy (fast, inference/analysis) and autodiff ``Tensor`` (training) versions of
every function are provided.
"""

from __future__ import annotations

import numpy as np

from ..nn import Tensor, as_tensor

__all__ = [
    "lorentz_inner",
    "lorentz_distance",
    "lorentz_distance_matrix",
    "is_on_hyperboloid",
    "lorentz_inner_t",
    "lorentz_distance_t",
]


# --------------------------------------------------------------------- NumPy path
def lorentz_inner(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Lorentz inner product ``−a₀b₀ + Σᵢ aᵢbᵢ`` along the last axis."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    product = a * b
    return product[..., 1:].sum(axis=-1) - product[..., 0]


def lorentz_distance(a: np.ndarray, b: np.ndarray, beta: float = 1.0) -> np.ndarray:
    """Lorentz distance ``|⟨a, b⟩_L| − β`` between points of ``H(β)``."""
    if beta <= 0:
        raise ValueError("beta must be positive")
    return np.abs(lorentz_inner(a, b)) - beta


def lorentz_distance_matrix(points_a: np.ndarray, points_b: np.ndarray | None = None,
                            beta: float = 1.0) -> np.ndarray:
    """All-pairs Lorentz distances between two sets of hyperbolic points.

    ``points_a`` is (n, d+1) and ``points_b`` (m, d+1); the result is (n, m).  The
    inner product is evaluated with one matrix multiplication, so this is the fast
    path used for similarity retrieval over pre-embedded databases.
    """
    if beta <= 0:
        raise ValueError("beta must be positive")
    points_a = np.asarray(points_a, dtype=np.float64)
    points_b = points_a if points_b is None else np.asarray(points_b, dtype=np.float64)
    signature = np.ones(points_a.shape[-1])
    signature[0] = -1.0
    gram = (points_a * signature) @ points_b.T
    return np.abs(gram) - beta


def is_on_hyperboloid(a: np.ndarray, beta: float = 1.0, atol: float = 1e-6) -> np.ndarray:
    """Whether points satisfy ``⟨a, a⟩_L = −β`` and ``a₀ ≥ √β`` (within ``atol``).

    The self inner product is a difference of two quantities of order ``a₀²``, so the
    tolerance is scaled by ``max(1, a₀²)`` to absorb the unavoidable floating-point
    cancellation for points far from the apex.
    """
    a = np.asarray(a, dtype=np.float64)
    cancellation_scale = np.maximum(1.0, a[..., 0] ** 2)
    constraint = np.abs(lorentz_inner(a, a) + beta) <= atol * cancellation_scale
    sheet = a[..., 0] >= np.sqrt(beta) - atol
    return constraint & sheet


# ------------------------------------------------------------------- Tensor path
def lorentz_inner_t(a: Tensor, b: Tensor) -> Tensor:
    """Differentiable Lorentz inner product along the last axis."""
    a = as_tensor(a)
    b = as_tensor(b)
    product = a * b
    return product.sum(axis=-1) - 2.0 * product[..., 0]


def lorentz_distance_t(a: Tensor, b: Tensor, beta: float = 1.0) -> Tensor:
    """Differentiable Lorentz distance ``|⟨a, b⟩_L| − β``."""
    if beta <= 0:
        raise ValueError("beta must be positive")
    return lorentz_inner_t(a, b).abs() - beta
