"""The LH-plugin: a model-agnostic hyperbolic add-on for trajectory encoders.

The plugin leaves the base Euclidean encoder untouched (Section III).  Around it, it
adds the two modules of Figure 3:

* **Hyperbolic Projection** — lifts the Euclidean embedding onto the hyperboloid
  ``H(β)`` (cosh projection by default, vanilla for ablations) so the **Lorentz
  distance** can be used;
* **Dynamic Fusion** — blends the Lorentz and Euclidean distances with a per-pair
  learned proportion ``α_Lo``.

Three call paths are exposed: a differentiable pair path used during per-sample
training (:meth:`LHPlugin.pair_distance`), a differentiable **batched** pair path
over ``(B, d)`` embedding blocks used by the batched trainer
(:meth:`LHPlugin.pair_distances_from`), and a vectorised NumPy path used for
retrieval over pre-embedded databases (:meth:`LHPlugin.distance_matrix`),
mirroring how the paper's efficiency experiment pre-embeds trajectories offline.
"""

from __future__ import annotations

import numpy as np

from ..nn import Module, Tensor, as_tensor, euclidean_distance, no_grad
from .config import LHPluginConfig
from .fusion import DynamicFusion, fuse_distances, lorentz_proportion  # noqa: F401
from .lorentz import lorentz_distance_matrix, lorentz_distance_t  # noqa: F401
from .projection import project, project_t, projection_scalars

__all__ = ["LHPlugin", "PluggedEncoder"]


class LHPlugin(Module):
    """Model-agnostic Lorentzian-Hyperbolic plugin (the paper's core contribution)."""

    def __init__(self, config: LHPluginConfig | None = None, **config_kwargs):
        super().__init__()
        if config is None:
            config = LHPluginConfig(**config_kwargs)
        elif config_kwargs:
            config = config.with_updates(**config_kwargs)
        self.config = config
        self.fusion = DynamicFusion(config) if config.use_fusion else None

    # ----------------------------------------------------------------- projection
    def project(self, euclidean_embeddings: np.ndarray) -> np.ndarray:
        """Project Euclidean embeddings onto ``H(β)`` (NumPy, batched)."""
        return project(euclidean_embeddings, beta=self.config.beta,
                       c=self.config.compression, method=self.config.projection)

    def project_t(self, euclidean_embedding: Tensor) -> Tensor:
        """Differentiable projection of a single (or batched) embedding."""
        return project_t(euclidean_embedding, beta=self.config.beta,
                         c=self.config.compression, method=self.config.projection)

    # -------------------------------------------------------------- training path
    def pair_distance(self, embedding_a: Tensor, embedding_b: Tensor,
                      points_a=None, points_b=None) -> Tensor:
        """Differentiable plugin distance between two Euclidean embeddings.

        ``points_a`` / ``points_b`` are the raw (normalised) point sequences of the
        trajectories, needed only when dynamic fusion is enabled.
        """
        factors_a = factors_b = None
        if self.fusion is not None:
            if points_a is None or points_b is None:
                raise ValueError("dynamic fusion requires the raw point sequences")
            factors_a = self.fusion.factors(points_a)
            factors_b = self.fusion.factors(points_b)
        return self.pair_distance_from(embedding_a, embedding_b, factors_a, factors_b)

    def pair_distance_from(self, embedding_a: Tensor, embedding_b: Tensor,
                           factors_a: tuple[Tensor, Tensor] | None = None,
                           factors_b: tuple[Tensor, Tensor] | None = None) -> Tensor:
        """Differentiable plugin distance from precomputed embeddings and factors.

        Training loops that reuse a trajectory in several pairs of one batch can call
        the fusion encoder once per trajectory and pass the factor tensors here.
        """
        embedding_a = as_tensor(embedding_a)
        embedding_b = as_tensor(embedding_b)
        hyperbolic_a = self.project_t(embedding_a)
        hyperbolic_b = self.project_t(embedding_b)
        lorentz = lorentz_distance_t(hyperbolic_a, hyperbolic_b, beta=self.config.beta)
        if self.fusion is None:
            return lorentz
        if factors_a is None or factors_b is None:
            raise ValueError("dynamic fusion requires factor vectors for both trajectories")
        euclidean = euclidean_distance(embedding_a, embedding_b)
        alpha = lorentz_proportion(factors_a[0], factors_a[1], factors_b[0], factors_b[1])
        return fuse_distances(lorentz, euclidean, alpha)

    def pair_distances_from(self, embeddings_a: Tensor, embeddings_b: Tensor,
                            factors_a: tuple[Tensor, Tensor] | None = None,
                            factors_b: tuple[Tensor, Tensor] | None = None) -> Tensor:
        """Differentiable plugin distances for aligned ``(B, d)`` embedding blocks.

        The batched twin of :meth:`pair_distance_from`: projection, Lorentz
        distance, Euclidean distance and the fusion proportion all run on whole
        embedding blocks (``factors_*`` are ``(B, factor_dim)`` pairs), returning
        a ``(B,)`` distance tensor whose rows reproduce the per-pair arithmetic.
        """
        embeddings_a = as_tensor(embeddings_a)
        embeddings_b = as_tensor(embeddings_b)
        if embeddings_a.ndim != 2 or embeddings_b.ndim != 2:
            raise ValueError("pair_distances_from expects (B, d) embedding blocks")
        hyperbolic_a = self.project_t(embeddings_a)
        hyperbolic_b = self.project_t(embeddings_b)
        lorentz = lorentz_distance_t(hyperbolic_a, hyperbolic_b, beta=self.config.beta)
        if self.fusion is None:
            return lorentz
        if factors_a is None or factors_b is None:
            raise ValueError("dynamic fusion requires factor vectors for both sides")
        euclidean = euclidean_distance(embeddings_a, embeddings_b, axis=-1)
        alpha = lorentz_proportion(factors_a[0], factors_a[1], factors_b[0], factors_b[1])
        return fuse_distances(lorentz, euclidean, alpha)

    # ------------------------------------------------------------- inference path
    def embed_database(self, euclidean_embeddings: np.ndarray,
                       point_sequences=None) -> dict:
        """Precompute everything retrieval needs for a database of embeddings.

        The hyperbolic projection is stored in its compact form (two scalars per
        embedding, see :func:`~repro.core.projection.projection_scalars`) so the
        plugin's memory overhead stays small; fusion factor vectors are added when
        dynamic fusion is enabled.  This is the "pre-embedding" step of the efficiency
        experiment: it is done once, offline.
        """
        euclidean_embeddings = np.asarray(euclidean_embeddings, dtype=np.float64)
        time_like, space_scale = projection_scalars(
            euclidean_embeddings, beta=self.config.beta, c=self.config.compression,
            method=self.config.projection)
        entry = {
            "euclidean": euclidean_embeddings,
            "time_like": time_like,
            "space_scale": space_scale,
        }
        if self.fusion is not None:
            if point_sequences is None:
                raise ValueError("dynamic fusion requires the raw point sequences")
            entry["factors"] = self.fusion.factors_numpy(point_sequences)
        return entry

    def distance_matrix(self, query_db: dict, database_db: dict | None = None) -> np.ndarray:
        """All-pairs plugin distances between two pre-embedded databases (NumPy).

        The Lorentz Gram matrix is rebuilt from the shared Euclidean Gram matrix,
        so the plugin adds only element-wise work on top of the matrix product the
        Euclidean path needs anyway.
        """
        database_db = query_db if database_db is None else database_db
        queries = query_db["euclidean"]
        database = database_db["euclidean"]
        gram = queries @ database.T
        lorentz_gram = (np.outer(query_db["space_scale"], database_db["space_scale"]) * gram
                        - np.outer(query_db["time_like"], database_db["time_like"]))
        lorentz = np.abs(lorentz_gram) - self.config.beta
        if self.fusion is None:
            return lorentz
        squared = ((queries ** 2).sum(axis=1)[:, None]
                   + (database ** 2).sum(axis=1)[None, :])
        euclidean = np.sqrt(np.maximum(squared - 2.0 * gram, 0.0))
        alpha = DynamicFusion.alpha_matrix(query_db["factors"], database_db["factors"])
        return alpha * lorentz + (1.0 - alpha) * euclidean


class PluggedEncoder(Module):
    """A base trajectory encoder with an :class:`LHPlugin` attached.

    This is the integration layer the paper calls "plug-and-play": the base encoder's
    architecture, preprocessing and parameters are reused as-is; the plugin only adds
    its projection (parameter-free) and, optionally, the fusion factor encoder.
    """

    def __init__(self, base_encoder: Module, plugin: LHPlugin):
        super().__init__()
        self.base_encoder = base_encoder
        self.plugin = plugin

    @property
    def embedding_dim(self) -> int:
        return self.base_encoder.embedding_dim

    def prepare(self, trajectory):
        """Delegate input preparation to the base encoder."""
        return self.base_encoder.prepare(trajectory)

    def prepare_batch(self, trajectories):
        """Delegate batch preparation to the base encoder."""
        return self.base_encoder.prepare_batch(trajectories)

    def encode(self, prepared) -> Tensor:
        """Euclidean embedding from the (unchanged) base encoder."""
        return self.base_encoder.encode(prepared)

    def encode_batch(self, prepared_list) -> Tensor:
        """Batched Euclidean embeddings from the (unchanged) base encoder."""
        return self.base_encoder.encode_batch(prepared_list)

    def pair_distance(self, prepared_a, prepared_b, points_a=None, points_b=None) -> Tensor:
        """Differentiable plugin distance between two prepared trajectories."""
        embedding_a = self.encode(prepared_a)
        embedding_b = self.encode(prepared_b)
        return self.plugin.pair_distance(embedding_a, embedding_b, points_a, points_b)

    def embed_many(self, prepared_list, batch_size: int = 64) -> np.ndarray:
        """Euclidean embeddings for many trajectories without autograd overhead.

        Chunks through the base encoder's mask-aware ``encode_batch`` so the
        pre-embedding step scales with batch width rather than Python loop count.
        """
        prepared_list = list(prepared_list)
        if not prepared_list:
            return np.zeros((0, self.embedding_dim))
        batch_size = max(int(batch_size), 1)
        blocks = []
        with no_grad():
            for start in range(0, len(prepared_list), batch_size):
                block = self.encode_batch(prepared_list[start:start + batch_size])
                blocks.append(block.data.copy())
        return np.concatenate(blocks, axis=0)
