"""Euclidean → hyperbolic projections: the Vanilla and Cosh projections (Section IV).

An ``n``-dimensional Euclidean embedding is lifted to a point of the ``(n+1)``-
dimensional hyperboloid ``H(β)``:

* **Vanilla projection** ``φ`` — keep the Euclidean coordinates and solve the
  time-like coordinate: ``x₀ = sqrt(Σ xᵢ² + β)``.  Theorem 6 shows the Lorentz
  distance between such projections collapses to zero as the embedding norms grow,
  which hurts exactly the hard case (discriminating among nearby objects).
* **Cosh projection** ``φ_cosh`` — re-parameterise the norm through the hyperbolic
  angle: ``x₀ = √β·cosh(m)`` and ``xᵢ ← xᵢ·√β·sinh(m)/‖x‖`` where
  ``m = γ_c(Σ xᵢ²) = (Σ xᵢ²)^{1/c}`` is the norm compressed by the exponent ``c``
  (``c = 2`` recovers the plain norm).  Theorems 7–9 show the resulting Lorentz
  distance is non-diminishing.

Both projections are exact hyperboloid maps: the produced points satisfy
``⟨x, x⟩_L = −β`` for every input (up to floating point error), for any ``c``.
NumPy and differentiable ``Tensor`` versions are provided.
"""

from __future__ import annotations

import numpy as np

from ..nn import Tensor, as_tensor, concat

__all__ = [
    "norm_compression",
    "vanilla_projection",
    "cosh_projection",
    "vanilla_projection_t",
    "cosh_projection_t",
    "project",
    "project_t",
    "projection_scalars",
]

_EPS = 1e-12


def norm_compression(squared_norm: np.ndarray, c: float) -> np.ndarray:
    """The γ_c compression of the squared norm: ``(Σ xᵢ²)^{1/c}``."""
    if c <= 0:
        raise ValueError("compression exponent c must be positive")
    return np.maximum(squared_norm, 0.0) ** (1.0 / c)


# --------------------------------------------------------------------- NumPy path
def vanilla_projection(x: np.ndarray, beta: float = 1.0) -> np.ndarray:
    """Vanilla hyperbolic projection ``φ(x)``: prepend ``sqrt(‖x‖² + β)``."""
    if beta <= 0:
        raise ValueError("beta must be positive")
    x = np.asarray(x, dtype=np.float64)
    squared = (x ** 2).sum(axis=-1, keepdims=True)
    time_like = np.sqrt(squared + beta)
    return np.concatenate([time_like, x], axis=-1)


def cosh_projection(x: np.ndarray, beta: float = 1.0, c: float = 4.0) -> np.ndarray:
    """Cosh hyperbolic projection ``φ_cosh(x)`` with norm compression ``γ_c``.

    The time-like coordinate is ``√β·cosh(m)`` and the space-like block is scaled by
    ``k = √β·sinh(m)/‖x‖`` so that ``⟨x, x⟩_L = β·cosh²(m) − k²‖x‖² = −(−β)`` holds
    exactly — i.e. membership of ``H(β)`` does not depend on ``c``.
    """
    if beta <= 0:
        raise ValueError("beta must be positive")
    x = np.asarray(x, dtype=np.float64)
    squared = (x ** 2).sum(axis=-1, keepdims=True)
    magnitude = norm_compression(squared, c)
    euclidean_norm = np.sqrt(squared)
    sqrt_beta = np.sqrt(beta)
    time_like = sqrt_beta * np.cosh(magnitude)
    # sinh(m)/‖x‖ is a finite float for every nonzero norm (denormals included),
    # so only ‖x‖ = 0 needs guarding — and there sinh(m) = 0 already zeroes the
    # spatial block.  A fixed _EPS floor on the denominator would push points
    # with 0 < ‖x‖ < _EPS off the hyperboloid by sinh²(m): large-c compression
    # keeps m non-negligible for norms far below any constant threshold.
    safe_norm = np.where(euclidean_norm > 0.0, euclidean_norm, 1.0)
    scale = sqrt_beta * np.sinh(magnitude) / safe_norm
    return np.concatenate([time_like, x * scale], axis=-1)


def project(x: np.ndarray, beta: float = 1.0, c: float = 4.0,
            method: str = "cosh") -> np.ndarray:
    """Dispatch to the vanilla or cosh projection by name."""
    if method == "cosh":
        return cosh_projection(x, beta=beta, c=c)
    if method == "vanilla":
        return vanilla_projection(x, beta=beta)
    raise ValueError(f"unknown projection method '{method}'")


def projection_scalars(x: np.ndarray, beta: float = 1.0, c: float = 4.0,
                       method: str = "cosh") -> tuple[np.ndarray, np.ndarray]:
    """Compact form of a projection: the time-like coordinate and the space-like scale.

    Every projection in this module maps ``x`` to ``(x₀, s·x)`` for scalars ``x₀`` and
    ``s`` that depend only on ``‖x‖``; storing the two scalars per embedding instead of
    a full ``(n+1)``-dimensional copy keeps the plugin's memory overhead to two floats
    per trajectory, and the Lorentz Gram matrix can be rebuilt from the Euclidean Gram
    matrix as ``s_a·s_b·(X_a·X_bᵀ) − x₀ₐ·x₀ᵦᵀ``.
    """
    if beta <= 0:
        raise ValueError("beta must be positive")
    x = np.asarray(x, dtype=np.float64)
    squared = (x ** 2).sum(axis=-1)
    if method == "vanilla":
        time_like = np.sqrt(squared + beta)
        scale = np.ones_like(time_like)
        return time_like, scale
    if method == "cosh":
        magnitude = norm_compression(squared, c)
        sqrt_beta = np.sqrt(beta)
        time_like = sqrt_beta * np.cosh(magnitude)
        # Same zero-only guard as cosh_projection: a fixed floor would distort
        # sub-_EPS norms off the hyperboloid.
        euclidean_norm = np.sqrt(squared)
        safe_norm = np.where(euclidean_norm > 0.0, euclidean_norm, 1.0)
        scale = sqrt_beta * np.sinh(magnitude) / safe_norm
        return time_like, scale
    raise ValueError(f"unknown projection method '{method}'")


# ------------------------------------------------------------------- Tensor path
def vanilla_projection_t(x: Tensor, beta: float = 1.0) -> Tensor:
    """Differentiable vanilla projection."""
    if beta <= 0:
        raise ValueError("beta must be positive")
    x = as_tensor(x)
    squared = (x * x).sum(axis=-1, keepdims=True)
    time_like = (squared + beta).sqrt()
    return concat([time_like, x], axis=-1)


def cosh_projection_t(x: Tensor, beta: float = 1.0, c: float = 4.0) -> Tensor:
    """Differentiable cosh projection with norm compression ``γ_c``."""
    if beta <= 0:
        raise ValueError("beta must be positive")
    if c <= 0:
        raise ValueError("compression exponent c must be positive")
    x = as_tensor(x)
    squared = (x * x).sum(axis=-1, keepdims=True)
    magnitude = (squared + _EPS) ** (1.0 / c)
    euclidean_norm = (squared + _EPS).sqrt()
    sqrt_beta = float(np.sqrt(beta))
    time_like = magnitude.cosh() * sqrt_beta
    scale = magnitude.sinh() * sqrt_beta / euclidean_norm
    return concat([time_like, x * scale], axis=-1)


def project_t(x: Tensor, beta: float = 1.0, c: float = 4.0, method: str = "cosh") -> Tensor:
    """Differentiable dispatch to the vanilla or cosh projection."""
    if method == "cosh":
        return cosh_projection_t(x, beta=beta, c=c)
    if method == "vanilla":
        return vanilla_projection_t(x, beta=beta)
    raise ValueError(f"unknown projection method '{method}'")
