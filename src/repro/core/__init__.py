"""``repro.core`` — the LH-plugin: Lorentz geometry, hyperbolic projections,
dynamic fusion and the model-agnostic plugin wrapper.
"""

from .lorentz import (
    lorentz_inner,
    lorentz_distance,
    lorentz_distance_matrix,
    is_on_hyperboloid,
    lorentz_inner_t,
    lorentz_distance_t,
)
from .projection import (
    norm_compression,
    vanilla_projection,
    cosh_projection,
    vanilla_projection_t,
    cosh_projection_t,
    project,
    project_t,
    projection_scalars,
)
from .config import LHPluginConfig
from .fusion import FactorEncoder, DynamicFusion, fuse_distances, lorentz_proportion
from .plugin import LHPlugin, PluggedEncoder

__all__ = [
    "lorentz_inner", "lorentz_distance", "lorentz_distance_matrix", "is_on_hyperboloid",
    "lorentz_inner_t", "lorentz_distance_t",
    "norm_compression", "vanilla_projection", "cosh_projection",
    "vanilla_projection_t", "cosh_projection_t", "project", "project_t",
    "projection_scalars",
    "LHPluginConfig",
    "FactorEncoder", "DynamicFusion", "fuse_distances", "lorentz_proportion",
    "LHPlugin", "PluggedEncoder",
]
